#!/usr/bin/env bash
# Materializes the benchmark corpus ladder (corpus/MANIFEST.tsv): one
# DIMACS text file and one `.lmg` binary store per instance, cached in
# corpus/cache/ so repeated benchmark runs (and the CI cache) pay
# nothing after the first build.
#
# For every manifest row the text file comes from, in order:
#   1. the cache (corpus/cache/<name>.clq already present — e.g. a real
#      downloaded dataset someone dropped in, or a previous run);
#   2. the row's URL (skipped when CORPUS_OFFLINE=1, when the row has no
#      URL, or when curl is unavailable / the download fails);
#   3. the row's fallback generator spec, exported with
#      `lazymc-convert --emit dimacs` — fully hermetic, no network.
#
# The `.lmg` store is then (re)built from the text file with
# `lazymc-convert --with-rows --verify` whenever it is missing or older
# than its text source, so the two artifacts can never drift apart.
#
# usage: tools/corpus.sh BUILD_DIR [DEST_DIR]
#
# environment:
#   CORPUS_OFFLINE=1   never attempt downloads (CI default)
set -euo pipefail

BUILD_DIR=${1:?usage: tools/corpus.sh BUILD_DIR [DEST_DIR]}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
DEST=${2:-$ROOT/corpus/cache}
MANIFEST=$ROOT/corpus/MANIFEST.tsv
CONVERT=$BUILD_DIR/lazymc-convert

[ -x "$CONVERT" ] || {
  echo "corpus: $CONVERT not found (build lazymc-convert first)" >&2
  exit 1
}
[ -f "$MANIFEST" ] || { echo "corpus: $MANIFEST missing" >&2; exit 1; }
mkdir -p "$DEST"

fetch() {  # name url -> 0 if $DEST/$1.clq was produced from $2
  local name=$1 url=$2 tmp
  [ "${CORPUS_OFFLINE:-0}" = 1 ] && return 1
  [ "$url" = "-" ] && return 1
  command -v curl >/dev/null || return 1
  tmp=$(mktemp -d "$DEST/fetch.XXXXXX")
  if ! curl -fsSL --max-time 120 -o "$tmp/raw" "$url"; then
    rm -rf "$tmp"; return 1
  fi
  case "$url" in
    *.gz) gunzip -c "$tmp/raw" > "$tmp/text" 2>/dev/null || {
            rm -rf "$tmp"; return 1; } ;;
    *.zip) command -v unzip >/dev/null || { rm -rf "$tmp"; return 1; }
           unzip -p "$tmp/raw" > "$tmp/text" 2>/dev/null || {
             rm -rf "$tmp"; return 1; } ;;
    *) mv "$tmp/raw" "$tmp/text" ;;
  esac
  # Round-trip through the loader: rejects archives that were not a
  # graph, and normalizes whatever text format arrived into DIMACS.
  if ! "$CONVERT" "$tmp/text" "$DEST/$name.clq" --emit dimacs \
       > /dev/null 2>&1; then
    rm -rf "$tmp"; return 1
  fi
  rm -rf "$tmp"
  echo "  $name: downloaded"
}

built=0
while IFS=$'\t' read -r name url fallback; do
  case "$name" in ''|'#'*) continue ;; esac
  clq=$DEST/$name.clq
  lmg=$DEST/$name.lmg
  if [ ! -f "$clq" ]; then
    if ! fetch "$name" "$url"; then
      "$CONVERT" "$fallback" "$clq" --emit dimacs > /dev/null
      echo "  $name: generated from $fallback"
    fi
  fi
  if [ ! -f "$lmg" ] || [ "$clq" -nt "$lmg" ]; then
    "$CONVERT" "$clq" "$lmg" --with-rows --verify > /dev/null
    built=$((built + 1))
  fi
done < "$MANIFEST"

count=$(ls "$DEST"/*.lmg 2>/dev/null | wc -l)
echo "corpus: $count instances ready in $DEST ($built stores rebuilt)"
