#!/usr/bin/env bash
# Regenerates the committed benchmark baseline (BENCH_9.json).
#
# Runs the micro-kernel shoot-out and the hybrid-row starved-budget
# shoot-out from bench_micro, then a suite omega sweep (3 graphs x 4
# neighborhood representations through the CLI), asserts that every
# representation agrees on omega per graph, and merges everything into
# one stable-schema JSON document at the repo root.
#
# usage: tools/bench_baseline.sh BUILD_DIR [OUT_JSON]
#
# environment:
#   BENCH_SCALE        suite scale for the omega sweep (default: medium;
#                      CI uses small to stay time-bounded)
#   BENCH_TIME_LIMIT   per-solve wall-clock limit in seconds (default 120)
#   LAZYMC_STARVE_SPEC forwarded to bench_micro --hybrid-starve to shrink
#                      the starved-budget instance (see bench_micro.cpp)
set -euo pipefail

BUILD_DIR=${1:?usage: tools/bench_baseline.sh BUILD_DIR [OUT_JSON]}
OUT=${2:-BENCH_9.json}
SCALE=${BENCH_SCALE:-medium}
TIME_LIMIT=${BENCH_TIME_LIMIT:-120}
GRAPHS=(webcc soflow flickr)
REPS=(hash bitset hybrid auto)

for bin in bench_micro lazymc; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "bench_baseline: $BUILD_DIR/$bin not found (build it first)" >&2
    exit 1
  fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== micro shoot-outs (bench_micro) =="
"$BUILD_DIR/bench_micro" --shootout --hybrid-starve \
  --json="$TMP/micro.json"

echo "== omega sweep (${GRAPHS[*]} x ${REPS[*]}, scale=$SCALE) =="
for g in "${GRAPHS[@]}"; do
  for rep in "${REPS[@]}"; do
    "$BUILD_DIR/lazymc" --graph "gen:$g:$SCALE" --rep "$rep" \
      --time-limit "$TIME_LIMIT" --json >"$TMP/sweep-$g-$rep.json"
    echo "  $g/$rep done"
  done
done

python3 - "$TMP" "$OUT" "$SCALE" <<'PY'
import json
import sys

tmp, out, scale = sys.argv[1], sys.argv[2], sys.argv[3]
graphs = ["webcc", "soflow", "flickr"]
reps = ["hash", "bitset", "hybrid", "auto"]

with open(f"{tmp}/micro.json") as f:
    micro = json.load(f)

sweep = []
for g in graphs:
    entry = {"graph": g, "scale": scale, "reps": {}}
    omegas = set()
    for rep in reps:
        with open(f"{tmp}/sweep-{g}-{rep}.json") as f:
            r = json.load(f)
        if r.get("timed_out"):
            sys.exit(f"bench_baseline: {g}/{rep} timed out; baseline unusable")
        lg = r.get("lazy_graph", {})
        entry["reps"][rep] = {
            "omega": r["omega"],
            "solve_seconds": r["solve_seconds"],
            "zone_size": lg.get("zone_size", 0),
            "rows_built": lg.get("bitset_built", 0),
            "row_bytes": lg.get("bitset_bytes", 0),
            "hybrid_rows": lg.get("hybrid_rows"),
        }
        omegas.add(r["omega"])
    if len(omegas) != 1:
        sys.exit(f"bench_baseline: omega disagrees on {g}: "
                 f"{ {rep: v['omega'] for rep, v in entry['reps'].items()} }")
    entry["omega"] = omegas.pop()
    sweep.append(entry)

doc = {
    "schema": "lazymc-bench-baseline/1",
    "issue": 9,
    "generated_by": "tools/bench_baseline.sh",
    "micro": micro,
    "omega_sweep": sweep,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
PY
