#!/usr/bin/env bash
# Load-time shoot-out for the binary graph store: text parse vs first
# mmap open vs warm mmap open, across the corpus ladder
# (corpus/MANIFEST.tsv, materialized by tools/corpus.sh).  Produces the
# committed baseline BENCH_10.json.
#
# Every instance is solved once per load path with the same solver
# configuration; the script HARD-FAILS if any solve times out or if the
# parse and mmap paths disagree on omega — a store that loads fast but
# decodes a different graph is a correctness bug, not a result.  It also
# hard-fails unless the warm mmap load of the largest instance (by text
# bytes) is at least MIN_SPEEDUP x faster than the text parse.
#
# usage: tools/bench_load.sh BUILD_DIR [OUT_JSON]
#
# environment:
#   BENCH_TIME_LIMIT  per-solve wall-clock limit in seconds (default 120)
#   MIN_SPEEDUP       required warm-mmap speedup on the largest
#                     instance (default 10)
#   CORPUS_OFFLINE    forwarded to tools/corpus.sh
set -euo pipefail

BUILD_DIR=${1:?usage: tools/bench_load.sh BUILD_DIR [OUT_JSON]}
OUT=${2:-BENCH_10.json}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
CACHE=$ROOT/corpus/cache
TIME_LIMIT=${BENCH_TIME_LIMIT:-120}
MIN_SPEEDUP=${MIN_SPEEDUP:-10}
LAZYMC=$BUILD_DIR/lazymc

[ -x "$LAZYMC" ] || { echo "bench_load: $LAZYMC not found" >&2; exit 1; }
"$ROOT/tools/corpus.sh" "$BUILD_DIR" "$CACHE"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

names=()
while IFS=$'\t' read -r name url fallback; do
  case "$name" in ''|'#'*) continue ;; esac
  names+=("$name")
done < "$ROOT/corpus/MANIFEST.tsv"

for name in "${names[@]}"; do
  echo "== $name =="
  "$LAZYMC" --graph "$CACHE/$name.clq" --rep bitset \
    --time-limit "$TIME_LIMIT" --json > "$TMP/$name.parse.json"
  # First open after the solve above: the page cache holds the text
  # file, not the store, so this is the coldest open a benchmark run
  # can reproduce without root (drop_caches).
  "$LAZYMC" --graph "$CACHE/$name.lmg" --rep bitset \
    --time-limit "$TIME_LIMIT" --json > "$TMP/$name.mmap1.json"
  "$LAZYMC" --graph "$CACHE/$name.lmg" --rep bitset \
    --time-limit "$TIME_LIMIT" --json > "$TMP/$name.mmap2.json"
done

python3 - "$TMP" "$CACHE" "$OUT" "$MIN_SPEEDUP" "${names[@]}" <<'PY'
import json
import os
import sys

tmp, cache, out, min_speedup = sys.argv[1:5]
names = sys.argv[5:]
min_speedup = float(min_speedup)

instances = []
for name in names:
    runs = {}
    for path in ("parse", "mmap1", "mmap2"):
        with open(f"{tmp}/{name}.{path}.json") as f:
            runs[path] = json.load(f)
    omegas = {path: r["omega"] for path, r in runs.items()}
    if len(set(omegas.values())) != 1:
        sys.exit(f"bench_load: omega diverged on {name}: {omegas}")
    for path, r in runs.items():
        if r["timed_out"]:
            sys.exit(f"bench_load: {name}/{path} timed out; omega is not "
                     "comparable (raise BENCH_TIME_LIMIT)")
        if r["verification"] != "ok":
            sys.exit(f"bench_load: {name}/{path} failed verification")
    if runs["mmap2"]["load_path"] != "mmap":
        sys.exit(f"bench_load: {name} store was not mmap-loaded")
    parse_s = runs["parse"]["load_seconds"]
    warm_s = runs["mmap2"]["load_seconds"]
    instances.append({
        "name": name,
        "text_bytes": os.path.getsize(f"{cache}/{name}.clq"),
        "lmg_bytes": os.path.getsize(f"{cache}/{name}.lmg"),
        "num_vertices": runs["parse"]["num_vertices"],
        "num_edges": runs["parse"]["num_edges"],
        "omega": omegas["parse"],
        "parse_load_seconds": parse_s,
        "mmap_first_load_seconds": runs["mmap1"]["load_seconds"],
        "mmap_warm_load_seconds": warm_s,
        "warm_speedup": parse_s / warm_s if warm_s > 0 else float("inf"),
        "rows_prebuilt": runs["mmap2"]["lazy_graph"]["rows_prebuilt"],
        "rows_built_lazily": runs["mmap2"]["lazy_graph"]["bitset_built"],
    })

largest = max(instances, key=lambda i: i["text_bytes"])
if largest["warm_speedup"] < min_speedup:
    sys.exit(f"bench_load: warm mmap speedup on {largest['name']} is "
             f"{largest['warm_speedup']:.1f}x, need >= {min_speedup}x")

doc = {
    "schema": "lazymc-bench-load-v1",
    "description": "Graph load-time shoot-out: DIMACS text parse vs "
                   "first and warm mmap of the .lmg binary store, over "
                   "the corpus ladder (corpus/MANIFEST.tsv).  Solves "
                   "use --rep bitset; omega is asserted identical "
                   "across load paths.",
    "largest_instance": {
        "name": largest["name"],
        "warm_speedup": largest["warm_speedup"],
    },
    "instances": instances,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_load: largest instance {largest['name']} warm speedup "
      f"{largest['warm_speedup']:.1f}x -> {out}")
PY
