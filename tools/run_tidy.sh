#!/usr/bin/env sh
# Runs clang-tidy over every first-party translation unit using the
# compile_commands.json a CMake build exports (CMAKE_EXPORT_COMPILE_COMMANDS
# is always on).  Usage:
#
#   tools/run_tidy.sh [build-dir]       # default build dir: ./build
#
# The check profile lives in .clang-tidy at the repo root.  Exits nonzero
# on any diagnostic from the WarningsAsErrors set, so CI can gate on it.
# Requires clang-tidy (and run-clang-tidy when parallel); the container
# toolchain may only have GCC — the CI static-analysis job installs clang.
set -eu

build_dir="${1:-build}"
repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo_root"

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found;" \
       "configure with cmake first" >&2
  exit 2
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not installed (CI installs it; locally use" \
       "a clang toolchain image)" >&2
  exit 2
fi

# First-party TUs only: layer sources and the CLI.  Tests/benches include
# third-party headers (gtest, benchmark) that the profile would flag.
files=$(find src -name '*.cpp' | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2086
  run-clang-tidy -p "$build_dir" -quiet $files
else
  status=0
  for f in $files; do
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit $status
fi
