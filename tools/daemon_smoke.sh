#!/usr/bin/env bash
# End-to-end robustness exercise of lazymcd / lazymc-ctl:
#
#   1. concurrent solves with mixed deadlines, health-counter
#      reconciliation (admitted == completed + failed + shed + in_flight),
#      and bounded-admission load shedding;
#   2. SIGHUP journal rotation;
#   3. SIGTERM mid-request: the in-flight solve returns a *verified*
#      best-so-far report with "interrupted":true, the daemon drains and
#      exits 0, and its socket/pidfile are cleaned up;
#   4. kill -9, then restart: stale-pidfile recovery and journal-backed
#      accounting ("journal_recovered");
#   5. (faults builds, LAZYMC_SMOKE_FAULTS=1) request.exec injection:
#      faulted requests answer with structured errors, their neighbours
#      still verify, the daemon never crashes.
#
# Usage: daemon_smoke.sh <lazymcd> <lazymc-ctl>
set -u

LAZYMCD=${1:?usage: daemon_smoke.sh <lazymcd> <lazymc-ctl>}
CTL=${2:?usage: daemon_smoke.sh <lazymcd> <lazymc-ctl>}

# Short paths: sun_path caps Unix socket names at ~107 bytes.
DIR=$(mktemp -d /tmp/lazymc_smoke.XXXXXX)
SOCK=$DIR/d.sock
PIDFILE=$DIR/d.pid
JOURNAL=$DIR/journal.jsonl
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

FAILURES=0
fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }
note() { echo "--- $*"; }

# json_field FILE KEY -> raw value of a flat JSON field ('' if absent)
json_field() {
  grep -o "\"$2\":[^,}]*" "$1" | head -n1 | cut -d: -f2- | tr -d '"'
}

start_daemon() {  # extra flags in "$@"
  "$LAZYMCD" --socket "$SOCK" --pidfile "$PIDFILE" --journal "$JOURNAL" \
             --executors 2 --max-queue 2 "$@" 2>>"$DIR/daemon.log" &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    "$CTL" --socket "$SOCK" status >/dev/null 2>&1 && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || { fail "daemon died on startup"; cat "$DIR/daemon.log" >&2; return 1; }
    sleep 0.1
  done
  fail "daemon did not come up"
  return 1
}

check_reconciled() {  # status-file label
  local admitted completed failed shed inflight
  admitted=$(json_field "$1" admitted)
  completed=$(json_field "$1" completed)
  failed=$(json_field "$1" failed)
  shed=$(json_field "$1" shed)
  inflight=$(json_field "$1" in_flight)
  if [ "$admitted" != "$((completed + failed + shed + inflight))" ]; then
    fail "$2: counters do not reconcile: admitted=$admitted completed=$completed failed=$failed shed=$shed in_flight=$inflight"
  fi
}

# A dense random graph whose exact solve takes far longer than any budget
# used below, while staying promptly cancellable (stop checks every few
# thousand B&B nodes).
awk 'BEGIN{seed=42; n=280;
  for(i=0;i<n;i++) for(j=i+1;j<n;j++){
    seed=(seed*1103515245+12345)%2147483648;
    if(seed/2147483648.0<0.9) print i, j}}' > "$DIR/hard.el"

# ---------------------------------------------------------------- phase 1
note "phase 1: concurrent solves, mixed deadlines, counter reconciliation"
start_daemon || exit 1

"$CTL" --socket "$SOCK" load gen:dblp:small > "$DIR/load.json"
[ "$(json_field "$DIR/load.json" ok)" = "true" ] || fail "load did not ack"

"$CTL" --socket "$SOCK" solve gen:dblp:small --id fast-1 > "$DIR/r1.json" &
P1=$!
"$CTL" --socket "$SOCK" solve "$DIR/hard.el" --time-limit 2 --id deadline-1 \
  > "$DIR/r2.json" &
P2=$!
"$CTL" --socket "$SOCK" solve gen:flickr:small --id fast-2 > "$DIR/r3.json" &
P3=$!
wait $P1; E1=$?
wait $P2; E2=$?
wait $P3; E3=$?

[ "$E1" = 0 ] || fail "fast-1 exit $E1 (want 0)"
[ "$E3" = 0 ] || fail "fast-2 exit $E3 (want 0)"
[ "$E2" = 2 ] || fail "deadline-1 exit $E2 (want 2 = timeout)"
[ "$(json_field "$DIR/r1.json" status)" = "ok" ] || fail "fast-1 not ok"
[ "$(json_field "$DIR/r2.json" status)" = "timeout" ] || fail "deadline-1 not timeout"
for r in r1 r2 r3; do
  [ "$(json_field "$DIR/$r.json" verification)" = "ok" ] \
    || fail "$r: verification not ok"
done

"$CTL" --socket "$SOCK" status > "$DIR/s1.json"
check_reconciled "$DIR/s1.json" "phase 1"
[ "$(json_field "$DIR/s1.json" completed)" -ge 3 ] || fail "completed < 3"
grep -q '"graph_store":' "$DIR/s1.json" \
  || fail "status lacks the graph_store section"
grep -q '"load_path":"gen"' "$DIR/s1.json" \
  || fail "status graph_store lacks per-graph load_path"

# phase 1a: the load verb accepts .lmg binary stores and the status verb
# reports them as mmap-loaded.
CONVERT="$(dirname "$LAZYMCD")/lazymc-convert"
if [ -x "$CONVERT" ]; then
  note "phase 1a: binary graph store through the daemon"
  "$CONVERT" "$DIR/hard.el" "$DIR/hard.lmg" --with-rows --verify \
    > /dev/null || fail "lazymc-convert failed"
  "$CTL" --socket "$SOCK" load "$DIR/hard.lmg" > "$DIR/load_lmg.json"
  [ "$(json_field "$DIR/load_lmg.json" ok)" = "true" ] \
    || fail "lmg load did not ack"
  "$CTL" --socket "$SOCK" solve "$DIR/hard.lmg" --time-limit 2 \
    --id store-1 > "$DIR/rs.json" || true
  grep -q '"load_path":"mmap"' "$DIR/rs.json" \
    || fail "store solve does not report mmap load path"
  [ "$(json_field "$DIR/rs.json" verification)" = "ok" ] \
    || fail "store solve verification not ok"
  "$CTL" --socket "$SOCK" status > "$DIR/s1a.json"
  grep -q '"load_path":"mmap"' "$DIR/s1a.json" \
    || fail "status does not report the mmap-loaded store"
fi

note "phase 1b: load shedding under a full queue"
# 2 executors + 2 queue slots; 6 concurrent slow solves must shed >= 2.
PIDS=()
for i in 1 2 3 4 5 6; do
  "$CTL" --socket "$SOCK" solve "$DIR/hard.el" --time-limit 2 --id "flood-$i" \
    > "$DIR/flood$i.json" 2>/dev/null &
  PIDS+=($!)
done
SHED_SEEN=0
for i in 1 2 3 4 5 6; do
  wait "${PIDS[$((i-1))]}"
  grep -q '"error_kind":"overloaded"' "$DIR/flood$i.json" && SHED_SEEN=$((SHED_SEEN + 1))
done
[ "$SHED_SEEN" -ge 1 ] || fail "no request was shed with overloaded"
"$CTL" --socket "$SOCK" status > "$DIR/s2.json"
check_reconciled "$DIR/s2.json" "phase 1b"
[ "$(json_field "$DIR/s2.json" shed)" -ge 1 ] || fail "status shed counter is 0"

# ---------------------------------------------------------------- phase 2
note "phase 2: SIGHUP journal rotation"
mv "$JOURNAL" "$JOURNAL.rotated"
kill -HUP "$DAEMON_PID"
sleep 0.3
"$CTL" --socket "$SOCK" solve gen:dblp:small --id after-hup >/dev/null
[ -s "$JOURNAL" ] || fail "journal was not re-created after SIGHUP"

# ---------------------------------------------------------------- phase 3
note "phase 3: SIGTERM mid-request drains with verified best-so-far"
"$CTL" --socket "$SOCK" solve "$DIR/hard.el" --time-limit 120 --id victim \
  > "$DIR/victim.json" &
VICTIM=$!
sleep 1
kill -TERM "$DAEMON_PID"
wait $VICTIM; VE=$?
wait "$DAEMON_PID"; DE=$?
[ "$VE" = 6 ] || fail "victim exit $VE (want 6 = interrupted)"
[ "$(json_field "$DIR/victim.json" interrupted)" = "true" ] \
  || fail "victim response not marked interrupted"
[ "$(json_field "$DIR/victim.json" status)" = "interrupted" ] \
  || fail "victim status not interrupted"
[ "$(json_field "$DIR/victim.json" verification)" = "ok" ] \
  || fail "victim best-so-far did not verify"
[ "$(json_field "$DIR/victim.json" omega)" -ge 1 ] \
  || fail "victim carried no best-so-far clique"
[ "$DE" = 0 ] || fail "daemon exit $DE after SIGTERM (want 0)"
[ ! -e "$SOCK" ] || fail "socket not cleaned up after SIGTERM"
[ ! -e "$PIDFILE" ] || fail "pidfile not cleaned up after SIGTERM"
DAEMON_PID=""

# ---------------------------------------------------------------- phase 4
note "phase 4: kill -9, restart, stale-pidfile + journal recovery"
start_daemon || exit 1
"$CTL" --socket "$SOCK" solve gen:dblp:small --id pre-crash >/dev/null
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
[ -e "$PIDFILE" ] || fail "kill -9 should leave the pidfile behind"
[ -e "$SOCK" ] || fail "kill -9 should leave the socket behind"
DAEMON_PID=""

start_daemon || exit 1
"$CTL" --socket "$SOCK" status > "$DIR/s3.json"
[ "$(json_field "$DIR/s3.json" recovered_stale)" = "true" ] \
  || fail "restart did not report stale-instance recovery"
[ "$(json_field "$DIR/s3.json" journal_recovered)" -ge 1 ] \
  || fail "restart did not recover journaled requests"
"$CTL" --socket "$SOCK" solve gen:dblp:small --id post-crash > "$DIR/r4.json" \
  || fail "solve after recovery failed"
[ "$(json_field "$DIR/r4.json" verification)" = "ok" ] \
  || fail "post-recovery solve did not verify"

# ---------------------------------------------------------------- phase 5
if [ "${LAZYMC_SMOKE_FAULTS:-0}" = "1" ]; then
  note "phase 5: request.exec fault injection (faults build)"
  "$CTL" --socket "$SOCK" drain >/dev/null
  wait "$DAEMON_PID"; DAEMON_PID=""

  LAZYMC_FAULTS="request.exec=every:2" start_daemon || exit 1
  OK=0; FAULTED=0
  for i in 1 2 3 4; do
    "$CTL" --socket "$SOCK" solve gen:dblp:small --id "faulty-$i" \
      > "$DIR/f$i.json" 2>/dev/null
    if [ "$(json_field "$DIR/f$i.json" status)" = "ok" ]; then
      [ "$(json_field "$DIR/f$i.json" verification)" = "ok" ] \
        || fail "faulty-$i: surviving request did not verify"
      OK=$((OK + 1))
    elif grep -q '"error_kind"' "$DIR/f$i.json"; then
      FAULTED=$((FAULTED + 1))
    else
      fail "faulty-$i: neither a report nor a structured error"
    fi
  done
  [ "$OK" -ge 1 ] || fail "no request survived fault injection"
  [ "$FAULTED" -ge 1 ] || fail "no request was faulted (site not armed?)"
  "$CTL" --socket "$SOCK" status > "$DIR/s4.json" \
    || fail "daemon unhealthy after fault injection"
  check_reconciled "$DIR/s4.json" "phase 5"
  [ "$(json_field "$DIR/s4.json" failed)" -ge 1 ] \
    || fail "status failed counter is 0 under injection"
fi

# ---------------------------------------------------------------- shutdown
note "shutdown: drain verb"
"$CTL" --socket "$SOCK" drain > "$DIR/drain.json"
[ "$(json_field "$DIR/drain.json" ok)" = "true" ] || fail "drain did not ack"
wait "$DAEMON_PID"; DE=$?
[ "$DE" = 0 ] || fail "daemon exit $DE after drain (want 0)"
DAEMON_PID=""

if [ "$FAILURES" -ne 0 ]; then
  echo "daemon_smoke: $FAILURES failure(s)" >&2
  echo "--- daemon log ---" >&2
  cat "$DIR/daemon.log" >&2
  exit 1
fi
echo "daemon_smoke: all phases passed"
