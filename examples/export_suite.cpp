// Exports the synthetic benchmark suite to disk so the instances can be
// fed to external solvers or inspected:
//
//   $ ./example_export_suite out_dir [tiny|small|medium] [name...]
//
// Writes <out_dir>/<name>.edges (0-based edge list) and
// <out_dir>/<name>.clq (DIMACS) for each instance, plus a MANIFEST.tsv
// with basic statistics.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"

int main(int argc, char** argv) {
  using namespace lazymc;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s out_dir [tiny|small|medium] [name...]\n", argv[0]);
    return 2;
  }
  std::filesystem::path dir = argv[1];
  std::filesystem::create_directories(dir);

  suite::Scale scale = suite::Scale::kSmall;
  int name_start = 2;
  if (argc > 2) {
    std::string s = argv[2];
    if (s == "tiny") {
      scale = suite::Scale::kTiny;
      name_start = 3;
    } else if (s == "small") {
      scale = suite::Scale::kSmall;
      name_start = 3;
    } else if (s == "medium") {
      scale = suite::Scale::kMedium;
      name_start = 3;
    }
  }
  std::vector<std::string> names;
  for (int i = name_start; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = suite::instance_names();

  std::ofstream manifest(dir / "MANIFEST.tsv");
  manifest << "name\tvertices\tedges\tmax_degree\tdegeneracy\tregime\n";
  for (const std::string& name : names) {
    suite::Instance inst = suite::make_instance(name, scale);
    const Graph& g = inst.graph;
    io::write_edge_list_file(g, (dir / (name + ".edges")).string());
    io::write_dimacs_file(g, (dir / (name + ".clq")).string());
    auto core = kcore::coreness(g);
    manifest << name << '\t' << g.num_vertices() << '\t' << g.num_edges()
             << '\t' << g.max_degree() << '\t' << core.degeneracy << '\t'
             << inst.regime << '\n';
    std::printf("wrote %s (%u vertices, %llu edges)\n", name.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
  }
  std::printf("manifest: %s\n", (dir / "MANIFEST.tsv").c_str());
  return 0;
}
