// Social-network scenario: find the largest fully-connected group in a
// community-structured graph and compare how far the cheap heuristics get
// before the systematic search has to take over.
//
// This mirrors the paper's motivating workload (LiveJournal / pokec /
// orkut): strong communities, one of which hides the maximum clique.
#include <cstdio>

#include "graph/generators.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"

int main() {
  using namespace lazymc;

  // 24 communities of 300 users; friendships inside a community appear
  // with 45% probability, plus sparse global noise, plus one tight-knit
  // group of 25 (the "hidden" maximum clique).
  std::printf("building a social network (24 communities x 300 users)...\n");
  Graph g = gen::planted_partition(/*communities=*/24, /*community_size=*/300,
                                   /*p_intra=*/0.45, /*avg_inter=*/6.0,
                                   /*seed=*/7);
  std::vector<VertexId> insiders;
  g = gen::plant_clique(g, /*clique_size=*/25, /*seed=*/8, &insiders);
  std::printf("network: %u users, %llu friendships\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  mc::LazyMCConfig config;
  auto result = mc::lazy_mc(g, config);

  std::printf("\nlargest fully-connected group: %u users\n", result.omega);
  std::printf("heuristics alone reached: degree-based %u, coreness-based "
              "%u\n",
              result.heuristic_degree_omega, result.heuristic_coreness_omega);

  // Was the planted group found?  (The solver may legitimately find a
  // different clique of equal size.)
  std::size_t overlap = 0;
  for (VertexId v : result.clique) {
    for (VertexId p : insiders) {
      if (v == p) {
        ++overlap;
        break;
      }
    }
  }
  std::printf("overlap with the planted 25-group: %zu/25\n", overlap);

  std::printf("\nwork avoidance in action:\n");
  std::printf("  %llu of %u vertices had their neighborhood opened\n",
              static_cast<unsigned long long>(result.search.evaluated),
              g.num_vertices());
  std::printf("  %llu survived filtering and needed a real search\n",
              static_cast<unsigned long long>(result.search.pass_filter3));
  if (!is_clique(g, result.clique)) {
    std::printf("ERROR: result is not a clique!\n");
    return 1;
  }
  return 0;
}
