// Side-by-side comparison of all five solvers on a few structurally
// different graphs — a miniature Table II.  Useful as a template for
// benchmarking on your own graphs (pass file paths as arguments).
#include <cstdio>
#include <vector>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mc/lazymc.hpp"
#include "support/timer.hpp"

using namespace lazymc;

namespace {

struct Entry {
  std::string name;
  Graph graph;
};

template <typename Fn>
void run(const char* label, const Graph& g, Fn&& solve) {
  WallTimer timer;
  auto result = solve();
  double s = timer.elapsed();
  std::printf("  %-10s omega=%4u  %8.3fs%s\n", label, result.omega, s,
              result.timed_out ? "  [timeout]" : "");
  if (!result.timed_out && !is_clique(g, result.clique)) {
    std::printf("  %-10s ERROR: returned set is not a clique!\n", label);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Entry> entries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      entries.push_back({argv[i], io::read_graph_file(argv[i])});
    }
  } else {
    entries.push_back(
        {"power-law + clique",
         gen::plant_clique(gen::rmat(12, 6, 0.57, 0.19, 0.19, 3), 18, 4)});
    entries.push_back(
        {"communities", gen::planted_partition(12, 150, 0.5, 4.0, 5)});
    entries.push_back({"dense gene blocks",
                       gen::gene_blocks(500, 10, 150, 0.85, 7)});
    entries.push_back({"bipartite (omega=2)", gen::bipartite(800, 800, 0.01, 9)});
  }

  const double timeout = 120.0;
  for (auto& e : entries) {
    std::printf("%s: %u vertices, %llu edges\n", e.name.c_str(),
                e.graph.num_vertices(),
                static_cast<unsigned long long>(e.graph.num_edges()));
    run("LazyMC", e.graph, [&] {
      mc::LazyMCConfig cfg;
      cfg.time_limit_seconds = timeout;
      auto r = mc::lazy_mc(e.graph, cfg);
      baselines::BaselineResult b;
      b.clique = r.clique;
      b.omega = r.omega;
      b.timed_out = r.timed_out;
      return b;
    });
    run("PMC", e.graph, [&] {
      baselines::PmcOptions o;
      o.time_limit_seconds = timeout;
      return baselines::pmc_solve(e.graph, o);
    });
    baselines::DomegaOptions dopt;
    dopt.time_limit_seconds = timeout;
    run("dOmega-LS", e.graph, [&] {
      return baselines::domega_solve(e.graph,
                                     baselines::DomegaMode::kLinearScan, dopt);
    });
    run("dOmega-BS", e.graph, [&] {
      return baselines::domega_solve(
          e.graph, baselines::DomegaMode::kBinarySearch, dopt);
    });
    run("MC-BRB", e.graph, [&] {
      baselines::McBrbOptions o;
      o.time_limit_seconds = timeout;
      return baselines::mcbrb_solve(e.graph, o);
    });
    std::printf("\n");
  }
  return 0;
}
