// Quickstart: build a graph, run LazyMC, inspect the result.
//
//   $ ./example_quickstart [path/to/graph.{edges,clq}]
//
// Without an argument a synthetic power-law graph with a planted clique is
// generated, which is also how the benchmark suite substitutes for the
// paper's (non-redistributable) corpus.
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mc/lazymc.hpp"

int main(int argc, char** argv) {
  using namespace lazymc;

  // 1. Obtain a graph: from a file (edge list or DIMACS), or synthetic.
  Graph g;
  if (argc > 1) {
    std::printf("reading %s ...\n", argv[1]);
    g = io::read_graph_file(argv[1]);
  } else {
    std::printf("generating a power-law graph with a planted 20-clique...\n");
    Graph background = gen::rmat(/*scale=*/13, /*edges_per_vertex=*/8,
                                 0.57, 0.19, 0.19, /*seed=*/42);
    g = gen::plant_clique(background, /*clique_size=*/20, /*seed=*/43);
  }
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Solve.  The default configuration matches the paper: density
  //    threshold 0.1, must-subgraph prepopulation, early exits on.
  mc::LazyMCConfig config;
  config.time_limit_seconds = 300.0;
  mc::LazyMCResult result = mc::lazy_mc(g, config);

  // 3. Inspect.
  std::printf("\nomega(G) = %u%s\n", result.omega,
              result.timed_out ? "  (timed out: lower bound only)" : "");
  std::printf("maximum clique:");
  for (VertexId v : result.clique) std::printf(" %u", v);
  std::printf("\n\nhow the solve went:\n");
  std::printf("  degree-heuristic incumbent:    %u\n",
              result.heuristic_degree_omega);
  std::printf("  coreness-heuristic incumbent:  %u\n",
              result.heuristic_coreness_omega);
  std::printf("  degeneracy:                    %u\n", result.degeneracy);
  std::printf("  neighborhoods evaluated:       %llu\n",
              static_cast<unsigned long long>(result.search.evaluated));
  std::printf("  ... surviving all filters:     %llu\n",
              static_cast<unsigned long long>(result.search.pass_filter3));
  std::printf("  solved as MC / as k-VC:        %llu / %llu\n",
              static_cast<unsigned long long>(result.search.solved_mc),
              static_cast<unsigned long long>(result.search.solved_vc));
  std::printf("  total time: %.3fs (heur %.3f | pre %.3f | must %.3f | "
              "core-heur %.3f | systematic %.3f)\n",
              result.phases.total(), result.phases.degree_heuristic,
              result.phases.preprocessing, result.phases.must_subgraph,
              result.phases.coreness_heuristic, result.phases.systematic);

  // 4. Verify (cheap, and a good habit with NP-hard solvers).
  if (!is_clique(g, result.clique)) {
    std::printf("ERROR: result is not a clique!\n");
    return 1;
  }
  std::printf("\nverified: the returned vertex set is a clique.\n");
  return 0;
}
