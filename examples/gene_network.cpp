// Gene-coexpression scenario: dense biological networks are the regime
// where algorithmic choice (k-vertex-cover on the complement) pays off —
// the paper's bio-mouse-gene / bio-human-gene graphs.
//
// We sweep the density threshold phi to show how routing subproblems to
// the k-VC solver changes the work split, while the answer stays exact.
#include <cstdio>

#include "graph/generators.hpp"
#include "mc/lazymc.hpp"

int main() {
  using namespace lazymc;

  std::printf("building a gene-coexpression-like network...\n");
  Graph g = gen::gene_blocks(/*n=*/900, /*blocks=*/14, /*block_size=*/300,
                             /*p_block=*/0.85, /*seed=*/5);
  double density = 2.0 * static_cast<double>(g.num_edges()) /
                   (static_cast<double>(g.num_vertices()) *
                    (g.num_vertices() - 1.0));
  std::printf("network: %u genes, %llu coexpression edges (density %.1f%%)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              100.0 * density);

  VertexId omega = 0;
  for (double phi : {0.1, 0.5, 1.0}) {
    mc::LazyMCConfig config;
    config.density_threshold = phi;
    config.time_limit_seconds = 300.0;
    auto r = mc::lazy_mc(g, config);
    if (omega == 0) omega = r.omega;
    std::printf(
        "\nphi = %.1f  ->  omega = %u  (%.3fs)\n"
        "  subproblems solved as MC:   %llu  (%.3fs)\n"
        "  subproblems solved as k-VC: %llu  (%.3fs)\n",
        phi, r.omega, r.phases.total(),
        static_cast<unsigned long long>(r.search.solved_mc),
        r.search.mc_seconds,
        static_cast<unsigned long long>(r.search.solved_vc),
        r.search.vc_seconds);
    if (r.omega != omega) {
      std::printf("ERROR: threshold changed the answer!\n");
      return 1;
    }
  }
  std::printf(
      "\nthe maximum coexpressed module has %u genes; every phi gives the "
      "same exact answer,\nonly the route (MC vs k-VC) differs.\n",
      omega);
  return 0;
}
