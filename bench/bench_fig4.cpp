// Figure 4: laziness ablation — slowdown when prepopulating *all*
// neighborhoods or *none*, relative to the default (must subgraph only).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

namespace {

double run(const Graph& g, Prepopulate policy, const bench::Options& opt) {
  mc::LazyMCConfig cfg;
  cfg.prepopulate = policy;
  cfg.time_limit_seconds = opt.timeout;
  auto timing = bench::time_runs(opt.repeats, [&] { mc::lazy_mc(g, cfg); });
  return timing.mean_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "Figure 4: slowdown vs prepopulation policy (baseline = must "
      "subgraph)\n\n");
  bench::Table table({"graph", "must[s]", "all (x)", "none (x)"});

  double geo_all = 0, geo_none = 0;
  int count = 0;
  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    double base = run(g, Prepopulate::kMustSubgraph, opt);
    double all = run(g, Prepopulate::kAll, opt);
    double none = run(g, Prepopulate::kNone, opt);
    double sx_all = base > 0 ? all / base : 1.0;
    double sx_none = base > 0 ? none / base : 1.0;
    geo_all += std::log(sx_all);
    geo_none += std::log(sx_none);
    ++count;
    table.add_row({inst.name, bench::fmt(base), bench::fmt(sx_all, 2),
                   bench::fmt(sx_none, 2)});
  }
  table.print();
  if (count > 0) {
    std::printf("\ngeomean slowdown:  all %.3f   none %.3f\n",
                std::exp(geo_all / count), std::exp(geo_none / count));
  }
  std::printf(
      "Pre-populating everything wastes work on never-visited vertices; "
      "full laziness is\nclose to the must-subgraph default (paper: geomean "
      "0.996).\n");
  return 0;
}
