// Table I: characterization of the graph suite — |V|, |E|, max degree,
// degeneracy d, omega, clique-core gap g = d+1-omega, and the incumbent
// sizes found by degree-based and coreness-based heuristic search.
#include <cstdio>

#include "common.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/heuristic.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf("Table I: graph characterization (scale=%s)\n\n",
              opt.scale == suite::Scale::kMedium  ? "medium"
              : opt.scale == suite::Scale::kSmall ? "small"
                                                  : "tiny");
  bench::Table table({"graph", "|V|", "|E|", "Delta", "d", "omega", "g",
                      "w_d", "w_h"});

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    kcore::CoreDecomposition core = kcore::coreness(g);

    // Heuristic incumbents, measured in isolation as the paper reports.
    Incumbent deg_inc;
    mc::degree_based_heuristic(g, deg_inc);
    VertexId w_d = deg_inc.size();

    kcore::VertexOrder order =
        kcore::order_by_coreness_degree(g, core.coreness);
    Incumbent core_inc;
    // Start the coreness heuristic from the degree heuristic's incumbent,
    // matching LazyMC's pipeline (Algorithm 1).
    core_inc.offer(deg_inc.snapshot());
    LazyGraph lazy(g, order, core.coreness, &core_inc.size_atomic());
    mc::coreness_based_heuristic(lazy, core_inc);
    VertexId w_h = core_inc.size();

    mc::LazyMCConfig cfg;
    cfg.time_limit_seconds = opt.timeout;
    auto exact = mc::lazy_mc(g, cfg);

    long long gap = static_cast<long long>(core.degeneracy) + 1 -
                    static_cast<long long>(exact.omega);
    table.add_row({inst.name, std::to_string(g.num_vertices()),
                   std::to_string(g.num_edges()),
                   std::to_string(g.max_degree()),
                   std::to_string(core.degeneracy),
                   std::to_string(exact.omega) +
                       (exact.timed_out ? "*" : ""),
                   std::to_string(gap), std::to_string(w_d),
                   std::to_string(w_h)});
  }
  table.print();
  std::printf(
      "\nw_d / w_h: incumbent after degree-/coreness-based heuristic "
      "search; * = timed out (omega is a lower bound).\n");
  return 0;
}
