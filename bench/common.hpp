// Shared benchmark-harness utilities: suite loading, timing with repeats,
// ASCII table output (with optional JSON export), and a tiny flag parser.
//
// Every bench binary accepts:
//   --scale=tiny|small|medium   suite scale (default: small, so the whole
//                               harness completes in minutes on a laptop;
//                               medium approaches the paper's regime)
//   --graphs=a,b,c              restrict to named instances
//   --repeats=N                 timing repetitions (default 3)
//   --timeout=SECONDS           per-solve timeout (default 60)
//   --threads=N                 worker threads (default: hardware)
//   --json=PATH                 additionally write every printed table to
//                               PATH as machine-readable JSON (schema
//                               "lazymc-bench-tables/1"; numeric-looking
//                               cells become JSON numbers) so figure/table
//                               sweeps feed plotting pipelines directly
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/suite.hpp"

namespace lazymc::bench {

struct Options {
  suite::Scale scale = suite::Scale::kSmall;
  std::vector<std::string> graphs;  // empty = all
  int repeats = 3;
  double timeout = 60.0;
  std::size_t threads = 0;  // 0 = hardware default
  std::string json_path;    // empty = no JSON export
};

/// Parses the common flags; unknown flags abort with a usage message.
/// `defaults` lets sweep-style benches pick a different default scale.
Options parse_options(int argc, char** argv, Options defaults = {});

/// Suite instances selected by the options (applies --graphs and --scale).
std::vector<suite::Instance> load_suite(const Options& options);

/// Mean and standard deviation (as % of mean) of `repeats` runs of fn.
struct Timing {
  double mean_seconds = 0;
  double stddev_pct = 0;
};
Timing time_runs(int repeats, const std::function<void()>& fn);

/// Right-aligned ASCII table.  When JSON export is enabled (--json=PATH,
/// or enable_json_export), every print() also records the table; the
/// accumulated tables are written at process exit.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  /// Named variant: `title` identifies the table in the JSON export.
  Table(std::string title, std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Turns on JSON export of all subsequently printed tables to `path`
/// (written once, at process exit).  parse_options calls this for
/// --json=PATH; benches with custom flag handling may call it directly.
void enable_json_export(const std::string& path);

/// Formats a double with `digits` decimals; "x" for NaN (timeouts).
std::string fmt(double value, int digits = 3);

/// Median of a vector (NaNs excluded); NaN when empty.
double median(std::vector<double> values);

}  // namespace lazymc::bench
