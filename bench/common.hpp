// Shared benchmark-harness utilities: suite loading, timing with repeats,
// ASCII table output, and a tiny flag parser.
//
// Every bench binary accepts:
//   --scale=tiny|small|medium   suite scale (default: small, so the whole
//                               harness completes in minutes on a laptop;
//                               medium approaches the paper's regime)
//   --graphs=a,b,c              restrict to named instances
//   --repeats=N                 timing repetitions (default 3)
//   --timeout=SECONDS           per-solve timeout (default 60)
//   --threads=N                 worker threads (default: hardware)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/suite.hpp"

namespace lazymc::bench {

struct Options {
  suite::Scale scale = suite::Scale::kSmall;
  std::vector<std::string> graphs;  // empty = all
  int repeats = 3;
  double timeout = 60.0;
  std::size_t threads = 0;  // 0 = hardware default
};

/// Parses the common flags; unknown flags abort with a usage message.
/// `defaults` lets sweep-style benches pick a different default scale.
Options parse_options(int argc, char** argv, Options defaults = {});

/// Suite instances selected by the options (applies --graphs and --scale).
std::vector<suite::Instance> load_suite(const Options& options);

/// Mean and standard deviation (as % of mean) of `repeats` runs of fn.
struct Timing {
  double mean_seconds = 0;
  double stddev_pct = 0;
};
Timing time_runs(int repeats, const std::function<void()>& fn);

/// Right-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals; "x" for NaN (timeouts).
std::string fmt(double value, int digits = 3);

/// Median of a vector (NaNs excluded); NaN when empty.
double median(std::vector<double> values);

}  // namespace lazymc::bench
