// Figure 1: characterization of the must/may subgraphs.
//
// must vertices: coreness(v) >  omega - 1   (must be inspected to rule out
//                                            a larger clique)
// may  vertices: coreness(v) >= omega - 1   (may host the maximum clique)
// attached edges: edges incident to may vertices (including endpoints
// outside the may subgraph) — the neighborhoods the representation would
// materialize without filtering.
#include <cstdio>

#include "common.hpp"
#include "kcore/kcore.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "Figure 1: must/may subgraph fractions (computed post-solve, as in "
      "the paper)\n\n");
  bench::Table table({"graph", "gap", "must V%", "may V%", "must E%",
                      "may E%", "attached E%"});

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    mc::LazyMCConfig cfg;
    cfg.time_limit_seconds = opt.timeout;
    auto r = mc::lazy_mc(g, cfg);
    kcore::CoreDecomposition core = kcore::coreness(g);
    VertexId omega = r.omega;

    auto is_must = [&](VertexId v) {
      return omega >= 1 && core.coreness[v] > omega - 1;
    };
    auto is_may = [&](VertexId v) {
      return omega >= 1 && core.coreness[v] >= omega - 1;
    };

    std::uint64_t must_v = 0, may_v = 0;
    std::uint64_t must_e = 0, may_e = 0, attached_e = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      must_v += is_must(v);
      may_v += is_may(v);
      for (VertexId u : g.neighbors(v)) {
        if (u <= v) continue;
        bool mv = is_may(v), mu = is_may(u);
        if (mv || mu) ++attached_e;
        if (mv && mu) ++may_e;
        if (is_must(v) && is_must(u)) ++must_e;
      }
    }
    double nv = static_cast<double>(g.num_vertices());
    double ne = static_cast<double>(g.num_edges());
    long long gap = static_cast<long long>(core.degeneracy) + 1 -
                    static_cast<long long>(omega);
    table.add_row({inst.name, std::to_string(gap),
                   bench::fmt(100.0 * must_v / nv, 2),
                   bench::fmt(100.0 * may_v / nv, 2),
                   bench::fmt(100.0 * must_e / ne, 2),
                   bench::fmt(100.0 * may_e / ne, 2),
                   bench::fmt(100.0 * attached_e / ne, 2)});
  }
  table.print();
  std::printf(
      "\nZero-gap graphs have an empty must subgraph: heuristic search can "
      "certify optimality\nwithout opening any neighborhood (paper Fig. 1a "
      "vs 1b).\n");
  return 0;
}
