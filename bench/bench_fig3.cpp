// Figure 3: break-down of systematic-search work into filtering, MC
// branch-and-bound, and minimum-vertex-cover solving; plus how often each
// solver was chosen.  Graphs with no systematic work found a zero-gap
// maximum clique during heuristic search (as in the paper).
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "Figure 3: systematic-search work split (%%), solver selections\n\n");
  bench::Table table({"graph", "filter%", "MC%", "MVC%", "n(MC)", "n(MVC)",
                      "work[s]"});

  for (auto& inst : bench::load_suite(opt)) {
    mc::LazyMCConfig cfg;
    cfg.time_limit_seconds = opt.timeout;
    auto r = mc::lazy_mc(inst.graph, cfg);
    double work = r.search.work_seconds();
    auto pct = [&](double v) {
      return bench::fmt(work > 0 ? 100.0 * v / work : 0.0, 1);
    };
    table.add_row({inst.name, pct(r.search.filter_seconds),
                   pct(r.search.mc_seconds), pct(r.search.vc_seconds),
                   std::to_string(r.search.solved_mc),
                   std::to_string(r.search.solved_vc), bench::fmt(work)});
  }
  table.print();
  std::printf(
      "\nWith the paper's default density threshold (10%%), vertex cover is "
      "selected for most\nsearched subgraphs; filtering dominates the time "
      "in the majority of graphs.\n");
  return 0;
}
