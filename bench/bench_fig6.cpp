// Figure 6: impact of algorithmic choice — execution time and per-solver
// work as the density threshold phi sweeps from 0.1 to 1.0.  Subgraphs
// with density above phi go to k-VC on the complement; the rest to MC
// branch-and-bound.  Default graphs mirror the paper's talk/orkut/higgs.
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options defaults;
  defaults.scale = suite::Scale::kMedium;  // sweeps need real solver work
  defaults.repeats = 1;
  bench::Options opt = bench::parse_options(argc, argv, defaults);
  if (opt.graphs.empty()) opt.graphs = {"soflow", "higgs", "mouse"};
  std::printf(
      "Figure 6: density-threshold sweep (phi); time normalized to "
      "phi=0.1\n\n");

  const double phis[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    std::printf("-- %s --\n", inst.name.c_str());
    bench::Table table({"phi", "time[s]", "normalized", "MC work[s]",
                        "k-VC work[s]", "n(MC)", "n(MVC)"});
    double base = -1;
    for (double phi : phis) {
      mc::LazyMCConfig cfg;
      cfg.density_threshold = phi;
      cfg.time_limit_seconds = opt.timeout;
      mc::LazyMCResult last;
      auto timing = bench::time_runs(opt.repeats, [&] {
        last = mc::lazy_mc(g, cfg);
      });
      if (base < 0) base = timing.mean_seconds;
      table.add_row({bench::fmt(phi, 1), bench::fmt(timing.mean_seconds),
                     bench::fmt(base > 0 ? timing.mean_seconds / base : 1.0, 3),
                     bench::fmt(last.search.mc_seconds),
                     bench::fmt(last.search.vc_seconds),
                     std::to_string(last.search.solved_mc),
                     std::to_string(last.search.solved_vc)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "phi=1.0 disables k-VC entirely; the best threshold is graph-"
      "dependent (paper Fig. 6).\n");
  return 0;
}
