// Table III: fraction of right-neighborhoods retained after each filtering
// step of NeighborSearch, normalized per thousand vertices.
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "Table III: neighborhoods retained per filtering step "
      "(per thousand vertices)\n\n");
  bench::Table table({"graph", "evaluated", "filter 1", "filter 2",
                      "filter 3"});

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    mc::LazyMCConfig cfg;
    cfg.time_limit_seconds = opt.timeout;
    auto r = mc::lazy_mc(g, cfg);
    double per_k = 1000.0 / static_cast<double>(g.num_vertices());
    table.add_row({inst.name,
                   bench::fmt(static_cast<double>(r.search.evaluated) * per_k),
                   bench::fmt(static_cast<double>(r.search.pass_filter1) * per_k),
                   bench::fmt(static_cast<double>(r.search.pass_filter2) * per_k),
                   bench::fmt(static_cast<double>(r.search.pass_filter3) * per_k)});
  }
  table.print();
  std::printf(
      "\nevaluated: vertices whose right-neighborhood was opened (passed "
      "the coreness pre-filter);\nfilter 1/2/3: survivors of the member-"
      "coreness filter and the two induced-degree filters.\nZero rows = "
      "the heuristic search already certified a zero-gap maximum clique.\n");
  return 0;
}
