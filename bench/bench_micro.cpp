// Microbenchmarks (google-benchmark) for the data-structure substrates:
// hopscotch set probes vs sorted binary search, intersection kernels with
// and without early exits, lazy-graph construction costs, and the
// parallel-runtime schedulers (barriered flat parallel_for vs the sharded
// work-queue drain used by systematic_search).
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "hashset/hopscotch_set.hpp"
#include "intersect/intersect.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

std::vector<VertexId> random_sorted(std::size_t n, std::uint64_t seed,
                                    std::uint64_t universe) {
  Rng rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_HopscotchContains(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = random_sorted(n, 1, n * 8);
  HopscotchSet set(keys.size());
  for (VertexId k : keys) set.insert(k);
  Rng rng(2);
  for (auto _ : state) {
    VertexId probe = static_cast<VertexId>(rng.next_below(n * 8));
    benchmark::DoNotOptimize(set.contains(probe));
  }
}
BENCHMARK(BM_HopscotchContains)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SortedContains(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = random_sorted(n, 1, n * 8);
  SortedLookup look(keys);
  Rng rng(2);
  for (auto _ : state) {
    VertexId probe = static_cast<VertexId>(rng.next_below(n * 8));
    benchmark::DoNotOptimize(look.contains(probe));
  }
}
BENCHMARK(BM_SortedContains)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSorted(benchmark::State& state) {
  auto a = random_sorted(static_cast<std::size_t>(state.range(0)), 3, 100000);
  auto b = random_sorted(static_cast<std::size_t>(state.range(0)), 4, 100000);
  std::vector<VertexId> out(std::min(a.size(), b.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_sorted(a, b, out.data()));
  }
}
BENCHMARK(BM_IntersectSorted)->Arg(256)->Arg(4096);

void BM_IntersectHash(benchmark::State& state) {
  auto a = random_sorted(static_cast<std::size_t>(state.range(0)), 3, 100000);
  auto b = random_sorted(static_cast<std::size_t>(state.range(0)), 4, 100000);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  std::vector<VertexId> out(a.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_hash(std::span<const VertexId>(a), bs, out.data()));
  }
}
BENCHMARK(BM_IntersectHash)->Arg(256)->Arg(4096);

// Early-exit win: B is tiny relative to the threshold, so the exit fires
// after ~|A|-theta misses instead of scanning all of A.
void BM_SizeGtValEarlyExit(benchmark::State& state) {
  auto a = random_sorted(4096, 5, 1 << 20);
  auto b = random_sorted(64, 6, 1 << 20);  // nearly disjoint from a
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_val(std::span<const VertexId>(a), bs, 60));
  }
}
BENCHMARK(BM_SizeGtValEarlyExit);

void BM_SizeGtValNoExit(benchmark::State& state) {
  auto a = random_sorted(4096, 5, 1 << 20);
  auto b = random_sorted(64, 6, 1 << 20);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  for (auto _ : state) {
    // Exact count then compare: the "no early exit" configuration.
    benchmark::DoNotOptimize(
        intersect_size(std::span<const VertexId>(a), bs) > 60u);
  }
}
BENCHMARK(BM_SizeGtValNoExit);

// Second early exit of intersect-size-gt-bool: A is a near-subset of B, so
// the success exit fires after ~theta+1 hits.
void BM_SizeGtBoolSecondExit(benchmark::State& state) {
  auto a = random_sorted(4096, 7, 1 << 18);
  HopscotchSet bs(a.size());
  for (VertexId x : a) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_bool(std::span<const VertexId>(a), bs, 32, true));
  }
}
BENCHMARK(BM_SizeGtBoolSecondExit);

void BM_SizeGtBoolNoSecondExit(benchmark::State& state) {
  auto a = random_sorted(4096, 7, 1 << 18);
  HopscotchSet bs(a.size());
  for (VertexId x : a) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_bool(std::span<const VertexId>(a), bs, 32, false));
  }
}
BENCHMARK(BM_SizeGtBoolNoSecondExit);

void BM_LazyGraphConstructOne(benchmark::State& state) {
  Graph g = gen::rmat(12, 8, 0.57, 0.19, 0.19, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  std::atomic<VertexId> incumbent{0};
  for (auto _ : state) {
    state.PauseTiming();
    LazyGraph lazy(g, order, core.coreness, &incumbent);
    state.ResumeTiming();
    benchmark::DoNotOptimize(lazy.hashed_neighborhood(g.num_vertices() - 1));
  }
}
BENCHMARK(BM_LazyGraphConstructOne);

// --- scheduler shoot-out ---------------------------------------------------
// Replays the shape of the systematic phase on a medium suite graph: one
// simulated probe per vertex, cost growing with the vertex's coreness
// (high-coreness neighborhoods survive more filter rounds).  The baseline
// issues one barriered parallel_for per coreness level, exactly like the
// pre-sharded systematic_search; the contender deals level chunks into a
// WorkQueue and drains it with steal-half balancing and no barriers.
// On >= 8 threads the tail of each level leaves most of the barriered
// pool idle, which is where the queue pulls ahead.

struct SchedWorkload {
  // levels[k] = vertices of coreness k (descending visit priority).
  std::vector<std::vector<VertexId>> levels;
  std::size_t num_vertices = 0;
};

const SchedWorkload& sched_workload() {
  static const SchedWorkload w = [] {
    Graph g = suite::make_instance("sinaweibo", suite::Scale::kMedium).graph;
    auto core = kcore::coreness(g);
    SchedWorkload w;
    w.levels.resize(static_cast<std::size_t>(core.degeneracy) + 1);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      w.levels[core.coreness[v]].push_back(v);
    }
    w.num_vertices = g.num_vertices();
    return w;
  }();
  return w;
}

/// Simulated neighbor_search probe: a short LCG spin whose length scales
/// with the coreness level, so per-level cost is skewed like real work.
inline std::uint64_t simulated_probe(VertexId v, std::size_t level) {
  std::uint64_t acc = v + 1;
  const std::uint64_t iters = 8 * (level + 1);
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

void BM_SchedulerBarrieredParfor(benchmark::State& state) {
  const SchedWorkload& w = sched_workload();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (std::size_t k = w.levels.size(); k-- > 0;) {
      const std::vector<VertexId>& level = w.levels[k];
      if (level.empty()) continue;
      pool.parallel_for(0, level.size(), [&](std::size_t i) {
        benchmark::DoNotOptimize(simulated_probe(level[i], k));
      }, 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.num_vertices));
}
BENCHMARK(BM_SchedulerBarrieredParfor)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerShardedQueue(benchmark::State& state) {
  const SchedWorkload& w = sched_workload();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t participants = pool.num_threads();
  struct Chunk {
    std::uint32_t level;
    std::uint32_t begin;
    std::uint32_t end;
  };
  // Chunking mirrors systematic_search.
  std::vector<Chunk> worklist;
  for (std::size_t k = w.levels.size(); k-- > 0;) {
    const std::size_t size = w.levels[k].size();
    if (size == 0) continue;
    std::size_t chunk = (size + 4 * participants - 1) / (4 * participants);
    chunk = std::clamp<std::size_t>(chunk, 1, 64);
    for (std::size_t b = 0; b < size; b += chunk) {
      worklist.push_back({static_cast<std::uint32_t>(k),
                          static_cast<std::uint32_t>(b),
                          static_cast<std::uint32_t>(std::min(size, b + chunk))});
    }
  }
  for (auto _ : state) {
    WorkQueue<Chunk> queue(participants);
    for (std::size_t p = 0; p < participants; ++p) {
      std::vector<Chunk> batch;
      for (std::size_t i = p; i < worklist.size(); i += participants) {
        batch.push_back(worklist[i]);
      }
      queue.push_batch(p, batch.begin(), batch.end());
    }
    pool.parallel_invoke_all([&](std::size_t p) {
      Chunk c;
      while (queue.pop(p, c)) {
        const std::vector<VertexId>& level = w.levels[c.level];
        for (std::uint32_t i = c.begin; i < c.end; ++i) {
          benchmark::DoNotOptimize(simulated_probe(level[i], c.level));
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.num_vertices));
}
BENCHMARK(BM_SchedulerShardedQueue)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EagerRelabelWholeGraph(benchmark::State& state) {
  Graph g = gen::rmat(12, 8, 0.57, 0.19, 0.19, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcore::relabel(g, order));
  }
}
BENCHMARK(BM_EagerRelabelWholeGraph);

}  // namespace
}  // namespace lazymc

BENCHMARK_MAIN();
