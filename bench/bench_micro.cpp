// Microbenchmarks (google-benchmark) for the data-structure substrates:
// hopscotch set probes vs sorted binary search, intersection kernels with
// and without early exits, and lazy-graph construction costs.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "hashset/hopscotch_set.hpp"
#include "intersect/intersect.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

std::vector<VertexId> random_sorted(std::size_t n, std::uint64_t seed,
                                    std::uint64_t universe) {
  Rng rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_HopscotchContains(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = random_sorted(n, 1, n * 8);
  HopscotchSet set(keys.size());
  for (VertexId k : keys) set.insert(k);
  Rng rng(2);
  for (auto _ : state) {
    VertexId probe = static_cast<VertexId>(rng.next_below(n * 8));
    benchmark::DoNotOptimize(set.contains(probe));
  }
}
BENCHMARK(BM_HopscotchContains)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SortedContains(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = random_sorted(n, 1, n * 8);
  SortedLookup look(keys);
  Rng rng(2);
  for (auto _ : state) {
    VertexId probe = static_cast<VertexId>(rng.next_below(n * 8));
    benchmark::DoNotOptimize(look.contains(probe));
  }
}
BENCHMARK(BM_SortedContains)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSorted(benchmark::State& state) {
  auto a = random_sorted(static_cast<std::size_t>(state.range(0)), 3, 100000);
  auto b = random_sorted(static_cast<std::size_t>(state.range(0)), 4, 100000);
  std::vector<VertexId> out(std::min(a.size(), b.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_sorted(a, b, out.data()));
  }
}
BENCHMARK(BM_IntersectSorted)->Arg(256)->Arg(4096);

void BM_IntersectHash(benchmark::State& state) {
  auto a = random_sorted(static_cast<std::size_t>(state.range(0)), 3, 100000);
  auto b = random_sorted(static_cast<std::size_t>(state.range(0)), 4, 100000);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  std::vector<VertexId> out(a.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_hash(std::span<const VertexId>(a), bs, out.data()));
  }
}
BENCHMARK(BM_IntersectHash)->Arg(256)->Arg(4096);

// Early-exit win: B is tiny relative to the threshold, so the exit fires
// after ~|A|-theta misses instead of scanning all of A.
void BM_SizeGtValEarlyExit(benchmark::State& state) {
  auto a = random_sorted(4096, 5, 1 << 20);
  auto b = random_sorted(64, 6, 1 << 20);  // nearly disjoint from a
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_val(std::span<const VertexId>(a), bs, 60));
  }
}
BENCHMARK(BM_SizeGtValEarlyExit);

void BM_SizeGtValNoExit(benchmark::State& state) {
  auto a = random_sorted(4096, 5, 1 << 20);
  auto b = random_sorted(64, 6, 1 << 20);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  for (auto _ : state) {
    // Exact count then compare: the "no early exit" configuration.
    benchmark::DoNotOptimize(
        intersect_size(std::span<const VertexId>(a), bs) > 60u);
  }
}
BENCHMARK(BM_SizeGtValNoExit);

// Second early exit of intersect-size-gt-bool: A is a near-subset of B, so
// the success exit fires after ~theta+1 hits.
void BM_SizeGtBoolSecondExit(benchmark::State& state) {
  auto a = random_sorted(4096, 7, 1 << 18);
  HopscotchSet bs(a.size());
  for (VertexId x : a) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_bool(std::span<const VertexId>(a), bs, 32, true));
  }
}
BENCHMARK(BM_SizeGtBoolSecondExit);

void BM_SizeGtBoolNoSecondExit(benchmark::State& state) {
  auto a = random_sorted(4096, 7, 1 << 18);
  HopscotchSet bs(a.size());
  for (VertexId x : a) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_bool(std::span<const VertexId>(a), bs, 32, false));
  }
}
BENCHMARK(BM_SizeGtBoolNoSecondExit);

void BM_LazyGraphConstructOne(benchmark::State& state) {
  Graph g = gen::rmat(12, 8, 0.57, 0.19, 0.19, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  std::atomic<VertexId> incumbent{0};
  for (auto _ : state) {
    state.PauseTiming();
    LazyGraph lazy(g, order, core.coreness, &incumbent);
    state.ResumeTiming();
    benchmark::DoNotOptimize(lazy.hashed_neighborhood(g.num_vertices() - 1));
  }
}
BENCHMARK(BM_LazyGraphConstructOne);

void BM_EagerRelabelWholeGraph(benchmark::State& state) {
  Graph g = gen::rmat(12, 8, 0.57, 0.19, 0.19, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcore::relabel(g, order));
  }
}
BENCHMARK(BM_EagerRelabelWholeGraph);

}  // namespace
}  // namespace lazymc

BENCHMARK_MAIN();
