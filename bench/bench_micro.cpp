// Microbenchmarks (google-benchmark) for the data-structure substrates:
// hopscotch set probes vs sorted binary search, intersection kernels with
// and without early exits, lazy-graph construction costs, and the
// parallel-runtime schedulers (barriered flat parallel_for vs the sharded
// work-queue drain used by systematic_search).
//
// Beyond the google-benchmark registrations, `--shootout` runs the
// intersection-kernel shoot-out (scalar hash vs prefetched batch hash vs
// word-parallel bitset vs sorted merge, across densities and θ) as an
// ASCII table, exported to JSON with `--json=PATH` like every other bench
// binary (schema "lazymc-bench-tables/1").
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "hashset/hopscotch_set.hpp"
#include "intersect/hybrid_row.hpp"
#include "intersect/intersect.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/incumbent.hpp"
#include "mc/lazymc.hpp"
#include "mc/neighbor_search.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/simd.hpp"
#include "support/timer.hpp"

namespace lazymc {
namespace {

std::vector<VertexId> random_sorted(std::size_t n, std::uint64_t seed,
                                    std::uint64_t universe) {
  Rng rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_HopscotchContains(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = random_sorted(n, 1, n * 8);
  HopscotchSet set(keys.size());
  for (VertexId k : keys) set.insert(k);
  Rng rng(2);
  for (auto _ : state) {
    VertexId probe = static_cast<VertexId>(rng.next_below(n * 8));
    benchmark::DoNotOptimize(set.contains(probe));
  }
}
BENCHMARK(BM_HopscotchContains)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SortedContains(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = random_sorted(n, 1, n * 8);
  SortedLookup look(keys);
  Rng rng(2);
  for (auto _ : state) {
    VertexId probe = static_cast<VertexId>(rng.next_below(n * 8));
    benchmark::DoNotOptimize(look.contains(probe));
  }
}
BENCHMARK(BM_SortedContains)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSorted(benchmark::State& state) {
  auto a = random_sorted(static_cast<std::size_t>(state.range(0)), 3, 100000);
  auto b = random_sorted(static_cast<std::size_t>(state.range(0)), 4, 100000);
  std::vector<VertexId> out(std::min(a.size(), b.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_sorted(a, b, out.data()));
  }
}
BENCHMARK(BM_IntersectSorted)->Arg(256)->Arg(4096);

void BM_IntersectHash(benchmark::State& state) {
  auto a = random_sorted(static_cast<std::size_t>(state.range(0)), 3, 100000);
  auto b = random_sorted(static_cast<std::size_t>(state.range(0)), 4, 100000);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  std::vector<VertexId> out(a.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_hash(std::span<const VertexId>(a), bs, out.data()));
  }
}
BENCHMARK(BM_IntersectHash)->Arg(256)->Arg(4096);

// Early-exit win: B is tiny relative to the threshold, so the exit fires
// after ~|A|-theta misses instead of scanning all of A.
void BM_SizeGtValEarlyExit(benchmark::State& state) {
  auto a = random_sorted(4096, 5, 1 << 20);
  auto b = random_sorted(64, 6, 1 << 20);  // nearly disjoint from a
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_val(std::span<const VertexId>(a), bs, 60));
  }
}
BENCHMARK(BM_SizeGtValEarlyExit);

void BM_SizeGtValNoExit(benchmark::State& state) {
  auto a = random_sorted(4096, 5, 1 << 20);
  auto b = random_sorted(64, 6, 1 << 20);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  for (auto _ : state) {
    // Exact count then compare: the "no early exit" configuration.
    benchmark::DoNotOptimize(
        intersect_size(std::span<const VertexId>(a), bs) > 60u);
  }
}
BENCHMARK(BM_SizeGtValNoExit);

// Second early exit of intersect-size-gt-bool: A is a near-subset of B, so
// the success exit fires after ~theta+1 hits.
void BM_SizeGtBoolSecondExit(benchmark::State& state) {
  auto a = random_sorted(4096, 7, 1 << 18);
  HopscotchSet bs(a.size());
  for (VertexId x : a) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_bool(std::span<const VertexId>(a), bs, 32, true));
  }
}
BENCHMARK(BM_SizeGtBoolSecondExit);

void BM_SizeGtBoolNoSecondExit(benchmark::State& state) {
  auto a = random_sorted(4096, 7, 1 << 18);
  HopscotchSet bs(a.size());
  for (VertexId x : a) bs.insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intersect_size_gt_bool(std::span<const VertexId>(a), bs, 32, false));
  }
}
BENCHMARK(BM_SizeGtBoolNoSecondExit);

void BM_LazyGraphConstructOne(benchmark::State& state) {
  Graph g = gen::rmat(12, 8, 0.57, 0.19, 0.19, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  std::atomic<VertexId> incumbent{0};
  for (auto _ : state) {
    state.PauseTiming();
    LazyGraph lazy(g, order, core.coreness, &incumbent);
    state.ResumeTiming();
    benchmark::DoNotOptimize(lazy.hashed_neighborhood(g.num_vertices() - 1));
  }
}
BENCHMARK(BM_LazyGraphConstructOne);

// --- scheduler shoot-out ---------------------------------------------------
// Replays the shape of the systematic phase on a medium suite graph: one
// simulated probe per vertex, cost growing with the vertex's coreness
// (high-coreness neighborhoods survive more filter rounds).  The baseline
// issues one barriered parallel_for per coreness level, exactly like the
// pre-sharded systematic_search; the contender deals level chunks into a
// WorkQueue and drains it with steal-half balancing and no barriers.
// On >= 8 threads the tail of each level leaves most of the barriered
// pool idle, which is where the queue pulls ahead.

struct SchedWorkload {
  // levels[k] = vertices of coreness k (descending visit priority).
  std::vector<std::vector<VertexId>> levels;
  std::size_t num_vertices = 0;
};

const SchedWorkload& sched_workload() {
  static const SchedWorkload w = [] {
    Graph g = suite::make_instance("sinaweibo", suite::Scale::kMedium).graph;
    auto core = kcore::coreness(g);
    SchedWorkload wl;
    wl.levels.resize(static_cast<std::size_t>(core.degeneracy) + 1);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      wl.levels[core.coreness[v]].push_back(v);
    }
    wl.num_vertices = g.num_vertices();
    return wl;
  }();
  return w;
}

/// Simulated neighbor_search probe: a short LCG spin whose length scales
/// with the coreness level, so per-level cost is skewed like real work.
inline std::uint64_t simulated_probe(VertexId v, std::size_t level) {
  std::uint64_t acc = v + 1;
  const std::uint64_t iters = 8 * (level + 1);
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

void BM_SchedulerBarrieredParfor(benchmark::State& state) {
  const SchedWorkload& w = sched_workload();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (std::size_t k = w.levels.size(); k-- > 0;) {
      const std::vector<VertexId>& level = w.levels[k];
      if (level.empty()) continue;
      pool.parallel_for(0, level.size(), [&](std::size_t i) {
        benchmark::DoNotOptimize(simulated_probe(level[i], k));
      }, 1);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.num_vertices));
}
BENCHMARK(BM_SchedulerBarrieredParfor)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerShardedQueue(benchmark::State& state) {
  const SchedWorkload& w = sched_workload();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t participants = pool.num_threads();
  struct Chunk {
    std::uint32_t level;
    std::uint32_t begin;
    std::uint32_t end;
  };
  // Chunking mirrors systematic_search.
  std::vector<Chunk> worklist;
  for (std::size_t k = w.levels.size(); k-- > 0;) {
    const std::size_t size = w.levels[k].size();
    if (size == 0) continue;
    std::size_t chunk = (size + 4 * participants - 1) / (4 * participants);
    chunk = std::clamp<std::size_t>(chunk, 1, 64);
    for (std::size_t b = 0; b < size; b += chunk) {
      worklist.push_back({static_cast<std::uint32_t>(k),
                          static_cast<std::uint32_t>(b),
                          static_cast<std::uint32_t>(std::min(size, b + chunk))});
    }
  }
  for (auto _ : state) {
    WorkQueue<Chunk> queue(participants);
    for (std::size_t p = 0; p < participants; ++p) {
      std::vector<Chunk> batch;
      for (std::size_t i = p; i < worklist.size(); i += participants) {
        batch.push_back(worklist[i]);
      }
      queue.push_batch(p, batch.begin(), batch.end());
    }
    pool.parallel_invoke_all([&](std::size_t p) {
      Chunk c;
      while (queue.pop(p, c)) {
        const std::vector<VertexId>& level = w.levels[c.level];
        for (std::uint32_t i = c.begin; i < c.end; ++i) {
          benchmark::DoNotOptimize(simulated_probe(level[i], c.level));
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.num_vertices));
}
BENCHMARK(BM_SchedulerShardedQueue)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EagerRelabelWholeGraph(benchmark::State& state) {
  Graph g = gen::rmat(12, 8, 0.57, 0.19, 0.19, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcore::relabel(g, order));
  }
}
BENCHMARK(BM_EagerRelabelWholeGraph);

// --- prefetched batch probe vs serial contains -----------------------------
// Large miss-heavy set: serial probing pays two dependent cache-line
// loads per element; the batched kernel overlaps them.

void BM_HashProbeSerial(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto b = random_sorted(n, 41, n * 8);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  auto a = random_sorted(16384, 42, n * 8);
  for (auto _ : state) {
    // theta < 0: the miss budget never trips, so the whole array probes.
    benchmark::DoNotOptimize(
        intersect_size_gt_val(std::span<const VertexId>(a), bs, -1));
  }
}
BENCHMARK(BM_HashProbeSerial)->Arg(16384)->Arg(262144)->Arg(1 << 21);

void BM_HashProbeBatched(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto b = random_sorted(n, 41, n * 8);
  HopscotchSet bs(b.size());
  for (VertexId x : b) bs.insert(x);
  auto a = random_sorted(16384, 42, n * 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_size_gt_val_prefetch(
        std::span<const VertexId>(a), bs, -1));
  }
}
BENCHMARK(BM_HashProbeBatched)->Arg(16384)->Arg(262144)->Arg(1 << 21);

// --- word-parallel bitset kernel vs scalar hash probing --------------------

void BM_IntersectBitsetWord(benchmark::State& state) {
  const VertexId zone = 4096;
  auto a = random_sorted(2048, 43, zone);
  auto b = random_sorted(2048, 44, zone);
  SparseWordSet aw;
  aw.build({a.data(), a.size()}, 0);
  std::vector<std::uint64_t> words((zone + 63) / 64, 0);
  for (VertexId v : b) words[v >> 6] |= 1ULL << (v & 63);
  BitsetRow row{words.data(), 0, zone, static_cast<std::uint32_t>(b.size())};
  // theta must stay below |A| or the size guard short-circuits the kernel;
  // 512 mirrors the shoot-out's dense scenarios (exits mid-scan).
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_size_gt_val(aw, row, 512));
  }
}
BENCHMARK(BM_IntersectBitsetWord);

}  // namespace

// --- intersection-kernel shoot-out -----------------------------------------
// One table row per (density, theta) scenario; each cell is ns/op for the
// kernel answering the same intersect-size-gt-bool question.  Dense
// neighborhoods (A and B large fractions of a small zone) are where the
// word-parallel bitset kernel wins; sparse miss-heavy probing into a
// large hash set is where the prefetched batch probe wins.

namespace {

double time_ns_per_op(const std::function<void()>& fn) {
  // Calibrate to ~2ms per measurement, then take the best of 3.
  std::size_t iters = 1;
  for (;;) {
    WallTimer t;
    for (std::size_t i = 0; i < iters; ++i) fn();
    if (t.elapsed() > 2e-3 || iters > (1u << 24)) break;
    iters *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, t.elapsed() / static_cast<double>(iters));
  }
  return best * 1e9;
}

/// Times one word-parallel kernel call under each supported SIMD tier
/// (forcing and restoring the global dispatch); unsupported tiers stay 0.
void time_word_kernel_tiers(const SparseWordSet& aw, const BitsetRow& row,
                            std::int64_t theta, bool expected,
                            const char* scenario,
                            double (&tier_ns)[simd::kNumTiers]) {
  for (std::size_t t = 0; t < simd::kNumTiers; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    if (!simd::tier_supported(tier)) continue;
    if (!simd::force_tier(tier)) continue;
    if (intersect_size_gt_bool(aw, row, theta) != expected) {
      std::fprintf(stderr, "shootout: %s tier disagreement on %s\n",
                   simd::tier_name(tier), scenario);
      std::exit(1);
    }
    tier_ns[t] = time_ns_per_op([&] {
      benchmark::DoNotOptimize(intersect_size_gt_bool(aw, row, theta));
    });
  }
  simd::reset_tier();
}

void run_intersect_shootout() {
  struct Scenario {
    const char* name;
    VertexId universe;  // zone size / id range
    std::size_t na, nb;
    std::int64_t theta;
  };
  // Densities are |B|/universe; theta sweeps failure-exit-heavy (high),
  // mid, and success-exit-heavy (low) regimes.  The sparse scenarios size
  // the hash set well past L2 (~1M elements -> 2M slots -> 16 MB of
  // buckets + bitmasks) so probes are genuinely memory-bound: that is the
  // regime the prefetched batch kernel targets, while the dense scenarios
  // (small zone, high hit rate) are the bitset kernel's home turf.
  const Scenario scenarios[] = {
      {"dense-90", 4096, 2048, 3686, 512},
      {"dense-90-hiT", 4096, 2048, 3686, 1843},
      {"dense-50", 4096, 2048, 2048, 512},
      {"dense-50-hiT", 4096, 2048, 2048, 1024},
      {"mid-10", 16384, 2048, 1638, 64},
      {"sparse-hit", 1 << 23, 16384, 1 << 21, 3400},
      {"sparse-miss", 1 << 23, 16384, 1 << 21, 4096},
  };
  bench::Table table("intersect-shootout",
                     {"scenario", "|A|", "|B|", "universe", "theta", "result",
                      "hash-serial ns", "hash-batched ns", "bitset-scalar ns",
                      "bitset-avx2 ns", "bitset-avx512 ns", "hyb-array ns",
                      "hyb-run ns", "merge ns", "bitset/hash", "avx2/scalar",
                      "avx512/scalar", "batch/serial"});
  for (const Scenario& s : scenarios) {
    auto a = random_sorted(s.na, 91, s.universe);
    auto b = random_sorted(s.nb, 92, s.universe);
    HopscotchSet hs(b.size());
    for (VertexId x : b) hs.insert(x);
    SparseWordSet aw;
    aw.build({a.data(), a.size()}, 0);
    std::vector<std::uint64_t> words(
        (static_cast<std::size_t>(s.universe) + 63) / 64, 0);
    for (VertexId v : b) words[v >> 6] |= 1ULL << (v & 63);
    BitsetRow row{words.data(), 0, s.universe,
                  static_cast<std::uint32_t>(b.size())};
    std::span<const VertexId> as(a);

    // Hybrid-row containers over the same B set (zone coords == ids: the
    // scenarios put zone_begin at 0), answering the identical question.
    std::vector<std::uint64_t> array_payload((b.size() + 1) / 2 + 1, 0);
    std::memcpy(array_payload.data(), b.data(), b.size() * 4);
    const HybridRow hyb_array{array_payload.data(), 0, s.universe,
                              static_cast<std::uint32_t>(b.size()),
                              static_cast<std::uint32_t>(b.size()),
                              RowContainer::kArray};
    std::vector<std::uint32_t> run_pairs;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (i == 0 || b[i] != b[i - 1] + 1) {
        run_pairs.push_back(b[i]);
        run_pairs.push_back(1);
      } else {
        ++run_pairs.back();
      }
    }
    std::vector<std::uint64_t> run_payload(run_pairs.size() / 2 + 1, 0);
    std::memcpy(run_payload.data(), run_pairs.data(), run_pairs.size() * 4);
    const HybridRow hyb_run{run_payload.data(), 0, s.universe,
                            static_cast<std::uint32_t>(b.size()),
                            static_cast<std::uint32_t>(run_pairs.size() / 2),
                            RowContainer::kRun};

    const bool expected = intersect_size_gt_bool(as, hs, s.theta);
    if (intersect_size_gt_bool_prefetch(as, hs, s.theta) != expected ||
        intersect_size_gt_bool(aw, row, s.theta) != expected ||
        intersect_size_gt_bool(aw, hyb_array, s.theta) != expected ||
        intersect_size_gt_bool(aw, hyb_run, s.theta) != expected ||
        intersect_sorted_size_gt_bool(as, b, s.theta) != expected) {
      std::fprintf(stderr, "shootout: kernel disagreement on %s\n", s.name);
      std::exit(1);
    }

    double hash_ns = time_ns_per_op([&] {
      benchmark::DoNotOptimize(intersect_size_gt_bool(as, hs, s.theta));
    });
    double batch_ns = time_ns_per_op([&] {
      benchmark::DoNotOptimize(
          intersect_size_gt_bool_prefetch(as, hs, s.theta));
    });
    // The word-parallel kernel once per compiled-and-supported SIMD tier
    // (forced dispatch, identical answers re-verified per tier).
    double tier_ns[simd::kNumTiers] = {0, 0, 0};
    time_word_kernel_tiers(aw, row, s.theta, expected, s.name, tier_ns);
    const double scalar_ns = tier_ns[0];
    const double avx2_ns = tier_ns[1];
    const double avx512_ns = tier_ns[2];
    double best_bitset_ns = scalar_ns;
    for (double t : tier_ns) {
      if (t > 0) best_bitset_ns = std::min(best_bitset_ns, t);
    }
    double hyb_array_ns = time_ns_per_op([&] {
      benchmark::DoNotOptimize(intersect_size_gt_bool(aw, hyb_array, s.theta));
    });
    double hyb_run_ns = time_ns_per_op([&] {
      benchmark::DoNotOptimize(intersect_size_gt_bool(aw, hyb_run, s.theta));
    });
    double merge_ns = time_ns_per_op([&] {
      benchmark::DoNotOptimize(intersect_sorted_size_gt_bool(as, b, s.theta));
    });
    table.add_row(
        {s.name, std::to_string(a.size()), std::to_string(b.size()),
         std::to_string(s.universe), std::to_string(s.theta),
         expected ? "true" : "false", bench::fmt(hash_ns, 1),
         bench::fmt(batch_ns, 1), bench::fmt(scalar_ns, 1),
         avx2_ns > 0 ? bench::fmt(avx2_ns, 1) : "n/a",
         avx512_ns > 0 ? bench::fmt(avx512_ns, 1) : "n/a",
         bench::fmt(hyb_array_ns, 1), bench::fmt(hyb_run_ns, 1),
         bench::fmt(merge_ns, 1), bench::fmt(hash_ns / best_bitset_ns, 2),
         avx2_ns > 0 ? bench::fmt(scalar_ns / avx2_ns, 2) : "n/a",
         avx512_ns > 0 ? bench::fmt(scalar_ns / avx512_ns, 2) : "n/a",
         bench::fmt(hash_ns / batch_ns, 2)});
  }
  table.print();
}

// --- hybrid-row starved-budget shoot-out -----------------------------------
// The compressed-row acceptance scenario: a dense-zone graph whose rows
// compress, solved under a row budget that pure bitset rows exhaust
// midway while the hybrid containers fit whole.  The instance is a union
// of dense communities of pairwise-distinct sizes: distinct sizes give
// each community its own coreness band, so the (coreness, degree)
// relabelling keeps every community contiguous in zone coordinates and
// each neighborhood collapses to a handful of run spans — word-parallel
// kernels at a fraction of the full-stride bitset bytes.  One row per
// configuration; the speedup column is wall time relative to the starved
// pure-bitset run (whose unbuilt rows fall back to the hash kernels).

// Dense communities of pairwise-distinct sizes plus one high-degree
// "anchor" clique.  Distinct sizes give each community its own coreness
// band, so the (coreness, degree) relabelling keeps each community
// contiguous in zone coordinates and its rows collapse to run spans.
// The anchor clique (larger than any community's own clique number, and
// lifted above every community degree by random halo edges so the degree
// heuristic finds it first) pins the incumbent high enough that every
// community root grinds through the quadratic membership filters and is
// then colour-pruned — the rep-sensitive filter kernels dominate the
// solve instead of the rep-independent dense branch-and-bound.
Graph make_clustered_zone_graph(VertexId communities, VertexId min_size,
                                VertexId step, double p_intra,
                                VertexId anchor, VertexId halo,
                                std::uint64_t seed) {
  GraphBuilder b;
  Rng rng(seed);
  VertexId base = 0;
  for (VertexId c = 0; c < communities; ++c) {
    const VertexId size = min_size + c * step;
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) {
        if (rng.next_double() < p_intra) b.add_edge(base + i, base + j);
      }
    }
    base += size;
  }
  const VertexId community_vertices = base;
  for (VertexId i = 0; i < anchor; ++i) {
    for (VertexId j = i + 1; j < anchor; ++j) {
      b.add_edge(community_vertices + i, community_vertices + j);
    }
    for (VertexId h = 0; h < halo; ++h) {
      b.add_edge(community_vertices + i,
                 static_cast<VertexId>(rng.next_below(community_vertices)));
    }
  }
  return b.build();
}

struct StarveRun {
  double seconds = 1e300;
  double filter_seconds = 0;
  double mc_seconds = 0;
  double heur_seconds = 0;
  double sys_seconds = 0;
  VertexId omega = 0;
  std::size_t built = 0;
  std::size_t bytes = 0;
  std::size_t zone = 0;
  std::uint64_t word_kernels = 0;
  LazyGraph::Stats stats;
};

StarveRun run_starve_config(const Graph& g, NeighborhoodRep rep,
                            std::size_t budget_bytes) {
  StarveRun best;
  for (int repeat = 0; repeat < 3; ++repeat) {
    mc::LazyMCConfig cfg;
    cfg.neighborhood_rep = rep;
    cfg.bitset_budget_bytes = budget_bytes;
    WallTimer timer;
    const auto r = mc::lazy_mc(g, cfg);
    const double sec = timer.elapsed();
    if (repeat == 0) best.stats = r.lazy_graph;
    if (sec < best.seconds) {
      best.seconds = sec;
      best.filter_seconds = r.search.filter_seconds;
      best.mc_seconds = r.search.mc_seconds;
      best.heur_seconds = r.phases.degree_heuristic + r.phases.coreness_heuristic;
      best.sys_seconds = r.phases.systematic;
      best.omega = r.omega;
      best.built = r.lazy_graph.bitset_built;
      best.bytes = r.lazy_graph.bitset_bytes;
      best.zone = r.lazy_graph.zone_size;
      best.word_kernels = r.search.kernel_bitset_word +
                          r.search.kernel_array_gallop +
                          r.search.kernel_run_and;
    }
  }
  return best;
}

void run_hybrid_starve_shootout() {
  VertexId communities = 30, min_size = 272, step = 4, anchor = 180,
           halo = 220;
  double p_intra = 0.94;
  if (const char* spec = std::getenv("LAZYMC_STARVE_SPEC")) {
    // Tuning hook: "communities:min_size:step:p_intra:anchor:halo".
    unsigned c = 0, m = 0, s = 0, a = 0, h = 0;
    double p = 0;
    if (std::sscanf(spec, "%u:%u:%u:%lf:%u:%u", &c, &m, &s, &p, &a, &h) == 6) {
      communities = c;
      min_size = m;
      step = s;
      p_intra = p;
      anchor = a;
      halo = h;
    }
  }
  const Graph g = make_clustered_zone_graph(communities, min_size, step,
                                            p_intra, anchor, halo, 4242);
  set_num_threads(1);
  // Unconstrained probes size the starved budget: hybrid fits with 50%
  // headroom, pure bitset rows exhaust after a fraction of the zone.
  const StarveRun uh =
      run_starve_config(g, NeighborhoodRep::kHybrid, std::size_t{1} << 30);
  const std::size_t bookkeeping =
      uh.zone * (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  const std::size_t budget = bookkeeping + uh.bytes + uh.bytes / 2 + 8192;

  const StarveRun runs[] = {
      run_starve_config(g, NeighborhoodRep::kHash, 0),
      run_starve_config(g, NeighborhoodRep::kBitset, std::size_t{1} << 30),
      run_starve_config(g, NeighborhoodRep::kBitset, budget),
      run_starve_config(g, NeighborhoodRep::kHybrid, budget),
  };
  const char* names[] = {"hash", "bitset-full", "bitset-starved",
                         "hybrid-starved"};
  for (const StarveRun& r : runs) {
    if (r.omega != runs[0].omega) {
      std::fprintf(stderr, "hybrid-starve: omega diverged\n");
      std::exit(1);
    }
  }
  const double baseline = runs[2].seconds;  // starved bitset = hash fallback
  bench::Table table("hybrid-starve",
                     {"config", "omega", "zone", "rows built", "row bytes",
                      "word kernels", "heur s", "sys s", "filter s", "mc s",
                      "seconds", "speedup vs starved-bitset"});
  for (std::size_t i = 0; i < 4; ++i) {
    const StarveRun& r = runs[i];
    table.add_row({names[i], std::to_string(r.omega), std::to_string(r.zone),
                   std::to_string(r.built), std::to_string(r.bytes),
                   std::to_string(r.word_kernels), bench::fmt(r.heur_seconds),
                   bench::fmt(r.sys_seconds), bench::fmt(r.filter_seconds),
                   bench::fmt(r.mc_seconds), bench::fmt(r.seconds),
                   bench::fmt(baseline / r.seconds, 2)});
  }
  table.print();

  const LazyGraph::Stats& hs = runs[3].stats;
  bench::Table containers("hybrid-containers",
                          {"container", "rows", "bytes"});
  containers.add_row({"array", std::to_string(hs.hybrid_rows_array),
                      std::to_string(hs.hybrid_array_bytes)});
  containers.add_row({"bitset", std::to_string(hs.hybrid_rows_bitset),
                      std::to_string(hs.hybrid_bitset_bytes)});
  containers.add_row({"run", std::to_string(hs.hybrid_rows_run),
                      std::to_string(hs.hybrid_run_bytes)});
  containers.print();
  set_num_threads(0);
}

// --- subproblem-splitting shoot-out ----------------------------------------
// Replays the zero-gap tail of the systematic phase: a dense G(160, 0.8)
// instance whose incumbent is seeded far below omega, so the first
// surviving probe carries a giant B&B subproblem.  With splitting off
// that subproblem pins one worker while the rest of the pool drains the
// cheap probes and idles; with splitting on its root branches become
// stealable tasks on the same queue.  One table row per thread count:
// wall seconds off vs on, the speedup, and the task/retirement counters
// (omegas are verified to agree).

struct SplitRun {
  double seconds = 0;
  VertexId omega = 0;
  std::uint64_t split_tasks = 0;
  std::uint64_t retired_subtasks = 0;
};

SplitRun run_split_config(const Graph& g, mc::SplitMode mode,
                          std::size_t threads) {
  set_num_threads(threads);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  SplitRun best;
  best.seconds = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    Incumbent incumbent;
    incumbent.offer(std::vector<VertexId>{0});  // far below omega
    LazyGraph lazy(g, order, core.coreness, &incumbent.size_atomic());
    mc::SearchStats stats;
    mc::NeighborSearchOptions opt;
    opt.split_mode = mode;
    opt.split_min_cands = 64;
    opt.density_threshold = 1.1;  // keep the giant subproblem on the B&B
    WallTimer timer;
    mc::systematic_search(lazy, incumbent, opt, stats);
    const double sec = timer.elapsed();
    if (sec < best.seconds) {
      // Keep the whole record from the fastest rep so every column of a
      // table row describes the same run.
      best.seconds = sec;
      best.omega = incumbent.size();
      best.split_tasks = stats.split_tasks.load();
      best.retired_subtasks = stats.retired_subtasks.load();
    }
  }
  return best;
}

void run_split_shootout() {
  const Graph g = gen::gnp(160, 0.8, 4242);
  bench::Table table("split-shootout",
                     {"threads", "split-off s", "split-on s", "off/on",
                      "omega", "tasks", "retired"});
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    SplitRun off = run_split_config(g, mc::SplitMode::kOff, threads);
    SplitRun on = run_split_config(g, mc::SplitMode::kOn, threads);
    if (off.omega != on.omega) {
      std::fprintf(stderr,
                   "split-shootout: omega diverged at %zu threads "
                   "(off=%u on=%u)\n",
                   threads, off.omega, on.omega);
      std::exit(1);
    }
    table.add_row({std::to_string(threads), bench::fmt(off.seconds),
                   bench::fmt(on.seconds),
                   bench::fmt(off.seconds / on.seconds, 2),
                   std::to_string(on.omega), std::to_string(on.split_tasks),
                   std::to_string(on.retired_subtasks)});
  }
  table.print();
  set_num_threads(0);
}

}  // namespace
}  // namespace lazymc

// Custom main: strips the repo-convention flags (--shootout,
// --split-shootout, --json=PATH) before handing the rest to
// google-benchmark, whose BENCHMARK_MAIN would reject them as
// unrecognized.
int main(int argc, char** argv) {
  bool shootout = false;
  bool split_shootout = false;
  bool hybrid_starve = false;
  std::vector<char*> keep;
  keep.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shootout") {
      shootout = true;
    } else if (arg == "--split-shootout") {
      split_shootout = true;
    } else if (arg == "--hybrid-starve") {
      hybrid_starve = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      lazymc::bench::enable_json_export(arg.substr(7));
    } else {
      keep.push_back(argv[i]);
    }
  }
  if (shootout || split_shootout || hybrid_starve) {
    if (shootout) lazymc::run_intersect_shootout();
    if (hybrid_starve) lazymc::run_hybrid_starve_shootout();
    if (split_shootout) lazymc::run_split_shootout();
    return 0;
  }
  int kargc = static_cast<int>(keep.size());
  benchmark::Initialize(&kargc, keep.data());
  if (benchmark::ReportUnrecognizedArguments(kargc, keep.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
