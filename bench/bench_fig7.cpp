// Figure 7: parallel scaling — per-phase execution time, speedup over one
// thread, and the systematic-search *work* ratio (total solver+filter
// seconds summed across threads, relative to one thread).  Work inflation
// under parallelism is the paper's key scaling observation: concurrent
// searches miss incumbent improvements and do redundant work.
//
// Default graphs mirror the paper's patents/warwiki/orkut/human-1.
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options defaults;
  defaults.scale = suite::Scale::kMedium;  // scaling needs real solver work
  defaults.repeats = 1;
  bench::Options opt = bench::parse_options(argc, argv, defaults);
  if (opt.graphs.empty()) opt.graphs = {"patents", "warwiki", "orkut",
                                        "human-1"};
  std::printf("Figure 7: thread sweep — time, speedup, work ratio\n\n");

  const std::size_t threads[] = {1, 2, 4, 8, 16};

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    std::printf("-- %s --\n", inst.name.c_str());
    bench::Table table({"threads", "deg-heur[s]", "preproc[s]",
                        "core-heur[s]", "systematic[s]", "total[s]",
                        "speedup", "work(x)"});
    double base_total = -1, base_work = -1;
    for (std::size_t t : threads) {
      set_num_threads(t);
      mc::LazyMCConfig cfg;
      cfg.time_limit_seconds = opt.timeout;
      mc::LazyMCResult last;
      auto timing = bench::time_runs(opt.repeats, [&] {
        last = mc::lazy_mc(g, cfg);
      });
      double total = timing.mean_seconds;
      double work = last.search.work_seconds();
      if (base_total < 0) {
        base_total = total;
        base_work = work > 0 ? work : 1e-9;
      }
      table.add_row({std::to_string(t), bench::fmt(last.phases.degree_heuristic),
                     bench::fmt(last.phases.preprocessing),
                     bench::fmt(last.phases.coreness_heuristic),
                     bench::fmt(last.phases.systematic), bench::fmt(total),
                     bench::fmt(base_total > 0 ? base_total / total : 1.0, 2),
                     bench::fmt(work / base_work, 2)});
    }
    table.print();
    std::printf("\n");
  }
  set_num_threads(0);
  std::printf(
      "work(x) > 1 with more threads reproduces the paper's observation "
      "that parallel\nsearches forego incumbent improvements and inflate "
      "total work.\n");
  return 0;
}
