// Table II: end-to-end execution time of PMC, dOmega-LS, dOmega-BS,
// MC-BRB and LazyMC, with run-to-run deviation and LazyMC's speedup over
// each baseline, plus the median speedups the paper headlines.
#include <cmath>
#include <cstdio>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

namespace {

struct Measured {
  double seconds = std::nan("");  // NaN = timeout
  double dev_pct = 0;
  VertexId omega = 0;
};

template <typename Fn>
Measured measure(int repeats, double timeout, Fn&& solve) {
  Measured m;
  bool timed_out = false;
  VertexId omega = 0;
  auto timing = bench::time_runs(repeats, [&] {
    auto r = solve();
    timed_out = timed_out || r.timed_out;
    omega = r.omega;
  });
  m.omega = omega;
  if (timed_out) {
    m.seconds = std::nan("");
  } else {
    m.seconds = timing.mean_seconds;
    m.dev_pct = timing.stddev_pct;
  }
  (void)timeout;
  return m;
}

std::string speedup_str(const Measured& base, const Measured& lazy) {
  if (std::isnan(lazy.seconds)) return "x";
  if (std::isnan(base.seconds)) return "T.O.";
  return bench::fmt(base.seconds / lazy.seconds, 2);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "Table II: overall runtime (seconds; 'x' = timed out at %.0fs)\n\n",
      opt.timeout);
  bench::Table table({"graph", "PMC", "dev%", "spd", "dOm-LS", "spd",
                      "dOm-BS", "spd", "MC-BRB", "spd", "LazyMC", "dev%",
                      "omega"});

  std::vector<double> spd_pmc, spd_ls, spd_bs, spd_brb;

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;

    Measured lazy = measure(opt.repeats, opt.timeout, [&] {
      mc::LazyMCConfig cfg;
      cfg.time_limit_seconds = opt.timeout;
      auto r = mc::lazy_mc(g, cfg);
      return r;
    });
    Measured pmc = measure(opt.repeats, opt.timeout, [&] {
      baselines::PmcOptions o;
      o.time_limit_seconds = opt.timeout;
      return baselines::pmc_solve(g, o);
    });
    baselines::DomegaOptions dopt;
    dopt.time_limit_seconds = opt.timeout;
    Measured ls = measure(opt.repeats, opt.timeout, [&] {
      return baselines::domega_solve(g, baselines::DomegaMode::kLinearScan,
                                     dopt);
    });
    Measured bs = measure(opt.repeats, opt.timeout, [&] {
      return baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch,
                                     dopt);
    });
    Measured brb = measure(opt.repeats, opt.timeout, [&] {
      baselines::McBrbOptions o;
      o.time_limit_seconds = opt.timeout;
      return baselines::mcbrb_solve(g, o);
    });

    auto push_speedup = [&](std::vector<double>& acc, const Measured& base) {
      if (!std::isnan(base.seconds) && !std::isnan(lazy.seconds)) {
        acc.push_back(base.seconds / lazy.seconds);
      }
    };
    push_speedup(spd_pmc, pmc);
    push_speedup(spd_ls, ls);
    push_speedup(spd_bs, bs);
    push_speedup(spd_brb, brb);

    table.add_row({inst.name, bench::fmt(pmc.seconds),
                   bench::fmt(pmc.dev_pct, 1), speedup_str(pmc, lazy),
                   bench::fmt(ls.seconds), speedup_str(ls, lazy),
                   bench::fmt(bs.seconds), speedup_str(bs, lazy),
                   bench::fmt(brb.seconds), speedup_str(brb, lazy),
                   bench::fmt(lazy.seconds), bench::fmt(lazy.dev_pct, 1),
                   std::to_string(lazy.omega)});
  }
  table.print();
  std::printf("\nmedian speedup of LazyMC:  PMC %.2f  dOmega-LS %.2f  "
              "dOmega-BS %.2f  MC-BRB %.2f\n",
              bench::median(spd_pmc), bench::median(spd_ls),
              bench::median(spd_bs), bench::median(spd_brb));
  return 0;
}
