// Figure 2: relative time spent in the key steps of LazyMC — degree-based
// heuristic, k-core + reordering, must-subgraph prepopulation, coreness-
// based heuristic, and systematic search.
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf("Figure 2: relative time per LazyMC phase (%%)\n\n");
  bench::Table table({"graph", "deg-heur", "kcore+reorder", "must-subgraph",
                      "core-heur", "systematic", "total[s]"});

  for (auto& inst : bench::load_suite(opt)) {
    mc::LazyMCConfig cfg;
    cfg.time_limit_seconds = opt.timeout;
    auto r = mc::lazy_mc(inst.graph, cfg);
    double total = r.phases.total();
    auto pct = [&](double v) {
      return bench::fmt(total > 0 ? 100.0 * v / total : 0.0, 1);
    };
    table.add_row({inst.name, pct(r.phases.degree_heuristic),
                   pct(r.phases.preprocessing), pct(r.phases.must_subgraph),
                   pct(r.phases.coreness_heuristic), pct(r.phases.systematic),
                   bench::fmt(total)});
  }
  table.print();
  return 0;
}
