// Ablation sweeps for design choices called out in DESIGN.md but not
// covered by a dedicated paper figure:
//   (a) rounds of induced-degree filtering (paper: "two iterations ...
//       are sufficient"; fixpoint filtering is possible but pays per-round
//       cost) — sweep 1..4 rounds;
//   (b) number of top-degree seeds K in the degree-based heuristic
//       (Algorithm 5) — sweep K in {1, 4, 16, 64};
//   (c) vertex order: parallel (coreness, degree) sort vs the sequential
//       Matula–Beck peeling order (Section IV-F);
//   (d) coloring prune before solver dispatch (off in the paper; the MC
//       solver colors internally).
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf("Ablation (a): degree-filter rounds, time normalized to 2 "
              "rounds (the paper default)\n\n");
  {
    bench::Table table({"graph", "r=1", "r=2[s]", "r=3", "r=4",
                        "searched r=1", "searched r=2", "searched r=4"});
    for (auto& inst : bench::load_suite(opt)) {
      const Graph& g = inst.graph;
      double base = 0;
      double times[5] = {0, 0, 0, 0, 0};
      std::uint64_t searched[5] = {0, 0, 0, 0, 0};
      for (unsigned rounds = 1; rounds <= 4; ++rounds) {
        mc::LazyMCConfig cfg;
        cfg.degree_filter_rounds = rounds;
        cfg.time_limit_seconds = opt.timeout;
        mc::LazyMCResult last;
        auto timing = bench::time_runs(opt.repeats, [&] {
          last = mc::lazy_mc(g, cfg);
        });
        times[rounds] = timing.mean_seconds;
        searched[rounds] = last.search.pass_filter3;
        if (rounds == 2) base = timing.mean_seconds;
      }
      auto rel = [&](unsigned r) {
        return bench::fmt(base > 0 ? times[r] / base : 1.0, 2);
      };
      table.add_row({inst.name, rel(1), bench::fmt(times[2]), rel(3), rel(4),
                     std::to_string(searched[1]), std::to_string(searched[2]),
                     std::to_string(searched[4])});
    }
    table.print();
  }

  std::printf("\nAblation (b): degree-heuristic seed count K, incumbent "
              "found and total time\n\n");
  {
    bench::Table table({"graph", "w_d K=1", "K=4", "K=16", "K=64",
                        "t K=1[s]", "t K=16[s]", "t K=64[s]"});
    for (auto& inst : bench::load_suite(opt)) {
      const Graph& g = inst.graph;
      VertexId wd[4] = {0, 0, 0, 0};
      double times[4] = {0, 0, 0, 0};
      const VertexId ks[4] = {1, 4, 16, 64};
      for (int i = 0; i < 4; ++i) {
        mc::LazyMCConfig cfg;
        cfg.heuristic_top_k = ks[i];
        cfg.time_limit_seconds = opt.timeout;
        mc::LazyMCResult last;
        auto timing = bench::time_runs(opt.repeats, [&] {
          last = mc::lazy_mc(g, cfg);
        });
        wd[i] = last.heuristic_degree_omega;
        times[i] = timing.mean_seconds;
      }
      table.add_row({inst.name, std::to_string(wd[0]), std::to_string(wd[1]),
                     std::to_string(wd[2]), std::to_string(wd[3]),
                     bench::fmt(times[0]), bench::fmt(times[2]),
                     bench::fmt(times[3])});
    }
    table.print();
  }
  std::printf(
      "\nA better early incumbent (larger w_d) shrinks the k-core "
      "computation, the must\nsubgraph and every later filter.\n");

  std::printf("\nAblation (c): vertex order — (coreness,degree) vs peeling "
              "(sequential)\n\n");
  {
    bench::Table table({"graph", "core-deg[s]", "peeling[s]", "peel (x)"});
    for (auto& inst : bench::load_suite(opt)) {
      const Graph& g = inst.graph;
      double t[2] = {0, 0};
      const mc::VertexOrderKind kinds[2] = {
          mc::VertexOrderKind::kCorenessDegree, mc::VertexOrderKind::kPeeling};
      for (int i = 0; i < 2; ++i) {
        mc::LazyMCConfig cfg;
        cfg.vertex_order = kinds[i];
        cfg.time_limit_seconds = opt.timeout;
        t[i] = bench::time_runs(opt.repeats, [&] { mc::lazy_mc(g, cfg); })
                   .mean_seconds;
      }
      table.add_row({inst.name, bench::fmt(t[0]), bench::fmt(t[1]),
                     bench::fmt(t[0] > 0 ? t[1] / t[0] : 1.0, 2)});
    }
    table.print();
  }

  std::printf("\nAblation (d): coloring prune before solver dispatch\n\n");
  {
    bench::Table table({"graph", "off[s]", "on (x)", "solved off",
                        "solved on"});
    for (auto& inst : bench::load_suite(opt)) {
      const Graph& g = inst.graph;
      double t[2] = {0, 0};
      std::uint64_t solved[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        mc::LazyMCConfig cfg;
        cfg.color_prune = i == 1;
        cfg.time_limit_seconds = opt.timeout;
        mc::LazyMCResult last;
        t[i] = bench::time_runs(opt.repeats, [&] {
                 last = mc::lazy_mc(g, cfg);
               }).mean_seconds;
        solved[i] = last.search.solved_mc + last.search.solved_vc;
      }
      table.add_row({inst.name, bench::fmt(t[0]),
                     bench::fmt(t[0] > 0 ? t[1] / t[0] : 1.0, 2),
                     std::to_string(solved[0]), std::to_string(solved[1])});
    }
    table.print();
  }
  return 0;
}
