// Figure 5: ablation of the early-exit intersections — slowdown with all
// early exits disabled, and with only the second exit of
// intersect-size-gt-bool disabled.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "mc/lazymc.hpp"

using namespace lazymc;

namespace {

double run(const Graph& g, bool early, bool second,
           const bench::Options& opt) {
  mc::LazyMCConfig cfg;
  cfg.early_exit_intersections = early;
  cfg.second_exit = second;
  cfg.time_limit_seconds = opt.timeout;
  auto timing = bench::time_runs(opt.repeats, [&] { mc::lazy_mc(g, cfg); });
  return timing.mean_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::printf(
      "Figure 5: slowdown without early-exit intersections / without the "
      "second exit\n\n");
  bench::Table table(
      {"graph", "base[s]", "no early exits (x)", "no 2nd exit (x)"});

  for (auto& inst : bench::load_suite(opt)) {
    const Graph& g = inst.graph;
    double base = run(g, true, true, opt);
    double none = run(g, false, false, opt);
    double no2 = run(g, true, false, opt);
    table.add_row({inst.name, bench::fmt(base),
                   bench::fmt(base > 0 ? none / base : 1.0, 2),
                   bench::fmt(base > 0 ? no2 / base : 1.0, 2)});
  }
  table.print();
  std::printf(
      "\nValues above 1 mean the early exits help (paper: up to 3.99x on "
      "dimacs; the second\nexit matters most where filtering dominates).\n");
  return 0;
}
