#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace lazymc::bench {
namespace {

[[noreturn]] void usage_and_exit(const std::string& bad_flag) {
  std::fprintf(stderr,
               "unknown flag: %s\n"
               "usage: bench --scale=tiny|small|medium --graphs=a,b,c "
               "--repeats=N --timeout=SECONDS --threads=N --json=PATH\n",
               bad_flag.c_str());
  std::exit(2);
}

// --- JSON export registry --------------------------------------------------
// Tables are recorded by Table::print() and flushed once at exit so every
// bench binary gains --json without touching its own code.

struct TableDump {
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

std::string g_json_path;                 // empty = export disabled
std::vector<TableDump>* g_tables = nullptr;

/// True when `cell` is entirely a finite JSON-compatible number.
bool parse_number(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  out = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(out);
}

void flush_json_tables() {
  if (g_json_path.empty() || g_tables == nullptr) return;
  std::ofstream out(g_json_path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write JSON to %s\n",
                 g_json_path.c_str());
    return;
  }
  JsonWriter w(out);
  w.open();
  w.field("schema", "lazymc-bench-tables/1");
  w.open_array("tables");
  for (const TableDump& t : *g_tables) {
    w.open();
    w.field("title", t.title);
    w.open_array("headers");
    for (const std::string& h : t.headers) w.value(h);
    w.close_array();
    w.open_array("rows");
    for (const auto& row : t.rows) {
      w.open_array();
      for (const std::string& cell : row) {
        double num = 0;
        if (parse_number(cell, num)) {
          w.value(num);
        } else {
          w.value(cell);
        }
      }
      w.close_array();
    }
    w.close_array();
    w.close();
  }
  w.close_array();
  w.close();
  out << "\n";
}

void record_table(const std::string& title,
                  const std::vector<std::string>& headers,
                  const std::vector<std::vector<std::string>>& rows) {
  if (g_json_path.empty()) return;
  if (g_tables == nullptr) g_tables = new std::vector<TableDump>();
  std::string name = title;
  if (name.empty()) name = "table_" + std::to_string(g_tables->size() + 1);
  g_tables->push_back(TableDump{name, headers, rows});
}

}  // namespace

void enable_json_export(const std::string& path) {
  bool first = g_json_path.empty() && !path.empty();
  g_json_path = path;
  if (first) std::atexit(flush_json_tables);
}

Options parse_options(int argc, char** argv, Options defaults) {
  Options opt = std::move(defaults);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--scale=", 0) == 0) {
      std::string v = value_of("--scale=");
      if (v == "tiny") {
        opt.scale = suite::Scale::kTiny;
      } else if (v == "small") {
        opt.scale = suite::Scale::kSmall;
      } else if (v == "medium") {
        opt.scale = suite::Scale::kMedium;
      } else {
        usage_and_exit(arg);
      }
    } else if (arg.rfind("--graphs=", 0) == 0) {
      std::stringstream ss(value_of("--graphs="));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) opt.graphs.push_back(item);
      }
    } else if (arg.rfind("--repeats=", 0) == 0) {
      opt.repeats = std::max(1, std::atoi(value_of("--repeats=").c_str()));
    } else if (arg.rfind("--timeout=", 0) == 0) {
      opt.timeout = std::atof(value_of("--timeout=").c_str());
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = static_cast<std::size_t>(
          std::atoll(value_of("--threads=").c_str()));
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = value_of("--json=");
    } else {
      usage_and_exit(arg);
    }
  }
  if (opt.threads > 0) set_num_threads(opt.threads);
  if (!opt.json_path.empty()) enable_json_export(opt.json_path);
  return opt;
}

std::vector<suite::Instance> load_suite(const Options& options) {
  std::vector<suite::Instance> out;
  if (options.graphs.empty()) {
    out = suite::make_suite(options.scale);
  } else {
    for (const std::string& name : options.graphs) {
      out.push_back(suite::make_instance(name, options.scale));
    }
  }
  return out;
}

Timing time_runs(int repeats, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    WallTimer timer;
    fn();
    samples.push_back(timer.elapsed());
  }
  Timing t;
  for (double s : samples) t.mean_seconds += s;
  t.mean_seconds /= samples.size();
  if (samples.size() > 1 && t.mean_seconds > 0) {
    double var = 0;
    for (double s : samples) var += (s - t.mean_seconds) * (s - t.mean_seconds);
    var /= (samples.size() - 1);
    t.stddev_pct = 100.0 * std::sqrt(var) / t.mean_seconds;
  }
  return t;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  record_table(title_, headers_, rows_);
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf("%c %*s", c == 0 ? '|' : '|',
                  static_cast<int>(widths[c]), cell.c_str());
      std::printf(" ");
    }
    std::printf("|\n");
  };
  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    std::printf("|-%s-", std::string(widths[c], '-').c_str());
  }
  std::printf("|\n");
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  if (std::isnan(value)) return "x";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

double median(std::vector<double> values) {
  std::erase_if(values, [](double v) { return std::isnan(v); });
  if (values.empty()) return std::nan("");
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace lazymc::bench
