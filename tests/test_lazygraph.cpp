// Tests for the lazy filtered hashed relabelled graph (Algorithm 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"

namespace lazymc {
namespace {

struct Fixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  std::atomic<VertexId> incumbent{0};

  explicit Fixture(Graph graph) : g(std::move(graph)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
  }

  LazyGraph make() {
    return LazyGraph(g, order, core.coreness, &incumbent);
  }
};

TEST(LazyGraph, SortedNeighborhoodMatchesBaseGraph) {
  Fixture f(gen::gnp(60, 0.1, 3));
  LazyGraph lazy = f.make();
  for (VertexId v = 0; v < lazy.num_vertices(); ++v) {
    auto lazy_nbrs = lazy.sorted_neighborhood(v);
    // With incumbent 0, nothing is filtered.
    std::vector<VertexId> expected;
    for (VertexId u : f.g.neighbors(f.order.new_to_orig[v])) {
      expected.push_back(f.order.orig_to_new[u]);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_TRUE(std::equal(lazy_nbrs.begin(), lazy_nbrs.end(),
                           expected.begin(), expected.end()))
        << "vertex " << v;
  }
}

TEST(LazyGraph, HashedNeighborhoodMatchesSorted) {
  Fixture f(gen::gnp(50, 0.15, 5));
  LazyGraph lazy = f.make();
  for (VertexId v = 0; v < lazy.num_vertices(); ++v) {
    const HopscotchSet& h = lazy.hashed_neighborhood(v);
    auto s = lazy.sorted_neighborhood(v);
    EXPECT_EQ(h.size(), s.size());
    for (VertexId u : s) EXPECT_TRUE(h.contains(u));
  }
}

TEST(LazyGraph, RightNeighborhoodOnlyHigherIds) {
  Fixture f(gen::gnp(40, 0.2, 7));
  LazyGraph lazy = f.make();
  for (VertexId v = 0; v < lazy.num_vertices(); ++v) {
    for (VertexId u : lazy.right_neighborhood(v)) {
      EXPECT_GT(u, v);
    }
    // left + right = all
    EXPECT_EQ(lazy.sorted_neighborhood(v).size() -
                  lazy.right_neighborhood(v).size(),
              static_cast<std::size_t>(
                  std::count_if(lazy.sorted_neighborhood(v).begin(),
                                lazy.sorted_neighborhood(v).end(),
                                [&](VertexId u) { return u < v; })));
  }
}

TEST(LazyGraph, ConstructionIsLazy) {
  Fixture f(gen::gnp(100, 0.05, 9));
  LazyGraph lazy = f.make();
  EXPECT_EQ(lazy.stats().hash_built, 0u);
  EXPECT_EQ(lazy.stats().sorted_built, 0u);
  EXPECT_FALSE(lazy.has_hashed(0));
  lazy.hashed_neighborhood(0);
  EXPECT_TRUE(lazy.has_hashed(0));
  EXPECT_EQ(lazy.stats().hash_built, 1u);
  EXPECT_EQ(lazy.stats().sorted_built, 0u);
}

TEST(LazyGraph, MemoizedNotRebuilt) {
  Fixture f(gen::gnp(30, 0.2, 11));
  LazyGraph lazy = f.make();
  lazy.hashed_neighborhood(3);
  lazy.hashed_neighborhood(3);
  lazy.sorted_neighborhood(3);
  lazy.sorted_neighborhood(3);
  EXPECT_EQ(lazy.stats().hash_built, 1u);
  EXPECT_EQ(lazy.stats().sorted_built, 1u);
}

TEST(LazyGraph, FiltersByCorenessAgainstIncumbent) {
  // Star: center has coreness 1, leaves coreness 1. With incumbent 2,
  // every neighborhood filters everything (coreness 1 < 2).
  Fixture f(gen::star(10));
  f.incumbent.store(2);
  LazyGraph lazy = f.make();
  for (VertexId v = 0; v < lazy.num_vertices(); ++v) {
    EXPECT_TRUE(lazy.sorted_neighborhood(v).empty());
  }
  EXPECT_GT(lazy.stats().neighbors_filtered, 0u);
  EXPECT_EQ(lazy.stats().neighbors_kept, 0u);
}

TEST(LazyGraph, FilterKeepsHighCorenessVertices) {
  // K5 with a pendant: clique vertices have coreness 4, pendant 1.
  Graph k5 = gen::complete(5);
  GraphBuilder b(6);
  for (VertexId v = 0; v < 5; ++v) {
    for (VertexId u : k5.neighbors(v)) {
      if (v < u) b.add_edge(v, u);
    }
  }
  b.add_edge(0, 5);
  Fixture f(b.build());
  f.incumbent.store(3);
  LazyGraph lazy = f.make();
  // The clique vertices keep each other, the pendant is filtered out of
  // vertex 0's neighborhood, and the pendant's own neighborhood keeps its
  // high-coreness neighbor.
  VertexId pendant = f.order.orig_to_new[5];
  auto pend_nbrs = lazy.sorted_neighborhood(pendant);
  EXPECT_EQ(pend_nbrs.size(), 1u);
  VertexId zero = f.order.orig_to_new[0];
  auto zero_nbrs = lazy.sorted_neighborhood(zero);
  EXPECT_EQ(zero_nbrs.size(), 4u);  // pendant filtered (coreness 1 < 3)
  for (VertexId u : zero_nbrs) EXPECT_NE(u, pendant);
}

TEST(LazyGraph, SnapshotsDivergeAsIncumbentGrows) {
  // Build the sorted representation early (incumbent 0), then raise the
  // incumbent and build the hash set: the hash set must be smaller.
  Graph g = gen::graph_union(gen::complete(5), gen::star(12));
  Fixture f(std::move(g));
  LazyGraph lazy = f.make();
  VertexId hub = f.order.orig_to_new[0];  // in both K5 and the star
  auto sorted_before = lazy.sorted_neighborhood(hub);
  std::size_t before = sorted_before.size();
  f.incumbent.store(4);
  const HopscotchSet& hashed = lazy.hashed_neighborhood(hub);
  EXPECT_LT(hashed.size(), before);
}

TEST(LazyGraph, MembershipPrefersHash) {
  Fixture f(gen::gnp(40, 0.4, 13));
  LazyGraph lazy = f.make();
  lazy.hashed_neighborhood(5);
  NeighborhoodView view = lazy.membership(5);
  EXPECT_TRUE(view.is_hashed());
  // A vertex with only a sorted set reports a sorted view.
  lazy.sorted_neighborhood(7);
  NeighborhoodView view7 = lazy.membership(7);
  EXPECT_FALSE(view7.is_hashed());
}

TEST(LazyGraph, MembershipBuildsByDegreeThreshold) {
  // Low-degree vertex -> sorted; high-degree -> hashed.
  Fixture f(gen::star(40));
  LazyGraph lazy = f.make();
  VertexId hub = f.order.orig_to_new[0];   // degree 39 > threshold
  VertexId leaf = f.order.orig_to_new[7];  // degree 1
  NeighborhoodView hub_view = lazy.membership(hub);
  EXPECT_TRUE(hub_view.is_hashed());
  NeighborhoodView leaf_view = lazy.membership(leaf);
  EXPECT_FALSE(leaf_view.is_hashed());
}

TEST(LazyGraph, MembershipViewContainsAgreesWithEdges) {
  Fixture f(gen::gnp(50, 0.2, 17));
  LazyGraph lazy = f.make();
  for (VertexId v = 0; v < lazy.num_vertices(); ++v) {
    NeighborhoodView view = lazy.membership(v);
    for (VertexId u = 0; u < lazy.num_vertices(); ++u) {
      bool edge = f.g.has_edge(f.order.new_to_orig[v], f.order.new_to_orig[u]);
      EXPECT_EQ(view.contains(u), edge) << v << " " << u;
    }
  }
}

TEST(LazyGraph, PrepopulateAllBuildsEverything) {
  Fixture f(gen::gnp(60, 0.1, 19));
  LazyGraph lazy = f.make();
  lazy.prepopulate(Prepopulate::kAll, 0);
  EXPECT_EQ(lazy.stats().hash_built, 60u);
  for (VertexId v = 0; v < 60; ++v) EXPECT_TRUE(lazy.has_hashed(v));
}

TEST(LazyGraph, PrepopulateNoneBuildsNothing) {
  Fixture f(gen::gnp(60, 0.1, 19));
  LazyGraph lazy = f.make();
  lazy.prepopulate(Prepopulate::kNone, 0);
  EXPECT_EQ(lazy.stats().hash_built, 0u);
}

TEST(LazyGraph, PrepopulateMustBuildsOnlyHighCoreness) {
  Graph g = gen::graph_union(gen::complete(6), gen::path(20));
  Fixture f(std::move(g));
  LazyGraph lazy = f.make();
  lazy.prepopulate(Prepopulate::kMustSubgraph, 5);
  // Only the K6 members have coreness >= 5.
  EXPECT_EQ(lazy.stats().hash_built, 6u);
}

TEST(LazyGraph, ConcurrentConstructionIsSafe) {
  Fixture f(gen::gnp(200, 0.08, 23));
  LazyGraph lazy = f.make();
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (VertexId v = 0; v < 200; ++v) {
        const HopscotchSet& h = lazy.hashed_neighborhood(v);
        auto s = lazy.sorted_neighborhood(v);
        if (h.size() != s.size()) errors++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  // Each representation built exactly once despite 8 racing threads.
  EXPECT_EQ(lazy.stats().hash_built, 200u);
  EXPECT_EQ(lazy.stats().sorted_built, 200u);
}

TEST(LazyGraph, MismatchedSizesThrow) {
  Fixture f(gen::path(5));
  std::vector<VertexId> bad_coreness(3, 0);
  EXPECT_THROW(LazyGraph(f.g, f.order, bad_coreness, &f.incumbent),
               std::invalid_argument);
}

}  // namespace
}  // namespace lazymc
