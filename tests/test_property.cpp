// Property-based randomized sweeps (parameterized gtest).
//
// Invariants exercised across generator families, densities and seeds:
//  * all exact solvers agree with the reference on omega;
//  * the result is a real clique of the input graph;
//  * omega <= degeneracy + 1;
//  * heuristics never exceed omega;
//  * the intersection kernels agree with naive set intersection under all
//    thresholds.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hashset/hopscotch_set.hpp"
#include "intersect/intersect.hpp"
#include "kcore/kcore.hpp"
#include "mc/lazymc.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

// ---- solver agreement across the (n, p, seed) grid ------------------------

class SolverGridTest
    : public testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SolverGridTest, AllSolversMatchReference) {
  auto [n, p, seed] = GetParam();
  Graph g = gen::gnp(static_cast<VertexId>(n), p,
                     static_cast<std::uint64_t>(seed) * 7919 + 13);
  auto ref = baselines::max_clique_reference(g);
  std::size_t omega = ref.size();

  auto lazy = mc::lazy_mc(g);
  EXPECT_EQ(lazy.omega, omega) << "lazymc";
  EXPECT_TRUE(is_clique(g, lazy.clique));

  auto pmc = baselines::pmc_solve(g);
  EXPECT_EQ(pmc.omega, omega) << "pmc";

  auto brb = baselines::mcbrb_solve(g);
  EXPECT_EQ(brb.omega, omega) << "mcbrb";

  auto core = kcore::coreness(g);
  EXPECT_LE(omega, core.degeneracy + 1);
}

INSTANTIATE_TEST_SUITE_P(
    DensitySeedSweep, SolverGridTest,
    testing::Combine(testing::Values(20, 35, 50),
                     testing::Values(0.05, 0.15, 0.35, 0.6),
                     testing::Values(1, 2, 3)));

// ---- planted clique recovery across background families -------------------

enum class Family { kGnp, kBarabasi, kWatts, kPartition };

class PlantedCliqueTest
    : public testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(PlantedCliqueTest, LazyMCRecoversPlantedClique) {
  auto [family, seed_int] = GetParam();
  std::uint64_t seed = static_cast<std::uint64_t>(seed_int);
  Graph bg;
  switch (family) {
    case Family::kGnp:
      bg = gen::gnp(150, 0.04, seed);
      break;
    case Family::kBarabasi:
      bg = gen::barabasi_albert(150, 4, seed);
      break;
    case Family::kWatts:
      bg = gen::watts_strogatz(150, 6, 0.2, seed);
      break;
    case Family::kPartition:
      bg = gen::planted_partition(6, 25, 0.3, 2.0, seed);
      break;
  }
  std::vector<VertexId> members;
  Graph g = gen::plant_clique(bg, 12, seed + 99, &members);
  auto r = mc::lazy_mc(g);
  EXPECT_GE(r.omega, 12u);
  EXPECT_TRUE(is_clique(g, r.clique));
  EXPECT_LE(r.heuristic_degree_omega, r.omega);
  EXPECT_LE(r.heuristic_coreness_omega, r.omega);
}

INSTANTIATE_TEST_SUITE_P(
    Backgrounds, PlantedCliqueTest,
    testing::Combine(testing::Values(Family::kGnp, Family::kBarabasi,
                                     Family::kWatts, Family::kPartition),
                     testing::Values(5, 6)));

// ---- kcore invariants across graph families --------------------------------

class KCoreInvariantTest : public testing::TestWithParam<int> {};

TEST_P(KCoreInvariantTest, CorenessInvariants) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Graph g = gen::rmat(8, 6, 0.5, 0.2, 0.2, seed);
  auto core = kcore::coreness(g);
  auto par = kcore::coreness_parallel(g);
  EXPECT_EQ(core.coreness, par.coreness);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // coreness <= degree
    EXPECT_LE(core.coreness[v], g.degree(v));
    // every vertex in a k-core has >= k neighbors of coreness >= k
    VertexId k = core.coreness[v];
    VertexId strong = 0;
    for (VertexId u : g.neighbors(v)) strong += core.coreness[u] >= k ? 1 : 0;
    EXPECT_GE(strong, k) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreInvariantTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- intersection kernels vs reference under all thresholds ---------------

class IntersectPropertyTest : public testing::TestWithParam<int> {};

TEST_P(IntersectPropertyTest, KernelsMatchReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  for (int round = 0; round < 50; ++round) {
    std::vector<VertexId> a, b;
    std::size_t na = rng.next_below(40);
    std::size_t nb = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<VertexId>(rng.next_below(64)));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<VertexId>(rng.next_below(64)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    HopscotchSet bs;
    bs.reserve(b.size());
    for (VertexId x : b) bs.insert(x);

    std::size_t truth = intersect_reference(a, b).size();
    std::span<const VertexId> as(a);
    for (std::int64_t theta = -2; theta <= 20; ++theta) {
      bool expect = static_cast<std::int64_t>(truth) > theta;
      EXPECT_EQ(intersect_size_gt_bool(as, bs, theta, true), expect);
      EXPECT_EQ(intersect_size_gt_bool(as, bs, theta, false), expect);
      int val = intersect_size_gt_val(as, bs, theta);
      EXPECT_EQ(val != kTooSmall, expect);
      if (expect) {
        EXPECT_EQ(val, static_cast<int>(truth));
      }
      std::vector<VertexId> out(a.size() + 1);
      int gt = intersect_gt(as, bs, out.data(), theta);
      EXPECT_EQ(gt != kTooSmall, expect);
      if (expect) {
        EXPECT_EQ(gt, static_cast<int>(truth));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6));

// ---- graph builder round-trip property -------------------------------------

class BuilderPropertyTest : public testing::TestWithParam<int> {};

TEST_P(BuilderPropertyTest, CsrInvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  GraphBuilder builder(30);
  std::set<std::pair<VertexId, VertexId>> truth;
  for (int i = 0; i < 200; ++i) {
    VertexId u = static_cast<VertexId>(rng.next_below(30));
    VertexId v = static_cast<VertexId>(rng.next_below(30));
    builder.add_edge(u, v);
    if (u != v) truth.insert({std::min(u, v), std::max(u, v)});
  }
  Graph g = builder.build();
  EXPECT_EQ(g.num_edges(), truth.size());
  for (VertexId v = 0; v < 30; ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (VertexId u : nbrs) {
      EXPECT_TRUE(truth.count({std::min(u, v), std::max(u, v)}));
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderPropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace lazymc
