// Hybrid-row containers: bit-identity of the array / bitset / run kernels
// against the word-parallel reference at container-boundary densities
// (63/64/65-word zones, 4095/4096/4097-element rows, empty rows), the
// LazyGraph container-selection thresholds, byte accounting, and
// concurrent build safety.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <vector>

#include "graph/generators.hpp"
#include "intersect/hybrid_row.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"

namespace lazymc {
namespace {

// ---- container construction helpers (zone coordinates) --------------------

struct RowSet {
  VertexId zone_begin = 0;
  VertexId zone_bits = 0;
  std::vector<std::uint32_t> offs;  // sorted unique zone offsets

  simd::AlignedWords words;             // bitset payload
  std::vector<std::uint32_t> run_u32;   // (start, len) pairs
  simd::AlignedWords array_storage;     // array payload in carved words
  simd::AlignedWords run_storage;       // run payload in carved words

  void finish() {
    std::sort(offs.begin(), offs.end());
    offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
    words.assign((zone_bits + 63) / 64, 0);
    for (std::uint32_t o : offs) words[o >> 6] |= 1ULL << (o & 63);
    run_u32.clear();
    for (std::size_t i = 0; i < offs.size(); ++i) {
      if (i == 0 || offs[i] != offs[i - 1] + 1) {
        run_u32.push_back(offs[i]);
        run_u32.push_back(1);
      } else {
        ++run_u32.back();
      }
    }
    array_storage.assign((offs.size() + 1) / 2 + 1, 0);
    std::memcpy(array_storage.data(), offs.data(), offs.size() * 4);
    run_storage.assign(run_u32.size() / 2 + 1, 0);
    std::memcpy(run_storage.data(), run_u32.data(), run_u32.size() * 4);
  }

  HybridRow array_row() const {
    return HybridRow{array_storage.data(), zone_begin, zone_bits,
                     static_cast<std::uint32_t>(offs.size()),
                     static_cast<std::uint32_t>(offs.size()),
                     RowContainer::kArray};
  }
  HybridRow bitset_row_hybrid() const {
    return HybridRow{words.data(), zone_begin, zone_bits,
                     static_cast<std::uint32_t>(offs.size()),
                     static_cast<std::uint32_t>(words.size()),
                     RowContainer::kBitset};
  }
  HybridRow run_row() const {
    return HybridRow{run_storage.data(), zone_begin, zone_bits,
                     static_cast<std::uint32_t>(offs.size()),
                     static_cast<std::uint32_t>(run_u32.size() / 2),
                     RowContainer::kRun};
  }
  BitsetRow plain_row() const {
    return BitsetRow{words.data(), zone_begin, zone_bits,
                     static_cast<std::uint32_t>(offs.size())};
  }
};

RowSet random_row(VertexId zone_begin, VertexId zone_bits, double density,
                  std::uint64_t seed) {
  RowSet r;
  r.zone_begin = zone_begin;
  r.zone_bits = zone_bits;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(density);
  for (VertexId i = 0; i < zone_bits; ++i) {
    if (keep(rng)) r.offs.push_back(i);
  }
  r.finish();
  return r;
}

RowSet clustered_row(VertexId zone_begin, VertexId zone_bits,
                     std::initializer_list<std::pair<std::uint32_t,
                                                     std::uint32_t>> runs) {
  RowSet r;
  r.zone_begin = zone_begin;
  r.zone_bits = zone_bits;
  for (auto [start, len] : runs) {
    for (std::uint32_t k = 0; k < len; ++k) r.offs.push_back(start + k);
  }
  r.finish();
  return r;
}

std::vector<VertexId> random_sorted_a(VertexId zone_begin, VertexId zone_bits,
                                      double density, std::uint64_t seed) {
  std::vector<VertexId> a;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(density);
  for (VertexId i = 0; i < zone_bits; ++i) {
    if (keep(rng)) a.push_back(zone_begin + i);
  }
  return a;
}

/// Exercises every kernel entry point for every container against the
/// exact reference: the early exits are guaranteed-outcome bounds, so the
/// results are a pure function of (|A ∩ B|, theta) — any deviation means
/// a container produced different words than the packed bitset.
void expect_kernels_agree(const std::vector<VertexId>& a, const RowSet& b) {
  SparseWordSet a_ws;
  a_ws.build({a.data(), a.size()}, b.zone_begin);

  std::size_t expected = 0;
  std::vector<VertexId> expected_set;
  {
    const BitsetRow row = b.plain_row();
    for (VertexId v : a) {
      if (row.contains(v)) {
        ++expected;
        expected_set.push_back(v);
      }
    }
  }

  const HybridRow rows[] = {b.array_row(), b.bitset_row_hybrid(),
                            b.run_row()};
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t e = static_cast<std::int64_t>(expected);
  for (std::int64_t theta : {std::int64_t{-1}, std::int64_t{0}, e - 1, e,
                             e + 1, n}) {
    for (const HybridRow& hr : rows) {
      const char* kind = row_container_name(hr.kind);
      const int want_val = e > theta ? static_cast<int>(e) : kTooSmall;
      EXPECT_EQ(intersect_size_gt_val(a_ws, hr, theta), want_val)
          << kind << " theta=" << theta;
      EXPECT_EQ(intersect_size_gt_bool(a_ws, hr, theta, true), e > theta)
          << kind << " theta=" << theta;
      EXPECT_EQ(intersect_size_gt_bool(a_ws, hr, theta, false), e > theta)
          << kind << " theta=" << theta << " (no second exit)";
      std::vector<VertexId> out(a.size() + 1);
      const int got = intersect_gt(a_ws, hr, out.data(), theta);
      if (e > theta) {
        ASSERT_EQ(got, static_cast<int>(expected)) << kind;
        out.resize(expected);
        EXPECT_EQ(out, expected_set) << kind << " theta=" << theta;
      } else {
        EXPECT_EQ(got, kTooSmall) << kind << " theta=" << theta;
      }
      EXPECT_EQ(intersect_size(a_ws, hr), expected) << kind;
      std::vector<VertexId> out2(a.size() + 1);
      const std::size_t w = intersect_words(a_ws, hr, out2.data());
      ASSERT_EQ(w, expected) << kind;
      out2.resize(expected);
      EXPECT_EQ(out2, expected_set) << kind;
    }
    // Membership-probe path (MembershipSet concept): the generic
    // templates must agree too.
    for (const HybridRow& hr : rows) {
      EXPECT_EQ(intersect_size_gt_val({a.data(), a.size()}, hr, theta),
                e > theta ? static_cast<int>(e) : kTooSmall)
          << row_container_name(hr.kind) << " probe theta=" << theta;
    }
  }
}

TEST(HybridRowKernels, WordBoundaryZones) {
  // 63-, 64- and 65-word zones plus sub-word zones: the word loop's tail
  // handling must be identical in every container.
  for (VertexId zone_bits : {63u, 64u, 65u, 4032u, 4096u, 4160u}) {
    for (double density : {0.02, 0.3, 0.9}) {
      RowSet b = random_row(1000, zone_bits, density, zone_bits * 7 + 1);
      auto a = random_sorted_a(1000, zone_bits, 0.4, zone_bits * 13 + 5);
      if (a.empty()) continue;
      expect_kernels_agree(a, b);
    }
  }
}

TEST(HybridRowKernels, ElementCountEdges) {
  // Rows of exactly 4095/4096/4097 elements (the array-max boundary) in
  // an 8192-bit zone; every element count must round-trip through every
  // container encoding.
  for (std::uint32_t count : {4095u, 4096u, 4097u}) {
    RowSet b;
    b.zone_begin = 64;
    b.zone_bits = 8192;
    std::mt19937_64 rng(count);
    std::vector<std::uint32_t> all(8192);
    for (std::uint32_t i = 0; i < 8192; ++i) all[i] = i;
    std::shuffle(all.begin(), all.end(), rng);
    b.offs.assign(all.begin(), all.begin() + count);
    b.finish();
    ASSERT_EQ(b.offs.size(), count);
    auto a = random_sorted_a(64, 8192, 0.5, count * 3);
    expect_kernels_agree(a, b);
  }
}

TEST(HybridRowKernels, RunSpansCrossWordBoundaries) {
  RowSet b = clustered_row(0, 640,
                           {{0, 64}, {70, 10}, {126, 4}, {200, 130},
                            {639, 1}});
  ASSERT_EQ(b.run_u32.size() / 2, 5u);
  auto a = random_sorted_a(0, 640, 0.5, 99);
  expect_kernels_agree(a, b);
  // Full-zone run (one span covering everything).  The word kernels
  // require A and B to share zone geometry, so rebuild A over 130 bits.
  RowSet full = clustered_row(0, 130, {{0, 130}});
  ASSERT_EQ(full.run_u32.size() / 2, 1u);
  expect_kernels_agree(random_sorted_a(0, 130, 0.5, 98), full);
}

TEST(HybridRowKernels, EmptyRows) {
  const HybridRow empty{kEmptyHybridPayload, 10, 100, 0, 0,
                        RowContainer::kArray};
  EXPECT_TRUE(empty.valid());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.contains(10));
  auto a = random_sorted_a(10, 100, 0.5, 3);
  SparseWordSet a_ws;
  a_ws.build({a.data(), a.size()}, 10);
  EXPECT_EQ(intersect_size_gt_val(a_ws, empty, -1), 0);
  EXPECT_EQ(intersect_size_gt_val(a_ws, empty, 0), kTooSmall);
  EXPECT_FALSE(intersect_size_gt_bool(a_ws, empty, 0, true));
  EXPECT_EQ(intersect_size(a_ws, empty), 0u);
  // Empty A against any container.
  SparseWordSet empty_a;
  empty_a.build({}, 0);
  RowSet b = random_row(0, 100, 0.5, 4);
  EXPECT_EQ(intersect_size_gt_val(empty_a, b.array_row(), -1), 0);
  EXPECT_EQ(intersect_size(empty_a, b.run_row()), 0u);
}

TEST(HybridRowKernels, HybridVersusHybridAgree) {
  RowSet a = random_row(100, 500, 0.3, 21);
  RowSet b = random_row(100, 500, 0.4, 22);
  std::size_t expected = 0;
  std::vector<VertexId> expected_set;
  for (std::uint32_t o : a.offs) {
    if (b.plain_row().contains(100 + o)) {
      ++expected;
      expected_set.push_back(100 + o);
    }
  }
  const HybridRow lhs[] = {a.array_row(), a.bitset_row_hybrid(), a.run_row()};
  const HybridRow rhs[] = {b.array_row(), b.bitset_row_hybrid(), b.run_row()};
  const std::int64_t e = static_cast<std::int64_t>(expected);
  for (const HybridRow& x : lhs) {
    for (const HybridRow& y : rhs) {
      for (std::int64_t theta : {std::int64_t{-1}, e - 1, e}) {
        EXPECT_EQ(intersect_size_gt_val(x, y, theta),
                  e > theta ? static_cast<int>(e) : kTooSmall);
        EXPECT_EQ(intersect_size_gt_bool(x, y, theta), e > theta);
        std::vector<VertexId> out(a.offs.size() + 1);
        const int got = intersect_gt(x, y, out.data(), theta);
        if (e > theta) {
          ASSERT_EQ(got, static_cast<int>(expected));
          out.resize(expected);
          EXPECT_EQ(out, expected_set);
        } else {
          EXPECT_EQ(got, kTooSmall);
        }
      }
      EXPECT_EQ(intersect_size(x, y), expected);
    }
  }
}

TEST(HybridRowKernels, ArrayMergeAndGallopPaths) {
  // The no-word-form paths: merge (hybrid_array_*) and gallop
  // (HybridArrayLookup through the generic templates).
  RowSet b = random_row(50, 400, 0.2, 31);
  auto a = random_sorted_a(0, 450, 0.3, 32);  // includes below-zone ids
  const HybridRow row = b.array_row();
  std::size_t expected = 0;
  std::vector<VertexId> expected_set;
  for (VertexId v : a) {
    if (row.contains(v)) {
      ++expected;
      expected_set.push_back(v);
    }
  }
  const std::int64_t e = static_cast<std::int64_t>(expected);
  for (std::int64_t theta : {std::int64_t{-1}, std::int64_t{0}, e - 1, e}) {
    EXPECT_EQ(hybrid_array_size_gt_val({a.data(), a.size()}, row, theta),
              e > theta ? static_cast<int>(e) : kTooSmall)
        << theta;
    EXPECT_EQ(hybrid_array_size_gt_bool({a.data(), a.size()}, row, theta),
              e > theta)
        << theta;
    std::vector<VertexId> out(a.size() + 1);
    const int got = hybrid_array_gt({a.data(), a.size()}, row, out.data(),
                                    theta);
    if (e > theta) {
      ASSERT_EQ(got, static_cast<int>(expected)) << theta;
      out.resize(expected);
      EXPECT_EQ(out, expected_set);
    } else {
      EXPECT_EQ(got, kTooSmall) << theta;
    }
    EXPECT_EQ(intersect_size_gt_val({a.data(), a.size()},
                                    HybridArrayLookup(row), theta),
              e > theta ? static_cast<int>(e) : kTooSmall)
        << theta;
  }
}

// ---- LazyGraph container selection ----------------------------------------

struct ZoneFixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  std::atomic<VertexId> incumbent{0};

  explicit ZoneFixture(Graph graph) : g(std::move(graph)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
  }
  LazyGraph make() { return LazyGraph(g, order, core.coreness, &incumbent); }
};

Graph graph_from_edges(VertexId n,
                       const std::vector<std::pair<VertexId, VertexId>>& e) {
  std::vector<std::vector<VertexId>> adj(n);
  for (auto [u, v] : e) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<EdgeId> offsets(n + 1, 0);
  std::vector<VertexId> flat;
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adj[v].begin(), adj[v].end());
    offsets[v + 1] = offsets[v] + adj[v].size();
    flat.insert(flat.end(), adj[v].begin(), adj[v].end());
  }
  return Graph(std::move(offsets), std::move(flat));
}

TEST(LazyGraphHybrid, RowsMatchSortedNeighborhoodAndAccounting) {
  // A 1500-bit zone (24-word rows) with ~15 in-zone neighbors per row:
  // the sorted array (8 carved words) undercuts the packed words.
  ZoneFixture f(gen::gnp(1500, 0.01, 777));
  LazyGraph lazy = f.make();
  lazy.enable_hybrid_rows(1 << 20, 4096, 2.0);
  ASSERT_TRUE(lazy.hybrid_enabled());
  EXPECT_FALSE(lazy.bitset_enabled());
  const VertexId zb = lazy.zone_begin();
  for (VertexId v = zb; v < lazy.num_vertices(); ++v) {
    HybridRow row = lazy.hybrid_row(v);
    ASSERT_TRUE(row.valid());
    auto sorted = lazy.sorted_neighborhood(v);
    std::size_t in_zone = 0;
    for (VertexId u : sorted) {
      if (u >= zb) {
        EXPECT_TRUE(row.contains(u)) << v << " " << u;
        ++in_zone;
      } else {
        EXPECT_FALSE(row.contains(u));
      }
    }
    EXPECT_EQ(row.size(), in_zone);
  }
  const auto s = lazy.stats();
  EXPECT_EQ(s.bitset_built,
            s.hybrid_rows_array + s.hybrid_rows_bitset + s.hybrid_rows_run);
  EXPECT_EQ(s.bitset_bytes,
            s.hybrid_array_bytes + s.hybrid_bitset_bytes + s.hybrid_run_bytes);
  EXPECT_GT(s.hybrid_rows_array, 0u);  // 0.15 density at 120 bits: sparse
}

TEST(LazyGraphHybrid, DenseScatteredRowsPickBitset) {
  // gnp(300, 0.5): ~150 scattered neighbors in a 300-bit zone — the array
  // (~600 bytes) and run (~one pair per element) containers both cost
  // more than the 40-byte packed row.
  ZoneFixture f(gen::gnp(300, 0.5, 778));
  LazyGraph lazy = f.make();
  lazy.enable_hybrid_rows(1 << 22, 4096, 2.0);
  ASSERT_TRUE(lazy.hybrid_enabled());
  for (VertexId v = lazy.zone_begin(); v < lazy.num_vertices(); ++v) {
    ASSERT_TRUE(lazy.hybrid_row(v).valid());
  }
  const auto s = lazy.stats();
  EXPECT_GT(s.hybrid_rows_bitset, 0u);
  EXPECT_EQ(s.hybrid_rows_array + s.hybrid_rows_bitset + s.hybrid_rows_run,
            s.bitset_built);
}

TEST(LazyGraphHybrid, ClusteredRowsPickRun) {
  // A 600-clique relabels to one contiguous block at the top of the
  // order; a hub adjacent to every member gets a one-run row, far
  // smaller than either the array (600 u32s) or the packed words.
  std::vector<std::pair<VertexId, VertexId>> edges;
  const VertexId k = 600;
  const VertexId n = 2000;
  for (VertexId i = 0; i < k; ++i) {
    for (VertexId j = i + 1; j < k; ++j) edges.push_back({i, j});
  }
  const VertexId hub = k;
  for (VertexId i = 0; i < k; ++i) edges.push_back({hub, i});
  for (VertexId v = k + 2; v < n; ++v) edges.push_back({v, v - 1});
  ZoneFixture f(graph_from_edges(n, edges));
  LazyGraph lazy = f.make();
  lazy.enable_hybrid_rows(1 << 22, 4096, 2.0);
  ASSERT_TRUE(lazy.hybrid_enabled());
  // Find the hub's relabelled id and build its row.
  const VertexId hub_new = f.order.orig_to_new[hub];
  ASSERT_GE(hub_new, lazy.zone_begin());
  HybridRow row = lazy.hybrid_row(hub_new);
  ASSERT_TRUE(row.valid());
  EXPECT_EQ(row.kind, RowContainer::kRun);
  EXPECT_EQ(row.size(), k);
  EXPECT_LE(row.units, 2u);  // the clique block (+ at most one neighbor run)
  const auto s = lazy.stats();
  EXPECT_GT(s.hybrid_rows_run, 0u);
}

TEST(LazyGraphHybrid, ArrayMaxThresholdIsExact) {
  // A zone wide enough (~140k bits) that a 4096-element array genuinely
  // undercuts the packed words: degree 4096 stays an array, degree 4097
  // crosses --hybrid-array-max and goes dense.
  // Leaves 2..8194 all share (coreness 1, degree 1), so the stable
  // counting sort keeps them in ascending-id order; assigning hubs to
  // alternating ids scatters each hub's neighbors across the tie block
  // and keeps the run container out of contention (~one run per bit).
  const VertexId n = 140000;
  std::vector<std::pair<VertexId, VertexId>> edges;
  const VertexId hub_a = 0, hub_b = 1;
  for (VertexId i = 0; i < 4096; ++i) {
    edges.push_back({hub_a, 3 + i * 2});  // odd leaves
  }
  for (VertexId i = 0; i < 4097; ++i) {
    edges.push_back({hub_b, 2 + i * 2});  // even leaves
  }
  ZoneFixture f(graph_from_edges(n, edges));
  LazyGraph lazy = f.make();
  lazy.enable_hybrid_rows(std::size_t{64} << 20, 4096, 2.0);
  ASSERT_TRUE(lazy.hybrid_enabled());
  HybridRow ra = lazy.hybrid_row(f.order.orig_to_new[hub_a]);
  HybridRow rb = lazy.hybrid_row(f.order.orig_to_new[hub_b]);
  ASSERT_TRUE(ra.valid());
  ASSERT_TRUE(rb.valid());
  EXPECT_EQ(ra.size(), 4096u);
  EXPECT_EQ(rb.size(), 4097u);
  EXPECT_EQ(ra.kind, RowContainer::kArray);
  EXPECT_NE(rb.kind, RowContainer::kArray);
}

TEST(LazyGraphHybrid, EmptyRowsCostNoBytes) {
  // An isolated vertex sits in the zone (incumbent 0) with an empty
  // filtered neighborhood: its row is valid, empty, and charges nothing.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  ZoneFixture f(graph_from_edges(6, edges));  // vertex 5 isolated
  LazyGraph lazy = f.make();
  lazy.enable_hybrid_rows(1 << 20, 4096, 2.0);
  ASSERT_TRUE(lazy.hybrid_enabled());
  const VertexId iso = f.order.orig_to_new[5];
  ASSERT_GE(iso, lazy.zone_begin());
  HybridRow row = lazy.hybrid_row(iso);
  ASSERT_TRUE(row.valid());
  EXPECT_EQ(row.size(), 0u);
  EXPECT_EQ(row.units, 0u);
  const auto s = lazy.stats();
  EXPECT_EQ(s.bitset_built, 1u);
  EXPECT_EQ(s.hybrid_rows_array, 1u);
  EXPECT_EQ(s.hybrid_array_bytes, 0u);
  EXPECT_EQ(s.bitset_bytes, 0u);
}

TEST(LazyGraphHybrid, BudgetExhaustionFallsBackGracefully) {
  ZoneFixture f(gen::gnp(100, 0.3, 779));
  LazyGraph lazy = f.make();
  // init_zone's bookkeeping plus two words: no non-empty container fits
  // (the smallest carve is one 64-byte line), so the first build
  // exhausts the budget.
  const std::size_t bookkeeping =
      100 * (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  lazy.enable_hybrid_rows(bookkeeping + 16, 4096, 2.0);
  if (!lazy.hybrid_enabled()) GTEST_SKIP() << "bookkeeping estimate too low";
  EXPECT_FALSE(lazy.hybrid_row(0).valid());
  NeighborhoodView view = lazy.membership(0);
  EXPECT_FALSE(view.has_hybrid());
  EXPECT_GT(view.size(), 0u);
  EXPECT_EQ(lazy.stats().bitset_built, 0u);
}

TEST(LazyGraphHybrid, ConcurrentBuildsAreSafe) {
  ZoneFixture f(gen::gnp(400, 0.2, 780));
  LazyGraph lazy = f.make();
  lazy.enable_hybrid_rows(1 << 22, 4096, 2.0);
  ASSERT_TRUE(lazy.hybrid_enabled());
  set_num_threads(8);
  const VertexId zb = lazy.zone_begin();
  const VertexId n = lazy.num_vertices();
  std::atomic<std::size_t> mismatches{0};
  parallel_for(0, (n - zb) * 4, [&](std::size_t i) {
    const VertexId v = zb + static_cast<VertexId>(i % (n - zb));
    HybridRow row = lazy.hybrid_row(v);
    if (!row.valid()) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    NeighborhoodView view = lazy.membership(v);
    if (!view.has_hybrid() || view.size() != row.size()) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  }, 16);
  set_num_threads(0);
  EXPECT_EQ(mismatches.load(), 0u);
  const auto s = lazy.stats();
  EXPECT_EQ(s.bitset_built, static_cast<std::size_t>(n - zb));
  EXPECT_EQ(s.bitset_bytes,
            s.hybrid_array_bytes + s.hybrid_bitset_bytes + s.hybrid_run_bytes);
}

}  // namespace
}  // namespace lazymc
