// Tests for the hopscotch hash set.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "hashset/hopscotch_set.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

TEST(HopscotchSet, EmptySet) {
  HopscotchSet s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(12345));
}

TEST(HopscotchSet, InsertAndContains) {
  HopscotchSet s(8);
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(100));
  EXPECT_TRUE(s.insert(0));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(100));
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(6));
}

TEST(HopscotchSet, DuplicateInsertRejected) {
  HopscotchSet s(4);
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(7));
  EXPECT_EQ(s.size(), 1u);
}

TEST(HopscotchSet, ReservedKeyThrows) {
  HopscotchSet s(4);
  EXPECT_THROW(s.insert(kInvalidVertex), std::invalid_argument);
}

TEST(HopscotchSet, ManyInsertsWithDisplacement) {
  // Force collisions: far more elements than the initial reservation.
  HopscotchSet s(4);
  std::set<VertexId> expected;
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    VertexId v = static_cast<VertexId>(rng.next_below(1 << 20));
    bool fresh = expected.insert(v).second;
    EXPECT_EQ(s.insert(v), fresh);
  }
  EXPECT_EQ(s.size(), expected.size());
  for (VertexId v : expected) EXPECT_TRUE(s.contains(v)) << v;
  // Absent elements stay absent.
  for (int i = 0; i < 2000; ++i) {
    VertexId v = static_cast<VertexId>((1 << 20) + i);
    EXPECT_EQ(s.contains(v), expected.count(v) > 0);
  }
}

TEST(HopscotchSet, AdversarialSequentialKeys) {
  // Sequential keys exercise neighborhood crowding under multiplicative
  // hashing.
  HopscotchSet s(64);
  for (VertexId v = 0; v < 10000; ++v) EXPECT_TRUE(s.insert(v));
  EXPECT_EQ(s.size(), 10000u);
  for (VertexId v = 0; v < 10000; ++v) EXPECT_TRUE(s.contains(v));
  EXPECT_FALSE(s.contains(10001));
}

TEST(HopscotchSet, ForEachVisitsAllOnce) {
  HopscotchSet s(16);
  std::set<VertexId> expected;
  for (VertexId v = 0; v < 500; v += 7) {
    s.insert(v);
    expected.insert(v);
  }
  std::multiset<VertexId> seen;
  s.for_each([&](VertexId v) { seen.insert(v); });
  EXPECT_EQ(seen.size(), expected.size());
  for (VertexId v : expected) EXPECT_EQ(seen.count(v), 1u);
}

TEST(HopscotchSet, ToSortedVector) {
  HopscotchSet s(8);
  for (VertexId v : {42u, 7u, 100u, 3u}) s.insert(v);
  std::vector<VertexId> expected{3, 7, 42, 100};
  EXPECT_EQ(s.to_sorted_vector(), expected);
}

TEST(HopscotchSet, ReserveResets) {
  HopscotchSet s(8);
  s.insert(1);
  s.insert(2);
  s.reserve(100);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
  s.insert(3);
  EXPECT_TRUE(s.contains(3));
}

TEST(HopscotchSet, ConcurrentReadersAfterBuild) {
  HopscotchSet s(1000);
  for (VertexId v = 0; v < 1000; ++v) s.insert(v * 3);
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (VertexId v = 0; v < 3000; ++v) {
        bool expect = (v % 3) == 0;
        if (s.contains(v) != expect) failures++;
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(HopscotchSet, CapacityIsPowerOfTwoAndSufficient) {
  for (std::size_t n : {0u, 1u, 5u, 16u, 100u, 1000u}) {
    HopscotchSet s(n);
    EXPECT_GE(s.capacity(), std::max<std::size_t>(n, 1));
    EXPECT_EQ(s.capacity() & (s.capacity() - 1), 0u) << "capacity not 2^k";
  }
}

}  // namespace
}  // namespace lazymc
