// Tests for NeighborSearch filtering and the systematic search driver.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/neighbor_search.hpp"

namespace lazymc {
namespace {

struct Fixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  Incumbent incumbent;
  std::unique_ptr<LazyGraph> lazy;
  mc::SearchStats stats;

  explicit Fixture(Graph graph) : g(std::move(graph)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
    lazy = std::make_unique<LazyGraph>(g, order, core.coreness,
                                       &incumbent.size_atomic());
  }

  void run_systematic(double density_threshold = 0.10) {
    mc::NeighborSearchOptions opt;
    opt.density_threshold = density_threshold;
    mc::systematic_search(*lazy, incumbent, opt, stats);
  }
};

TEST(SystematicSearch, ExactOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Graph g = gen::gnp(60, 0.2, seed);
    auto ref = baselines::max_clique_reference(g);
    Fixture f(std::move(g));
    f.run_systematic();
    EXPECT_EQ(f.incumbent.size(), ref.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(f.g, f.incumbent.snapshot())) << "seed " << seed;
  }
}

TEST(SystematicSearch, ExactWithVcRouting) {
  // density_threshold 0 routes every searched subgraph through k-VC.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = gen::gnp(40, 0.3, seed);
    auto ref = baselines::max_clique_reference(g);
    Fixture f(std::move(g));
    f.run_systematic(0.0);
    EXPECT_EQ(f.incumbent.size(), ref.size()) << "seed " << seed;
    EXPECT_GT(f.stats.solved_vc.load() + f.stats.pass_filter3.load(), 0u);
  }
}

TEST(SystematicSearch, ExactWithMcOnlyRouting) {
  // density_threshold > 1 makes the density test unreachable: MC only.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = gen::gnp(40, 0.3, seed);
    auto ref = baselines::max_clique_reference(g);
    Fixture f(std::move(g));
    f.run_systematic(1.1);
    EXPECT_EQ(f.incumbent.size(), ref.size()) << "seed " << seed;
    EXPECT_EQ(f.stats.solved_vc.load(), 0u);
  }
}

TEST(SystematicSearch, FindsPlantedCliqueWithoutHeuristics) {
  std::vector<VertexId> members;
  Graph g = gen::plant_clique(gen::gnp(150, 0.04, 21), 12, 22, &members);
  Fixture f(std::move(g));
  f.run_systematic();
  EXPECT_GE(f.incumbent.size(), 12u);
  EXPECT_TRUE(is_clique(f.g, f.incumbent.snapshot()));
}

TEST(SystematicSearch, StatsFunnelIsMonotone) {
  Fixture f(gen::gnp(80, 0.15, 23));
  f.run_systematic();
  auto evaluated = f.stats.evaluated.load();
  auto f1 = f.stats.pass_filter1.load();
  auto f2 = f.stats.pass_filter2.load();
  auto f3 = f.stats.pass_filter3.load();
  EXPECT_GE(evaluated, f1);
  EXPECT_GE(f1, f2);
  EXPECT_GE(f2, f3);
  EXPECT_EQ(f3, f.stats.solved_mc.load() + f.stats.solved_vc.load());
}

TEST(SystematicSearch, PrimedIncumbentSkipsWork) {
  Graph g = gen::gnp(80, 0.15, 25);
  auto ref = baselines::max_clique_reference(g);

  Fixture cold(std::move(g));
  cold.run_systematic();
  auto cold_evaluated = cold.stats.evaluated.load();

  Fixture warm(cold.g);
  warm.incumbent.offer(ref);  // prime with the optimum
  warm.run_systematic();
  EXPECT_EQ(warm.incumbent.size(), ref.size());
  // With the optimum known, no improving clique exists and fewer (or
  // equal) neighborhoods reach the solvers.
  EXPECT_LE(warm.stats.pass_filter3.load(), cold.stats.pass_filter3.load());
  EXPECT_LE(warm.stats.evaluated.load(), cold_evaluated);
}

TEST(NeighborSearch, SingleVertexNeighborhood) {
  Fixture f(gen::complete(6));
  // Search the lowest-ordered vertex directly.
  mc::NeighborSearchOptions opt;
  mc::neighbor_search(*f.lazy, 0, f.incumbent, opt, f.stats);
  EXPECT_EQ(f.incumbent.size(), 6u);
  EXPECT_EQ(f.stats.evaluated.load(), 1u);
}

TEST(NeighborSearch, RespectsCancelledControl) {
  Fixture f(gen::gnp(60, 0.4, 27));
  SolveControl control;
  control.cancel();
  mc::NeighborSearchOptions opt;
  opt.control = &control;
  mc::systematic_search(*f.lazy, f.incumbent, opt, f.stats);
  // Cancelled before any solver call: no subgraph solved.
  EXPECT_EQ(f.stats.solved_mc.load() + f.stats.solved_vc.load(), 0u);
}

TEST(SystematicSearch, ZeroGapGraphLittleSystematicWork) {
  // When a heuristic already found a clique of size degeneracy+1, the
  // systematic phase has nothing to prove: every level is below |C*|.
  Graph bg = gen::barabasi_albert(200, 3, 29);
  Graph g = gen::plant_clique(bg, 10, 30);
  auto ref = baselines::max_clique_reference(g);
  ASSERT_EQ(ref.size(), 10u);
  Fixture f(std::move(g));
  f.incumbent.offer(ref);
  f.run_systematic();
  // Degeneracy is 9 (the planted clique), |C*| = 10 > 9: zero evaluations.
  EXPECT_EQ(f.stats.evaluated.load(), 0u);
}

TEST(SystematicSearch, EmptyGraph) {
  Fixture f(Graph{});
  f.run_systematic();
  EXPECT_EQ(f.incumbent.size(), 0u);
}

TEST(SystematicSearch, WorkSecondsAccumulate) {
  Fixture f(gen::gnp(100, 0.2, 31));
  f.run_systematic();
  EXPECT_GT(f.stats.work_seconds(), 0.0);
  EXPECT_GE(f.stats.filter_ns.load(), 0u);
}

}  // namespace
}  // namespace lazymc
