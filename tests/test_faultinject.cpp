// Tests for the deterministic fault-injection registry (support/faultinject)
// and the solver's graceful-degradation guarantees at each injection site.
//
// Trigger-semantics tests run only in -DLAZYMC_FAULTS=ON builds (they
// GTEST_SKIP otherwise); the OFF-build contract — fault plans are rejected
// loudly instead of silently running clean — is tested in every build.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "mc/lazymc.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

std::map<std::string, faults::SiteStats> sites_by_name() {
  std::map<std::string, faults::SiteStats> out;
  for (auto& s : faults::snapshot()) out[s.name] = s;
  return out;
}

// Every test starts and ends with a clean registry (the registry is
// process-global; leaking an armed trigger would poison later tests).
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override { faults::reset(); }
  void TearDown() override {
    faults::reset();
    set_num_threads(1);
  }
};

TEST(FaultInjectBuild, EmptySpecsAreAcceptedInEveryBuild) {
  EXPECT_NO_THROW(faults::configure(""));
  EXPECT_NO_THROW(faults::configure(","));
  EXPECT_NO_THROW(faults::configure_from_env());  // LAZYMC_FAULTS unset
}

TEST(FaultInjectBuild, OffBuildRejectsFaultPlans) {
  if (faults::enabled()) GTEST_SKIP() << "fault-injection build";
  // Silently running "clean" would report a fault-free pass the
  // experiment never executed, so this must be a hard input error.
  try {
    faults::configure("slab.alloc=nth:1");
    FAIL() << "expected Error(kInput)";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInput);
  }
  EXPECT_TRUE(faults::snapshot().empty());
}

TEST_F(FaultInject, MalformedSpecsAreInputErrors) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  const char* bad[] = {
      "noequals",        "=nth:1",      "x=",          "x=nth",
      "x=nth:0",         "x=nth:abc",   "x=every:0",   "x=prob:2",
      "x=prob:-0.5",     "x=prob:abc",  "x=magic:3",
  };
  for (const char* spec : bad) {
    try {
      faults::configure(spec);
      FAIL() << "accepted bad spec: " << spec;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kInput) << spec;
    }
  }
}

TEST_F(FaultInject, NthFiresExactlyAtTheNthHit) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  faults::configure("test.nth=nth:3");
  std::vector<int> fired_at;
  for (int i = 1; i <= 10; ++i) {
    if (LAZYMC_FAULT_FIRED("test.nth")) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, std::vector<int>{3});
  auto sites = sites_by_name();
  EXPECT_EQ(sites.at("test.nth").hits, 10u);
  EXPECT_EQ(sites.at("test.nth").fires, 1u);
  EXPECT_TRUE(sites.at("test.nth").armed);
}

TEST_F(FaultInject, EveryKFiresPeriodically) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  faults::configure("test.every=every:4");
  std::vector<int> fired_at;
  for (int i = 1; i <= 12; ++i) {
    if (LAZYMC_FAULT_FIRED("test.every")) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{4, 8, 12}));
}

TEST_F(FaultInject, ProbabilityEndpointsAreExact) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  faults::configure("test.p1=prob:1,test.p0=prob:0");
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(LAZYMC_FAULT_FIRED("test.p1"));
    EXPECT_FALSE(LAZYMC_FAULT_FIRED("test.p0"));
  }
}

TEST_F(FaultInject, SeededProbabilityIsDeterministic) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  auto run = [] {
    faults::configure("test.prob=prob:0.5:42");
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(LAZYMC_FAULT_FIRED("test.prob"));
    }
    return pattern;
  };
  const auto first = run();
  faults::reset();
  const auto second = run();
  EXPECT_EQ(first, second);
  // Sanity: p=0.5 over 64 draws fires sometimes but not always.
  const auto fires = sites_by_name().at("test.prob").fires;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultInject, UnarmedSitesCountHitsWithoutFiring) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(LAZYMC_FAULT_FIRED("test.unarmed"));
  }
  auto sites = sites_by_name();
  EXPECT_EQ(sites.at("test.unarmed").hits, 5u);
  EXPECT_EQ(sites.at("test.unarmed").fires, 0u);
  EXPECT_FALSE(sites.at("test.unarmed").armed);
}

TEST_F(FaultInject, MisspelledSiteShowsUpArmedWithZeroHits) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  // A typo in a fault plan must be diagnosable from the snapshot: the
  // site exists (configure interns it) but nothing ever polls it.
  faults::configure("no.such.site=nth:1");
  auto r = mc::lazy_mc(gen::gnp(40, 0.3, 3));
  EXPECT_FALSE(r.clique.empty());
  auto sites = sites_by_name();
  ASSERT_TRUE(sites.count("no.such.site"));
  EXPECT_EQ(sites.at("no.such.site").hits, 0u);
  EXPECT_TRUE(sites.at("no.such.site").armed);
}

// --- graceful degradation at the solver sites ---------------------------

// A config that exercises the representation-heavy paths: zone bitset
// rows, sparse word sets, and subproblem splitting.
mc::LazyMCConfig stress_config() {
  mc::LazyMCConfig c;
  c.neighborhood_rep = NeighborhoodRep::kBitset;
  c.split_mode = mc::SplitMode::kOn;
  c.split_min_cands = 1;
  c.split_depth = 3;
  return c;
}

// A seed whose gnp(70, 0.18) instance the heuristics cannot certify, so
// the systematic phase actually processes work (worker sites get hit).
std::uint64_t find_systematic_seed() {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto r = mc::lazy_mc(gen::gnp(70, 0.18, seed));
    if (r.search.evaluated > 0) return seed;
  }
  return 0;
}

TEST_F(FaultInject, AllocationFaultsDegradeRepresentationNotOmega) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  Graph g = gen::gnp(60, 0.5, 7);
  const auto expected = baselines::max_clique_reference(g).size();

  // Clean run first: the bitset representation must actually be in play,
  // otherwise this test exercises nothing.
  auto clean = mc::lazy_mc(g, stress_config());
  ASSERT_EQ(clean.omega, expected);
  ASSERT_GT(clean.lazy_graph.bitset_built, 0u);

  // The clean run advanced the sites' hit counters; zero them so nth:1
  // counts from the injection run's first hit.
  faults::reset();
  faults::configure("bitset.row=every:2,slab.alloc=nth:1");
  auto r = mc::lazy_mc(g, stress_config());
  EXPECT_EQ(r.omega, expected);
  EXPECT_TRUE(is_clique(g, r.clique));
  // Roughly every second row build failed and fell back per-vertex.
  EXPECT_GT(r.lazy_graph.bitset_degraded, 0u);
  auto sites = sites_by_name();
  EXPECT_GE(sites.at("bitset.row").fires, 1u);
  EXPECT_GE(sites.at("slab.alloc").fires, 1u);
}

TEST_F(FaultInject, WordSetFaultsFallBackToScalarKernels) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  const std::uint64_t seed = find_systematic_seed();
  ASSERT_NE(seed, 0u) << "no instance reached the systematic phase";
  Graph g = gen::gnp(70, 0.18, seed);
  const auto expected = baselines::max_clique_reference(g).size();

  faults::reset();  // the seed probe advanced the hit counters
  faults::configure("wordset.build=every:2");
  auto r = mc::lazy_mc(g, stress_config());
  EXPECT_EQ(r.omega, expected);
  EXPECT_TRUE(is_clique(g, r.clique));
  auto sites = sites_by_name();
  if (sites.at("wordset.build").hits > 0) {
    EXPECT_GE(sites.at("wordset.build").fires, 1u);
    EXPECT_EQ(r.search.degraded_wordsets, sites.at("wordset.build").fires);
  }
}

TEST_F(FaultInject, TaskMaterializationFaultFallsBackToInlineSolve) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  const std::uint64_t seed = find_systematic_seed();
  ASSERT_NE(seed, 0u) << "no instance reached the systematic phase";
  set_num_threads(4);
  Graph g = gen::gnp(70, 0.18, seed);
  const auto expected = baselines::max_clique_reference(g).size();

  faults::reset();  // the seed probe advanced the hit counters
  faults::configure("task.materialize=nth:1");
  auto r = mc::lazy_mc(g, stress_config());
  EXPECT_EQ(r.omega, expected);
  EXPECT_TRUE(is_clique(g, r.clique));
  auto sites = sites_by_name();
  if (sites.at("task.materialize").hits > 0) {
    EXPECT_GE(sites.at("task.materialize").fires, 1u);
    EXPECT_GT(r.search.degraded_splits, 0u);
  }
}

TEST_F(FaultInject, WorkerExceptionCancelsCleanlyAndPoolSurvives) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  const std::uint64_t seed = find_systematic_seed();
  ASSERT_NE(seed, 0u) << "no instance reached the systematic phase";
  set_num_threads(4);
  Graph g = gen::gnp(70, 0.18, seed);
  const auto expected = baselines::max_clique_reference(g).size();

  faults::reset();  // the seed probe advanced the hit counters
  faults::configure("worker.exec=nth:1");
  try {
    (void)mc::lazy_mc(g, stress_config());
    FAIL() << "expected the injected worker fault to surface";
  } catch (const Error& e) {
    // Structured and transient: the batch driver's retry policy applies.
    EXPECT_EQ(e.kind(), ErrorKind::kResource);
    EXPECT_TRUE(e.transient());
  }
  EXPECT_GE(sites_by_name().at("worker.exec").fires, 1u);

  // The pool, arenas and registry must be reusable in-process after the
  // failed solve unwound.
  faults::reset();
  auto r = mc::lazy_mc(g, stress_config());
  EXPECT_EQ(r.omega, expected);
  EXPECT_TRUE(is_clique(g, r.clique));
}

TEST_F(FaultInject, InjectedStallOnlySlowsTheSolve) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  const std::uint64_t seed = find_systematic_seed();
  ASSERT_NE(seed, 0u) << "no instance reached the systematic phase";
  set_num_threads(4);
  Graph g = gen::gnp(70, 0.18, seed);
  const auto expected = baselines::max_clique_reference(g).size();

  faults::reset();  // the seed probe advanced the hit counters
  faults::configure("worker.stall=every:3");
  auto r = mc::lazy_mc(g, stress_config());
  EXPECT_EQ(r.omega, expected);
  EXPECT_TRUE(is_clique(g, r.clique));
}

TEST_F(FaultInject, EveryRegisteredSiteFiresAcrossTheMatrix) {
  if (!faults::enabled()) GTEST_SKIP() << "needs -DLAZYMC_FAULTS=ON";
  const std::uint64_t seed = find_systematic_seed();
  ASSERT_NE(seed, 0u) << "no instance reached the systematic phase";
  set_num_threads(4);
  Graph g = gen::gnp(70, 0.18, seed);
  Graph dense = gen::gnp(60, 0.5, 7);

  faults::reset();  // the seed probe advanced the hit counters
  faults::configure(
      "slab.alloc=nth:1,bitset.row=every:2,wordset.build=every:2,"
      "task.materialize=nth:1,worker.stall=nth:1");
  (void)mc::lazy_mc(dense, stress_config());
  (void)mc::lazy_mc(g, stress_config());
  // worker.exec was already polled by the solves above, so nth:1 would
  // never match again; every:1 fires on the next hit regardless.
  faults::configure("worker.exec=every:1");
  try {
    (void)mc::lazy_mc(g, stress_config());
  } catch (const faults::InjectedFault&) {
  }

  auto sites = sites_by_name();
  for (const char* name : {"slab.alloc", "bitset.row", "wordset.build",
                           "task.materialize", "worker.exec",
                           "worker.stall"}) {
    ASSERT_TRUE(sites.count(name)) << name << " never interned";
    EXPECT_GE(sites.at(name).fires, 1u) << name << " never fired";
  }
}

}  // namespace
}  // namespace lazymc
