// Integration tests for the full LazyMC pipeline (Algorithm 1).
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

TEST(LazyMC, EmptyGraph) {
  auto r = mc::lazy_mc(Graph{});
  EXPECT_EQ(r.omega, 0u);
  EXPECT_TRUE(r.clique.empty());
}

TEST(LazyMC, SingleVertexAndSingleEdge) {
  GraphBuilder b1(1);
  auto r1 = mc::lazy_mc(b1.build());
  EXPECT_EQ(r1.omega, 1u);

  auto r2 = mc::lazy_mc(graph_from_edges(2, {{0, 1}}));
  EXPECT_EQ(r2.omega, 2u);
}

TEST(LazyMC, CompleteGraph) {
  auto r = mc::lazy_mc(gen::complete(20));
  EXPECT_EQ(r.omega, 20u);
  EXPECT_FALSE(r.timed_out);
}

TEST(LazyMC, BipartiteOmegaTwo) {
  auto r = mc::lazy_mc(gen::bipartite(40, 40, 0.2, 3));
  EXPECT_EQ(r.omega, 2u);
}

TEST(LazyMC, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Graph g = gen::gnp(70, 0.2, seed);
    auto ref = baselines::max_clique_reference(g);
    auto r = mc::lazy_mc(g);
    EXPECT_EQ(r.omega, ref.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(g, r.clique)) << "seed " << seed;
  }
}

TEST(LazyMC, MatchesReferenceOnDenseGraphs) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    Graph g = gen::gnp(45, 0.6, seed);
    auto ref = baselines::max_clique_reference(g);
    auto r = mc::lazy_mc(g);
    EXPECT_EQ(r.omega, ref.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(g, r.clique)) << "seed " << seed;
  }
}

TEST(LazyMC, FindsPlantedClique) {
  std::vector<VertexId> members;
  Graph g = gen::plant_clique(gen::gnp(300, 0.02, 31), 15, 32, &members);
  auto r = mc::lazy_mc(g);
  EXPECT_GE(r.omega, 15u);
  EXPECT_TRUE(is_clique(g, r.clique));
}

TEST(LazyMC, HeuristicOmegasAreLowerBounds) {
  Graph g = gen::plant_clique(gen::gnp(150, 0.05, 33), 12, 34);
  auto ref = baselines::max_clique_reference(g);
  auto r = mc::lazy_mc(g);
  EXPECT_LE(r.heuristic_degree_omega, r.omega);
  EXPECT_LE(r.heuristic_coreness_omega, r.omega);
  EXPECT_GE(r.heuristic_coreness_omega, r.heuristic_degree_omega);
  EXPECT_EQ(r.omega, ref.size());
}

TEST(LazyMC, OmegaBoundedByDegeneracyPlusOne) {
  for (std::uint64_t seed = 40; seed <= 45; ++seed) {
    Graph g = gen::gnp(80, 0.15, seed);
    auto r = mc::lazy_mc(g);
    EXPECT_LE(r.omega, r.degeneracy + 1) << "seed " << seed;
  }
}

TEST(LazyMC, AllPrepopulationPoliciesAgree) {
  Graph g = gen::plant_clique(gen::gnp(100, 0.1, 47), 10, 48);
  auto ref = baselines::max_clique_reference(g);
  for (auto policy : {Prepopulate::kNone, Prepopulate::kMustSubgraph,
                      Prepopulate::kAll}) {
    mc::LazyMCConfig cfg;
    cfg.prepopulate = policy;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_EQ(r.omega, ref.size()) << "policy " << static_cast<int>(policy);
  }
}

TEST(LazyMC, EarlyExitAblationsAgree) {
  Graph g = gen::plant_clique(gen::gnp(90, 0.12, 49), 9, 50);
  auto ref = baselines::max_clique_reference(g);
  for (bool early : {true, false}) {
    for (bool second : {true, false}) {
      mc::LazyMCConfig cfg;
      cfg.early_exit_intersections = early;
      cfg.second_exit = second;
      auto r = mc::lazy_mc(g, cfg);
      EXPECT_EQ(r.omega, ref.size()) << early << "/" << second;
    }
  }
}

TEST(LazyMC, DensityThresholdSweepAgrees) {
  Graph g = gen::gene_blocks(80, 8, 25, 0.8, 51);
  auto ref = baselines::max_clique_reference(g);
  for (double phi : {0.0, 0.1, 0.5, 0.9, 1.1}) {
    mc::LazyMCConfig cfg;
    cfg.density_threshold = phi;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_EQ(r.omega, ref.size()) << "phi " << phi;
  }
}

TEST(LazyMC, ThreadCountsAgree) {
  Graph g = gen::plant_clique(gen::gnp(120, 0.08, 53), 11, 54);
  auto ref = baselines::max_clique_reference(g);
  for (std::size_t threads : {1u, 2u, 4u}) {
    set_num_threads(threads);
    auto r = mc::lazy_mc(g);
    EXPECT_EQ(r.omega, ref.size()) << "threads " << threads;
    EXPECT_TRUE(is_clique(g, r.clique));
  }
  set_num_threads(0);  // restore default
}

TEST(LazyMC, PhaseTimesCoverRun) {
  Graph g = gen::gnp(100, 0.1, 55);
  auto r = mc::lazy_mc(g);
  EXPECT_GT(r.phases.total(), 0.0);
  EXPECT_GE(r.phases.degree_heuristic, 0.0);
  EXPECT_GE(r.phases.preprocessing, 0.0);
  EXPECT_GE(r.phases.systematic, 0.0);
}

TEST(LazyMC, TimeoutFlagPropagates) {
  // Dense, large: cannot finish instantly; with an expired budget the
  // result must carry timed_out (omega may be a lower bound only).
  Graph g = gen::gnp(300, 0.5, 57);
  mc::LazyMCConfig cfg;
  cfg.time_limit_seconds = 0.0;
  auto r = mc::lazy_mc(g, cfg);
  EXPECT_TRUE(r.timed_out);
}

TEST(LazyMC, CliqueIsSortedAndValid) {
  Graph g = gen::plant_clique(gen::gnp(80, 0.1, 59), 9, 60);
  auto r = mc::lazy_mc(g);
  EXPECT_TRUE(std::is_sorted(r.clique.begin(), r.clique.end()));
  EXPECT_TRUE(is_clique(g, r.clique));
  EXPECT_EQ(r.clique.size(), r.omega);
}

TEST(LazyMC, SolvesTinySuiteInstancesExactly) {
  // Cross-check a few structurally diverse suite instances against the
  // reference solver (kTiny keeps reference solves cheap).
  for (const char* name : {"USAroad", "dblp", "yahoo", "HS-CX", "talk"}) {
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    auto ref = baselines::max_clique_reference(inst.graph);
    auto r = mc::lazy_mc(inst.graph);
    EXPECT_EQ(r.omega, ref.size()) << name;
    EXPECT_TRUE(is_clique(inst.graph, r.clique)) << name;
  }
}

}  // namespace
}  // namespace lazymc
