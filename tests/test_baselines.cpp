// Tests for the PMC-like, dOmega-like and MC-BRB-like baselines: all must
// compute the exact maximum clique and agree with LazyMC.
#include <gtest/gtest.h>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "mc/lazymc.hpp"

namespace lazymc {
namespace {

using baselines::BaselineResult;

void expect_exact(const Graph& g, const BaselineResult& r, std::size_t omega,
                  const std::string& label) {
  EXPECT_EQ(r.omega, omega) << label;
  EXPECT_EQ(r.clique.size(), omega) << label;
  EXPECT_TRUE(is_clique(g, r.clique)) << label;
  EXPECT_FALSE(r.timed_out) << label;
}

TEST(Baselines, TrivialGraphs) {
  Graph k1 = [] {
    GraphBuilder b(1);
    return b.build();
  }();
  Graph edge = graph_from_edges(2, {{0, 1}});
  Graph k6 = gen::complete(6);
  for (const auto& [g, omega] :
       std::vector<std::pair<Graph, std::size_t>>{{k1, 1}, {edge, 2}, {k6, 6}}) {
    expect_exact(g, baselines::pmc_solve(g), omega, "pmc");
    expect_exact(g, baselines::domega_solve(g, baselines::DomegaMode::kLinearScan),
                 omega, "domega-ls");
    expect_exact(g,
                 baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch),
                 omega, "domega-bs");
    expect_exact(g, baselines::mcbrb_solve(g), omega, "mcbrb");
  }
}

TEST(Baselines, PmcMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g = gen::gnp(50, 0.25, seed);
    auto ref = baselines::max_clique_reference(g);
    expect_exact(g, baselines::pmc_solve(g), ref.size(),
                 "pmc seed " + std::to_string(seed));
  }
}

TEST(Baselines, DomegaLsMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = gen::gnp(40, 0.25, seed);
    auto ref = baselines::max_clique_reference(g);
    expect_exact(g,
                 baselines::domega_solve(g, baselines::DomegaMode::kLinearScan),
                 ref.size(), "domega-ls seed " + std::to_string(seed));
  }
}

TEST(Baselines, DomegaBsMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = gen::gnp(40, 0.25, seed);
    auto ref = baselines::max_clique_reference(g);
    expect_exact(
        g, baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch),
        ref.size(), "domega-bs seed " + std::to_string(seed));
  }
}

TEST(Baselines, McbrbMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g = gen::gnp(50, 0.25, seed);
    auto ref = baselines::max_clique_reference(g);
    expect_exact(g, baselines::mcbrb_solve(g), ref.size(),
                 "mcbrb seed " + std::to_string(seed));
  }
}

TEST(Baselines, AllFiveSolversAgreeOnStructuredGraphs) {
  std::vector<Graph> graphs;
  graphs.push_back(gen::plant_clique(gen::gnp(80, 0.08, 11), 9, 12));
  graphs.push_back(gen::bipartite(25, 25, 0.3, 13));
  graphs.push_back(gen::planted_partition(5, 12, 0.9, 2.0, 15));
  graphs.push_back(gen::gene_blocks(50, 6, 15, 0.8, 17));
  graphs.push_back(gen::watts_strogatz(60, 6, 0.2, 19));
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    auto lazy = mc::lazy_mc(g);
    auto pmc = baselines::pmc_solve(g);
    auto ls = baselines::domega_solve(g, baselines::DomegaMode::kLinearScan);
    auto bs = baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch);
    auto brb = baselines::mcbrb_solve(g);
    EXPECT_EQ(pmc.omega, lazy.omega) << "graph " << i;
    EXPECT_EQ(ls.omega, lazy.omega) << "graph " << i;
    EXPECT_EQ(bs.omega, lazy.omega) << "graph " << i;
    EXPECT_EQ(brb.omega, lazy.omega) << "graph " << i;
  }
}

TEST(Baselines, AgreeOnTinySuiteInstances) {
  for (const char* name : {"CAroad", "hudong", "WormNet", "pokec"}) {
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    const Graph& g = inst.graph;
    auto lazy = mc::lazy_mc(g);
    auto pmc = baselines::pmc_solve(g);
    auto brb = baselines::mcbrb_solve(g);
    EXPECT_EQ(pmc.omega, lazy.omega) << name;
    EXPECT_EQ(brb.omega, lazy.omega) << name;
    EXPECT_TRUE(is_clique(g, pmc.clique)) << name;
    EXPECT_TRUE(is_clique(g, brb.clique)) << name;
  }
}

TEST(Baselines, TimeoutProducesFlag) {
  Graph g = gen::gnp(200, 0.5, 21);
  baselines::PmcOptions pmc_opt;
  pmc_opt.time_limit_seconds = 0.0;
  auto pmc = baselines::pmc_solve(g, pmc_opt);
  EXPECT_TRUE(pmc.timed_out);

  baselines::DomegaOptions d_opt;
  d_opt.time_limit_seconds = 0.0;
  auto ls = baselines::domega_solve(g, baselines::DomegaMode::kLinearScan, d_opt);
  EXPECT_TRUE(ls.timed_out);

  baselines::McBrbOptions m_opt;
  m_opt.time_limit_seconds = 0.0;
  auto brb = baselines::mcbrb_solve(g, m_opt);
  EXPECT_TRUE(brb.timed_out);
}

TEST(Baselines, ReferenceNaiveAndBBAgree) {
  for (std::uint64_t seed = 30; seed <= 42; ++seed) {
    Graph g = gen::gnp(15, 0.45, seed);
    auto naive = baselines::max_clique_naive(g);
    auto ref = baselines::max_clique_reference(g);
    EXPECT_EQ(ref.size(), naive.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(g, ref));
    EXPECT_TRUE(is_clique(g, naive));
  }
}

TEST(Baselines, NaiveRejectsLargeGraphs) {
  EXPECT_THROW(baselines::max_clique_naive(gen::complete(25)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lazymc
