// Tests for maximum clique via k-VC on the complement (algorithmic choice).
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "vc/mc_via_vc.hpp"

namespace lazymc {
namespace {

DenseSubgraph induce_all(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return induce_dense(g, all);
}

bool local_clique(const DenseSubgraph& s, const std::vector<VertexId>& c) {
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      if (!s.adj[c[i]].test(c[j])) return false;
    }
  }
  return true;
}

TEST(McViaVc, CompleteGraph) {
  DenseSubgraph s = induce_all(gen::complete(8));
  auto r = vc::max_clique_via_vc(s, 0);
  EXPECT_EQ(r.clique.size(), 8u);
}

TEST(McViaVc, EdgelessGraph) {
  GraphBuilder b(6);
  DenseSubgraph s = induce_all(b.build());
  auto r = vc::max_clique_via_vc(s, 0);
  EXPECT_EQ(r.clique.size(), 1u);
}

TEST(McViaVc, MatchesNaiveOnDenseRandomGraphs) {
  // Dense graphs are the regime this path is chosen for.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Graph g = gen::gnp(16, 0.7, seed);
    auto naive = baselines::max_clique_naive(g);
    DenseSubgraph s = induce_all(g);
    auto r = vc::max_clique_via_vc(s, 0);
    EXPECT_EQ(r.clique.size(), naive.size()) << "seed " << seed;
    EXPECT_TRUE(local_clique(s, r.clique)) << "seed " << seed;
  }
}

TEST(McViaVc, RespectsLowerBound) {
  DenseSubgraph s = induce_all(gen::cycle(8));  // omega = 2
  auto r = vc::max_clique_via_vc(s, 2);
  EXPECT_TRUE(r.clique.empty());  // nothing > 2 exists
  auto r1 = vc::max_clique_via_vc(s, 1);
  EXPECT_EQ(r1.clique.size(), 2u);
}

TEST(McViaVc, LowerBoundEqualToSizeReturnsEmpty) {
  DenseSubgraph s = induce_all(gen::complete(5));
  auto r = vc::max_clique_via_vc(s, 5);
  EXPECT_TRUE(r.clique.empty());
  auto r4 = vc::max_clique_via_vc(s, 4);
  EXPECT_EQ(r4.clique.size(), 5u);
}

TEST(McViaVc, AgreesWithBBOnDenseSuiteLikeBlocks) {
  Graph g = gen::gene_blocks(60, 6, 20, 0.85, 7);
  auto ref = baselines::max_clique_reference(g);
  DenseSubgraph s = induce_all(g);
  auto r = vc::max_clique_via_vc(s, 0);
  EXPECT_EQ(r.clique.size(), ref.size());
  EXPECT_TRUE(local_clique(s, r.clique));
}

TEST(McViaVc, CancelledControlStops) {
  Graph g = gen::gnp(60, 0.8, 9);
  DenseSubgraph s = induce_all(g);
  SolveControl control;
  control.cancel();
  auto r = vc::max_clique_via_vc(s, 0, &control);
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.clique.empty());
}

TEST(McViaVc, NodesAccumulateAcrossProbes) {
  Graph g = gen::gnp(20, 0.6, 11);
  DenseSubgraph s = induce_all(g);
  auto r = vc::max_clique_via_vc(s, 0);
  EXPECT_GT(r.nodes, 0u);
}

}  // namespace
}  // namespace lazymc
