// Tests for IntersectPolicy (the Fig. 5 ablation switch) and cross-module
// consistency checks between MCE and the MC solvers on suite instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "hashset/hopscotch_set.hpp"
#include "mc/intersect_policy.hpp"
#include "mc/lazymc.hpp"
#include "mce/mce.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

HopscotchSet make_set(const std::vector<VertexId>& v) {
  HopscotchSet s(v.size());
  for (VertexId x : v) s.insert(x);
  return s;
}

TEST(IntersectPolicy, DisabledPathMatchesEnabledOnAllThresholds) {
  mc::IntersectPolicy on{true, true};
  mc::IntersectPolicy off{false, false};
  mc::IntersectPolicy no_second{true, false};
  Rng rng(71);
  for (int round = 0; round < 150; ++round) {
    std::vector<VertexId> a, b;
    for (int i = 0; i < 25; ++i) {
      a.push_back(static_cast<VertexId>(rng.next_below(40)));
      b.push_back(static_cast<VertexId>(rng.next_below(40)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    HopscotchSet bs = make_set(b);
    std::span<const VertexId> as(a);
    for (std::int64_t theta = -1; theta <= 10; ++theta) {
      EXPECT_EQ(on.size_gt_bool(as, bs, theta), off.size_gt_bool(as, bs, theta));
      EXPECT_EQ(on.size_gt_bool(as, bs, theta),
                no_second.size_gt_bool(as, bs, theta));
      int v_on = on.size_gt_val(as, bs, theta);
      int v_off = off.size_gt_val(as, bs, theta);
      EXPECT_EQ(v_on, v_off);
      std::vector<VertexId> out_on(a.size() + 1), out_off(a.size() + 1);
      int g_on = on.gt(as, bs, out_on.data(), theta);
      int g_off = off.gt(as, bs, out_off.data(), theta);
      EXPECT_EQ(g_on == kTooSmall, g_off == kTooSmall);
      if (g_on != kTooSmall) {
        EXPECT_EQ(g_on, g_off);
        out_on.resize(g_on);
        out_off.resize(g_off);
        std::sort(out_on.begin(), out_on.end());
        std::sort(out_off.begin(), out_off.end());
        EXPECT_EQ(out_on, out_off);
      }
    }
  }
}

TEST(MceCrossCheck, MaxMaximalEqualsOmegaOnSuiteInstances) {
  for (const char* name : {"CAroad", "dblp", "yahoo", "pokec"}) {
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    auto mce_r = mce::count_maximal_cliques(inst.graph);
    auto mc_r = mc::lazy_mc(inst.graph);
    EXPECT_EQ(mce_r.max_size, mc_r.omega) << name;
    EXPECT_GT(mce_r.count, 0u) << name;
  }
}

TEST(MceCrossCheck, CliqueCountAtLeastVertexCoverOfEdges) {
  // Every edge lies in some maximal clique, and a maximal clique on k
  // vertices covers C(k,2) edges: count * C(max,2) >= m.
  Graph g = gen::gnp(60, 0.15, 73);
  auto r = mce::count_maximal_cliques(g);
  EXPECT_GE(r.count * (r.max_size * (r.max_size - 1) / 2), g.num_edges());
}

TEST(PhaseTimes, TotalIsSumOfParts) {
  mc::PhaseTimes t;
  t.degree_heuristic = 1;
  t.preprocessing = 2;
  t.must_subgraph = 3;
  t.coreness_heuristic = 4;
  t.systematic = 5;
  EXPECT_DOUBLE_EQ(t.total(), 15.0);
}

TEST(SearchStatsSnapshot, WorkSecondsAggregates) {
  mc::SearchStatsSnapshot s;
  s.filter_seconds = 0.5;
  s.mc_seconds = 0.25;
  s.vc_seconds = 0.25;
  EXPECT_DOUBLE_EQ(s.work_seconds(), 1.0);
}

}  // namespace
}  // namespace lazymc
