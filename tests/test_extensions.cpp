// Tests for extension features: configurable filter rounds, the parallel
// (coreness, degree) sort, and the k-VC matching bound.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"
#include "vc/kvc.hpp"

namespace lazymc {
namespace {

TEST(FilterRounds, AllRoundCountsGiveExactAnswer) {
  Graph g = gen::plant_clique(gen::gnp(90, 0.15, 61), 10, 62);
  auto ref = baselines::max_clique_reference(g);
  for (unsigned rounds : {1u, 2u, 3u, 5u}) {
    mc::LazyMCConfig cfg;
    cfg.degree_filter_rounds = rounds;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_EQ(r.omega, ref.size()) << "rounds " << rounds;
  }
}

TEST(FilterRounds, MoreRoundsNeverSearchMore) {
  Graph g = gen::gnp(120, 0.15, 63);
  std::uint64_t searched_prev = ~0ull;
  for (unsigned rounds : {1u, 2u, 4u}) {
    mc::LazyMCConfig cfg;
    cfg.degree_filter_rounds = rounds;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_LE(r.search.pass_filter3, searched_prev) << "rounds " << rounds;
    searched_prev = r.search.pass_filter3;
  }
}

TEST(ParallelOrder, MatchesSequentialExactly) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g = gen::rmat(10, 8, 0.5, 0.2, 0.2, seed);
    auto core = kcore::coreness(g);
    for (std::size_t threads : {1u, 2u, 4u}) {
      set_num_threads(threads);
      auto seq = kcore::order_by_coreness_degree(g, core.coreness);
      auto par = kcore::order_by_coreness_degree_parallel(g, core.coreness);
      EXPECT_EQ(par.new_to_orig, seq.new_to_orig)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.orig_to_new, seq.orig_to_new);
    }
  }
  set_num_threads(0);
}

TEST(ParallelOrder, SmallInputsFallBackCorrectly) {
  Graph g = gen::gnp(50, 0.2, 5);  // below the parallel cutoff
  auto core = kcore::coreness(g);
  auto seq = kcore::order_by_coreness_degree(g, core.coreness);
  auto par = kcore::order_by_coreness_degree_parallel(g, core.coreness);
  EXPECT_EQ(par.new_to_orig, seq.new_to_orig);
}

TEST(KvcMatchingBound, LargeKInfeasibleProvedQuickly) {
  // A perfect matching of size 40 on 80 vertices: any VC needs >= 40
  // vertices, so k = 39 is infeasible.  The matching bound proves this at
  // the root instead of branching.
  GraphBuilder b(80);
  for (VertexId i = 0; i < 40; ++i) b.add_edge(2 * i, 2 * i + 1);
  // Degree-1 kernelisation would solve a bare matching; densify it so
  // branching would otherwise be needed.
  Graph matching = b.build();
  Graph noise = gen::gnp(80, 0.3, 71);
  Graph g = gen::graph_union(matching, noise);
  DenseSubgraph s = [&] {
    std::vector<VertexId> all(80);
    for (VertexId v = 0; v < 80; ++v) all[v] = v;
    return induce_dense(g, all);
  }();
  std::size_t truth = vc::minimum_vertex_cover(s);
  ASSERT_GE(truth, 40u);
  auto r = vc::solve_kvc(s, 39);
  EXPECT_FALSE(r.feasible);
  EXPECT_LE(r.nodes, 5u);  // bound fires near the root, no deep branching
}

TEST(KvcMatchingBound, DoesNotBreakFeasibleInstances) {
  for (std::uint64_t seed = 80; seed <= 90; ++seed) {
    Graph g = gen::gnp(14, 0.5, seed);
    std::vector<VertexId> all(14);
    for (VertexId v = 0; v < 14; ++v) all[v] = v;
    DenseSubgraph s = induce_dense(g, all);
    std::size_t truth = vc::minimum_vertex_cover(s);
    auto r = vc::solve_kvc(s, static_cast<std::int64_t>(truth));
    EXPECT_TRUE(r.feasible) << "seed " << seed;
    if (truth > 0) {
      EXPECT_FALSE(
          vc::solve_kvc(s, static_cast<std::int64_t>(truth) - 1).feasible);
    }
  }
}

TEST(VertexOrderKind, PeelingOrderGivesExactAnswer) {
  for (std::uint64_t seed = 100; seed <= 106; ++seed) {
    Graph g = gen::gnp(70, 0.2, seed);
    auto ref = baselines::max_clique_reference(g);
    mc::LazyMCConfig cfg;
    cfg.vertex_order = mc::VertexOrderKind::kPeeling;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_EQ(r.omega, ref.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(g, r.clique));
  }
}

TEST(VertexOrderKind, BothOrdersAgreeOnStructuredGraphs) {
  Graph g = gen::plant_clique(gen::barabasi_albert(200, 4, 107), 13, 108);
  mc::LazyMCConfig a, b;
  a.vertex_order = mc::VertexOrderKind::kCorenessDegree;
  b.vertex_order = mc::VertexOrderKind::kPeeling;
  EXPECT_EQ(mc::lazy_mc(g, a).omega, mc::lazy_mc(g, b).omega);
}

TEST(ColorPrune, PreservesExactness) {
  for (std::uint64_t seed = 110; seed <= 116; ++seed) {
    Graph g = gen::gnp(60, 0.3, seed);
    auto ref = baselines::max_clique_reference(g);
    mc::LazyMCConfig cfg;
    cfg.color_prune = true;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_EQ(r.omega, ref.size()) << "seed " << seed;
  }
}

TEST(ColorPrune, SkipsSolverCallsOnBipartiteLikeGraphs) {
  // Bipartite graphs color with 2 colors, so once |C*| = 2 every surviving
  // subgraph is pruned by coloring before any solver runs.
  Graph g = gen::bipartite(60, 60, 0.3, 117);
  mc::LazyMCConfig with, without;
  with.color_prune = true;
  without.color_prune = false;
  auto r_with = mc::lazy_mc(g, with);
  auto r_without = mc::lazy_mc(g, without);
  EXPECT_EQ(r_with.omega, 2u);
  EXPECT_EQ(r_without.omega, 2u);
  EXPECT_LE(r_with.search.solved_mc + r_with.search.solved_vc,
            r_without.search.solved_mc + r_without.search.solved_vc);
}

TEST(VcFallback, MispredictionFallsBackToMcAndStaysExact) {
  // Force every searched subgraph through k-VC (phi ~ 0) with a tiny node
  // budget: most probes abandon and re-solve as MC; the answer must be
  // exact and the fallback counter visible.
  Graph g = gen::planted_partition(4, 50, 0.5, 4.0, 121);
  auto ref = baselines::max_clique_reference(g);
  mc::LazyMCConfig cfg;
  cfg.density_threshold = 0.01;
  auto r = mc::lazy_mc(g, cfg);
  EXPECT_EQ(r.omega, ref.size());
  // With the default budget, mid-density subgraphs should trigger at
  // least one fallback OR solve within budget; either way exactness held.
  EXPECT_EQ(r.search.pass_filter3,
            r.search.solved_mc + r.search.solved_vc);
}

TEST(VcFallback, ZeroBudgetDisablesFallback) {
  Graph g = gen::gnp(50, 0.4, 123);
  auto ref = baselines::max_clique_reference(g);
  mc::LazyMCConfig cfg;
  cfg.density_threshold = 0.0;       // everything to k-VC
  cfg.vc_node_budget_per_vertex = 0;  // no fallback: pure k-VC route
  auto r = mc::lazy_mc(g, cfg);
  EXPECT_EQ(r.omega, ref.size());
  EXPECT_EQ(r.search.vc_fallbacks, 0u);
}

TEST(DensityThreshold, MidDensityGraphSolvesUnderDefault) {
  // Regression for the mid-density blowup: community graphs with ~55%
  // dense neighborhoods must solve promptly under the default threshold.
  Graph g = gen::planted_partition(4, 60, 0.55, 4.0, 73);
  auto ref = baselines::max_clique_reference(g);
  mc::LazyMCConfig cfg;
  cfg.time_limit_seconds = 60.0;
  auto r = mc::lazy_mc(g, cfg);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.omega, ref.size());
}

}  // namespace
}  // namespace lazymc
