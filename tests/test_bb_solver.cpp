// Tests for the coloring branch-and-bound MC solver on dense subgraphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "mc/bb_solver.hpp"

namespace lazymc {
namespace {

DenseSubgraph induce_all(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return induce_dense(g, all);
}

bool local_clique(const DenseSubgraph& s, const std::vector<VertexId>& c) {
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      if (!s.adj[c[i]].test(c[j])) return false;
    }
  }
  return true;
}

TEST(BBSolver, CompleteGraph) {
  DenseSubgraph s = induce_all(gen::complete(10));
  auto r = mc::solve_mc_dense(s, {});
  EXPECT_EQ(r.clique.size(), 10u);
  EXPECT_FALSE(r.timed_out);
}

TEST(BBSolver, EmptyAndSingleton) {
  GraphBuilder b(0);
  DenseSubgraph empty = induce_all(b.build());
  auto r0 = mc::solve_mc_dense(empty, {});
  EXPECT_TRUE(r0.clique.empty());

  GraphBuilder b1(1);
  DenseSubgraph one = induce_all(b1.build());
  auto r1 = mc::solve_mc_dense(one, {});
  EXPECT_EQ(r1.clique.size(), 1u);
}

TEST(BBSolver, EdgelessGraphHasOmegaOne) {
  GraphBuilder b(5);
  DenseSubgraph s = induce_all(b.build());
  auto r = mc::solve_mc_dense(s, {});
  EXPECT_EQ(r.clique.size(), 1u);
}

TEST(BBSolver, CycleOmegaTwo) {
  DenseSubgraph s = induce_all(gen::cycle(7));
  auto r = mc::solve_mc_dense(s, {});
  EXPECT_EQ(r.clique.size(), 2u);
  EXPECT_TRUE(local_clique(s, r.clique));
}

TEST(BBSolver, MatchesNaiveOnSmallRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Graph g = gen::gnp(14, 0.4, seed);
    auto naive = baselines::max_clique_naive(g);
    DenseSubgraph s = induce_all(g);
    auto r = mc::solve_mc_dense(s, {});
    EXPECT_EQ(r.clique.size(), naive.size()) << "seed " << seed;
    EXPECT_TRUE(local_clique(s, r.clique)) << "seed " << seed;
  }
}

TEST(BBSolver, FindsPlantedClique) {
  std::vector<VertexId> planted;
  Graph g = gen::plant_clique(gen::gnp(60, 0.1, 31), 9, 32, &planted);
  DenseSubgraph s = induce_all(g);
  auto r = mc::solve_mc_dense(s, {});
  EXPECT_GE(r.clique.size(), 9u);
  EXPECT_TRUE(local_clique(s, r.clique));
}

TEST(BBSolver, LowerBoundSuppressesSmallCliques) {
  DenseSubgraph s = induce_all(gen::cycle(9));  // omega = 2
  mc::BBOptions opt;
  opt.lower_bound = 2;
  auto r = mc::solve_mc_dense(s, opt);
  EXPECT_TRUE(r.clique.empty());  // nothing strictly larger than 2
  opt.lower_bound = 1;
  auto r2 = mc::solve_mc_dense(s, opt);
  EXPECT_EQ(r2.clique.size(), 2u);
}

TEST(BBSolver, LowerBoundPrunesWork) {
  Graph g = gen::gnp(50, 0.5, 33);
  DenseSubgraph s = induce_all(g);
  auto loose = mc::solve_mc_dense(s, {});
  mc::BBOptions tight;
  tight.lower_bound = static_cast<VertexId>(loose.clique.size()) - 1;
  auto r = mc::solve_mc_dense(s, tight);
  EXPECT_EQ(r.clique.size(), loose.clique.size());
  EXPECT_LE(r.nodes, loose.nodes);
}

TEST(BBSolver, LiveBoundTightensDuringSearch) {
  Graph g = gen::gnp(40, 0.5, 35);
  DenseSubgraph s = induce_all(g);
  auto truth = mc::solve_mc_dense(s, {});
  std::atomic<VertexId> live{static_cast<VertexId>(truth.clique.size())};
  mc::BBOptions opt;
  opt.live_bound = &live;
  auto r = mc::solve_mc_dense(s, opt);
  // The live bound equals omega: no clique strictly larger exists.
  EXPECT_TRUE(r.clique.empty());
  EXPECT_LE(r.nodes, truth.nodes);
}

TEST(BBSolver, TimeoutReturnsGracefully) {
  // A hard dense instance with an immediate-expiry control.
  Graph g = gen::gnp(120, 0.9, 37);
  DenseSubgraph s = induce_all(g);
  SolveControl control(0.0);  // expires instantly
  mc::BBOptions opt;
  opt.control = &control;
  auto r = mc::solve_mc_dense(s, opt);
  EXPECT_TRUE(r.timed_out);
}

TEST(BBSolver, NodeCountPositive) {
  DenseSubgraph s = induce_all(gen::gnp(20, 0.3, 39));
  auto r = mc::solve_mc_dense(s, {});
  EXPECT_GT(r.nodes, 0u);
}

}  // namespace
}  // namespace lazymc
