// Tests for the CSR Graph and GraphBuilder invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace lazymc {
namespace {

Graph triangle_plus_tail() {
  // 0-1, 1-2, 0-2 (triangle), 2-3 (tail)
  return graph_from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, BasicProperties) {
  Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, HasEdgeSymmetric) {
  Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Graph, NeighborsSortedAscending) {
  Graph g = graph_from_edges(5, {{4, 0}, {4, 2}, {4, 1}, {4, 3}});
  auto nbrs = g.neighbors(4);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphBuilder, RemovesSelfLoops) {
  Graph g = graph_from_edges(3, {{0, 0}, {0, 1}, {1, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  Graph g = graph_from_edges(2, {{0, 1}, {1, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, ExpandsVertexCountToMaxId) {
  GraphBuilder b(2);
  b.add_edge(0, 9);
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_TRUE(g.has_edge(0, 9));
}

TEST(GraphBuilder, IsolatedVerticesPreserved) {
  Graph g = graph_from_edges(6, {{0, 1}});
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(g.neighbors(5).empty());
}

TEST(GraphBuilder, AdjacencySymmetricAfterBuild) {
  Graph g = graph_from_edges(5, {{0, 1}, {2, 1}, {3, 4}, {0, 4}});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(u, v)) << u << "-" << v;
    }
  }
}

TEST(IsClique, DetectsCliquesAndNonCliques) {
  Graph g = triangle_plus_tail();
  std::vector<VertexId> tri{0, 1, 2};
  std::vector<VertexId> not_clique{0, 1, 3};
  std::vector<VertexId> pair{2, 3};
  std::vector<VertexId> single{3};
  std::vector<VertexId> empty;
  EXPECT_TRUE(is_clique(g, tri));
  EXPECT_FALSE(is_clique(g, not_clique));
  EXPECT_TRUE(is_clique(g, pair));
  EXPECT_TRUE(is_clique(g, single));
  EXPECT_TRUE(is_clique(g, empty));
}

TEST(IsClique, RejectsDuplicateVertices) {
  Graph g = triangle_plus_tail();
  std::vector<VertexId> dup{0, 0};
  EXPECT_FALSE(is_clique(g, dup));
}

TEST(Graph, ConstructorValidatesOffsets) {
  std::vector<EdgeId> offsets{0, 2};
  std::vector<VertexId> adjacency{1};  // size mismatch: offsets.back()==2
  EXPECT_THROW(Graph(std::move(offsets), std::move(adjacency)),
               std::invalid_argument);
}

// ---- induced subgraphs ---------------------------------------------------

TEST(InduceDense, ExtractsTriangle) {
  Graph g = triangle_plus_tail();
  std::vector<VertexId> verts{0, 1, 2};
  DenseSubgraph s = induce_dense(g, verts);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_DOUBLE_EQ(s.density(), 1.0);
  EXPECT_TRUE(s.adj[0].test(1));
  EXPECT_TRUE(s.adj[1].test(2));
  EXPECT_TRUE(s.adj[2].test(0));
}

TEST(InduceDense, RespectsVertexOrderAndOmitsOutside) {
  Graph g = triangle_plus_tail();
  std::vector<VertexId> verts{3, 2};  // edge 2-3 present; order matters
  DenseSubgraph s = induce_dense(g, verts);
  EXPECT_EQ(s.vertices[0], 3u);
  EXPECT_EQ(s.vertices[1], 2u);
  EXPECT_EQ(s.num_edges, 1u);
  EXPECT_TRUE(s.adj[0].test(1));
  EXPECT_TRUE(s.adj[1].test(0));
}

TEST(InduceDense, EmptySelection) {
  Graph g = triangle_plus_tail();
  DenseSubgraph s = induce_dense(g, {});
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.num_edges, 0u);
  EXPECT_DOUBLE_EQ(s.density(), 0.0);
}

TEST(DenseSubgraph, ComplementFlipsEdges) {
  Graph g = triangle_plus_tail();
  std::vector<VertexId> verts{0, 1, 2, 3};
  DenseSubgraph s = induce_dense(g, verts);
  DenseSubgraph c = s.complement();
  EXPECT_EQ(c.size(), 4u);
  // complement of 4 edges among C(4,2)=6 pairs -> 2 edges
  EXPECT_EQ(c.num_edges, 2u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(c.adj[i].test(i));
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_NE(c.adj[i].test(j), s.adj[i].test(j));
      }
    }
  }
}

TEST(InduceCsr, MatchesDenseExtraction) {
  Graph g = graph_from_edges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 2}, {1, 3}});
  std::vector<VertexId> verts{0, 2, 3, 5};
  std::vector<VertexId> map;
  Graph sub = induce_csr(g, verts, &map);
  DenseSubgraph dense = induce_dense(g, verts);
  EXPECT_EQ(map, verts);
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.num_edges(), dense.num_edges);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    for (std::size_t j = 0; j < verts.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(sub.has_edge(static_cast<VertexId>(i), static_cast<VertexId>(j)),
                dense.adj[i].test(j));
    }
  }
}

}  // namespace
}  // namespace lazymc
