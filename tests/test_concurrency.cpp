// Concurrency stress tests: the shared lazy graph, the incumbent, and the
// full pipeline under varying thread counts and repeated runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/lazymc.hpp"
#include "mc/neighbor_search.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

TEST(ConcurrencyStress, RepeatedParallelSolvesAreDeterministicInOmega) {
  Graph g = gen::plant_clique(gen::rmat(9, 6, 0.55, 0.2, 0.2, 201), 12, 202);
  auto ref = baselines::max_clique_reference(g);
  set_num_threads(4);
  for (int round = 0; round < 20; ++round) {
    auto r = mc::lazy_mc(g);
    ASSERT_EQ(r.omega, ref.size()) << "round " << round;
    ASSERT_TRUE(is_clique(g, r.clique));
  }
  set_num_threads(0);
}

TEST(ConcurrencyStress, LazyGraphMixedReadersAndBuilders) {
  Graph g = gen::gnp(300, 0.05, 203);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  std::atomic<VertexId> incumbent{0};
  LazyGraph lazy(g, order, core.coreness, &incumbent);

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 3000; ++i) {
        VertexId v = static_cast<VertexId>(rng.next_below(300));
        switch (i % 3) {
          case 0: {
            const HopscotchSet& h = lazy.hashed_neighborhood(v);
            auto s = lazy.sorted_neighborhood(v);
            if (h.size() != s.size()) errors++;
            break;
          }
          case 1: {
            auto right = lazy.right_neighborhood(v);
            for (VertexId u : right) {
              if (u <= v) errors++;
            }
            break;
          }
          case 2: {
            NeighborhoodView view = lazy.membership(v);
            // Probe an arbitrary vertex; just must not crash/race.
            view.contains(static_cast<VertexId>(rng.next_below(300)));
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrencyStress, IncumbentMonotoneUnderContention) {
  Incumbent inc;
  std::atomic<bool> go{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      Rng rng(t);
      VertexId seen = 0;
      for (int i = 0; i < 20000; ++i) {
        VertexId size = inc.size();
        if (size < seen) errors++;  // monotonicity violated
        seen = size;
        std::vector<VertexId> clique(rng.next_below(64) + 1);
        for (std::size_t j = 0; j < clique.size(); ++j) {
          clique[j] = static_cast<VertexId>(j);
        }
        inc.offer(clique);
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(inc.size(), 64u);
  // Snapshot is consistent with the size.
  EXPECT_EQ(inc.snapshot().size(), inc.size());
}

TEST(ConcurrencyStress, SystematicSearchSharedStatsConsistent) {
  Graph g = gen::gnp(200, 0.12, 205);
  set_num_threads(4);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  Incumbent incumbent;
  LazyGraph lazy(g, order, core.coreness, &incumbent.size_atomic());
  mc::SearchStats stats;
  mc::NeighborSearchOptions opt;
  mc::systematic_search(lazy, incumbent, opt, stats);
  // Funnel invariants must hold even with concurrent updates.
  EXPECT_GE(stats.evaluated.load(), stats.pass_filter1.load());
  EXPECT_GE(stats.pass_filter1.load(), stats.pass_filter2.load());
  EXPECT_GE(stats.pass_filter2.load(), stats.pass_filter3.load());
  EXPECT_EQ(stats.pass_filter3.load(),
            stats.solved_mc.load() + stats.solved_vc.load());
  auto ref = baselines::max_clique_reference(g);
  EXPECT_EQ(incumbent.size(), ref.size());
  set_num_threads(0);
}

TEST(ConcurrencyStress, OmegaIdenticalAcrossThreadCountsForWholeSuite) {
  // The sharded-worklist scheduler must not change the answer: omega is
  // exact, so 1, 2 and 8 threads have to agree on every suite instance.
  auto instances = suite::make_suite(suite::Scale::kTiny);
  for (const auto& inst : instances) {
    VertexId omega1 = 0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      set_num_threads(threads);
      auto r = mc::lazy_mc(inst.graph);
      ASSERT_TRUE(is_clique(inst.graph, r.clique))
          << inst.name << " @ " << threads << " threads";
      if (threads == 1) {
        omega1 = r.omega;
      } else {
        ASSERT_EQ(r.omega, omega1)
            << inst.name << ": omega diverged at " << threads << " threads";
      }
    }
  }
  set_num_threads(0);
}

TEST(ConcurrencyStress, SystematicSearchReportsRetiredChunksSanely) {
  // retired_chunks counts worklist chunks skipped wholesale when the
  // incumbent outgrew their coreness level; it can never exceed the
  // number of chunks, and the search must stay exact regardless.
  Graph g = gen::plant_clique(gen::barabasi_albert(2000, 6, 301), 24, 302);
  set_num_threads(4);
  auto r = mc::lazy_mc(g);
  auto ref = baselines::max_clique_reference(g);
  EXPECT_EQ(r.omega, ref.size());
  // Chunks are disjoint non-empty vertex ranges, so their count — and a
  // fortiori the retired count — is bounded by the vertex count.
  EXPECT_LE(r.search.retired_chunks, g.num_vertices());
  set_num_threads(0);
}

TEST(ConcurrencyStress, CancellationDuringParallelSearchUnwinds) {
  Graph g = gen::gene_blocks(400, 10, 130, 0.8, 207);
  set_num_threads(4);
  mc::LazyMCConfig cfg;
  cfg.time_limit_seconds = 0.05;  // expire mid-run
  auto r = mc::lazy_mc(g, cfg);
  // Either finished legitimately fast or unwound cleanly with the flag.
  if (r.timed_out) {
    EXPECT_TRUE(is_clique(g, r.clique));  // best-so-far is still a clique
  } else {
    EXPECT_TRUE(is_clique(g, r.clique));
  }
  set_num_threads(0);
}

}  // namespace
}  // namespace lazymc
