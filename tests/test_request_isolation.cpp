// Per-request isolation: concurrent lazy_mc solves multiplexed onto the
// shared thread pool, each owning its SolveControl/incumbent/stats.
// Cancelling, deadline-expiring, or interrupting request A must not
// perturb request B's result.  CI runs this suite under TSan — the
// launcher-gate discipline that makes concurrent external launchers
// legal is exactly what a race here would indict.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cli/graph_source.hpp"
#include "mc/lazymc.hpp"
#include "support/control.hpp"

namespace lazymc {
namespace {

using cli::LoadedGraph;
using mc::LazyMCConfig;
using mc::LazyMCResult;

LazyMCResult solve_with(const Graph& g, SolveControl& control) {
  LazyMCConfig config;
  config.control = &control;
  return mc::lazy_mc(g, config);
}

// ------------------------------------------------------------ StopCause

TEST(StopCause, FirstCauseWins) {
  SolveControl control;
  control.cancel(StopCause::kDeadline);
  control.cancel(StopCause::kCancelled);
  EXPECT_EQ(control.stop_cause(), StopCause::kDeadline);
  EXPECT_TRUE(control.cancelled());
  EXPECT_FALSE(control.interrupted());
}

TEST(StopCause, NamesAreStable) {
  EXPECT_STREQ(stop_cause_name(StopCause::kNone), "none");
  EXPECT_STREQ(stop_cause_name(StopCause::kDeadline), "deadline");
  EXPECT_STREQ(stop_cause_name(StopCause::kCancelled), "cancelled");
  EXPECT_STREQ(stop_cause_name(StopCause::kInterrupted), "interrupted");
}

TEST(StopCause, PrivateInterruptSourceIsObserved) {
  std::atomic<bool> private_flag{false};
  SolveControl control;
  control.set_interrupt_source(&private_flag);

  std::uint64_t counter = 0;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_FALSE(control.should_stop(counter));
  }
  private_flag.store(true);
  bool stopped = false;
  for (int i = 0; i < 5000 && !stopped; ++i) {
    stopped = control.should_stop(counter);
  }
  EXPECT_TRUE(stopped);
  EXPECT_EQ(control.stop_cause(), StopCause::kInterrupted);
  EXPECT_TRUE(control.interrupted());
  // The process-global flag was never involved.
  EXPECT_FALSE(interrupt::requested());
}

TEST(StopCause, NullInterruptSourceIgnoresProcessInterrupts) {
  interrupt::request();
  SolveControl control;
  control.set_interrupt_source(nullptr);
  std::uint64_t counter = 0;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(control.should_stop(counter));
  }
  EXPECT_FALSE(control.cancelled());
  EXPECT_EQ(control.stop_cause(), StopCause::kNone);
  interrupt::clear();
}

TEST(StopCause, HeartbeatsAdvanceWithCooperativeChecks) {
  SolveControl control;
  std::uint64_t counter = 0;
  const std::uint64_t before = control.heartbeats();
  for (int i = 0; i < 100000; ++i) control.should_stop(counter);
  EXPECT_GT(control.heartbeats(), before);
}

// --------------------------------------------------- concurrent isolation

TEST(RequestIsolation, ConcurrentSolvesAgreeWithSequentialReference) {
  const LoadedGraph a = cli::load_graph("gen:dblp:small");
  const LoadedGraph b = cli::load_graph("gen:flickr:small");

  SolveControl ref_a_control, ref_b_control;
  const VertexId omega_a = solve_with(a.graph, ref_a_control).omega;
  const VertexId omega_b = solve_with(b.graph, ref_b_control).omega;

  LazyMCResult result_a, result_b;
  SolveControl control_a, control_b;
  std::thread ta([&] { result_a = solve_with(a.graph, control_a); });
  std::thread tb([&] { result_b = solve_with(b.graph, control_b); });
  ta.join();
  tb.join();

  EXPECT_EQ(result_a.omega, omega_a);
  EXPECT_EQ(result_b.omega, omega_b);
  EXPECT_FALSE(result_a.timed_out);
  EXPECT_FALSE(result_b.timed_out);
  EXPECT_TRUE(is_clique(a.graph, result_a.clique));
  EXPECT_TRUE(is_clique(b.graph, result_b.clique));
}

TEST(RequestIsolation, CancellingADoesNotPerturbB) {
  const LoadedGraph a = cli::load_graph("gen:hollywood:small");
  const LoadedGraph b = cli::load_graph("gen:dblp:small");

  SolveControl reference_control;
  const VertexId omega_b = solve_with(b.graph, reference_control).omega;

  // A is cancelled immediately: its solve must unwind promptly to a
  // verified best-so-far result while B — sharing the pool — is solved
  // to optimality with its own untouched control.
  SolveControl control_a, control_b;
  control_a.cancel(StopCause::kCancelled);

  LazyMCResult result_a, result_b;
  std::thread ta([&] { result_a = solve_with(a.graph, control_a); });
  std::thread tb([&] { result_b = solve_with(b.graph, control_b); });
  ta.join();
  tb.join();

  EXPECT_EQ(control_a.stop_cause(), StopCause::kCancelled);
  EXPECT_EQ(control_b.stop_cause(), StopCause::kNone);
  EXPECT_EQ(result_b.omega, omega_b);
  EXPECT_TRUE(is_clique(b.graph, result_b.clique));
  // A's witness, however partial, must still be a clique of A's graph.
  EXPECT_TRUE(is_clique(a.graph, result_a.clique));
  EXPECT_LE(result_a.omega, solve_with(a.graph, reference_control).omega);
}

TEST(RequestIsolation, DeadlineOnADoesNotPerturbB) {
  const LoadedGraph a = cli::load_graph("gen:orkut:small");
  const LoadedGraph b = cli::load_graph("gen:flickr:small");

  SolveControl reference_control;
  const VertexId omega_b = solve_with(b.graph, reference_control).omega;

  // A's budget is already exhausted at submit time (the daemon measures
  // deadlines from admission): the solve observes the expired deadline
  // at its first cooperative check.
  SolveControl control_a(1e-9), control_b;

  LazyMCResult result_a, result_b;
  std::thread ta([&] { result_a = solve_with(a.graph, control_a); });
  std::thread tb([&] { result_b = solve_with(b.graph, control_b); });
  ta.join();
  tb.join();

  EXPECT_EQ(result_b.omega, omega_b);
  EXPECT_EQ(control_b.stop_cause(), StopCause::kNone);
  EXPECT_FALSE(result_b.timed_out);
  EXPECT_TRUE(is_clique(b.graph, result_b.clique));
}

TEST(RequestIsolation, ManyConcurrentSolvesAllVerify) {
  const LoadedGraph g = cli::load_graph("gen:dblp:tiny");
  SolveControl reference_control;
  const VertexId omega = solve_with(g.graph, reference_control).omega;

  constexpr int kSolvers = 4;
  std::vector<LazyMCResult> results(kSolvers);
  std::vector<SolveControl> controls(kSolvers);
  std::vector<std::thread> threads;
  threads.reserve(kSolvers);
  for (int i = 0; i < kSolvers; ++i) {
    threads.emplace_back(
        [&, i] { results[i] = solve_with(g.graph, controls[i]); });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kSolvers; ++i) {
    EXPECT_EQ(results[i].omega, omega) << "solver " << i;
    EXPECT_TRUE(is_clique(g.graph, results[i].clique)) << "solver " << i;
  }
}

}  // namespace
}  // namespace lazymc
