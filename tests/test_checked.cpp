// Death tests for the LAZYMC_CHECKED invariant machinery: each test
// plants a corruption that a checked build must catch with an abort and a
// diagnostic naming the violated invariant.  In default builds the
// assertions compile to nothing, so every test skips — the suite is only
// meaningful under -DLAZYMC_CHECKED=ON (the CI static-analysis job runs
// it there).
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "intersect/bitset_row.hpp"
#include "mc/incumbent.hpp"
#include "support/bitset.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace lazymc {

// Test-only backdoor into SparseWordSet's private arrays (befriended by
// the class) so the tests can corrupt state that no public path can.
struct SparseWordSetTestAccess {
  static void corrupt_prefix(SparseWordSet& set) { set.prefix_[1] += 1; }
  static void corrupt_bits(SparseWordSet& set) { set.bits_[0] = 0; }
  static void drop_entry(SparseWordSet& set) {
    set.indices_.pop_back();
    set.bits_.pop_back();
  }
};

namespace {

#if LAZYMC_CHECKED_ENABLED
#define LAZYMC_SKIP_UNLESS_CHECKED() ((void)0)
#else
#define LAZYMC_SKIP_UNLESS_CHECKED() \
  GTEST_SKIP() << "assertions compile to nothing without -DLAZYMC_CHECKED=ON"
#endif

SparseWordSet make_set() {
  std::vector<VertexId> sorted = {0, 3, 64, 65, 130};
  SparseWordSet set;
  set.build(sorted, /*zone_begin=*/0);
  return set;
}

TEST(CheckedSparseWordSet, CleanBuildVerifies) {
  SparseWordSet set = make_set();
  set.verify();  // must not abort in any build
  EXPECT_EQ(set.count(), 5u);
}

TEST(CheckedSparseWordSetDeathTest, CorruptedPrefixAborts) {
  LAZYMC_SKIP_UNLESS_CHECKED();
  SparseWordSet set = make_set();
  SparseWordSetTestAccess::corrupt_prefix(set);
  EXPECT_DEATH(set.verify(), "prefix-popcount");
}

TEST(CheckedSparseWordSetDeathTest, ZeroedWordAborts) {
  LAZYMC_SKIP_UNLESS_CHECKED();
  SparseWordSet set = make_set();
  SparseWordSetTestAccess::corrupt_bits(set);
  EXPECT_DEATH(set.verify(), "empty word");
}

TEST(CheckedSparseWordSetDeathTest, MismatchedArrayLengthsAbort) {
  LAZYMC_SKIP_UNLESS_CHECKED();
  SparseWordSet set = make_set();
  SparseWordSetTestAccess::drop_entry(set);
  EXPECT_DEATH(set.verify(), "parallel-array lengths");
}

TEST(CheckedTaskGroupDeathTest, UnbalancedCompleteAborts) {
  LAZYMC_SKIP_UNLESS_CHECKED();
  TaskGroup group;
  group.add();
  group.complete();
  EXPECT_DEATH(group.complete(), "without a matching add");
}

TEST(CheckedIncumbentDeathTest, NonCliqueIncumbentAborts) {
  LAZYMC_SKIP_UNLESS_CHECKED();
#if LAZYMC_CHECKED_ENABLED
  // Path graph 0-1-2: {0, 2} is an independent pair, not a clique.
  Graph g = graph_from_edges(3, {{0, 1}, {1, 2}});
  Incumbent incumbent;
  incumbent.set_verifier(
      [&g](std::span<const VertexId> clique) { return is_clique(g, clique); });
  const std::vector<VertexId> honest = {0, 1};
  EXPECT_TRUE(incumbent.offer(honest));
  const std::vector<VertexId> lie = {0, 1, 2};
  EXPECT_DEATH(incumbent.offer(lie), "not a clique");
#endif
}

TEST(CheckedBitsetDeathTest, OutOfBoundsBitAborts) {
  LAZYMC_SKIP_UNLESS_CHECKED();
  DynamicBitset bits(64);
  bits.set(63);  // in bounds: fine
  EXPECT_TRUE(bits.test(63));
  EXPECT_DEATH(bits.set(64), "out of bounds");
  EXPECT_DEATH((void)bits.test(64), "out of bounds");
}

}  // namespace
}  // namespace lazymc
