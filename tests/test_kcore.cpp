// Tests for k-core decomposition: sequential, parallel and lower-bounded.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kcore/kcore.hpp"

namespace lazymc {
namespace {

using kcore::CoreDecomposition;

/// Independent O(n^2 m) reference: repeatedly strip vertices of degree < k.
std::vector<VertexId> coreness_reference(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> core(n, 0);
  std::vector<char> alive(n, 1);
  for (VertexId k = 0;; ++k) {
    // Repeatedly remove alive vertices with alive-degree < k+1; all
    // removed at level k have coreness k.
    bool any_alive = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        VertexId d = 0;
        for (VertexId u : g.neighbors(v)) d += alive[u];
        if (d < k + 1) {
          core[v] = k;
          alive[v] = 0;
          changed = true;
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) any_alive |= alive[v];
    if (!any_alive) break;
  }
  return core;
}

TEST(KCore, EmptyGraph) {
  Graph g;
  auto core = kcore::coreness(g);
  EXPECT_EQ(core.degeneracy, 0u);
  EXPECT_TRUE(core.coreness.empty());
}

TEST(KCore, PathHasCorenessOne) {
  auto core = kcore::coreness(gen::path(10));
  EXPECT_EQ(core.degeneracy, 1u);
  for (VertexId c : core.coreness) EXPECT_EQ(c, 1u);
}

TEST(KCore, CycleHasCorenessTwo) {
  auto core = kcore::coreness(gen::cycle(8));
  EXPECT_EQ(core.degeneracy, 2u);
  for (VertexId c : core.coreness) EXPECT_EQ(c, 2u);
}

TEST(KCore, CompleteGraphCoreness) {
  auto core = kcore::coreness(gen::complete(7));
  EXPECT_EQ(core.degeneracy, 6u);
  for (VertexId c : core.coreness) EXPECT_EQ(c, 6u);
}

TEST(KCore, StarCorenessOne) {
  auto core = kcore::coreness(gen::star(9));
  EXPECT_EQ(core.degeneracy, 1u);
  EXPECT_EQ(core.coreness[0], 1u);
}

TEST(KCore, MixedStructure) {
  // K4 {0..3} + tail 3-4-5.
  Graph g = graph_from_edges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  auto core = kcore::coreness(g);
  EXPECT_EQ(core.degeneracy, 3u);
  EXPECT_EQ(core.coreness[0], 3u);
  EXPECT_EQ(core.coreness[3], 3u);
  EXPECT_EQ(core.coreness[4], 1u);
  EXPECT_EQ(core.coreness[5], 1u);
}

TEST(KCore, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Graph g = gen::gnp(80, 0.08, seed);
    auto fast = kcore::coreness(g);
    auto ref = coreness_reference(g);
    EXPECT_EQ(fast.coreness, ref) << "seed " << seed;
  }
}

TEST(KCore, ParallelMatchesSequential) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    Graph g = gen::gnp(150, 0.06, seed);
    auto seq = kcore::coreness(g);
    auto par = kcore::coreness_parallel(g);
    EXPECT_EQ(par.coreness, seq.coreness) << "seed " << seed;
    EXPECT_EQ(par.degeneracy, seq.degeneracy);
  }
}

TEST(KCore, PeelOrderIsPermutationWithBoundedRightNeighborhoods) {
  Graph g = gen::gnp(100, 0.1, 11);
  auto core = kcore::coreness(g);
  ASSERT_EQ(core.peel_order.size(), g.num_vertices());
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<VertexId> pos(g.num_vertices());
  for (VertexId i = 0; i < core.peel_order.size(); ++i) {
    VertexId v = core.peel_order[i];
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
    pos[v] = i;
  }
  // Peeling-order guarantee: right-neighborhood size <= coreness.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    VertexId right = 0;
    for (VertexId u : g.neighbors(v)) right += pos[u] > pos[v] ? 1 : 0;
    EXPECT_LE(right, core.coreness[v]) << "vertex " << v;
  }
}

TEST(KCore, LowerBoundedMatchesFullAboveBound) {
  Graph g = gen::plant_clique(gen::gnp(120, 0.05, 13), 10, 14);
  auto full = kcore::coreness(g);
  for (VertexId lb : {2u, 5u, 8u}) {
    auto bounded = kcore::coreness_lower_bounded(g, lb);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (full.coreness[v] >= lb) {
        EXPECT_EQ(bounded.coreness[v], full.coreness[v])
            << "v=" << v << " lb=" << lb;
      } else {
        EXPECT_LT(bounded.coreness[v], lb);
      }
    }
    EXPECT_EQ(bounded.degeneracy, full.degeneracy);
  }
}

TEST(KCore, LowerBoundZeroEqualsFull) {
  Graph g = gen::gnp(60, 0.1, 17);
  auto a = kcore::coreness(g);
  auto b = kcore::coreness_lower_bounded(g, 0);
  EXPECT_EQ(a.coreness, b.coreness);
}

TEST(KCore, DegeneracyUpperBoundsClique) {
  // omega <= degeneracy + 1 on a graph with a known planted clique.
  Graph g = gen::plant_clique(gen::gnp(100, 0.03, 19), 8, 20);
  auto core = kcore::coreness(g);
  EXPECT_GE(kcore::clique_upper_bound(core), 8u);
}

}  // namespace
}  // namespace lazymc
