// Subproblem-splitting (task-based branch-and-bound) coverage:
//  * suite-wide omega must be identical with splitting forced on, off and
//    adaptive, at 1, 2 and 8 threads;
//  * the task engine itself: neighbor_search carves oversized B&B roots
//    into tasks through a SubproblemSink, claimed tasks re-check the
//    incumbent and stale ones are retired without being solved;
//  * the systematic search drains probe chunks and tasks through one
//    queue and still reaches the exact omega.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/incumbent.hpp"
#include "mc/lazymc.hpp"
#include "mc/neighbor_search.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

/// Test sink: collects tasks instead of queueing them.
class CollectingSink final : public mc::SubproblemSink {
 public:
  void submit(mc::SubproblemTask task) override {
    tasks.push_back(std::move(task));
  }
  std::vector<mc::SubproblemTask> tasks;
};

/// Shared fixture pieces for driving neighbor_search directly on a
/// complete graph: every probe survives the filters and the root B&B is
/// maximally splittable.
struct CompleteFixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;

  explicit CompleteFixture(VertexId n) : g(gen::complete(n)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
  }
};

mc::NeighborSearchOptions split_on_options(VertexId min_cands) {
  mc::NeighborSearchOptions opt;
  opt.split_mode = mc::SplitMode::kOn;
  opt.split_min_cands = min_cands;
  opt.density_threshold = 1.1;  // force the MC route (complete graphs)
  return opt;
}

TEST(SubproblemSplit, NeighborSearchCarvesRootBranchesIntoTasks) {
  CompleteFixture f(40);
  Incumbent incumbent;
  incumbent.offer(std::vector<VertexId>{0, 1});
  LazyGraph lazy(f.g, f.order, f.core.coreness, &incumbent.size_atomic());

  mc::SearchStats stats;
  mc::SearchScratch scratch;
  CollectingSink sink;
  mc::neighbor_search(lazy, 0, incumbent, split_on_options(4), stats,
                      scratch, &sink);

  // K40's root has 39 branches; the first (biggest) clears min_cands, so
  // sticky acceptance carves every unpruned branch.  The sink receives
  // them smallest-first (the runtime front-pushes, claiming biggest
  // first), so the last collected task carries the biggest frame.
  ASSERT_GT(sink.tasks.size(), 5u);
  ASSERT_LT(sink.tasks.size(), 39u);
  EXPECT_EQ(stats.split_tasks.load(), sink.tasks.size());
  EXPECT_EQ(stats.max_split_depth.load(), 1u);
  for (const mc::SubproblemTask& t : sink.tasks) {
    ASSERT_TRUE(t.shared);
    EXPECT_EQ(t.shared.get(), sink.tasks.front().shared.get());
    EXPECT_EQ(t.depth, 1u);
    EXPECT_FALSE(t.prefix.empty());
    // Bound accounting: head + prefix + coloring bound on P.
    EXPECT_GT(t.upper_bound, incumbent.size());
    EXPECT_LE(t.upper_bound, 40u);
  }
  EXPECT_GE(sink.tasks.back().candidates.count(), 4u);
  EXPECT_EQ(sink.tasks.back().upper_bound, 40u);
  // Every branch was offloaded, so the probe alone proves nothing.
  EXPECT_LT(incumbent.size(), 40u);
}

TEST(SubproblemSplit, WorkEstimateGatesCarving) {
  // Split-work estimation (--split-min-work): a complete graph has
  // density 1, so the estimate reduces to the candidate count and the
  // thresholds are exact.  A threshold above the subproblem size rejects
  // everything the count rule would have carved (counted in
  // split_work_rejected); a low threshold carves as before.
  CompleteFixture f(40);
  {
    Incumbent incumbent;
    incumbent.offer(std::vector<VertexId>{0, 1});
    LazyGraph lazy(f.g, f.order, f.core.coreness, &incumbent.size_atomic());
    mc::SearchStats stats;
    mc::SearchScratch scratch;
    CollectingSink sink;
    mc::NeighborSearchOptions opt = split_on_options(4);
    opt.split_min_work = 4096;  // way past 40 x density 1
    mc::neighbor_search(lazy, 0, incumbent, opt, stats, scratch, &sink);
    EXPECT_TRUE(sink.tasks.empty());
    EXPECT_EQ(stats.split_tasks.load(), 0u);
    EXPECT_GT(stats.split_work_rejected.load(), 0u);
    // Nothing was offloaded, so the probe proves the full clique inline.
    EXPECT_EQ(incumbent.size(), 40u);
  }
  {
    Incumbent incumbent;
    incumbent.offer(std::vector<VertexId>{0, 1});
    LazyGraph lazy(f.g, f.order, f.core.coreness, &incumbent.size_atomic());
    mc::SearchStats stats;
    mc::SearchScratch scratch;
    CollectingSink sink;
    mc::NeighborSearchOptions opt = split_on_options(4);
    opt.split_min_work = 4;  // estimate ~39 x 1: accepts like the count rule
    mc::neighbor_search(lazy, 0, incumbent, opt, stats, scratch, &sink);
    EXPECT_GT(sink.tasks.size(), 5u);
    EXPECT_EQ(stats.split_work_rejected.load(), 0u);
  }
}

TEST(SubproblemSplit, WorkEstimateSweepAgreesOnOmega) {
  // End-to-end: the estimate gate only changes *where* frames solve,
  // never the answer.
  Graph g = gen::plant_clique(gen::gnp(160, 0.25, 101), 24, 102);
  mc::LazyMCConfig base;
  base.split_mode = mc::SplitMode::kOff;
  const auto expected = mc::lazy_mc(g, base).omega;
  for (std::uint64_t min_work : {std::uint64_t{1}, std::uint64_t{16},
                                 std::uint64_t{100000}}) {
    mc::LazyMCConfig cfg;
    cfg.split_mode = mc::SplitMode::kOn;
    cfg.split_min_cands = 8;
    cfg.split_min_work = min_work;
    auto r = mc::lazy_mc(g, cfg);
    EXPECT_EQ(r.omega, expected) << "min_work=" << min_work;
    EXPECT_TRUE(is_clique(g, r.clique));
  }
}

TEST(SubproblemSplit, StaleTasksAreRetiredWithoutBeingSolved) {
  CompleteFixture f(40);
  Incumbent incumbent;
  incumbent.offer(std::vector<VertexId>{0, 1});
  LazyGraph lazy(f.g, f.order, f.core.coreness, &incumbent.size_atomic());

  mc::SearchStats stats;
  mc::SearchScratch scratch;
  CollectingSink sink;
  mc::NeighborSearchOptions opt = split_on_options(4);
  mc::neighbor_search(lazy, 0, incumbent, opt, stats, scratch, &sink);
  ASSERT_FALSE(sink.tasks.empty());

  // The incumbent grows "mid-drain" (here: between split and claim) past
  // every task's upper bound; claiming must retire them all unsolved.
  std::vector<VertexId> whole(40);
  for (VertexId v = 0; v < 40; ++v) whole[v] = v;
  ASSERT_TRUE(incumbent.offer(whole));

  const std::uint64_t nodes_before = stats.mc_nodes.load();
  for (const mc::SubproblemTask& t : sink.tasks) {
    EXPECT_FALSE(
        mc::run_subproblem_task(t, incumbent, opt, stats, scratch));
  }
  EXPECT_EQ(stats.retired_subtasks.load(), sink.tasks.size());
  EXPECT_EQ(stats.mc_nodes.load(), nodes_before)
      << "a retired task expanded B&B nodes";
}

TEST(SubproblemSplit, TasksSolveAndTheirResultsRetireLaterTasks) {
  CompleteFixture f(40);
  Incumbent incumbent;
  incumbent.offer(std::vector<VertexId>{0, 1});
  LazyGraph lazy(f.g, f.order, f.core.coreness, &incumbent.size_atomic());

  mc::SearchStats stats;
  mc::SearchScratch scratch;
  CollectingSink sink;
  mc::NeighborSearchOptions opt = split_on_options(4);
  opt.split_depth = 1;  // no re-splitting: tasks must solve or retire
  mc::neighbor_search(lazy, 0, incumbent, opt, stats, scratch, &sink);
  ASSERT_FALSE(sink.tasks.empty());

  // Claim biggest-first (the runtime's order): the K39 frame proves
  // omega, making every later task stale at its claim-time re-check.
  std::size_t solved = 0, retired = 0;
  for (std::size_t i = sink.tasks.size(); i-- > 0;) {
    if (mc::run_subproblem_task(sink.tasks[i], incumbent, opt, stats,
                                scratch)) {
      ++solved;
    } else {
      ++retired;
    }
  }
  EXPECT_EQ(incumbent.size(), 40u);
  EXPECT_EQ(solved, 1u);
  EXPECT_EQ(retired, sink.tasks.size() - 1);
  EXPECT_EQ(stats.retired_subtasks.load(), retired);
}

TEST(SubproblemSplit, TasksCanResplitUpToDepthLimit) {
  CompleteFixture f(60);
  Incumbent incumbent;
  incumbent.offer(std::vector<VertexId>{0, 1});
  LazyGraph lazy(f.g, f.order, f.core.coreness, &incumbent.size_atomic());

  mc::SearchStats stats;
  mc::SearchScratch scratch;
  CollectingSink sink;
  mc::NeighborSearchOptions opt = split_on_options(4);
  opt.split_depth = 3;
  mc::neighbor_search(lazy, 0, incumbent, opt, stats, scratch, &sink);
  ASSERT_FALSE(sink.tasks.empty());

  // Execute the biggest generation-1 task (the last collected) with the
  // sink still attached: its large child frames split again instead of
  // recursing, sharing the same subgraph handle.
  const std::size_t gen1 = sink.tasks.size() - 1;
  {
    mc::SubproblemTask biggest = std::move(sink.tasks.back());
    sink.tasks.pop_back();
    mc::run_subproblem_task(biggest, incumbent, opt, stats, scratch, &sink);
  }
  ASSERT_GT(sink.tasks.size(), gen1) << "no generation-2 tasks were carved";
  const mc::SubproblemTask& child = sink.tasks[gen1];
  EXPECT_EQ(child.depth, 2u);
  EXPECT_EQ(child.shared.get(), sink.tasks[0].shared.get())
      << "re-split must reuse the shared subgraph handle";
  EXPECT_GE(child.prefix.size(), 2u);
  EXPECT_EQ(stats.max_split_depth.load(), 2u);

  // Drain LIFO, like the runtime's front-pushed shard: children run
  // before older siblings, and grandchildren stay within the depth cap.
  while (!sink.tasks.empty()) {
    mc::SubproblemTask t = std::move(sink.tasks.back());
    sink.tasks.pop_back();
    mc::run_subproblem_task(t, incumbent, opt, stats, scratch, &sink);
  }
  EXPECT_EQ(incumbent.size(), 60u);
  EXPECT_LE(stats.max_split_depth.load(), 3u);
}

TEST(SubproblemSplit, SystematicSearchDrainsTasksToExactOmega) {
  // A dense zero-gap-style instance: noise plus a large planted clique
  // whose neighborhood the probe must actually solve.  The two-level
  // drain (probe chunks + tasks in one queue) must stay exact.
  Graph g = gen::plant_clique(gen::gnp(160, 0.25, 97), 24, 98);
  auto ref = baselines::max_clique_reference(g);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    set_num_threads(threads);
    auto core = kcore::coreness(g);
    auto order = kcore::order_by_coreness_degree(g, core.coreness);
    Incumbent incumbent;
    incumbent.offer(std::vector<VertexId>{0});
    LazyGraph lazy(g, order, core.coreness, &incumbent.size_atomic());
    mc::SearchStats stats;
    mc::NeighborSearchOptions opt;
    opt.split_mode = mc::SplitMode::kOn;
    opt.split_min_cands = 8;
    opt.density_threshold = 1.1;  // keep everything on the MC/split path
    mc::systematic_search(lazy, incumbent, opt, stats);
    EXPECT_EQ(incumbent.size(), ref.size()) << threads << " threads";
    EXPECT_GT(stats.split_tasks.load(), 0u) << threads << " threads";
  }
  set_num_threads(0);
}

TEST(SubproblemSplit, OffModeNeverSplits) {
  Graph g = gen::plant_clique(gen::gnp(120, 0.25, 99), 18, 100);
  set_num_threads(4);
  mc::LazyMCConfig cfg;
  cfg.split_mode = mc::SplitMode::kOff;
  cfg.density_threshold = 1.1;
  auto r = mc::lazy_mc(g, cfg);
  EXPECT_EQ(r.search.split_tasks, 0u);
  EXPECT_EQ(r.search.retired_subtasks, 0u);
  EXPECT_EQ(r.search.max_split_depth, 0u);
  EXPECT_EQ(r.omega, baselines::max_clique_reference(g).size());
  set_num_threads(0);
}

// ---- suite-wide determinism sweep -----------------------------------------

class SplitSweepTest : public testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { set_num_threads(0); }
};

TEST_P(SplitSweepTest, OmegaIdenticalWithSplittingOnOffAuto) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;

  set_num_threads(1);
  mc::LazyMCConfig base;
  base.split_mode = mc::SplitMode::kOff;
  const auto baseline = mc::lazy_mc(g, base);
  ASSERT_TRUE(is_clique(g, baseline.clique));

  for (std::size_t threads : {1, 2, 8}) {
    set_num_threads(threads);
    for (mc::SplitMode mode : {mc::SplitMode::kOn, mc::SplitMode::kAuto,
                               mc::SplitMode::kOff}) {
      mc::LazyMCConfig cfg;
      cfg.split_mode = mode;
      // Low threshold so forced-on splitting actually fires where any
      // subproblem survives at tiny scale.
      cfg.split_min_cands = 8;
      auto r = mc::lazy_mc(g, cfg);
      EXPECT_EQ(r.omega, baseline.omega)
          << GetParam() << " threads=" << threads
          << " mode=" << static_cast<int>(mode);
      EXPECT_TRUE(is_clique(g, r.clique));
      EXPECT_FALSE(r.timed_out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, SplitSweepTest,
                         testing::ValuesIn(suite::instance_names()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace lazymc
