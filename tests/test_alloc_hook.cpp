// Allocation-counting hook: verifies that steady-state NeighborSearch
// probes — re-probing a graph whose incumbent is already optimal, with a
// warmed SearchScratch and lazy graph — perform zero heap allocation.
//
// The hook replaces the global operator new/delete for THIS TEST BINARY
// ONLY and counts allocations made on the calling thread.  Under ASan/
// TSan the sanitizer owns the allocator, so the hook (and the test)
// deactivates itself there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/incumbent.hpp"
#include "mc/neighbor_search.hpp"
#include "support/parallel.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LAZYMC_ALLOC_HOOK_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LAZYMC_ALLOC_HOOK_ACTIVE 0
#else
#define LAZYMC_ALLOC_HOOK_ACTIVE 1
#endif
#else
#define LAZYMC_ALLOC_HOOK_ACTIVE 1
#endif

namespace {
thread_local std::uint64_t g_thread_allocs = 0;
}  // namespace

#if LAZYMC_ALLOC_HOOK_ACTIVE

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The aligned overloads matter now: DynamicBitset words, SparseWordSet
// bits, and the lazy-graph row slabs allocate through
// simd::AlignedAllocator (64-byte alignment), which lands here rather
// than in the plain overload — without these the steady-state invariant
// would silently stop covering the hottest structures.
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_thread_allocs;
  void* p = nullptr;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  p = std::aligned_alloc(a, rounded ? rounded : a);
  if (p) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // LAZYMC_ALLOC_HOOK_ACTIVE

namespace lazymc {
namespace {

TEST(AllocHook, SteadyStateNeighborSearchProbesAreAllocationFree) {
#if !LAZYMC_ALLOC_HOOK_ACTIVE
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#else
  // Sparse power-law graph with a planted clique: once the incumbent
  // holds the optimum, re-probing every vertex dies in the filters —
  // the paper's steady state (Table III: a few per thousand survive).
  Graph g = gen::plant_clique(gen::rmat(10, 6, 0.55, 0.2, 0.2, 401), 14, 402);
  set_num_threads(1);  // probes run on this thread, against this counter

  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  Incumbent incumbent;
  incumbent.offer(baselines::max_clique_reference(g));
  ASSERT_GE(incumbent.size(), 14u);

  LazyGraph lazy(g, order, core.coreness, &incumbent.size_atomic());
  mc::SearchStats warm_stats;
  mc::NeighborSearchOptions opt;
  mc::SearchScratch scratch;

  // Warm-up pass: memoizes lazy neighborhoods and grows every scratch
  // container to its high-water mark.
  const VertexId n = lazy.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (lazy.coreness(v) >= incumbent.size()) {
      mc::neighbor_search(lazy, v, incumbent, opt, warm_stats, scratch);
    }
  }

  // Measured pass: identical probes must not touch the heap.
  mc::SearchStats stats;
  const std::uint64_t before = g_thread_allocs;
  std::uint64_t probes = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (lazy.coreness(v) >= incumbent.size()) {
      mc::neighbor_search(lazy, v, incumbent, opt, stats, scratch);
      ++probes;
    }
  }
  const std::uint64_t allocs = g_thread_allocs - before;

  ASSERT_GT(probes, 0u) << "test graph produced no steady-state probes";
  EXPECT_EQ(allocs, 0u) << "steady-state probes allocated " << allocs
                        << " times over " << probes << " probes";
  set_num_threads(0);
#endif
}

TEST(AllocHook, SolverReachingProbesAreAllocationFreeOnMcPath) {
#if !LAZYMC_ALLOC_HOOK_ACTIVE
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#else
  // Denser graph with a sub-optimal incumbent: probes reach the MC
  // branch-and-bound, whose frames/coloring buffers all live in the
  // scratch arena.  (The k-VC route still allocates internally and keeps
  // its own budget; it is not exercised here.)
  Graph g = gen::gnp(120, 0.25, 403);
  set_num_threads(1);

  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  Incumbent incumbent;
  incumbent.offer(baselines::max_clique_reference(g));

  LazyGraph lazy(g, order, core.coreness, &incumbent.size_atomic());
  mc::SearchStats warm_stats;
  mc::NeighborSearchOptions opt;
  opt.density_threshold = 1.1;  // force every survivor onto the MC path
  mc::SearchScratch scratch;

  const VertexId n = lazy.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    mc::neighbor_search(lazy, v, incumbent, opt, warm_stats, scratch);
  }

  mc::SearchStats stats;
  const std::uint64_t before = g_thread_allocs;
  for (VertexId v = 0; v < n; ++v) {
    mc::neighbor_search(lazy, v, incumbent, opt, stats, scratch);
  }
  const std::uint64_t allocs = g_thread_allocs - before;

  EXPECT_GT(stats.solved_mc.load(), 0u)
      << "expected some probes to reach the MC solver";
  EXPECT_EQ(allocs, 0u) << "MC-path probes allocated " << allocs << " times";
  set_num_threads(0);
#endif
}

}  // namespace
}  // namespace lazymc
