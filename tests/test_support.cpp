// Tests for the parallel runtime, PRNG, spinlock, timer and solve control.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "support/control.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/spinlock.hpp"
#include "support/timer.hpp"

namespace lazymc {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ThreadPool, RespectsGrainAndOffset) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 110, [&](std::size_t i) { sum += i; }, 7);
  std::size_t expected = 0;
  for (std::size_t i = 10; i < 110; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::size_t count = 0;
  pool.parallel_for(0, 50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 50u);
}

TEST(ThreadPool, NestedParallelForRunsSequentially) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    // Nested calls must not deadlock; they run inline.
    pool.parallel_for(0, 10, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelInvokeAllTouchesEveryParticipant) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(pool.num_threads());
  for (auto& h : hits) h.store(0);
  pool.parallel_invoke_all([&](std::size_t t) { hits[t]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t) { count++; });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ParallelReduce, SumsCorrectly) {
  set_num_threads(4);
  std::uint64_t sum = parallel_reduce<std::uint64_t>(
      0, 10000, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 10000ull * 9999 / 2);
}

TEST(GlobalPool, SetNumThreadsTakesEffect) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1u);
  set_num_threads(4);
  EXPECT_EQ(num_threads(), 4u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t bound = 1 + (i % 97);
    EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLock, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double e = timer.elapsed();
  EXPECT_GE(e, 0.015);
  EXPECT_LT(e, 5.0);
}

TEST(WallTimer, LapRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double first = timer.lap();
  double second = timer.elapsed();
  EXPECT_GE(first, 0.005);
  EXPECT_LT(second, first);
}

TEST(SolveControl, NoLimitNeverStops) {
  SolveControl control;
  std::uint64_t counter = 0;
  for (int i = 0; i < 100000; ++i) {
    EXPECT_FALSE(control.should_stop(counter));
  }
}

TEST(SolveControl, CancelStopsImmediately) {
  SolveControl control;
  std::uint64_t counter = 0;
  EXPECT_FALSE(control.should_stop(counter));
  control.cancel();
  EXPECT_TRUE(control.should_stop(counter));
  EXPECT_TRUE(control.cancelled());
}

TEST(SolveControl, TimeLimitExpires) {
  SolveControl control(0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::uint64_t counter = 0;
  bool stopped = false;
  for (int i = 0; i < 100000 && !stopped; ++i) {
    stopped = control.should_stop(counter);
  }
  EXPECT_TRUE(stopped);
}

}  // namespace
}  // namespace lazymc
