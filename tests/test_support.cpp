// Tests for the parallel runtime, PRNG, spinlock, timer and solve control.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/control.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "support/spinlock.hpp"
#include "support/timer.hpp"

namespace lazymc {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ThreadPool, RespectsGrainAndOffset) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 110, [&](std::size_t i) { sum += i; }, 7);
  std::size_t expected = 0;
  for (std::size_t i = 10; i < 110; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::size_t count = 0;
  pool.parallel_for(0, 50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 50u);
}

TEST(ThreadPool, NestedParallelForRunsSequentially) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    // Nested calls must not deadlock; they run inline.
    pool.parallel_for(0, 10, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PropagatesExceptionsUnderContention) {
  // Regression: run_job used to read the job's stored exception without
  // taking its error lock.  Every worker throwing on every chunk makes
  // the store side maximally contended; each round must still rethrow
  // exactly one of the stored exceptions and leave the pool reusable.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [&](std::size_t) {
                                     throw std::runtime_error("every chunk");
                                   },
                                   /*grain=*/1),
                 std::runtime_error);
  }
  // The pool must come out of the throwing rounds fully functional.
  std::atomic<int> total{0};
  pool.parallel_for(0, 64, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelInvokeAllTouchesEveryParticipant) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(pool.num_threads());
  for (auto& h : hits) h.store(0);
  pool.parallel_invoke_all([&](std::size_t t) { hits[t]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t) { count++; });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ParallelReduce, SumsCorrectly) {
  set_num_threads(4);
  std::uint64_t sum = parallel_reduce<std::uint64_t>(
      0, 10000, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 10000ull * 9999 / 2);
}

TEST(GlobalPool, SetNumThreadsTakesEffect) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1u);
  set_num_threads(4);
  EXPECT_EQ(num_threads(), 4u);
}

TEST(WorkQueue, LocalPopIsFifoPerShard) {
  WorkQueue<int> q(1);
  for (int i = 0; i < 10; ++i) q.push(0, i);
  EXPECT_EQ(q.size(), 10u);
  int out = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_pop_local(0, out));
    EXPECT_EQ(out, i);  // priority order preserved
  }
  EXPECT_FALSE(q.try_pop_local(0, out));
  EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, PushBatchAndShardWrapping) {
  WorkQueue<int> q(3);
  std::vector<int> batch{1, 2, 3, 4};
  q.push_batch(1, batch.begin(), batch.end());
  q.push(4, 99);  // shard index wraps modulo num_shards -> shard 1
  EXPECT_EQ(q.size(), 5u);
  int out = 0;
  ASSERT_TRUE(q.try_pop_local(4, out));
  EXPECT_EQ(out, 1);
}

TEST(WorkQueue, StealHalfTakesBackHalfAndKeepsLoot) {
  WorkQueue<int> q(2);
  for (int i = 0; i < 8; ++i) q.push(0, i);
  int out = -1;
  // Thief (shard 1) steals half of shard 0's 8 items: gets items 4..7,
  // returns the loot's highest-priority element (4), keeps 5..7.
  ASSERT_TRUE(q.pop(1, out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(q.size(), 7u);
  // The thief's next pops come from its own shard (the loot), in order.
  ASSERT_TRUE(q.try_pop_local(1, out));
  EXPECT_EQ(out, 5);
  // The victim still drains its front half in order.
  ASSERT_TRUE(q.try_pop_local(0, out));
  EXPECT_EQ(out, 0);
  // Every remaining item is still reachable exactly once.
  std::set<int> rest;
  while (q.pop(0, out)) rest.insert(out);
  EXPECT_EQ(rest, (std::set<int>{1, 2, 3, 6, 7}));
  EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, AbandonedDrainLeavesQueueConsistent) {
  // A consumer that stops mid-drain (cancellation) must leave the queue
  // with an accurate size and every unclaimed item still poppable.
  WorkQueue<int> q(4);
  for (int i = 0; i < 100; ++i) q.push(i % 4, i);
  int out = -1;
  std::set<int> claimed;
  for (int i = 0; i < 37; ++i) {
    ASSERT_TRUE(q.pop(i % 4, out));
    ASSERT_TRUE(claimed.insert(out).second) << "duplicate item " << out;
  }
  EXPECT_EQ(q.size(), 63u);
  std::set<int> rest;
  while (q.pop(0, out)) {
    ASSERT_TRUE(rest.insert(out).second) << "duplicate item " << out;
  }
  EXPECT_EQ(claimed.size() + rest.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(claimed.count(i) + rest.count(i) == 1) << "lost item " << i;
  }
}

TEST(TaskGroup, CountsNestedWork) {
  TaskGroup group;
  EXPECT_TRUE(group.done());
  group.add(3);
  EXPECT_FALSE(group.done());
  EXPECT_EQ(group.pending(), 3u);
  group.add();  // a nested child appears mid-drain
  group.complete();
  group.complete();
  group.complete();
  EXPECT_FALSE(group.done());
  group.complete();
  EXPECT_TRUE(group.done());
}

TEST(DrainQueue, NestedPushesCompleteBeforeDrainEnds) {
  // Each seed item spawns a chain of children; queue emptiness is not a
  // termination signal (a chain's next link appears only when its parent
  // is processed), so only the TaskGroup accounting can end the drain.
  ThreadPool pool(4);
  const std::size_t shards = pool.num_threads();
  WorkQueue<int> q(shards);
  TaskGroup group;
  const int kSeeds = 16, kChain = 5;
  group.add(kSeeds);
  for (int i = 0; i < kSeeds; ++i) q.push(i % shards, kChain - 1);
  std::atomic<int> processed{0};
  drain_queue(
      pool, q, group,
      [&](std::size_t p, int& item) {
        processed.fetch_add(1);
        if (item > 0) {
          group.add();
          q.push(p, item - 1);
        }
      },
      [] { return false; });
  EXPECT_EQ(processed.load(), kSeeds * kChain);
  EXPECT_TRUE(group.done());
  EXPECT_TRUE(q.empty());
}

TEST(DrainQueue, StopPredicateAbandonsPendingWork) {
  ThreadPool pool(4);
  WorkQueue<int> q(pool.num_threads());
  TaskGroup group;
  group.add(50);
  for (int i = 0; i < 50; ++i) q.push(0, i);
  std::atomic<int> processed{0};
  std::atomic<bool> stop{false};
  drain_queue(
      pool, q, group,
      [&](std::size_t, int&) {
        processed.fetch_add(1);
        stop.store(true);  // cancel after the first few items
      },
      [&] { return stop.load(); });
  // Everyone bailed: work remains both in the queue and in the group.
  EXPECT_LT(processed.load(), 50);
  EXPECT_FALSE(group.done());
}

TEST(DrainQueue, ExceptionInProcessReleasesAllParticipants) {
  ThreadPool pool(4);
  WorkQueue<int> q(pool.num_threads());
  TaskGroup group;
  group.add(200);
  for (int i = 0; i < 200; ++i) q.push(i % pool.num_threads(), i);
  EXPECT_THROW(
      drain_queue(
          pool, q, group,
          [&](std::size_t, int& item) {
            if (item == 7) throw std::runtime_error("boom");
          },
          [] { return false; }),
      std::runtime_error);
  // The point is that this returns at all (no participant hangs on the
  // permanently non-done group).
}

TEST(WorkQueue, ConcurrentPushPopStealStress) {
  // Exercises push/pop/steal interleavings; run under TSan
  // (-DLAZYMC_SANITIZE=thread) to check the locking discipline.
  const std::size_t kThreads = 4;
  const int kPerThread = 5000;
  WorkQueue<int> q(kThreads);
  std::atomic<long long> popped_sum{0};
  std::atomic<std::size_t> popped_count{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      // Phase 1: every thread produces into its own shard (in batches)
      // while opportunistically consuming.
      std::vector<int> batch;
      for (int i = 0; i < kPerThread; ++i) {
        batch.push_back(static_cast<int>(t) * kPerThread + i);
        if (batch.size() == 64) {
          q.push_batch(t, batch.begin(), batch.end());
          batch.clear();
        }
        int out;
        if (i % 3 == 0 && q.pop(t, out)) {
          popped_sum.fetch_add(out);
          popped_count.fetch_add(1);
        }
      }
      q.push_batch(t, batch.begin(), batch.end());
      // Phase 2: drain (pop own shard, steal from the others).
      int out;
      while (q.pop(t, out)) {
        popped_sum.fetch_add(out);
        popped_count.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  // Phase-2 drains can race each other to "empty" while another thread is
  // still pushing its tail batch, so sweep up any leftovers.
  int out;
  while (q.pop(0, out)) {
    popped_sum.fetch_add(out);
    popped_count.fetch_add(1);
  }
  const long long n = static_cast<long long>(kThreads) * kPerThread;
  EXPECT_EQ(popped_count.load(), static_cast<std::size_t>(n));
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
  EXPECT_TRUE(q.empty());
}

TEST(ShardedRange, SkewedWorkStillCoversEveryIndex) {
  // Chunk stealing: participant 0's shard is much more expensive, so the
  // others must finish it; every index still runs exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4096);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    if (i < hits.size() / 4) {
      // Simulate skew in the first shard.
      volatile int spin = 0;
      for (int s = 0; s < 50; ++s) spin = spin + s;
    }
    hits[i]++;
  }, 8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t bound = 1 + (i % 97);
    EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLock, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double e = timer.elapsed();
  EXPECT_GE(e, 0.015);
  EXPECT_LT(e, 5.0);
}

TEST(WallTimer, LapRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double first = timer.lap();
  double second = timer.elapsed();
  EXPECT_GE(first, 0.005);
  EXPECT_LT(second, first);
}

TEST(SolveControl, NoLimitNeverStops) {
  SolveControl control;
  std::uint64_t counter = 0;
  for (int i = 0; i < 100000; ++i) {
    EXPECT_FALSE(control.should_stop(counter));
  }
}

TEST(SolveControl, CancelStopsImmediately) {
  SolveControl control;
  std::uint64_t counter = 0;
  EXPECT_FALSE(control.should_stop(counter));
  control.cancel();
  EXPECT_TRUE(control.should_stop(counter));
  EXPECT_TRUE(control.cancelled());
}

TEST(SolveControl, TimeLimitExpires) {
  SolveControl control(0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::uint64_t counter = 0;
  bool stopped = false;
  for (int i = 0; i < 100000 && !stopped; ++i) {
    stopped = control.should_stop(counter);
  }
  EXPECT_TRUE(stopped);
}

}  // namespace
}  // namespace lazymc
