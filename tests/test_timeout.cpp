// Timeout-path tests (failure model): a solve cut off by --time-limit
// must still return a valid best-so-far witness, and the anytime
// instrumentation (first-solution time, incumbent improvements) must be
// consistent.  Runs at 1 and 8 threads so the cancellation paths through
// the pool are exercised under the sanitizer jobs too.
#include <gtest/gtest.h>

#include <cstdint>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/suite.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

class Timeout : public ::testing::Test {
 protected:
  void TearDown() override { set_num_threads(1); }
};

TEST_F(Timeout, DenseInstanceTimesOutWithValidWitness) {
  // gnp(400, 0.5) cannot be solved in 20ms by any configuration: the
  // systematic phase is guaranteed to be cut off mid-search.
  Graph g = gen::gnp(400, 0.5, 5);
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    set_num_threads(threads);
    mc::LazyMCConfig config;
    config.time_limit_seconds = 0.02;
    auto r = mc::lazy_mc(g, config);
    EXPECT_TRUE(r.timed_out) << threads << " threads";
    // Best-so-far must still be a real clique of the input graph.
    EXPECT_GE(r.omega, 1u);
    EXPECT_EQ(r.clique.size(), r.omega) << threads << " threads";
    EXPECT_TRUE(is_clique(g, r.clique)) << threads << " threads";
  }
}

TEST_F(Timeout, SuiteWideTinyLimitNeverProducesAnInvalidResult) {
  // Every suite instance under a near-zero limit: whichever phase the
  // clock expires in, the result is either a certified solve (the limit
  // never bit) or a flagged timeout — always with a valid witness.
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    set_num_threads(threads);
    for (const auto& inst : suite::make_suite(suite::Scale::kTiny)) {
      mc::LazyMCConfig config;
      config.time_limit_seconds = 1e-4;
      auto r = mc::lazy_mc(inst.graph, config);
      EXPECT_EQ(r.clique.size(), r.omega) << inst.name;
      EXPECT_TRUE(is_clique(inst.graph, r.clique))
          << inst.name << " @ " << threads << " threads";
      // The clock may expire before the first incumbent (an empty clique
      // is legitimate best-so-far then), but a completed solve of a
      // nonempty graph must have found at least one vertex.
      if (!r.timed_out && inst.graph.num_vertices() > 0) {
        EXPECT_GE(r.omega, 1u) << inst.name;
      }
    }
  }
}

TEST_F(Timeout, IncumbentHistoryIsMonotoneAndConsistent) {
  Graph g = gen::gnp(400, 0.5, 5);
  set_num_threads(8);
  mc::LazyMCConfig config;
  config.time_limit_seconds = 0.05;
  auto r = mc::lazy_mc(g, config);
  ASSERT_FALSE(r.search.improvements.empty());
  EXPECT_EQ(r.search.time_to_first_solution,
            r.search.improvements.front().seconds);
  EXPECT_GT(r.search.time_to_first_solution, 0.0);
  for (std::size_t i = 1; i < r.search.improvements.size(); ++i) {
    // Strictly better cliques, non-decreasing timestamps.
    EXPECT_GT(r.search.improvements[i].size,
              r.search.improvements[i - 1].size);
    EXPECT_GE(r.search.improvements[i].seconds,
              r.search.improvements[i - 1].seconds);
  }
  // The history ends at the reported incumbent.
  EXPECT_EQ(r.search.improvements.back().size, r.omega);
}

TEST_F(Timeout, UntimedSolveRecordsFirstSolutionTime) {
  Graph g = gen::gnp(60, 0.3, 9);
  auto r = mc::lazy_mc(g);
  EXPECT_FALSE(r.timed_out);
  ASSERT_FALSE(r.search.improvements.empty());
  EXPECT_GT(r.search.time_to_first_solution, 0.0);
  EXPECT_EQ(r.search.improvements.back().size, r.omega);
}

}  // namespace
}  // namespace lazymc
