// Daemon substrate tests: wire protocol, flat-JSON scanners, the request
// broker's admission/isolation/accounting, watchdog supervision, pidfile
// recovery, and the Unix-socket line channel.  The end-to-end daemon
// (accept loop, verbs, signals) is exercised by tools/daemon_smoke.sh.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/broker.hpp"
#include "daemon/lifecycle.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "daemon/watchdog.hpp"
#include "support/error.hpp"
#include "support/jsonmini.hpp"
#include "support/socket.hpp"

namespace lazymc::daemon {
namespace {

// ---------------------------------------------------------------- jsonmini

TEST(JsonMini, ExtractsStringsNumbersBools) {
  const std::string line =
      R"({"verb":"solve","graph":"a b\\c\"d","time_limit":2.5,"ok":false,"n":-3})";
  std::string s;
  ASSERT_TRUE(json_get_string(line, "verb", s));
  EXPECT_EQ(s, "solve");
  ASSERT_TRUE(json_get_string(line, "graph", s));
  EXPECT_EQ(s, "a b\\c\"d");
  double d = 0;
  ASSERT_TRUE(json_get_number(line, "time_limit", d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  ASSERT_TRUE(json_get_number(line, "n", d));
  EXPECT_DOUBLE_EQ(d, -3);
  bool b = true;
  ASSERT_TRUE(json_get_bool(line, "ok", b));
  EXPECT_FALSE(b);
  EXPECT_FALSE(json_get_string(line, "missing", s));
  EXPECT_FALSE(json_get_number(line, "verb", d));
}

TEST(JsonMini, MalformedUnicodeEscapesReturnFalseInsteadOfThrowing) {
  // A hostile client line like this used to throw std::invalid_argument
  // out of std::stoi, escape the connection thread, and terminate the
  // daemon.  Extraction must fail structurally instead.
  std::string s;
  EXPECT_FALSE(json_get_string(R"({"id":"a\uzzzz"})", "id", s));
  EXPECT_FALSE(json_get_string(R"({"id":"a\u12g4"})", "id", s));
  EXPECT_FALSE(json_get_string(R"({"id":"a\u12)", "id", s));   // truncated
  EXPECT_FALSE(json_get_string(R"({"id":"a\q"})", "id", s));   // bad escape
}

TEST(JsonMini, DecodesUnicodeEscapesToUtf8) {
  std::string s;
  ASSERT_TRUE(json_get_string("{\"id\":\"\\u0041\\u0062\"}", "id", s));
  EXPECT_EQ(s, "Ab");
  ASSERT_TRUE(json_get_string("{\"id\":\"\\u0009\"}", "id", s));
  EXPECT_EQ(s, "\t");
  // Codepoints past 0x7F must not be truncated to a single char.
  ASSERT_TRUE(json_get_string("{\"id\":\"\\u00E9\"}", "id", s));
  EXPECT_EQ(s, "\xC3\xA9");  // U+00E9, e-acute
  ASSERT_TRUE(json_get_string("{\"id\":\"\\u2713\"}", "id", s));
  EXPECT_EQ(s, "\xE2\x9C\x93");  // U+2713, check mark
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, RoundTripsRequests) {
  Request request;
  request.verb = Verb::kSolve;
  request.graph = "gen:dblp:tiny";
  request.time_limit = 1.5;
  request.id = "client-7";
  const Request parsed = parse_request(format_request(request));
  EXPECT_EQ(parsed.verb, Verb::kSolve);
  EXPECT_EQ(parsed.graph, request.graph);
  EXPECT_DOUBLE_EQ(parsed.time_limit, 1.5);
  EXPECT_EQ(parsed.id, "client-7");
}

TEST(Protocol, HealthAliasesStatus) {
  EXPECT_EQ(parse_request(R"({"verb":"health"})").verb, Verb::kStatus);
  EXPECT_EQ(parse_request(R"({"verb":"status"})").verb, Verb::kStatus);
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request(R"({"graph":"x"})"), Error);
  EXPECT_THROW(parse_request(R"({"verb":"explode"})"), Error);
  EXPECT_THROW(parse_request(R"({"verb":"solve"})"), Error);
  EXPECT_THROW(parse_request(R"({"verb":"load"})"), Error);
  EXPECT_THROW(
      parse_request(R"({"verb":"solve","graph":"g","time_limit":-1})"), Error);
  try {
    parse_request(R"({"verb":"nope"})");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInput);
  }
}

TEST(Protocol, ErrorResponsesCarryKindAndErrno) {
  const std::string line =
      error_response("req-1", ErrorKind::kOverloaded, "queue full", EAGAIN);
  bool ok = true;
  ASSERT_TRUE(json_get_bool(line, "ok", ok));
  EXPECT_FALSE(ok);
  std::string kind;
  ASSERT_TRUE(json_get_string(line, "error_kind", kind));
  EXPECT_EQ(kind, "overloaded");
  double err = 0;
  ASSERT_TRUE(json_get_number(line, "errno", err));
  EXPECT_EQ(static_cast<int>(err), EAGAIN);
  std::string id;
  ASSERT_TRUE(json_get_string(line, "request_id", id));
  EXPECT_EQ(id, "req-1");
}

// ------------------------------------------------------------------ broker

/// Blocks SolveFns until released (lets tests hold requests in-flight).
class Latch {
 public:
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return released_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool released_ = false;
};

void expect_reconciled(const RequestBroker::Counters& c) {
  EXPECT_EQ(c.admitted, c.completed + c.failed + c.shed + c.in_flight());
}

TEST(RequestBroker, CompletesSubmittedRequests) {
  BrokerConfig config;
  config.executors = 2;
  RequestBroker broker(config, [](RequestTicket& t) {
    return "done:" + t.graph();
  });
  auto a = broker.submit("g1", 0, "a");
  auto b = broker.submit("g2", 0, "b");
  EXPECT_EQ(a->wait(), "done:g1");
  EXPECT_EQ(b->wait(), "done:g2");
  const auto c = broker.counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.in_flight(), 0u);
  expect_reconciled(c);
}

TEST(RequestBroker, ShedsWithOverloadedWhenQueueIsFull) {
  Latch latch;
  BrokerConfig config;
  config.executors = 1;
  config.max_queue = 1;
  RequestBroker broker(config, [&latch](RequestTicket&) {
    latch.wait();
    return std::string("ok");
  });

  auto running = broker.submit("g", 0, "running");
  // Give the executor a moment to pick up the first ticket so the queue
  // bound applies to the second/third deterministically.
  while (broker.counters().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto queued = broker.submit("g", 0, "queued");
  try {
    broker.submit("g", 0, "shed");
    FAIL() << "expected kOverloaded";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kOverloaded);
    EXPECT_TRUE(e.transient());
  }
  {
    const auto c = broker.counters();
    EXPECT_EQ(c.shed, 1u);
    EXPECT_EQ(c.in_flight(), 2u);
    expect_reconciled(c);
  }

  latch.release();
  EXPECT_EQ(running->wait(), "ok");
  EXPECT_EQ(queued->wait(), "ok");
  const auto c = broker.counters();
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.shed, 1u);
  expect_reconciled(c);
}

TEST(RequestBroker, IsolatesAFailedRequestFromItsNeighbours) {
  BrokerConfig config;
  config.executors = 1;
  RequestBroker broker(config, [](RequestTicket& t) -> std::string {
    if (t.graph() == "bad") {
      throw Error(ErrorKind::kInput, "no such graph");
    }
    return "solved";
  });
  auto bad = broker.submit("bad", 0, "req-bad");
  auto good = broker.submit("good", 0, "req-good");

  const std::string bad_response = bad->wait();
  bool ok = true;
  ASSERT_TRUE(json_get_bool(bad_response, "ok", ok));
  EXPECT_FALSE(ok);
  std::string kind, id;
  ASSERT_TRUE(json_get_string(bad_response, "error_kind", kind));
  EXPECT_EQ(kind, "input");
  ASSERT_TRUE(json_get_string(bad_response, "request_id", id));
  EXPECT_EQ(id, "req-bad");

  EXPECT_EQ(good->wait(), "solved");
  const auto c = broker.counters();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.failed, 1u);
  expect_reconciled(c);
}

TEST(RequestBroker, DrainCancelsInFlightAndShedsNewWork) {
  BrokerConfig config;
  config.executors = 1;
  RequestBroker broker(config, [](RequestTicket& t) {
    // A cooperative solve: runs until its own control is cancelled.
    while (!t.control().cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::string(stop_cause_name(t.control().stop_cause()));
  });
  auto inflight = broker.submit("g", 0, "inflight");
  broker.drain(/*cancel_in_flight=*/true);
  EXPECT_EQ(inflight->wait(), "interrupted");
  EXPECT_THROW(broker.submit("g", 0, "late"), Error);
  broker.wait_idle();
  const auto c = broker.counters();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.shed, 1u);
  expect_reconciled(c);
}

TEST(RequestBroker, AppliesDefaultAndMaxTimeLimits) {
  BrokerConfig config;
  config.default_time_limit = 7;
  config.max_time_limit = 10;
  RequestBroker broker(config,
                       [](RequestTicket&) { return std::string("ok"); });
  auto defaulted = broker.submit("g", 0, "d");
  auto capped = broker.submit("g", 99, "c");
  auto within = broker.submit("g", 3, "w");
  EXPECT_DOUBLE_EQ(defaulted->control().time_limit(), 7);
  EXPECT_DOUBLE_EQ(capped->control().time_limit(), 10);
  EXPECT_DOUBLE_EQ(within->control().time_limit(), 3);
  defaulted->wait();
  capped->wait();
  within->wait();
}

// ---------------------------------------------------------------- watchdog

TEST(WatchdogTest, ForceCancelsRunawayRequestsPastDeadlinePlusGrace) {
  BrokerConfig config;
  config.executors = 1;
  RequestBroker broker(config, [](RequestTicket& t) {
    // Runaway with respect to the deadline: never consults should_stop
    // (which would observe the deadline itself) — only an external
    // cancel stops it.
    while (!t.control().cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::string(stop_cause_name(t.control().stop_cause()));
  });
  WatchdogConfig wd;
  wd.interval_seconds = 0.02;
  wd.grace_seconds = 0.05;
  Watchdog watchdog(broker, wd);

  auto ticket = broker.submit("g", /*time_limit=*/0.05, "runaway");
  EXPECT_EQ(ticket->wait(), "deadline");
  EXPECT_GE(watchdog.cancels(), 1u);
}

TEST(WatchdogTest, ReportsAStalledCancelledRequestOnce) {
  Latch latch;
  BrokerConfig config;
  config.executors = 1;
  RequestBroker broker(config, [&latch](RequestTicket&) {
    // Wedged: ignores its control entirely until externally released.
    latch.wait();
    return std::string("finally");
  });
  WatchdogConfig wd;
  wd.interval_seconds = 0.01;
  wd.grace_seconds = 0.02;
  wd.stall_scans = 3;
  Watchdog watchdog(broker, wd);

  auto ticket = broker.submit("g", /*time_limit=*/0.01, "wedged");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (watchdog.stalls() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(watchdog.stalls(), 1u);
  EXPECT_GE(watchdog.cancels(), 1u);
  // Give the watchdog several more scans: the stall must be reported
  // once per ticket, not once per scan.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(watchdog.stalls(), 1u);

  latch.release();
  EXPECT_EQ(ticket->wait(), "finally");
}

// ----------------------------------------------------------------- pidfile

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/lazymc_test_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!dir_.empty()) {
      std::remove((dir_ + "/d.pid").c_str());
      std::remove((dir_ + "/d.sock").c_str());
      ::rmdir(dir_.c_str());
    }
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

TEST(PidfileTest, RefusesASecondLiveInstance) {
  TempDir tmp;
  Pidfile first(tmp.path("d.pid"), tmp.path("d.sock"));
  EXPECT_FALSE(first.recovered_stale());
  // Our own (live) pid is in the file now.
  try {
    Pidfile second(tmp.path("d.pid"), tmp.path("d.sock"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInput);
  }
}

TEST(PidfileTest, RecoversAStaleInstanceAndItsSocket) {
  TempDir tmp;
  {
    std::ofstream pid(tmp.path("d.pid"));
    pid << 999999999 << "\n";  // beyond any real pid: guaranteed dead
  }
  {
    std::ofstream sock(tmp.path("d.sock"));
    sock << "stale";
  }
  Pidfile recovered(tmp.path("d.pid"), tmp.path("d.sock"));
  EXPECT_TRUE(recovered.recovered_stale());
  // The stale socket was reclaimed so a fresh bind can succeed.
  EXPECT_FALSE(std::ifstream(tmp.path("d.sock")).good());
  // The pidfile now names us.
  std::ifstream in(tmp.path("d.pid"));
  long pid = 0;
  in >> pid;
  EXPECT_EQ(pid, static_cast<long>(::getpid()));
}

// ------------------------------------------------------------------ socket

TEST(SocketTest, LineChannelRoundTripsOverAUnixSocket) {
  TempDir tmp;
  net::UnixListener listener(tmp.path("d.sock"));
  std::thread echo([&listener] {
    net::Fd client = listener.accept(/*timeout_ms=*/5000);
    ASSERT_TRUE(client.valid());
    net::LineChannel channel(client.get());
    std::string line;
    while (channel.read_line(line, /*timeout_ms=*/5000) ==
           net::LineChannel::ReadStatus::kLine) {
      channel.write_line("echo:" + line);
    }
  });

  net::Fd fd = net::unix_connect(tmp.path("d.sock"));
  net::LineChannel channel(fd.get());
  channel.write_line("hello");
  channel.write_line("world");
  std::string line;
  ASSERT_EQ(channel.read_line(line, 5000), net::LineChannel::ReadStatus::kLine);
  EXPECT_EQ(line, "echo:hello");
  ASSERT_EQ(channel.read_line(line, 5000), net::LineChannel::ReadStatus::kLine);
  EXPECT_EQ(line, "echo:world");
  fd.reset();  // EOF ends the echo loop
  echo.join();
}

TEST(SocketTest, RejectsOverlongSocketPaths) {
  EXPECT_THROW(net::UnixListener(std::string(200, 'x')), Error);
}

TEST(SocketTest, ConnectToMissingSocketFailsStructurally) {
  TempDir tmp;
  try {
    net::unix_connect(tmp.path("absent.sock"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInput);
    EXPECT_NE(e.sys_errno(), 0);
  }
}

// -------------------------------------------------------------- graph store

TEST(GraphStoreTest, LoadsOnceAndShares) {
  GraphStore store;
  const auto first = store.get("gen:dblp:tiny");
  const auto second = store.get("gen:dblp:tiny");
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_GT(first->graph.num_vertices(), 0u);
}

TEST(GraphStoreTest, PropagatesClassifiedLoadFailures) {
  GraphStore store;
  try {
    store.get("gen:not-a-generator");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInput);
  }
  EXPECT_EQ(store.size(), 0u);
  // A failed load is forgotten, not cached: the same spec fails the same
  // way on retry (and would succeed if e.g. the file appeared).
  EXPECT_THROW(store.get("gen:not-a-generator"), Error);
  EXPECT_EQ(store.size(), 0u);
}

TEST(GraphStoreTest, ConcurrentFirstRequestsShareOneLoad) {
  GraphStore store;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const cli::LoadedGraph>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&store, &results, t] { results[t] = store.get("gen:dblp:tiny"); });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace lazymc::daemon
