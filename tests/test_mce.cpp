// Tests for maximal clique enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mc/lazymc.hpp"
#include "mce/mce.hpp"

namespace lazymc {
namespace {

/// Exponential reference: checks every subset for clique-ness and
/// maximality (n <= 16).
std::set<std::set<VertexId>> maximal_cliques_naive(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> cliques;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    bool ok = true;
    for (VertexId u = 0; u < n && ok; ++u) {
      if (!(mask & (1u << u))) continue;
      for (VertexId v = u + 1; v < n && ok; ++v) {
        if (!(mask & (1u << v))) continue;
        if (!g.has_edge(u, v)) ok = false;
      }
    }
    if (ok) cliques.push_back(mask);
  }
  std::set<std::set<VertexId>> maximal;
  for (std::uint32_t c : cliques) {
    bool is_maximal = true;
    for (std::uint32_t d : cliques) {
      if (d != c && (c & d) == c) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) {
      std::set<VertexId> s;
      for (VertexId v = 0; v < n; ++v) {
        if (c & (1u << v)) s.insert(v);
      }
      maximal.insert(std::move(s));
    }
  }
  return maximal;
}

TEST(Mce, CompleteGraphHasOne) {
  auto r = mce::count_maximal_cliques(gen::complete(8));
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.max_size, 8u);
}

TEST(Mce, PathHasEdgeCliques) {
  auto r = mce::count_maximal_cliques(gen::path(10));
  EXPECT_EQ(r.count, 9u);
  EXPECT_EQ(r.max_size, 2u);
}

TEST(Mce, TriangleAndCycles) {
  EXPECT_EQ(mce::count_maximal_cliques(gen::cycle(3)).count, 1u);
  EXPECT_EQ(mce::count_maximal_cliques(gen::cycle(4)).count, 4u);
  EXPECT_EQ(mce::count_maximal_cliques(gen::cycle(7)).count, 7u);
}

TEST(Mce, StarHasLeafEdges) {
  auto r = mce::count_maximal_cliques(gen::star(6));
  EXPECT_EQ(r.count, 5u);
  EXPECT_EQ(r.max_size, 2u);
}

TEST(Mce, CocktailPartyGraphMoonMoser) {
  // K(2,2,2): complete tripartite with parts of size 2 -> 2^3 = 8 maximal
  // triangles (the Moon–Moser extremal family).
  GraphBuilder b(6);
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) {
      if (i / 2 != j / 2) b.add_edge(i, j);
    }
  }
  auto r = mce::count_maximal_cliques(b.build());
  EXPECT_EQ(r.count, 8u);
  EXPECT_EQ(r.max_size, 3u);
}

TEST(Mce, IsolatedVerticesAreMaximalCliques) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  auto r = mce::count_maximal_cliques(b.build());
  EXPECT_EQ(r.count, 1u + 3u);  // the edge + 3 isolated vertices
  EXPECT_EQ(r.max_size, 2u);
}

TEST(Mce, EmptyGraph) {
  auto r = mce::count_maximal_cliques(Graph{});
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.max_size, 0u);
}

TEST(Mce, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Graph g = gen::gnp(12, 0.35, seed);
    auto expected = maximal_cliques_naive(g);
    std::set<std::set<VertexId>> seen;
    auto r = mce::enumerate_maximal_cliques(
        g, [&](std::span<const VertexId> clique) {
          seen.insert(std::set<VertexId>(clique.begin(), clique.end()));
        });
    EXPECT_EQ(r.count, expected.size()) << "seed " << seed;
    EXPECT_EQ(seen, expected) << "seed " << seed;
  }
}

TEST(Mce, EveryVisitedSetIsAClique) {
  Graph g = gen::gnp(40, 0.25, 17);
  std::uint64_t visited = 0;
  auto r = mce::enumerate_maximal_cliques(
      g, [&](std::span<const VertexId> clique) {
        ++visited;
        ASSERT_TRUE(is_clique(g, clique));
      });
  EXPECT_EQ(visited, r.count);
  EXPECT_GT(r.count, 0u);
}

TEST(Mce, MaxSizeEqualsOmega) {
  for (std::uint64_t seed = 20; seed <= 28; ++seed) {
    Graph g = gen::gnp(45, 0.25, seed);
    auto mce_r = mce::count_maximal_cliques(g);
    auto mc_r = mc::lazy_mc(g);
    EXPECT_EQ(mce_r.max_size, mc_r.omega) << "seed " << seed;
  }
}

TEST(Mce, CancelledControlStops) {
  Graph g = gen::gnp(80, 0.4, 31);
  SolveControl control;
  control.cancel();
  auto r = mce::count_maximal_cliques(g, &control);
  EXPECT_TRUE(r.timed_out);
}

}  // namespace
}  // namespace lazymc
