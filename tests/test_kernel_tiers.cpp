// SIMD kernel-tier dispatch: unit coverage of the tier model
// (support/simd.hpp) plus the suite-wide agreement sweep the SIMD engine
// must pass — omega identical under every supported --kernels tier
// (scalar always included, avx2/avx512 when the build + CPU provide
// them) at 1, 2 and 8 threads, with bitset rows forced so the
// word-parallel kernels actually run.
#include <gtest/gtest.h>

#include <bit>
#include <cctype>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "graph/suite.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"
#include "support/wordops.hpp"

namespace lazymc {
namespace {

using simd::supported_tiers;

TEST(SimdTiers, ScalarAlwaysSupportedAndNamed) {
  auto tiers = supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  EXPECT_TRUE(simd::tier_compiled(simd::Tier::kScalar));
  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx512), "avx512");
}

TEST(SimdTiers, SupportRequiresCompilation) {
  for (std::size_t t = 0; t < simd::kNumTiers; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    if (!simd::tier_compiled(tier)) {
      EXPECT_FALSE(simd::tier_supported(tier)) << simd::tier_name(tier);
      EXPECT_FALSE(simd::force_tier(tier));
    }
  }
  EXPECT_TRUE(simd::tier_supported(simd::best_tier()));
}

TEST(SimdTiers, ForceAndResetSteerDispatch) {
  ASSERT_TRUE(simd::force_tier(simd::Tier::kScalar));
  EXPECT_EQ(simd::current_tier(), simd::Tier::kScalar);
  EXPECT_EQ(wordops::active().tier, simd::Tier::kScalar);
  simd::reset_tier();
  EXPECT_EQ(simd::current_tier(), simd::best_tier());
  EXPECT_EQ(wordops::active().tier, simd::best_tier());
}

TEST(SimdTiers, ForcingUnavailableTierFailsLoudlyInLazyMc) {
  // Find a tier that is not supported; when the build targets the full
  // AVX-512 host feature set there may be none, in which case the loud
  // failure path is untestable here.
  for (std::size_t t = 0; t < simd::kNumTiers; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    if (simd::tier_supported(tier)) continue;
    auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
    mc::LazyMCConfig cfg;
    cfg.kernel_tier = tier;
    EXPECT_THROW(mc::lazy_mc(inst.graph, cfg), std::runtime_error);
    return;
  }
  GTEST_SKIP() << "every tier is supported on this build/CPU";
}

TEST(SimdTiers, ConfigForcedTierDoesNotLeakIntoLaterSolves) {
  // A forced baseline (kernel_tier = scalar) must not leave the process
  // pinned to scalar: a later auto solve gets best-tier dispatch again.
  auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
  mc::LazyMCConfig forced;
  forced.kernel_tier = simd::Tier::kScalar;
  auto f = mc::lazy_mc(inst.graph, forced);
  EXPECT_EQ(f.search.simd_tier, "scalar");
  EXPECT_EQ(simd::current_tier(), simd::best_tier());
  mc::LazyMCConfig auto_cfg;
  auto r = mc::lazy_mc(inst.graph, auto_cfg);
  EXPECT_EQ(r.search.simd_tier, simd::tier_name(simd::best_tier()));
  // ...and an ambient force set directly by the caller is restored too.
  ASSERT_TRUE(simd::force_tier(simd::Tier::kScalar));
  mc::lazy_mc(inst.graph, forced);
  EXPECT_EQ(simd::forced_tier(), simd::Tier::kScalar);
  simd::reset_tier();
}

TEST(SimdTiers, BulkPopcountBitIdenticalAcrossTiers) {
  // The AVX2 bulk popcounts accumulate 16-word blocks through a
  // Harley-Seal carry-save tree; every tier must agree with the plain
  // scalar fold at every size around the 4-word and 16-word block
  // boundaries (and the partially-filled tails between them).
  std::vector<std::uint64_t> a, b;
  std::mt19937_64 rng(12345);
  for (std::size_t i = 0; i < 80; ++i) {
    a.push_back(rng());
    b.push_back(rng());
  }
  a[3] = ~0ULL;  // saturated columns stress the carry-save adders
  b[3] = ~0ULL;
  a[20] = 0;
  for (std::size_t n : {0u,  1u,  3u,  4u,  5u,  15u, 16u, 17u, 31u, 32u,
                        33u, 47u, 48u, 49u, 63u, 64u, 65u, 79u, 80u}) {
    std::size_t want = 0, want_and = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want += static_cast<std::size_t>(std::popcount(a[i]));
      want_and += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    }
    for (simd::Tier tier : supported_tiers()) {
      ASSERT_TRUE(simd::force_tier(tier));
      const wordops::Table& ops = wordops::active();
      EXPECT_EQ(ops.popcount(a.data(), n), want)
          << "n=" << n << " tier=" << simd::tier_name(tier);
      EXPECT_EQ(ops.popcount_and(a.data(), b.data(), n), want_and)
          << "n=" << n << " tier=" << simd::tier_name(tier);
    }
    simd::reset_tier();
  }
}

class KernelTierSweepTest : public testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    simd::reset_tier();
    set_num_threads(0);
  }
};

TEST_P(KernelTierSweepTest, OmegaIdenticalAcrossTiersAndThreads) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;

  set_num_threads(1);
  mc::LazyMCConfig base;
  base.neighborhood_rep = NeighborhoodRep::kBitset;
  base.kernel_tier = simd::Tier::kScalar;
  const auto baseline = mc::lazy_mc(g, base);
  ASSERT_TRUE(is_clique(g, baseline.clique));
  ASSERT_EQ(baseline.search.simd_tier, "scalar");

  for (std::size_t threads : {1, 2, 8}) {
    set_num_threads(threads);
    for (simd::Tier tier : supported_tiers()) {
      for (NeighborhoodRep rep :
           {NeighborhoodRep::kBitset, NeighborhoodRep::kHybrid}) {
        mc::LazyMCConfig cfg;
        cfg.neighborhood_rep = rep;
        cfg.kernel_tier = tier;
        auto r = mc::lazy_mc(g, cfg);
        EXPECT_EQ(r.omega, baseline.omega)
            << GetParam() << " threads=" << threads
            << " tier=" << simd::tier_name(tier)
            << " rep=" << static_cast<int>(rep);
        EXPECT_TRUE(is_clique(g, r.clique));
        EXPECT_FALSE(r.timed_out);
        EXPECT_EQ(r.search.simd_tier, simd::tier_name(tier));
        if (rep == NeighborhoodRep::kBitset) {
          // Any bitset-word dispatch must be attributed to the forced
          // tier (hybrid rows split theirs across container counters).
          const std::uint64_t attributed =
              tier == simd::Tier::kScalar   ? r.search.kernel_word_scalar
              : tier == simd::Tier::kAvx2   ? r.search.kernel_word_avx2
                                            : r.search.kernel_word_avx512;
          EXPECT_EQ(attributed, r.search.kernel_bitset_word);
        }
      }
    }
    // Auto dispatch (no forced tier) must agree too.
    simd::reset_tier();
    mc::LazyMCConfig auto_cfg;
    auto_cfg.neighborhood_rep = NeighborhoodRep::kBitset;
    auto r = mc::lazy_mc(g, auto_cfg);
    EXPECT_EQ(r.omega, baseline.omega) << GetParam() << " tier=auto";
    EXPECT_EQ(r.search.simd_tier, simd::tier_name(simd::best_tier()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, KernelTierSweepTest,
                         testing::ValuesIn(suite::instance_names()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace lazymc
