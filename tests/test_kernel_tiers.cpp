// SIMD kernel-tier dispatch: unit coverage of the tier model
// (support/simd.hpp) plus the suite-wide agreement sweep the SIMD engine
// must pass — omega identical under every supported --kernels tier
// (scalar always included, avx2/avx512 when the build + CPU provide
// them) at 1, 2 and 8 threads, with bitset rows forced so the
// word-parallel kernels actually run.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "graph/suite.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"
#include "support/wordops.hpp"

namespace lazymc {
namespace {

using simd::supported_tiers;

TEST(SimdTiers, ScalarAlwaysSupportedAndNamed) {
  auto tiers = supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  EXPECT_TRUE(simd::tier_compiled(simd::Tier::kScalar));
  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx512), "avx512");
}

TEST(SimdTiers, SupportRequiresCompilation) {
  for (std::size_t t = 0; t < simd::kNumTiers; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    if (!simd::tier_compiled(tier)) {
      EXPECT_FALSE(simd::tier_supported(tier)) << simd::tier_name(tier);
      EXPECT_FALSE(simd::force_tier(tier));
    }
  }
  EXPECT_TRUE(simd::tier_supported(simd::best_tier()));
}

TEST(SimdTiers, ForceAndResetSteerDispatch) {
  ASSERT_TRUE(simd::force_tier(simd::Tier::kScalar));
  EXPECT_EQ(simd::current_tier(), simd::Tier::kScalar);
  EXPECT_EQ(wordops::active().tier, simd::Tier::kScalar);
  simd::reset_tier();
  EXPECT_EQ(simd::current_tier(), simd::best_tier());
  EXPECT_EQ(wordops::active().tier, simd::best_tier());
}

TEST(SimdTiers, ForcingUnavailableTierFailsLoudlyInLazyMc) {
  // Find a tier that is not supported; when the build targets the full
  // AVX-512 host feature set there may be none, in which case the loud
  // failure path is untestable here.
  for (std::size_t t = 0; t < simd::kNumTiers; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    if (simd::tier_supported(tier)) continue;
    auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
    mc::LazyMCConfig cfg;
    cfg.kernel_tier = tier;
    EXPECT_THROW(mc::lazy_mc(inst.graph, cfg), std::runtime_error);
    return;
  }
  GTEST_SKIP() << "every tier is supported on this build/CPU";
}

TEST(SimdTiers, ConfigForcedTierDoesNotLeakIntoLaterSolves) {
  // A forced baseline (kernel_tier = scalar) must not leave the process
  // pinned to scalar: a later auto solve gets best-tier dispatch again.
  auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
  mc::LazyMCConfig forced;
  forced.kernel_tier = simd::Tier::kScalar;
  auto f = mc::lazy_mc(inst.graph, forced);
  EXPECT_EQ(f.search.simd_tier, "scalar");
  EXPECT_EQ(simd::current_tier(), simd::best_tier());
  mc::LazyMCConfig auto_cfg;
  auto r = mc::lazy_mc(inst.graph, auto_cfg);
  EXPECT_EQ(r.search.simd_tier, simd::tier_name(simd::best_tier()));
  // ...and an ambient force set directly by the caller is restored too.
  ASSERT_TRUE(simd::force_tier(simd::Tier::kScalar));
  mc::lazy_mc(inst.graph, forced);
  EXPECT_EQ(simd::forced_tier(), simd::Tier::kScalar);
  simd::reset_tier();
}

class KernelTierSweepTest : public testing::TestWithParam<std::string> {
 protected:
  void TearDown() override {
    simd::reset_tier();
    set_num_threads(0);
  }
};

TEST_P(KernelTierSweepTest, OmegaIdenticalAcrossTiersAndThreads) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;

  set_num_threads(1);
  mc::LazyMCConfig base;
  base.neighborhood_rep = NeighborhoodRep::kBitset;
  base.kernel_tier = simd::Tier::kScalar;
  const auto baseline = mc::lazy_mc(g, base);
  ASSERT_TRUE(is_clique(g, baseline.clique));
  ASSERT_EQ(baseline.search.simd_tier, "scalar");

  for (std::size_t threads : {1, 2, 8}) {
    set_num_threads(threads);
    for (simd::Tier tier : supported_tiers()) {
      mc::LazyMCConfig cfg;
      cfg.neighborhood_rep = NeighborhoodRep::kBitset;
      cfg.kernel_tier = tier;
      auto r = mc::lazy_mc(g, cfg);
      EXPECT_EQ(r.omega, baseline.omega)
          << GetParam() << " threads=" << threads
          << " tier=" << simd::tier_name(tier);
      EXPECT_TRUE(is_clique(g, r.clique));
      EXPECT_FALSE(r.timed_out);
      EXPECT_EQ(r.search.simd_tier, simd::tier_name(tier));
      // Any bitset-word dispatch must be attributed to the forced tier.
      const std::uint64_t attributed =
          tier == simd::Tier::kScalar   ? r.search.kernel_word_scalar
          : tier == simd::Tier::kAvx2   ? r.search.kernel_word_avx2
                                        : r.search.kernel_word_avx512;
      EXPECT_EQ(attributed, r.search.kernel_bitset_word);
    }
    // Auto dispatch (no forced tier) must agree too.
    simd::reset_tier();
    mc::LazyMCConfig auto_cfg;
    auto_cfg.neighborhood_rep = NeighborhoodRep::kBitset;
    auto r = mc::lazy_mc(g, auto_cfg);
    EXPECT_EQ(r.omega, baseline.omega) << GetParam() << " tier=auto";
    EXPECT_EQ(r.search.simd_tier, simd::tier_name(simd::best_tier()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, KernelTierSweepTest,
                         testing::ValuesIn(suite::instance_names()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace lazymc
