// Parameterized cross-solver agreement over the *entire* 28-instance
// suite at tiny scale: LazyMC, PMC, MC-BRB, and the reference solver must
// agree on omega for every structural regime the corpus covers.  (dOmega
// is exercised on a subset — its LS variant is slow by design on
// large-gap instances, which is the paper's point.)
#include <gtest/gtest.h>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"
#include "mc/lazymc.hpp"

namespace lazymc {
namespace {

class SuiteAgreementTest : public testing::TestWithParam<std::string> {};

TEST_P(SuiteAgreementTest, AllSolversAgreeOnOmega) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;

  auto ref = baselines::max_clique_reference(g);
  std::size_t omega = ref.size();
  ASSERT_TRUE(is_clique(g, ref));

  auto lazy = mc::lazy_mc(g);
  EXPECT_EQ(lazy.omega, omega) << "lazymc";
  EXPECT_TRUE(is_clique(g, lazy.clique));
  EXPECT_FALSE(lazy.timed_out);

  auto pmc = baselines::pmc_solve(g);
  EXPECT_EQ(pmc.omega, omega) << "pmc";
  EXPECT_TRUE(is_clique(g, pmc.clique));

  auto brb = baselines::mcbrb_solve(g);
  EXPECT_EQ(brb.omega, omega) << "mcbrb";
  EXPECT_TRUE(is_clique(g, brb.clique));

  // Zero-gap expectation encoded in the suite matches reality.  (The
  // true degeneracy must be recomputed: LazyMCResult reports the
  // lower-bounded decomposition's value, which is 0 when the heuristic
  // incumbent already exceeds every coreness.)
  if (inst.zero_gap_expected) {
    auto core = kcore::coreness(g);
    EXPECT_EQ(core.degeneracy + 1, lazy.omega) << "expected zero gap";
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, SuiteAgreementTest,
                         testing::ValuesIn(suite::instance_names()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

class DomegaAgreementTest : public testing::TestWithParam<std::string> {};

TEST_P(DomegaAgreementTest, BothVariantsAgree) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;
  auto lazy = mc::lazy_mc(g);
  auto ls = baselines::domega_solve(g, baselines::DomegaMode::kLinearScan);
  auto bs = baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch);
  EXPECT_EQ(ls.omega, lazy.omega);
  EXPECT_EQ(bs.omega, lazy.omega);
  EXPECT_TRUE(is_clique(g, ls.clique));
  EXPECT_TRUE(is_clique(g, bs.clique));
}

INSTANTIATE_TEST_SUITE_P(Subset, DomegaAgreementTest,
                         testing::Values("USAroad", "dblp", "yahoo", "orkut",
                                         "WormNet", "hudong", "talk",
                                         "higgs"),
                         [](const testing::TestParamInfo<std::string>&
                                param_info) { return param_info.param; });

}  // namespace
}  // namespace lazymc
