// Tests for DynamicBitset, the adjacency-row representation of dense
// subproblems.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/bitset.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.any());
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset b(130);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, CountAndMatchesManual) {
  Rng rng(5);
  DynamicBitset a(200), b(200);
  std::set<std::size_t> sa, sb;
  for (int i = 0; i < 80; ++i) {
    std::size_t x = rng.next_below(200);
    a.set(x);
    sa.insert(x);
    std::size_t y = rng.next_below(200);
    b.set(y);
    sb.insert(y);
  }
  std::size_t expected = 0;
  for (std::size_t x : sa) expected += sb.count(x);
  EXPECT_EQ(a.count_and(b), expected);
  EXPECT_EQ(b.count_and(a), expected);
}

TEST(DynamicBitset, AndWith) {
  DynamicBitset a(70), b(70);
  a.set(1);
  a.set(10);
  a.set(65);
  b.set(10);
  b.set(65);
  b.set(3);
  a.and_with(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_TRUE(a.test(10));
  EXPECT_TRUE(a.test(65));
  EXPECT_FALSE(a.test(1));
}

TEST(DynamicBitset, AssignAnd) {
  DynamicBitset a(70), b(70), c;
  a.set(5);
  a.set(69);
  b.set(69);
  c.assign_and(a, b);
  EXPECT_EQ(c.size(), 70u);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_TRUE(c.test(69));
}

TEST(DynamicBitset, AndNotWith) {
  DynamicBitset a(40), b(40);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  a.and_not_with(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(3));
}

TEST(DynamicBitset, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(17);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 17u);
  EXPECT_EQ(b.find_next(17), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
  EXPECT_EQ(b.find_next(0), 17u);
}

TEST(DynamicBitset, ForEachVisitsAscending) {
  DynamicBitset b(300);
  std::vector<std::size_t> expected{0, 7, 63, 64, 128, 255, 299};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, IterationMatchesTestExhaustively) {
  Rng rng(99);
  DynamicBitset b(517);
  std::set<std::size_t> expected;
  for (int i = 0; i < 200; ++i) {
    std::size_t x = rng.next_below(517);
    b.set(x);
    expected.insert(x);
  }
  // via find_first/find_next
  std::set<std::size_t> seen;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i)) {
    seen.insert(i);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(b.count(), expected.size());
}

TEST(DynamicBitset, ClearEmpties) {
  DynamicBitset b(100);
  b.set(5);
  b.set(99);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, EqualityComparesContent) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lazymc
