// Tests for DynamicBitset, the adjacency-row representation of dense
// subproblems.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "support/bitset.hpp"
#include "support/random.hpp"
#include "support/simd.hpp"

namespace lazymc {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.any());
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset b(130);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, CountAndMatchesManual) {
  Rng rng(5);
  DynamicBitset a(200), b(200);
  std::set<std::size_t> sa, sb;
  for (int i = 0; i < 80; ++i) {
    std::size_t x = rng.next_below(200);
    a.set(x);
    sa.insert(x);
    std::size_t y = rng.next_below(200);
    b.set(y);
    sb.insert(y);
  }
  std::size_t expected = 0;
  for (std::size_t x : sa) expected += sb.count(x);
  EXPECT_EQ(a.count_and(b), expected);
  EXPECT_EQ(b.count_and(a), expected);
}

TEST(DynamicBitset, AndWith) {
  DynamicBitset a(70), b(70);
  a.set(1);
  a.set(10);
  a.set(65);
  b.set(10);
  b.set(65);
  b.set(3);
  a.and_with(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_TRUE(a.test(10));
  EXPECT_TRUE(a.test(65));
  EXPECT_FALSE(a.test(1));
}

TEST(DynamicBitset, AssignAnd) {
  DynamicBitset a(70), b(70), c;
  a.set(5);
  a.set(69);
  b.set(69);
  c.assign_and(a, b);
  EXPECT_EQ(c.size(), 70u);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_TRUE(c.test(69));
}

TEST(DynamicBitset, AndNotWith) {
  DynamicBitset a(40), b(40);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  a.and_not_with(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(3));
}

TEST(DynamicBitset, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(17);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 17u);
  EXPECT_EQ(b.find_next(17), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
  EXPECT_EQ(b.find_next(0), 17u);
}

TEST(DynamicBitset, ForEachVisitsAscending) {
  DynamicBitset b(300);
  std::vector<std::size_t> expected{0, 7, 63, 64, 128, 255, 299};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, IterationMatchesTestExhaustively) {
  Rng rng(99);
  DynamicBitset b(517);
  std::set<std::size_t> expected;
  for (int i = 0; i < 200; ++i) {
    std::size_t x = rng.next_below(517);
    b.set(x);
    expected.insert(x);
  }
  // via find_first/find_next
  std::set<std::size_t> seen;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i)) {
    seen.insert(i);
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(b.count(), expected.size());
}

TEST(DynamicBitset, ClearEmpties) {
  DynamicBitset b(100);
  b.set(5);
  b.set(99);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, EqualityComparesContent) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, WordStorageIsCacheLineAligned) {
  // Satellite of the SIMD engine: every row — including the trimmed
  // DenseSubgraph copies inside SharedSubproblem tasks — starts on a
  // 64-byte boundary, matching the lazy-graph slab arena.
  for (std::size_t bits : {1u, 64u, 100u, 1000u}) {
    DynamicBitset b(bits);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u) << bits;
  }
}

// The bulk word ops route through the runtime-dispatched SIMD tier; every
// supported tier must agree bit-for-bit with a naive model, across sizes
// straddling the inline-path cutoff and the AVX2/AVX-512 vector widths.
TEST(DynamicBitset, BulkOpsAgreeAcrossSimdTiers) {
  for (std::size_t t = 0; t < simd::kNumTiers; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    if (!simd::tier_supported(tier)) continue;
    ASSERT_TRUE(simd::force_tier(tier));
    Rng rng(77 + t);
    for (std::size_t bits : {1u, 63u, 64u, 65u, 255u, 256u, 257u, 511u,
                             512u, 513u, 1000u}) {
      DynamicBitset a(bits), b(bits);
      std::set<std::size_t> in_a, in_b;
      for (std::size_t i = 0; i < bits; ++i) {
        if (rng.next_below(2)) { a.set(i); in_a.insert(i); }
        if (rng.next_below(2)) { b.set(i); in_b.insert(i); }
      }
      EXPECT_EQ(a.count(), in_a.size()) << simd::tier_name(tier);
      std::set<std::size_t> both;
      for (std::size_t i : in_a) {
        if (in_b.count(i)) both.insert(i);
      }
      EXPECT_EQ(a.count_and(b), both.size());

      DynamicBitset and_dst;
      and_dst.assign_and(a, b);
      DynamicBitset and_with_dst = a;
      and_with_dst.and_with(b);
      DynamicBitset and_not_dst = a;
      and_not_dst.and_not_with(b);
      for (std::size_t i = 0; i < bits; ++i) {
        EXPECT_EQ(and_dst.test(i), both.count(i) > 0);
        EXPECT_EQ(and_with_dst.test(i), both.count(i) > 0);
        EXPECT_EQ(and_not_dst.test(i), in_a.count(i) > 0 && !in_b.count(i));
      }
    }
    simd::reset_tier();
  }
}

}  // namespace
}  // namespace lazymc
