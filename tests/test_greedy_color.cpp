// Tests for the greedy coloring clique upper bound.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "mc/greedy_color.hpp"

namespace lazymc {
namespace {

DenseSubgraph induce_all(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return induce_dense(g, all);
}

DynamicBitset full_set(std::size_t n) {
  DynamicBitset p(n);
  for (std::size_t i = 0; i < n; ++i) p.set(i);
  return p;
}

TEST(GreedyColor, EmptySetZeroColors) {
  DenseSubgraph s = induce_all(gen::complete(4));
  DynamicBitset p(4);
  auto c = mc::greedy_color(s, p);
  EXPECT_EQ(c.num_colors, 0u);
  EXPECT_TRUE(c.order.empty());
}

TEST(GreedyColor, CompleteGraphNeedsNColors) {
  for (VertexId n : {2u, 5u, 9u}) {
    DenseSubgraph s = induce_all(gen::complete(n));
    auto c = mc::greedy_color(s, full_set(n));
    EXPECT_EQ(c.num_colors, n);
    EXPECT_EQ(c.order.size(), n);
  }
}

TEST(GreedyColor, IndependentSetOneColor) {
  GraphBuilder b(6);  // no edges at all
  Graph empty = b.build();
  DenseSubgraph s = induce_all(empty);
  auto c = mc::greedy_color(s, full_set(6));
  EXPECT_EQ(c.num_colors, 1u);
}

TEST(GreedyColor, ColorsAscendInOrder) {
  DenseSubgraph s = induce_all(gen::gnp(30, 0.4, 3));
  auto c = mc::greedy_color(s, full_set(30));
  for (std::size_t i = 1; i < c.color.size(); ++i) {
    EXPECT_LE(c.color[i - 1], c.color[i]);
  }
}

TEST(GreedyColor, ProperColoring) {
  DenseSubgraph s = induce_all(gen::gnp(40, 0.3, 5));
  auto c = mc::greedy_color(s, full_set(40));
  // Reconstruct per-vertex colors and verify no edge is monochromatic.
  std::vector<VertexId> color_of(40, 0);
  for (std::size_t i = 0; i < c.order.size(); ++i) {
    color_of[c.order[i]] = c.color[i];
  }
  for (std::size_t v = 0; v < 40; ++v) {
    for (std::size_t u = v + 1; u < 40; ++u) {
      if (s.adj[v].test(u)) {
        EXPECT_NE(color_of[v], color_of[u]);
      }
    }
  }
}

TEST(GreedyColor, BoundsCliqueFromAbove) {
  // num_colors >= omega on any graph.
  Graph g = gen::plant_clique(gen::gnp(30, 0.2, 7), 6, 8);
  DenseSubgraph s = induce_all(g);
  auto c = mc::greedy_color(s, full_set(30));
  EXPECT_GE(c.num_colors, 6u);
}

TEST(GreedyColor, CountVariantAgrees) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    DenseSubgraph s = induce_all(gen::gnp(25, 0.5, seed));
    DynamicBitset p = full_set(25);
    EXPECT_EQ(mc::greedy_color(s, p).num_colors,
              mc::greedy_color_count(s, p));
  }
}

TEST(GreedyColor, SubsetColoring) {
  DenseSubgraph s = induce_all(gen::complete(8));
  DynamicBitset p(8);
  p.set(1);
  p.set(3);
  p.set(5);
  auto c = mc::greedy_color(s, p);
  EXPECT_EQ(c.num_colors, 3u);  // K8 restricted to 3 vertices is K3
  EXPECT_EQ(c.order.size(), 3u);
}

TEST(GreedyColor, BipartiteUsesTwoColors) {
  Graph g = gen::bipartite(10, 10, 1.0, 1);  // complete bipartite
  DenseSubgraph s = induce_all(g);
  auto c = mc::greedy_color(s, full_set(20));
  EXPECT_EQ(c.num_colors, 2u);
}

}  // namespace
}  // namespace lazymc
