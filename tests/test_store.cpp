// Tests for the `.lmg` binary graph store (src/store/): write/open
// round-trips across the synthetic suite, corruption hardening (a
// truncated or bit-flipped file must surface as Error(kInput), never as
// UB off a short mmap), format sniffing through io::read_graph_file, and
// the end-to-end preprocessing seam — lazy_mc consuming a store must
// produce the identical omega while adopting prebuilt rows zero-copy
// (row-build counters stay zero) or falling back to lazy building when
// the stored zone is incompatible with the live incumbent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/lazymc.hpp"
#include "store/binary_graph.hpp"
#include "store/format.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Serializes g with its exact decomposition; returns the path.
std::string write_store(const Graph& g, const std::string& name,
                        bool with_rows, VertexId rows_omega) {
  kcore::CoreDecomposition core = kcore::coreness(g);
  kcore::VertexOrder order =
      kcore::order_by_coreness_degree_parallel(g, core.coreness);
  store::LmgBuildData data;
  data.order = &order;
  data.coreness = &core.coreness;
  data.degeneracy = core.degeneracy;
  data.with_rows = with_rows;
  data.rows_omega = rows_omega;
  const std::string path = temp_path(name);
  store::write_lmg(g, data, path);
  return path;
}

void expect_input_error(const std::string& path, const char* what) {
  try {
    store::BinaryGraphView::open(path);
    FAIL() << what << ": open unexpectedly succeeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInput) << what << ": " << e.what();
  }
}

// --- round-trips ------------------------------------------------------------

TEST(Store, RoundTripAcrossSuite) {
  for (const auto& name : suite::instance_names()) {
    SCOPED_TRACE(name);
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    const Graph& g = inst.graph;
    kcore::CoreDecomposition core = kcore::coreness(g);
    kcore::VertexOrder order =
        kcore::order_by_coreness_degree_parallel(g, core.coreness);
    const std::string path =
        write_store(g, "rt_" + name + ".lmg", /*with_rows=*/true, 1);

    auto view = store::BinaryGraphView::open(path);
    const Graph h = view->graph();
    ASSERT_EQ(h.num_vertices(), g.num_vertices());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    EXPECT_TRUE(std::ranges::equal(h.offsets(), g.offsets()));
    EXPECT_TRUE(std::ranges::equal(h.adjacency(), g.adjacency()));
    ASSERT_TRUE(view->has_order());
    EXPECT_EQ(view->order().new_to_orig, order.new_to_orig);
    EXPECT_EQ(view->order().orig_to_new, order.orig_to_new);
    EXPECT_EQ(view->coreness(), core.coreness);
    EXPECT_EQ(view->degeneracy(), core.degeneracy);
  }
}

TEST(Store, RowBitsMatchInZoneAdjacency) {
  auto inst = suite::make_instance("soflow", suite::Scale::kTiny);
  const Graph& g = inst.graph;
  kcore::CoreDecomposition core = kcore::coreness(g);
  kcore::VertexOrder order =
      kcore::order_by_coreness_degree_parallel(g, core.coreness);
  const std::string path = write_store(g, "rows.lmg", true, 2);
  auto view = store::BinaryGraphView::open(path);
  ASSERT_TRUE(view->has_rows());
  const PrebuiltRows rows = view->rows();
  ASSERT_TRUE(rows.valid());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rows.words) % 64, 0u);
  const VertexId zb = rows.zone_begin;
  ASSERT_EQ(zb + rows.zone_bits, g.num_vertices());
  // The zone boundary is exactly the rows_omega threshold in new-id order.
  if (zb > 0) {
    EXPECT_LT(core.coreness[order.new_to_orig[zb - 1]], 2u);
  }
  EXPECT_GE(core.coreness[order.new_to_orig[zb]], 2u);
  for (VertexId v = zb; v < g.num_vertices(); ++v) {
    const std::uint64_t* row =
        rows.words + static_cast<std::size_t>(v - zb) * rows.stride_words;
    std::uint32_t count = 0;
    std::vector<bool> expected(rows.zone_bits, false);
    for (VertexId u_orig : g.neighbors(order.new_to_orig[v])) {
      const VertexId u = order.orig_to_new[u_orig];
      if (u < zb) continue;
      expected[u - zb] = true;
      ++count;
    }
    ASSERT_EQ(rows.counts[v - zb], count) << "relabelled vertex " << v;
    for (VertexId b = 0; b < rows.zone_bits; ++b) {
      const bool bit = (row[b >> 6] >> (b & 63)) & 1;
      ASSERT_EQ(bit, expected[b]) << "vertex " << v << " bit " << b;
    }
  }
}

TEST(Store, EmptyAndRowlessGraphs) {
  // n = 0: header-only store round-trips.
  const std::string empty = write_store(Graph{}, "empty.lmg", false, 0);
  auto view = store::BinaryGraphView::open(empty);
  EXPECT_EQ(view->graph().num_vertices(), 0u);
  EXPECT_FALSE(view->has_rows());

  // A threshold above the max coreness leaves the zone empty: the rows
  // sections are simply omitted, not stored empty.
  Graph k4 = gen::complete(4);
  const std::string path = write_store(k4, "k4.lmg", true, 100);
  auto v4 = store::BinaryGraphView::open(path);
  EXPECT_FALSE(v4->has_rows());
  EXPECT_FALSE(v4->rows().valid());
  EXPECT_EQ(v4->graph().num_edges(), 6u);
}

TEST(Store, ReadGraphFileSniffsLmg) {
  Graph g = gen::gnp(80, 0.1, /*seed=*/9);
  const std::string path = write_store(g, "sniff.lmg", false, 0);
  EXPECT_TRUE(store::is_lmg_file(path));
  EXPECT_FALSE(store::is_lmg_file(temp_path("no-such-file")));
  Graph h = io::read_graph_file(path);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_TRUE(std::ranges::equal(h.adjacency(), g.adjacency()));

  // A Graph copy must keep the mapping alive past the original.
  Graph copy;
  {
    Graph original = io::read_graph_file(path);
    copy = original;
  }
  EXPECT_TRUE(std::ranges::equal(copy.adjacency(), g.adjacency()));

  const std::string text = temp_path("not-lmg.txt");
  write_bytes(text, "p edge 2 1\ne 1 2\n");
  EXPECT_FALSE(store::is_lmg_file(text));
  EXPECT_EQ(io::read_graph_file(text).num_edges(), 1u);
}

// --- corruption hardening ---------------------------------------------------

TEST(Store, TruncatedFileThrowsInputError) {
  Graph g = gen::gnp(60, 0.15, 3);
  const std::string path = write_store(g, "trunc.lmg", true, 1);
  const std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), sizeof(store::FileHeader));

  // Shorter than the header: size check, not a wild memcpy.
  write_bytes(path, bytes.substr(0, 40));
  expect_input_error(path, "40-byte file");

  // Header survives but the payloads are cut: section containment fails.
  write_bytes(path, bytes.substr(0, bytes.size() / 2));
  expect_input_error(path, "half file");

  // One byte short: the last section no longer fits.
  write_bytes(path, bytes.substr(0, bytes.size() - 1));
  expect_input_error(path, "one byte short");

  write_bytes(path, "");
  expect_input_error(path, "empty file");
}

TEST(Store, FlippedByteThrowsInputError) {
  Graph g = gen::gnp(60, 0.15, 4);
  const std::string path = write_store(g, "flip.lmg", true, 1);
  const std::string bytes = read_bytes(path);

  // In a payload: that section's checksum catches it.
  std::string corrupt = bytes;
  corrupt[corrupt.size() - 1] = static_cast<char>(corrupt.back() ^ 0x20);
  write_bytes(path, corrupt);
  expect_input_error(path, "payload flip");

  // In the header: the header checksum catches it.
  corrupt = bytes;
  corrupt[12] = static_cast<char>(corrupt[12] ^ 0x01);
  write_bytes(path, corrupt);
  expect_input_error(path, "header flip");

  // In the section table: the table checksum catches it.
  corrupt = bytes;
  corrupt[sizeof(store::FileHeader) + 8] ^= 0x01;
  write_bytes(path, corrupt);
  expect_input_error(path, "table flip");

  // Bad magic: not an lmg file at all.
  corrupt = bytes;
  corrupt[0] = 'X';
  write_bytes(path, corrupt);
  EXPECT_FALSE(store::is_lmg_file(path));
  expect_input_error(path, "bad magic");
}

TEST(Store, OffsetPastEofThrowsInputError) {
  Graph g = gen::gnp(40, 0.2, 5);
  const std::string path = write_store(g, "oob.lmg", false, 0);
  std::string bytes = read_bytes(path);

  // Point the first section far past EOF and recompute both checksums so
  // only the containment check can reject it — proving the reader bounds
  // every section against the mapping, not just against the digests.
  store::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  const std::size_t table_off = sizeof(store::FileHeader);
  const std::size_t table_size =
      header.section_count * sizeof(store::SectionEntry);
  store::SectionEntry entry;
  std::memcpy(&entry, bytes.data() + table_off, sizeof(entry));
  entry.offset = (bytes.size() + 4096) & ~std::uint64_t{63};
  std::memcpy(bytes.data() + table_off, &entry, sizeof(entry));
  header.table_checksum =
      store::checksum_bytes(bytes.data() + table_off, table_size);
  header.header_checksum = store::checksum_bytes(
      &header, offsetof(store::FileHeader, header_checksum));
  std::memcpy(bytes.data(), &header, sizeof(header));
  write_bytes(path, bytes);
  expect_input_error(path, "offset past EOF");
}

// --- the preprocessing seam -------------------------------------------------

mc::LazyMCResult solve_with_store(
    const Graph& g, const std::shared_ptr<store::BinaryGraphView>& view,
    NeighborhoodRep rep) {
  mc::PrebuiltGraph prebuilt;
  prebuilt.order = &view->order();
  prebuilt.coreness = &view->coreness();
  prebuilt.degeneracy = view->degeneracy();
  if (view->has_rows()) prebuilt.rows = view->rows();
  mc::LazyMCConfig config;
  config.neighborhood_rep = rep;
  config.prebuilt = &prebuilt;
  return mc::lazy_mc(g, config);
}

// Satellite: convert -> load equivalence.  Every suite instance through
// the store and back must produce a bit-identical omega and coreness,
// with the kernel-counter-visible representation showing zero-copy row
// adoption (no row ever rebuilt) at 1, 2, and 8 threads.
TEST(Store, SolveEquivalenceAcrossSuiteAndThreads) {
  for (const auto& name : suite::instance_names()) {
    SCOPED_TRACE(name);
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    const Graph& g = inst.graph;
    const std::string path = write_store(g, "eq_" + name + ".lmg", true, 1);
    auto view = store::BinaryGraphView::open(path);
    ASSERT_EQ(view->coreness(), kcore::coreness(g).coreness);
    for (std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      set_num_threads(threads);
      auto fresh = mc::lazy_mc(g);
      auto stored = solve_with_store(g, view, NeighborhoodRep::kBitset);
      EXPECT_EQ(stored.omega, fresh.omega);
      EXPECT_TRUE(is_clique(g, stored.clique));
      EXPECT_EQ(stored.degeneracy, view->degeneracy());
      if (view->has_rows()) {
        // Zone threshold 1 always adopts (the boundary coreness is 0,
        // below any incumbent), so the slab arena stays untouched.
        EXPECT_EQ(stored.lazy_graph.rows_prebuilt, view->zone_size());
        EXPECT_EQ(stored.lazy_graph.bitset_built, 0u);
      }
    }
  }
  set_num_threads(0);
}

TEST(Store, HybridAdoptsPrebuiltRows) {
  auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
  const Graph& g = inst.graph;
  const std::string path = write_store(g, "hybrid.lmg", true, 1);
  auto view = store::BinaryGraphView::open(path);
  ASSERT_TRUE(view->has_rows());
  auto fresh = mc::lazy_mc(g);
  auto stored = solve_with_store(g, view, NeighborhoodRep::kHybrid);
  EXPECT_EQ(stored.omega, fresh.omega);
  EXPECT_EQ(stored.lazy_graph.rows_prebuilt, view->zone_size());
  EXPECT_EQ(stored.lazy_graph.bitset_built, 0u);
}

TEST(Store, IncompatibleZoneFallsBackToLazyBuild) {
  // C10 + K8,8: omega is 2 (both components are triangle-free), so the
  // live incumbent fixes its zone at coreness >= 2 — every vertex.  A
  // store packed with rows_omega 5 covers only the K8,8 part (coreness
  // 8); the boundary vertex's coreness (2) is not below the incumbent,
  // so adoption must refuse the too-narrow zone and the solve must fall
  // back to building rows lazily, still yielding the exact omega.
  GraphBuilder b(26);
  for (VertexId v = 0; v < 10; ++v) b.add_edge(v, (v + 1) % 10);
  for (VertexId u = 10; u < 18; ++u) {
    for (VertexId v = 18; v < 26; ++v) b.add_edge(u, v);
  }
  Graph g = b.build();
  const std::string path = write_store(g, "incompat.lmg", true, 5);
  auto view = store::BinaryGraphView::open(path);
  ASSERT_TRUE(view->has_rows());
  ASSERT_EQ(view->zone_size(), 16u);
  auto stored = solve_with_store(g, view, NeighborhoodRep::kBitset);
  EXPECT_EQ(stored.omega, 2u);
  EXPECT_EQ(stored.lazy_graph.rows_prebuilt, 0u);
  EXPECT_GT(stored.lazy_graph.bitset_built, 0u);

  // The same graph stored with a zone the incumbent covers adopts fine.
  const std::string wide = write_store(g, "compat.lmg", true, 1);
  auto wide_view = store::BinaryGraphView::open(wide);
  auto adopted = solve_with_store(g, wide_view, NeighborhoodRep::kBitset);
  EXPECT_EQ(adopted.omega, 2u);
  EXPECT_EQ(adopted.lazy_graph.rows_prebuilt, wide_view->zone_size());
  EXPECT_EQ(adopted.lazy_graph.bitset_built, 0u);
}

TEST(Store, StaleStoreIsIgnoredNotFatal) {
  // A prebuilt block whose sizes do not match the graph (stale store,
  // regenerated input) must be silently ignored: the solve recomputes.
  Graph g = gen::gnp(50, 0.2, 6);
  Graph other = gen::gnp(60, 0.2, 7);
  const std::string path = write_store(other, "stale.lmg", true, 1);
  auto view = store::BinaryGraphView::open(path);
  auto r = solve_with_store(g, view, NeighborhoodRep::kBitset);
  auto fresh = mc::lazy_mc(g);
  EXPECT_EQ(r.omega, fresh.omega);
  EXPECT_EQ(r.lazy_graph.rows_prebuilt, 0u);
}

}  // namespace
}  // namespace lazymc
