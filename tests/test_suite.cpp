// Tests for the named synthetic suite standing in for the paper's corpus.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/suite.hpp"
#include "kcore/kcore.hpp"

namespace lazymc {
namespace {

TEST(Suite, Has28Instances) {
  auto names = suite::instance_names();
  EXPECT_EQ(names.size(), 28u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size()) << "duplicate instance names";
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(suite::make_instance("no-such-graph", suite::Scale::kTiny),
               std::invalid_argument);
}

TEST(Suite, TinyInstancesBuildAndAreNonTrivial) {
  for (const auto& name : suite::instance_names()) {
    SCOPED_TRACE(name);
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    EXPECT_GT(inst.graph.num_vertices(), 0u);
    EXPECT_GT(inst.graph.num_edges(), 0u);
    EXPECT_FALSE(inst.regime.empty());
  }
}

TEST(Suite, DeterministicAcrossCalls) {
  auto a = suite::make_instance("soflow", suite::Scale::kTiny);
  auto b = suite::make_instance("soflow", suite::Scale::kTiny);
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  EXPECT_TRUE(std::ranges::equal(a.graph.adjacency(), b.graph.adjacency()));
}

TEST(Suite, ScalesGrowMonotonically) {
  auto tiny = suite::make_instance("sinaweibo", suite::Scale::kTiny);
  auto small = suite::make_instance("sinaweibo", suite::Scale::kSmall);
  EXPECT_LT(tiny.graph.num_vertices(), small.graph.num_vertices());
}

TEST(Suite, RoadGraphsHaveTinyDegeneracy) {
  auto usa = suite::make_instance("USAroad", suite::Scale::kTiny);
  auto core = kcore::coreness(usa.graph);
  EXPECT_LE(core.degeneracy, 4u);
}

TEST(Suite, YahooAnalogIsBipartiteLike) {
  auto yahoo = suite::make_instance("yahoo", suite::Scale::kTiny);
  // Triangle-free: every edge's endpoints share no neighbor.
  const Graph& g = yahoo.graph;
  bool triangle = false;
  for (VertexId v = 0; v < g.num_vertices() && !triangle; ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u < v) continue;
      for (VertexId w : g.neighbors(u)) {
        if (w > u && g.has_edge(v, w)) {
          triangle = true;
          break;
        }
      }
    }
  }
  EXPECT_FALSE(triangle);
}

TEST(Suite, GeneNetworksAreDense) {
  auto mouse = suite::make_instance("mouse", suite::Scale::kTiny);
  const Graph& g = mouse.graph;
  double n = g.num_vertices();
  double density = 2.0 * static_cast<double>(g.num_edges()) / (n * (n - 1));
  EXPECT_GT(density, 0.05);  // orders denser than the social analogs
}

TEST(Suite, FullSuiteBuildsAtTinyScale) {
  auto all = suite::make_suite(suite::Scale::kTiny);
  EXPECT_EQ(all.size(), 28u);
}

}  // namespace
}  // namespace lazymc
