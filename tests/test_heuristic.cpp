// Tests for the degree-based and coreness-based heuristic searches.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/heuristic.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

TEST(DegreeHeuristic, FindsValidClique) {
  Graph g = gen::plant_clique(gen::gnp(100, 0.05, 3), 10, 4);
  Incumbent incumbent;
  mc::degree_based_heuristic(g, incumbent);
  auto clique = incumbent.snapshot();
  EXPECT_GE(clique.size(), 2u);
  EXPECT_TRUE(is_clique(g, clique));
}

TEST(DegreeHeuristic, ExactOnCompleteGraph) {
  Graph g = gen::complete(12);
  Incumbent incumbent;
  mc::degree_based_heuristic(g, incumbent);
  EXPECT_EQ(incumbent.size(), 12u);
}

TEST(DegreeHeuristic, EmptyGraphNoCrash) {
  Graph g;
  Incumbent incumbent;
  mc::degree_based_heuristic(g, incumbent);
  EXPECT_EQ(incumbent.size(), 0u);
}

TEST(DegreeHeuristic, SingleVertex) {
  GraphBuilder b(1);
  Graph g = b.build();
  Incumbent incumbent;
  mc::degree_based_heuristic(g, incumbent);
  EXPECT_EQ(incumbent.size(), 1u);
}

TEST(DegreeHeuristic, NeverExceedsOmega) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g = gen::gnp(40, 0.3, seed);
    auto ref = baselines::max_clique_reference(g);
    Incumbent incumbent;
    mc::degree_based_heuristic(g, incumbent);
    EXPECT_LE(incumbent.size(), ref.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(g, incumbent.snapshot()));
  }
}

TEST(DegreeHeuristic, TopKZeroSeedsIsNoop) {
  Graph g = gen::complete(5);
  Incumbent incumbent;
  mc::HeuristicOptions opt;
  opt.top_k = 0;
  mc::degree_based_heuristic(g, incumbent, opt);
  EXPECT_EQ(incumbent.size(), 0u);
}

TEST(DegreeHeuristic, FindsPlantedCliqueOnHubSeed) {
  // The planted clique members are the highest-degree vertices in a sparse
  // background, so the heuristic should recover it exactly.
  Graph bg = gen::gnp(200, 0.01, 7);
  std::vector<VertexId> members;
  Graph g = gen::plant_clique(bg, 14, 8, &members);
  Incumbent incumbent;
  mc::HeuristicOptions opt;
  opt.top_k = 32;
  mc::degree_based_heuristic(g, incumbent, opt);
  EXPECT_GE(incumbent.size(), 12u);  // near-exact greedy recovery
}

struct LazyFixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  Incumbent incumbent;
  std::unique_ptr<LazyGraph> lazy;

  explicit LazyFixture(Graph graph) : g(std::move(graph)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
    lazy = std::make_unique<LazyGraph>(g, order, core.coreness,
                                       &incumbent.size_atomic());
  }
};

TEST(CorenessHeuristic, FindsValidClique) {
  LazyFixture f(gen::plant_clique(gen::gnp(120, 0.04, 9), 11, 10));
  mc::coreness_based_heuristic(*f.lazy, f.incumbent);
  auto clique = f.incumbent.snapshot();
  EXPECT_GE(clique.size(), 3u);
  EXPECT_TRUE(is_clique(f.g, clique));
}

TEST(CorenessHeuristic, ExactOnCompleteGraph) {
  LazyFixture f(gen::complete(9));
  mc::coreness_based_heuristic(*f.lazy, f.incumbent);
  EXPECT_EQ(f.incumbent.size(), 9u);
}

TEST(CorenessHeuristic, RecoversZeroGapPlantedClique) {
  // Planted clique larger than the background degeneracy: coreness-based
  // search seeds at the top level, which is inside the clique, and walks
  // it fully (the paper's zero-gap graphs are solved this way).
  Graph bg = gen::barabasi_albert(300, 4, 11);
  Graph g = gen::plant_clique(bg, 16, 12);
  LazyFixture f(std::move(g));
  mc::coreness_based_heuristic(*f.lazy, f.incumbent);
  EXPECT_EQ(f.incumbent.size(), 16u);
  EXPECT_TRUE(is_clique(f.g, f.incumbent.snapshot()));
}

TEST(CorenessHeuristic, NeverExceedsOmega) {
  for (std::uint64_t seed = 20; seed <= 28; ++seed) {
    Graph g = gen::gnp(50, 0.25, seed);
    auto ref = baselines::max_clique_reference(g);
    LazyFixture f(std::move(g));
    mc::coreness_based_heuristic(*f.lazy, f.incumbent);
    EXPECT_LE(f.incumbent.size(), ref.size()) << "seed " << seed;
    EXPECT_TRUE(is_clique(f.g, f.incumbent.snapshot()));
  }
}

TEST(CorenessHeuristic, EmptyGraphNoCrash) {
  LazyFixture f(Graph{});
  mc::coreness_based_heuristic(*f.lazy, f.incumbent);
  EXPECT_EQ(f.incumbent.size(), 0u);
}

TEST(Heuristics, BothRespectCancelledControl) {
  Graph g = gen::gnp(100, 0.2, 30);
  SolveControl control;
  control.cancel();
  mc::HeuristicOptions opt;
  opt.control = &control;
  Incumbent incumbent;
  mc::degree_based_heuristic(g, incumbent, opt);
  EXPECT_EQ(incumbent.size(), 0u);
  LazyFixture f(std::move(g));
  mc::coreness_based_heuristic(*f.lazy, f.incumbent, opt);
  EXPECT_EQ(f.incumbent.size(), 0u);
}

TEST(Incumbent, OfferKeepsLargest) {
  Incumbent inc;
  std::vector<VertexId> a{1, 2};
  std::vector<VertexId> b{3, 4, 5};
  std::vector<VertexId> c{6};
  EXPECT_TRUE(inc.offer(a));
  EXPECT_TRUE(inc.offer(b));
  EXPECT_FALSE(inc.offer(c));
  EXPECT_FALSE(inc.offer(a));
  EXPECT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc.snapshot(), b);
}

TEST(Incumbent, ConcurrentOffersConverge) {
  Incumbent inc;
  parallel_for(0, 1000, [&](std::size_t i) {
    std::vector<VertexId> clique(i % 50 + 1);
    for (std::size_t j = 0; j < clique.size(); ++j) {
      clique[j] = static_cast<VertexId>(j);
    }
    inc.offer(clique);
  });
  EXPECT_EQ(inc.size(), 50u);
  EXPECT_EQ(inc.snapshot().size(), 50u);
}

}  // namespace
}  // namespace lazymc
