// Tests for the edge-list and DIMACS readers/writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "support/control.hpp"
#include "support/error.hpp"

namespace lazymc {
namespace {

TEST(IoEdgeList, ReadsSimpleList) {
  std::istringstream in("# comment\n0 1\n1 2\n% another comment\n2 0\n");
  Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(IoEdgeList, ToleratesBlankAndMalformedLines) {
  std::istringstream in("\n0 1\nnot numbers\n2 3\n");
  Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoEdgeList, RoundTrip) {
  Graph g = graph_from_edges(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  std::ostringstream out;
  io::write_edge_list(g, out);
  std::istringstream in(out.str());
  Graph h = io::read_edge_list(in);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) EXPECT_TRUE(h.has_edge(v, u));
  }
}

TEST(IoDimacs, ReadsHeaderAndEdges) {
  std::istringstream in(
      "c a comment\n"
      "p edge 5 3\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 4 5\n");
  Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));  // 1-based -> 0-based
  EXPECT_TRUE(g.has_edge(3, 4));
}

TEST(IoDimacs, MissingProblemLineThrows) {
  std::istringstream in("e 1 2\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(IoDimacs, ZeroBasedIdThrows) {
  std::istringstream in("p edge 3 1\ne 0 1\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(IoDimacs, RoundTrip) {
  Graph g = graph_from_edges(4, {{0, 1}, {2, 3}, {1, 2}});
  std::ostringstream out;
  io::write_dimacs(g, out);
  std::istringstream in(out.str());
  Graph h = io::read_dimacs(in);
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_TRUE(h.has_edge(1, 2));
}

TEST(IoDimacs, IsolatedTrailingVerticesSurvive) {
  // "p edge 7 1" declares 7 vertices even though only 2 touch edges.
  std::istringstream in("p edge 7 1\ne 1 2\n");
  Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.degree(6), 0u);
}

TEST(IoFiles, AutoDetectAndFileRoundTrip) {
  Graph g = graph_from_edges(6, {{0, 5}, {1, 4}, {2, 3}, {0, 1}});
  std::string edge_path = testing::TempDir() + "/lazymc_io_test.edges";
  std::string dimacs_path = testing::TempDir() + "/lazymc_io_test.clq";
  io::write_edge_list_file(g, edge_path);
  io::write_dimacs_file(g, dimacs_path);

  Graph from_edges = io::read_graph_file(edge_path);
  Graph from_dimacs = io::read_graph_file(dimacs_path);
  EXPECT_EQ(from_edges.num_edges(), g.num_edges());
  EXPECT_EQ(from_dimacs.num_edges(), g.num_edges());
  EXPECT_EQ(from_dimacs.num_vertices(), g.num_vertices());

  std::remove(edge_path.c_str());
  std::remove(dimacs_path.c_str());
}

TEST(IoFiles, MissingFileThrows) {
  EXPECT_THROW(io::read_graph_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

// A pending SIGINT/SIGTERM must abort a long parse promptly (the readers
// poll the interrupt flag every few thousand lines), not after the whole
// file has been consumed.
TEST(IoInterrupt, EdgeListLoadObservesPendingInterrupt) {
  std::ostringstream big;
  for (int i = 0; i < 20000; ++i) big << i << " " << (i + 1) << "\n";
  interrupt::request();
  std::istringstream in(big.str());
  try {
    io::read_edge_list(in);
    interrupt::clear();
    FAIL() << "expected Error(kInterrupted)";
  } catch (const Error& e) {
    interrupt::clear();
    EXPECT_EQ(e.kind(), ErrorKind::kInterrupted);
  }
}

TEST(IoInterrupt, DimacsLoadObservesPendingInterrupt) {
  std::ostringstream big;
  big << "p edge 20001 20000\n";
  for (int i = 1; i <= 20000; ++i) big << "e " << i << " " << (i + 1) << "\n";
  interrupt::request();
  std::istringstream in(big.str());
  try {
    io::read_dimacs(in);
    interrupt::clear();
    FAIL() << "expected Error(kInterrupted)";
  } catch (const Error& e) {
    interrupt::clear();
    EXPECT_EQ(e.kind(), ErrorKind::kInterrupted);
  }
}

TEST(IoInterrupt, ShortLoadsIgnoreTheStride) {
  // Under the poll stride no check fires: tiny graphs always load, even
  // with a pending interrupt (the solve's own control observes it next).
  interrupt::request();
  std::istringstream in("0 1\n1 2\n");
  Graph g = io::read_edge_list(in);
  interrupt::clear();
  EXPECT_EQ(g.num_edges(), 2u);
}

}  // namespace
}  // namespace lazymc
