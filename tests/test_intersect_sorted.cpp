// Tests for the merge-based early-exit intersections on sorted arrays.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "intersect/intersect.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

std::vector<VertexId> sorted_random(Rng& rng, std::size_t max_len,
                                    std::uint64_t universe) {
  std::vector<VertexId> v;
  std::size_t len = rng.next_below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(IntersectSortedGt, BasicAboveThreshold) {
  std::vector<VertexId> a{1, 2, 3, 5, 8};
  std::vector<VertexId> b{2, 3, 5, 9};
  std::vector<VertexId> out(5);
  int n = intersect_sorted_gt(a, b, out.data(), 2);
  ASSERT_EQ(n, 3);
  out.resize(3);
  EXPECT_EQ(out, (std::vector<VertexId>{2, 3, 5}));
}

TEST(IntersectSortedGt, FailsAtOrBelowThreshold) {
  std::vector<VertexId> a{1, 2, 3, 5, 8};
  std::vector<VertexId> b{2, 3, 5, 9};
  std::vector<VertexId> out(5);
  EXPECT_EQ(intersect_sorted_gt(a, b, out.data(), 3), kTooSmall);
  EXPECT_EQ(intersect_sorted_gt(a, b, out.data(), 5), kTooSmall);
}

TEST(IntersectSortedGt, SizeGuards) {
  std::vector<VertexId> a{1, 2};
  std::vector<VertexId> big{1, 2, 3, 4, 5, 6};
  std::vector<VertexId> out(6);
  EXPECT_EQ(intersect_sorted_gt(a, big, out.data(), 2), kTooSmall);
  EXPECT_EQ(intersect_sorted_gt(big, a, out.data(), 2), kTooSmall);
}

TEST(IntersectSortedGt, MatchesReferenceRandomized) {
  Rng rng(41);
  for (int round = 0; round < 400; ++round) {
    auto a = sorted_random(rng, 30, 50);
    auto b = sorted_random(rng, 30, 50);
    auto expected = intersect_reference(a, b);
    for (std::int64_t theta = -2; theta <= 12; ++theta) {
      std::vector<VertexId> out(std::max(a.size(), b.size()) + 1);
      int r = intersect_sorted_gt(a, b, out.data(), theta);
      if (static_cast<std::int64_t>(expected.size()) > theta) {
        ASSERT_EQ(r, static_cast<int>(expected.size()))
            << "round " << round << " theta " << theta;
        out.resize(expected.size());
        EXPECT_EQ(out, expected);
      } else {
        EXPECT_EQ(r, kTooSmall) << "round " << round << " theta " << theta;
      }
    }
  }
}

TEST(IntersectSortedSizeGtBool, MatchesReferenceRandomized) {
  Rng rng(43);
  for (int round = 0; round < 400; ++round) {
    auto a = sorted_random(rng, 30, 50);
    auto b = sorted_random(rng, 30, 50);
    std::size_t truth = intersect_reference(a, b).size();
    for (std::int64_t theta = -2; theta <= 12; ++theta) {
      bool expected = static_cast<std::int64_t>(truth) > theta;
      EXPECT_EQ(intersect_sorted_size_gt_bool(a, b, theta, true), expected)
          << "round " << round << " theta " << theta;
      EXPECT_EQ(intersect_sorted_size_gt_bool(a, b, theta, false), expected)
          << "round " << round << " theta " << theta << " (no 2nd exit)";
    }
  }
}

TEST(IntersectSortedSizeGtBool, SecondExitOnIdenticalSets) {
  std::vector<VertexId> a;
  for (VertexId v = 0; v < 2000; ++v) a.push_back(v);
  EXPECT_TRUE(intersect_sorted_size_gt_bool(a, a, 5, true));
  EXPECT_TRUE(intersect_sorted_size_gt_bool(a, a, 5, false));
  EXPECT_FALSE(intersect_sorted_size_gt_bool(a, a, 2000));
}

TEST(IntersectSortedGt, EmptyInputs) {
  std::vector<VertexId> empty;
  std::vector<VertexId> b{1, 2, 3};
  std::vector<VertexId> out(3);
  EXPECT_EQ(intersect_sorted_gt(empty, b, out.data(), 0), kTooSmall);
  // theta = -1: empty intersection (size 0) is still > -1.
  EXPECT_EQ(intersect_sorted_gt(empty, b, out.data(), -1), 0);
  EXPECT_TRUE(intersect_sorted_size_gt_bool(empty, b, -1));
  EXPECT_FALSE(intersect_sorted_size_gt_bool(empty, b, 0));
}

TEST(IntersectSortedGt, DisjointRangesExitEarly) {
  // a entirely below b: the a-side budget drains immediately.
  std::vector<VertexId> a{1, 2, 3, 4, 5};
  std::vector<VertexId> b{100, 200, 300, 400, 500};
  std::vector<VertexId> out(5);
  EXPECT_EQ(intersect_sorted_gt(a, b, out.data(), 0), kTooSmall);
  EXPECT_FALSE(intersect_sorted_size_gt_bool(a, b, 0));
}

}  // namespace
}  // namespace lazymc
