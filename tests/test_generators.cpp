// Tests for the synthetic graph generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace lazymc {
namespace {

using namespace lazymc::gen;

TEST(Generators, CompleteGraph) {
  Graph g = complete(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, CycleAndPath) {
  Graph c = cycle(5);
  EXPECT_EQ(c.num_edges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);
  Graph p = path(5);
  EXPECT_EQ(p.num_edges(), 4u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(2), 2u);
}

TEST(Generators, Star) {
  Graph s = star(7);
  EXPECT_EQ(s.num_edges(), 6u);
  EXPECT_EQ(s.degree(0), 6u);
  EXPECT_EQ(s.degree(3), 1u);
}

TEST(Generators, GridHasExpectedEdges) {
  Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(Generators, GnpDeterministicForSeed) {
  Graph a = gnp(100, 0.1, 42);
  Graph b = gnp(100, 0.1, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::ranges::equal(a.adjacency(), b.adjacency()));
}

TEST(Generators, GnpDensityRoughlyRight) {
  Graph g = gnp(400, 0.05, 7);
  double expected = 0.05 * (400.0 * 399.0 / 2.0);
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.8);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.2);
}

TEST(Generators, GnpEdgeCasesPZeroAndOne) {
  EXPECT_EQ(gnp(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gnp(20, 1.0, 1).num_edges(), 190u);
}

TEST(Generators, GnmExactEdgeCount) {
  Graph g = gnm(60, 300, 3);
  EXPECT_EQ(g.num_vertices(), 60u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(Generators, GnmRejectsImpossible) {
  EXPECT_THROW(gnm(4, 100, 1), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertDegrees) {
  Graph g = barabasi_albert(500, 3, 9);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Every late vertex attaches to >= 3 targets.
  EXPECT_GE(g.num_edges(), 3u * (500 - 4));
  EXPECT_GE(g.max_degree(), 10u);  // hubs emerge
}

TEST(Generators, RmatProducesPowerLaw) {
  Graph g = rmat(10, 8, 0.57, 0.19, 0.19, 5);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 1000u);
  EXPECT_GT(g.max_degree(), 30u);  // skewed degrees
}

TEST(Generators, WattsStrogatzDegreeConcentrated) {
  Graph g = watts_strogatz(200, 6, 0.1, 11);
  EXPECT_EQ(g.num_vertices(), 200u);
  // ring edges: n*k/2 = 600, minus rewiring collisions
  EXPECT_GT(g.num_edges(), 500u);
  EXPECT_THROW(watts_strogatz(100, 5, 0.1, 1), std::invalid_argument);
}

TEST(Generators, PlantedPartitionHasCommunities) {
  Graph g = planted_partition(4, 20, 1.0, 0.0, 13);
  EXPECT_EQ(g.num_vertices(), 80u);
  // p_intra=1: each community is a 20-clique.
  EXPECT_EQ(g.num_edges(), 4u * (20 * 19 / 2));
  std::vector<VertexId> community;
  for (VertexId v = 0; v < 20; ++v) community.push_back(v);
  EXPECT_TRUE(is_clique(g, community));
}

TEST(Generators, BipartiteIsTriangleFree) {
  Graph g = bipartite(30, 30, 0.3, 17);
  auto mc = baselines::max_clique_reference(g);
  EXPECT_LE(mc.size(), 2u);
  EXPECT_EQ(g.num_vertices(), 60u);
}

TEST(Generators, PlantCliqueCreatesClique) {
  Graph base = gnp(100, 0.05, 23);
  std::vector<VertexId> members;
  Graph g = plant_clique(base, 12, 29, &members);
  EXPECT_EQ(members.size(), 12u);
  EXPECT_TRUE(is_clique(g, members));
  EXPECT_EQ(g.num_vertices(), 100u);
  // All base edges survive.
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId u : base.neighbors(v)) EXPECT_TRUE(g.has_edge(v, u));
  }
}

TEST(Generators, PlantCliqueTooBigThrows) {
  Graph base = gnp(10, 0.1, 1);
  EXPECT_THROW(plant_clique(base, 11, 1), std::invalid_argument);
}

TEST(Generators, GeneBlocksDense) {
  Graph g = gene_blocks(200, 10, 40, 0.8, 31);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Each block contributes ~0.8 * C(40,2) edges (with overlap dedup).
  EXPECT_GT(g.num_edges(), 2000u);
}

TEST(Generators, GraphUnionMergesEdges) {
  Graph a = path(4);                                  // 0-1-2-3
  Graph b = graph_from_edges(6, {{4, 5}, {0, 5}});
  Graph u = graph_union(a, b);
  EXPECT_EQ(u.num_vertices(), 6u);
  EXPECT_EQ(u.num_edges(), 5u);
  EXPECT_TRUE(u.has_edge(1, 2));
  EXPECT_TRUE(u.has_edge(0, 5));
}

TEST(Generators, ComplementInvolution) {
  Graph g = gnp(40, 0.3, 37);
  Graph cc = gen::complement(gen::complement(g));
  EXPECT_EQ(cc.num_edges(), g.num_edges());
  for (VertexId v = 0; v < 40; ++v) {
    for (VertexId u : g.neighbors(v)) EXPECT_TRUE(cc.has_edge(v, u));
  }
}

TEST(Generators, ComplementOfComplete) {
  Graph g = gen::complement(complete(8));
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace lazymc
