// Tests for the k-Vertex-Cover branch-and-bound solver.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "vc/kvc.hpp"

namespace lazymc {
namespace {

DenseSubgraph induce_all(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return induce_dense(g, all);
}

/// Checks that `cover` covers every edge of s.
bool is_cover(const DenseSubgraph& s, const std::vector<VertexId>& cover) {
  std::vector<char> in(s.size(), 0);
  for (VertexId v : cover) {
    if (v >= s.size()) return false;
    in[v] = 1;
  }
  for (std::size_t v = 0; v < s.size(); ++v) {
    for (std::size_t u = v + 1; u < s.size(); ++u) {
      if (s.adj[v].test(u) && !in[v] && !in[u]) return false;
    }
  }
  return true;
}

/// Exponential reference minimum VC for n <= 20.
std::size_t min_vc_naive(const DenseSubgraph& s) {
  std::size_t n = s.size();
  std::size_t best = n;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::size_t count = static_cast<std::size_t>(__builtin_popcount(mask));
    if (count >= best) continue;
    bool covers = true;
    for (std::size_t v = 0; v < n && covers; ++v) {
      for (std::size_t u = v + 1; u < n && covers; ++u) {
        if (s.adj[v].test(u) && !(mask & (1u << v)) && !(mask & (1u << u))) {
          covers = false;
        }
      }
    }
    if (covers) best = count;
  }
  return best;
}

TEST(Kvc, EmptyGraphFeasibleAtZero) {
  GraphBuilder b(5);
  DenseSubgraph s = induce_all(b.build());
  auto r = vc::solve_kvc(s, 0);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.cover.empty());
}

TEST(Kvc, NegativeKInfeasible) {
  DenseSubgraph s = induce_all(gen::path(3));
  auto r = vc::solve_kvc(s, -1);
  EXPECT_FALSE(r.feasible);
}

TEST(Kvc, SingleEdgeNeedsOne) {
  DenseSubgraph s = induce_all(gen::path(2));
  EXPECT_FALSE(vc::solve_kvc(s, 0).feasible);
  auto r = vc::solve_kvc(s, 1);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(is_cover(s, r.cover));
  EXPECT_LE(r.cover.size(), 1u);
}

TEST(Kvc, PathsNeedFloorHalf) {
  for (VertexId n : {3u, 4u, 5u, 8u, 13u}) {
    DenseSubgraph s = induce_all(gen::path(n));
    std::size_t need = n / 2;
    EXPECT_FALSE(vc::solve_kvc(s, static_cast<std::int64_t>(need) - 1).feasible)
        << "path " << n;
    auto r = vc::solve_kvc(s, static_cast<std::int64_t>(need));
    EXPECT_TRUE(r.feasible) << "path " << n;
    EXPECT_TRUE(is_cover(s, r.cover));
    EXPECT_LE(r.cover.size(), need);
  }
}

TEST(Kvc, CyclesNeedCeilHalf) {
  for (VertexId n : {3u, 4u, 5u, 6u, 9u}) {
    DenseSubgraph s = induce_all(gen::cycle(n));
    std::size_t need = (n + 1) / 2;
    EXPECT_FALSE(vc::solve_kvc(s, static_cast<std::int64_t>(need) - 1).feasible)
        << "cycle " << n;
    auto r = vc::solve_kvc(s, static_cast<std::int64_t>(need));
    EXPECT_TRUE(r.feasible) << "cycle " << n;
    EXPECT_TRUE(is_cover(s, r.cover));
  }
}

TEST(Kvc, StarNeedsOne) {
  DenseSubgraph s = induce_all(gen::star(10));
  EXPECT_FALSE(vc::solve_kvc(s, 0).feasible);
  auto r = vc::solve_kvc(s, 1);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(is_cover(s, r.cover));
}

TEST(Kvc, CompleteGraphNeedsNMinusOne) {
  for (VertexId n : {3u, 5u, 8u}) {
    DenseSubgraph s = induce_all(gen::complete(n));
    EXPECT_FALSE(
        vc::solve_kvc(s, static_cast<std::int64_t>(n) - 2).feasible);
    auto r = vc::solve_kvc(s, static_cast<std::int64_t>(n) - 1);
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(is_cover(s, r.cover));
  }
}

TEST(Kvc, TriangleRuleGraph) {
  // A triangle with pendants exercises the degree-2 adjacent-neighbors rule.
  Graph g = graph_from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 4}});
  DenseSubgraph s = induce_all(g);
  EXPECT_FALSE(vc::solve_kvc(s, 1).feasible);
  auto r = vc::solve_kvc(s, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(is_cover(s, r.cover));
}

TEST(Kvc, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Graph g = gen::gnp(12, 0.3, seed);
    DenseSubgraph s = induce_all(g);
    std::size_t truth = min_vc_naive(s);
    // Feasibility boundary is exactly at `truth`.
    if (truth > 0) {
      EXPECT_FALSE(
          vc::solve_kvc(s, static_cast<std::int64_t>(truth) - 1).feasible)
          << "seed " << seed;
    }
    auto r = vc::solve_kvc(s, static_cast<std::int64_t>(truth));
    EXPECT_TRUE(r.feasible) << "seed " << seed;
    EXPECT_TRUE(is_cover(s, r.cover)) << "seed " << seed;
    EXPECT_LE(r.cover.size(), truth) << "seed " << seed;
  }
}

TEST(Kvc, MinimumVertexCoverBinarySearch) {
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    Graph g = gen::gnp(14, 0.4, seed);
    DenseSubgraph s = induce_all(g);
    EXPECT_EQ(vc::minimum_vertex_cover(s), min_vc_naive(s)) << "seed " << seed;
  }
}

TEST(Kvc, BussKernelHighDegreeVertex) {
  // Star K1,9 with k=1: the Buss rule must immediately take the hub.
  DenseSubgraph s = induce_all(gen::star(10));
  auto r = vc::solve_kvc(s, 1);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.cover.size(), 1u);
  EXPECT_EQ(r.cover[0], 0u);  // the hub
  EXPECT_LE(r.nodes, 3u);     // kernelisation, not branching
}

TEST(Kvc, GenerousKStillProducesValidCover) {
  Graph g = gen::gnp(20, 0.3, 50);
  DenseSubgraph s = induce_all(g);
  auto r = vc::solve_kvc(s, 20);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(is_cover(s, r.cover));
}

TEST(Kvc, CancelledControlReportsCleanly) {
  Graph g = gen::gnp(80, 0.5, 51);
  DenseSubgraph s = induce_all(g);
  SolveControl control;
  control.cancel();
  vc::KvcOptions opt;
  opt.control = &control;
  auto r = vc::solve_kvc(s, 20, opt);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace lazymc
