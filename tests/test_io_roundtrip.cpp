// Round-trip and robustness tests for the graph readers/writers, covering
// the PR-1 bugfixes: explicit GraphBuilder::ensure_vertices sizing (no
// dummy self-loop), DIMACS edge-count/id validation, format sniffing of
// header-less 'e' fragments, and CRLF tolerance.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace lazymc {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);  // binary: keep \r intact
  out << content;
}

TEST(Builder, EnsureVerticesSizesWithoutEdges) {
  GraphBuilder b;
  b.ensure_vertices(7);
  EXPECT_EQ(b.num_vertices(), 7u);
  EXPECT_EQ(b.num_pending_edges(), 0u);
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, EnsureVerticesNeverShrinks) {
  GraphBuilder b;
  b.add_edge(0, 9);
  b.ensure_vertices(3);
  EXPECT_EQ(b.num_vertices(), 10u);
  b.ensure_vertices(12);
  EXPECT_EQ(b.build().num_vertices(), 12u);
}

// --- write -> read round-trips ---------------------------------------------

TEST(RoundTrip, EdgeListPreservesStructure) {
  Graph g = gen::gnp(60, 0.15, /*seed=*/7);
  std::ostringstream out;
  io::write_edge_list(g, out);
  std::istringstream in(out.str());
  Graph h = io::read_edge_list(in);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(h.degree(v), g.degree(v)) << "vertex " << v;
  }
}

TEST(RoundTrip, DimacsPreservesStructure) {
  Graph g = gen::planted_partition(6, 8, 0.9, 2.0, /*seed=*/11);
  std::ostringstream out;
  io::write_dimacs(g, out);
  std::istringstream in(out.str());
  Graph h = io::read_dimacs(in);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(h.degree(v), g.degree(v)) << "vertex " << v;
  }
}

TEST(RoundTrip, FileLevelAutoDetect) {
  Graph g = gen::barabasi_albert(80, 3, /*seed=*/5);
  std::string edges = temp_path("roundtrip.edges");
  std::string clq = temp_path("roundtrip.clq");
  io::write_edge_list_file(g, edges);
  io::write_dimacs_file(g, clq);
  Graph from_edges = io::read_graph_file(edges);
  Graph from_clq = io::read_graph_file(clq);
  EXPECT_EQ(from_edges.num_vertices(), g.num_vertices());
  EXPECT_EQ(from_edges.num_edges(), g.num_edges());
  EXPECT_EQ(from_clq.num_vertices(), g.num_vertices());
  EXPECT_EQ(from_clq.num_edges(), g.num_edges());
  std::remove(edges.c_str());
  std::remove(clq.c_str());
}

// --- isolated top vertices (the old dummy-self-loop hack's blind spot) ------

TEST(Dimacs, IsolatedTopVertexSurvives) {
  std::istringstream in("p edge 9 2\ne 1 2\ne 2 3\n");
  Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(8), 0u);
}

TEST(Dimacs, EdgelessGraphKeepsDeclaredVertices) {
  std::istringstream in("p edge 4 0\n");
  Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

// --- DIMACS validation ------------------------------------------------------

TEST(Dimacs, VertexIdAboveDeclaredCountThrows) {
  std::istringstream in("p edge 3 1\ne 1 4\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, EdgeCountMismatchThrows) {
  std::istringstream too_few("p edge 4 3\ne 1 2\n");
  EXPECT_THROW(io::read_dimacs(too_few), std::runtime_error);
  std::istringstream too_many("p edge 4 1\ne 1 2\ne 3 4\n");
  EXPECT_THROW(io::read_dimacs(too_many), std::runtime_error);
}

TEST(Dimacs, BothOrientationsAndDuplicatesStillLoad) {
  // Wild-corpus converters often emit both orientations of each edge;
  // the header counts undirected edges.  The deduplicated count matches,
  // so this must load rather than fail the record-count check.
  std::istringstream in(
      "p edge 3 3\n"
      "e 1 2\ne 2 1\n"
      "e 2 3\ne 3 2\n"
      "e 1 3\ne 3 1\n");
  Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Dimacs, VertexCountBeyondIdRangeThrows) {
  // 2^32 + 1 would silently truncate to 1 via the VertexId cast.
  std::istringstream in("p edge 4294967297 1\ne 4294967297 1\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, EdgeBeforeProblemLineThrows) {
  std::istringstream in("e 1 2\np edge 3 1\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, DuplicateProblemLineThrows) {
  std::istringstream in("p edge 3 1\np edge 3 1\ne 1 2\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

// --- format sniffing --------------------------------------------------------

TEST(Sniffing, HeaderlessDimacsFragmentIsNotSilentlyEmpty) {
  // Before the fix this parsed as an edge list whose lines all failed to
  // parse, yielding an empty graph with no error.
  std::string path = temp_path("fragment.clq");
  write_file(path, "e 1 2\ne 2 3\ne 1 3\n");
  EXPECT_THROW(io::read_graph_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Sniffing, NumericFirstLineStaysEdgeList) {
  std::string path = temp_path("plain.edges");
  write_file(path, "0 1\n1 2\n");
  Graph g = io::read_graph_file(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  std::remove(path.c_str());
}

// --- CRLF -------------------------------------------------------------------

TEST(Crlf, DimacsParsesIdenticallyToUnix) {
  std::string path = temp_path("crlf.clq");
  write_file(path, "c comment\r\np edge 5 3\r\ne 1 2\r\ne 2 3\r\ne 4 5\r\n");
  Graph g = io::read_graph_file(path);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(3, 4));
  std::remove(path.c_str());
}

TEST(Crlf, EdgeListParsesIdenticallyToUnix) {
  std::string path = temp_path("crlf.edges");
  write_file(path, "# header\r\n0 1\r\n\r\n1 2\r\n");
  Graph g = io::read_graph_file(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  std::remove(path.c_str());
}

// --- self-loops in edge lists ----------------------------------------------

TEST(EdgeList, SelfLoopsAreDroppedNotCounted) {
  std::istringstream in("0 0\n0 1\n2 2\n1 2\n");
  Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(EdgeList, IdBeyondVertexIdRangeThrows) {
  // 2^32 would silently truncate to 0; 2^32 - 1 would overflow the
  // builder's count (id + 1).  Both must be rejected.
  std::istringstream wraps("4294967296 1\n");
  EXPECT_THROW(io::read_edge_list(wraps), std::runtime_error);
  std::istringstream overflows("4294967295 1\n");
  EXPECT_THROW(io::read_edge_list(overflows), std::runtime_error);
}

TEST(EdgeList, PureSelfLoopStillSizesGraph) {
  // A self-loop on the max vertex must still grow the vertex count even
  // though the edge itself is dropped.
  std::istringstream in("0 1\n5 5\n");
  Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(5), 0u);
}

}  // namespace
}  // namespace lazymc
