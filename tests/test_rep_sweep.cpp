// Suite-wide correctness of the bitset-row representation: omega must be
// identical with bitset rows forced on, forced off, and chosen adaptively,
// at 1, 2 and 8 threads — plus unit coverage of the zone/budget semantics
// of LazyGraph::enable_bitset_rows.
#include <gtest/gtest.h>

#include <atomic>

#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

class RepSweepTest : public testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { set_num_threads(0); }
};

TEST_P(RepSweepTest, OmegaIdenticalWithBitsetRowsOnAndOff) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;

  set_num_threads(1);
  mc::LazyMCConfig off;
  off.neighborhood_rep = NeighborhoodRep::kHash;  // rows disabled entirely
  const auto baseline = mc::lazy_mc(g, off);
  ASSERT_TRUE(is_clique(g, baseline.clique));

  for (std::size_t threads : {1, 2, 8}) {
    set_num_threads(threads);
    for (NeighborhoodRep rep : {NeighborhoodRep::kBitset,
                                NeighborhoodRep::kAuto,
                                NeighborhoodRep::kHash}) {
      mc::LazyMCConfig cfg;
      cfg.neighborhood_rep = rep;
      auto r = mc::lazy_mc(g, cfg);
      EXPECT_EQ(r.omega, baseline.omega)
          << GetParam() << " threads=" << threads
          << " rep=" << static_cast<int>(rep);
      EXPECT_TRUE(is_clique(g, r.clique));
      EXPECT_FALSE(r.timed_out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, RepSweepTest,
                         testing::ValuesIn(suite::instance_names()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(RepSweep, TinyBudgetStillCorrectAndPreDensityAgrees) {
  // A 1 KB budget can hold almost no rows; dispatch must degrade to the
  // hash/sorted kernels per vertex without changing omega.  The
  // pre-extraction density estimate only moves the MC-vs-VC routing, so
  // omega is invariant under it too.
  auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
  mc::LazyMCConfig base;
  auto expected = mc::lazy_mc(inst.graph, base).omega;

  mc::LazyMCConfig tiny;
  tiny.neighborhood_rep = NeighborhoodRep::kBitset;
  tiny.bitset_budget_bytes = 1024;
  EXPECT_EQ(mc::lazy_mc(inst.graph, tiny).omega, expected);

  mc::LazyMCConfig zero;
  zero.neighborhood_rep = NeighborhoodRep::kAuto;
  zero.bitset_budget_bytes = 0;  // rows disabled
  EXPECT_EQ(mc::lazy_mc(inst.graph, zero).omega, expected);

  mc::LazyMCConfig pre;
  pre.pre_extraction_density = true;
  EXPECT_EQ(mc::lazy_mc(inst.graph, pre).omega, expected);
}

TEST(RepSweep, BitsetRepReportsWordKernelDispatch) {
  // An instance whose systematic phase does real work must route filter
  // intersections through the word-parallel kernel when rows are forced.
  auto inst = suite::make_instance("webcc", suite::Scale::kSmall);
  mc::LazyMCConfig cfg;
  cfg.neighborhood_rep = NeighborhoodRep::kBitset;
  auto r = mc::lazy_mc(inst.graph, cfg);
  ASSERT_GT(r.search.evaluated, 0u);
  EXPECT_GT(r.search.kernel_bitset_word, 0u);
  EXPECT_GT(r.lazy_graph.bitset_built, 0u);
  EXPECT_GT(r.lazy_graph.bitset_bytes, 0u);
  EXPECT_GT(r.lazy_graph.zone_size, 0u);
}

// ---- LazyGraph zone / budget unit tests -----------------------------------

struct ZoneFixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  std::atomic<VertexId> incumbent{0};

  explicit ZoneFixture(Graph graph) : g(std::move(graph)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
  }
  LazyGraph make() { return LazyGraph(g, order, core.coreness, &incumbent); }
};

TEST(LazyGraphBitset, RowMatchesSortedNeighborhoodWithinZone) {
  ZoneFixture f(gen::gnp(80, 0.3, 555));
  f.incumbent.store(3);
  LazyGraph lazy = f.make();
  lazy.enable_bitset_rows(1 << 20);
  ASSERT_TRUE(lazy.bitset_enabled());
  const VertexId zb = lazy.zone_begin();
  for (VertexId v = zb; v < lazy.num_vertices(); ++v) {
    BitsetRow row = lazy.bitset_row(v);
    ASSERT_TRUE(row.valid());
    EXPECT_TRUE(lazy.has_bitset(v));
    // Built at the same incumbent, the row is exactly the sorted filtered
    // neighborhood clipped to the zone.
    auto sorted = lazy.sorted_neighborhood(v);
    std::size_t in_zone = 0;
    for (VertexId u : sorted) {
      if (u >= zb) {
        EXPECT_TRUE(row.contains(u)) << v << " " << u;
        ++in_zone;
      } else {
        EXPECT_FALSE(row.contains(u));
      }
    }
    EXPECT_EQ(row.size(), in_zone);
  }
}

TEST(LazyGraphBitset, BudgetBelowBookkeepingDisablesRows) {
  ZoneFixture f(gen::gnp(100, 0.3, 559));
  LazyGraph lazy = f.make();
  // The O(zone) bookkeeping alone exceeds a 64-byte budget: rows stay off.
  lazy.enable_bitset_rows(/*budget_bytes=*/64);
  EXPECT_FALSE(lazy.bitset_enabled());
  EXPECT_FALSE(lazy.bitset_row(0).valid());
}

TEST(LazyGraphBitset, BudgetExhaustionFallsBackGracefully) {
  ZoneFixture f(gen::gnp(100, 0.3, 556));
  LazyGraph lazy = f.make();
  // zone = 100 bits -> 2 words (16 bytes) per row.  Grant the bookkeeping
  // plus one word: no complete row fits, so the first build exhausts.
  const std::size_t bookkeeping =
      100 * (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  lazy.enable_bitset_rows(bookkeeping + 8);
  ASSERT_TRUE(lazy.bitset_enabled());
  EXPECT_FALSE(lazy.bitset_row(0).valid());
  EXPECT_FALSE(lazy.has_bitset(0));
  // membership still produces a usable view.
  NeighborhoodView view = lazy.membership(0);
  EXPECT_FALSE(view.has_bitset());
  EXPECT_GT(view.size(), 0u);
  EXPECT_EQ(lazy.stats().bitset_built, 0u);
}

TEST(LazyGraphBitset, DisabledAndOutOfZoneRowsAreInvalid) {
  ZoneFixture f(gen::gnp(40, 0.3, 557));
  {
    LazyGraph lazy = f.make();
    EXPECT_FALSE(lazy.bitset_enabled());
    EXPECT_FALSE(lazy.bitset_row(0).valid());
    EXPECT_EQ(lazy.stats().zone_size, 0u);
  }
  // Raise the incumbent so part of the graph falls outside the zone.
  ZoneFixture f2(gen::graph_union(gen::complete(8), gen::star(30)));
  f2.incumbent.store(5);
  LazyGraph lazy = f2.make();
  lazy.enable_bitset_rows(1 << 20);
  ASSERT_TRUE(lazy.bitset_enabled());
  ASSERT_GT(lazy.zone_begin(), 0u);
  EXPECT_FALSE(lazy.bitset_row(0).valid());  // leaf: below the zone
  BitsetRow in_zone = lazy.bitset_row(lazy.num_vertices() - 1);
  EXPECT_TRUE(in_zone.valid());
}

TEST(LazyGraphBitset, ForcedRepBuildsRowsInMembership) {
  ZoneFixture f(gen::gnp(60, 0.4, 558));
  LazyGraph lazy = f.make();
  lazy.enable_bitset_rows(1 << 20);
  lazy.set_preferred_rep(NeighborhoodRep::kBitset);
  NeighborhoodView view = lazy.membership(3);
  EXPECT_TRUE(view.has_bitset());
  EXPECT_FALSE(view.is_hashed());
  // contains() agrees with the base graph inside the zone (incumbent 0:
  // nothing filtered, zone covers everything).
  for (VertexId u = 0; u < lazy.num_vertices(); ++u) {
    bool edge = f.g.has_edge(f.order.new_to_orig[3], f.order.new_to_orig[u]);
    EXPECT_EQ(view.contains(u), edge) << u;
  }
}

}  // namespace
}  // namespace lazymc
