// Suite-wide correctness of the zone-row representations: omega must be
// identical with bitset rows forced on, hybrid rows forced on, rows forced
// off, and rows chosen adaptively, at 1, 2 and 8 threads — plus unit
// coverage of the zone/budget semantics of enable_{bitset,hybrid}_rows.
#include <gtest/gtest.h>

#include <atomic>

#include "graph/generators.hpp"
#include "graph/suite.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/lazymc.hpp"
#include "support/parallel.hpp"

namespace lazymc {
namespace {

class RepSweepTest : public testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { set_num_threads(0); }
};

TEST_P(RepSweepTest, OmegaIdenticalWithBitsetRowsOnAndOff) {
  auto inst = suite::make_instance(GetParam(), suite::Scale::kTiny);
  const Graph& g = inst.graph;

  set_num_threads(1);
  mc::LazyMCConfig off;
  off.neighborhood_rep = NeighborhoodRep::kHash;  // rows disabled entirely
  const auto baseline = mc::lazy_mc(g, off);
  ASSERT_TRUE(is_clique(g, baseline.clique));

  for (std::size_t threads : {1, 2, 8}) {
    set_num_threads(threads);
    for (NeighborhoodRep rep : {NeighborhoodRep::kBitset,
                                NeighborhoodRep::kHybrid,
                                NeighborhoodRep::kAuto,
                                NeighborhoodRep::kHash}) {
      mc::LazyMCConfig cfg;
      cfg.neighborhood_rep = rep;
      auto r = mc::lazy_mc(g, cfg);
      EXPECT_EQ(r.omega, baseline.omega)
          << GetParam() << " threads=" << threads
          << " rep=" << static_cast<int>(rep);
      EXPECT_TRUE(is_clique(g, r.clique));
      EXPECT_FALSE(r.timed_out);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, RepSweepTest,
                         testing::ValuesIn(suite::instance_names()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(RepSweep, TinyBudgetStillCorrectAndPreDensityAgrees) {
  // A 1 KB budget can hold almost no rows; dispatch must degrade to the
  // hash/sorted kernels per vertex without changing omega.  The
  // pre-extraction density estimate only moves the MC-vs-VC routing, so
  // omega is invariant under it too.
  auto inst = suite::make_instance("webcc", suite::Scale::kTiny);
  mc::LazyMCConfig base;
  auto expected = mc::lazy_mc(inst.graph, base).omega;

  mc::LazyMCConfig tiny;
  tiny.neighborhood_rep = NeighborhoodRep::kBitset;
  tiny.bitset_budget_bytes = 1024;
  EXPECT_EQ(mc::lazy_mc(inst.graph, tiny).omega, expected);

  mc::LazyMCConfig tiny_hybrid;
  tiny_hybrid.neighborhood_rep = NeighborhoodRep::kHybrid;
  tiny_hybrid.bitset_budget_bytes = 1024;
  EXPECT_EQ(mc::lazy_mc(inst.graph, tiny_hybrid).omega, expected);

  mc::LazyMCConfig zero;
  zero.neighborhood_rep = NeighborhoodRep::kAuto;
  zero.bitset_budget_bytes = 0;  // rows disabled
  EXPECT_EQ(mc::lazy_mc(inst.graph, zero).omega, expected);

  mc::LazyMCConfig pre;
  pre.pre_extraction_density = true;
  EXPECT_EQ(mc::lazy_mc(inst.graph, pre).omega, expected);
}

TEST(RepSweep, BitsetRepReportsWordKernelDispatch) {
  // An instance whose systematic phase does real work must route filter
  // intersections through the word-parallel kernel when rows are forced.
  auto inst = suite::make_instance("webcc", suite::Scale::kSmall);
  mc::LazyMCConfig cfg;
  cfg.neighborhood_rep = NeighborhoodRep::kBitset;
  auto r = mc::lazy_mc(inst.graph, cfg);
  ASSERT_GT(r.search.evaluated, 0u);
  EXPECT_GT(r.search.kernel_bitset_word, 0u);
  EXPECT_GT(r.lazy_graph.bitset_built, 0u);
  EXPECT_GT(r.lazy_graph.bitset_bytes, 0u);
  EXPECT_GT(r.lazy_graph.zone_size, 0u);
}

TEST(RepSweep, HybridRepReportsContainerKernelDispatch) {
  // Forced hybrid rows must still answer through the zone-row kernels:
  // every word-form dispatch lands on a container counter (bitset_word /
  // array_gallop / run_and), and the per-class build stats are populated.
  auto inst = suite::make_instance("webcc", suite::Scale::kSmall);
  mc::LazyMCConfig cfg;
  cfg.neighborhood_rep = NeighborhoodRep::kHybrid;
  auto r = mc::lazy_mc(inst.graph, cfg);
  ASSERT_GT(r.search.evaluated, 0u);
  EXPECT_GT(r.search.kernel_bitset_word + r.search.kernel_array_gallop +
                r.search.kernel_run_and,
            0u);
  const auto& g = r.lazy_graph;
  EXPECT_GT(g.bitset_built, 0u);
  EXPECT_EQ(g.bitset_built,
            g.hybrid_rows_array + g.hybrid_rows_bitset + g.hybrid_rows_run);
  EXPECT_EQ(g.bitset_bytes,
            g.hybrid_array_bytes + g.hybrid_bitset_bytes + g.hybrid_run_bytes);
  EXPECT_GT(g.zone_size, 0u);
}

TEST(RepSweep, HybridKeepsWordKernelsWhereBitsetStarves) {
  // The acceptance scenario: a budget sized so pure bitset rows exhaust
  // after a fraction of the zone, while the hybrid containers (measured
  // by an unconstrained probe) fit with headroom.  Hybrid must degrade
  // nothing, keep the intersections on the word kernels, and agree on
  // omega.  A moderately dense random graph is the compressible case:
  // coreness is high everywhere (the zone covers most of the graph) but
  // rows hold ~32 of 4000 possible bits, so the sorted-array container
  // undercuts the 64-word packed rows several times over.
  const Graph g = gen::gnp(4000, 0.008, 4242);

  mc::LazyMCConfig probe_b;
  probe_b.neighborhood_rep = NeighborhoodRep::kBitset;
  const auto ub = mc::lazy_mc(g, probe_b);
  mc::LazyMCConfig probe_h;
  probe_h.neighborhood_rep = NeighborhoodRep::kHybrid;
  const auto uh = mc::lazy_mc(g, probe_h);

  const std::size_t zone = ub.lazy_graph.zone_size;
  ASSERT_GT(zone, 0u);
  ASSERT_GT(ub.lazy_graph.bitset_built, 0u);
  // The instance only exercises the scenario if compression is real:
  // hybrid rows must cost well under half of what packed rows cost.
  const std::size_t bb = ub.lazy_graph.bitset_bytes;
  const std::size_t hb = uh.lazy_graph.bitset_bytes;
  ASSERT_LT(hb * 2, bb);

  // Hybrid fits with 50% headroom; pure bitset exhausts under this cap.
  const std::size_t bookkeeping =
      zone * (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  const std::size_t budget = bookkeeping + hb + hb / 2 + 8192;

  mc::LazyMCConfig starved_bitset;
  starved_bitset.neighborhood_rep = NeighborhoodRep::kBitset;
  starved_bitset.bitset_budget_bytes = budget;
  const auto rb = mc::lazy_mc(g, starved_bitset);

  mc::LazyMCConfig starved_hybrid;
  starved_hybrid.neighborhood_rep = NeighborhoodRep::kHybrid;
  starved_hybrid.bitset_budget_bytes = budget;
  const auto rh = mc::lazy_mc(g, starved_hybrid);

  EXPECT_EQ(rb.omega, ub.omega);
  EXPECT_EQ(rh.omega, ub.omega);
  // Pure bitset ran out of budget; hybrid built every row it was asked
  // for and lost none to degradation.
  EXPECT_LT(rb.lazy_graph.bitset_built, ub.lazy_graph.bitset_built);
  EXPECT_EQ(rh.lazy_graph.bitset_degraded, 0u);
  EXPECT_GE(rh.lazy_graph.bitset_built, uh.lazy_graph.bitset_built);
  EXPECT_GT(rh.search.kernel_bitset_word + rh.search.kernel_array_gallop +
                rh.search.kernel_run_and,
            rb.search.kernel_bitset_word);
}

// ---- LazyGraph zone / budget unit tests -----------------------------------

struct ZoneFixture {
  Graph g;
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  std::atomic<VertexId> incumbent{0};

  explicit ZoneFixture(Graph graph) : g(std::move(graph)) {
    core = kcore::coreness(g);
    order = kcore::order_by_coreness_degree(g, core.coreness);
  }
  LazyGraph make() { return LazyGraph(g, order, core.coreness, &incumbent); }
};

TEST(LazyGraphBitset, RowMatchesSortedNeighborhoodWithinZone) {
  ZoneFixture f(gen::gnp(80, 0.3, 555));
  f.incumbent.store(3);
  LazyGraph lazy = f.make();
  lazy.enable_bitset_rows(1 << 20);
  ASSERT_TRUE(lazy.bitset_enabled());
  const VertexId zb = lazy.zone_begin();
  for (VertexId v = zb; v < lazy.num_vertices(); ++v) {
    BitsetRow row = lazy.bitset_row(v);
    ASSERT_TRUE(row.valid());
    EXPECT_TRUE(lazy.has_bitset(v));
    // Built at the same incumbent, the row is exactly the sorted filtered
    // neighborhood clipped to the zone.
    auto sorted = lazy.sorted_neighborhood(v);
    std::size_t in_zone = 0;
    for (VertexId u : sorted) {
      if (u >= zb) {
        EXPECT_TRUE(row.contains(u)) << v << " " << u;
        ++in_zone;
      } else {
        EXPECT_FALSE(row.contains(u));
      }
    }
    EXPECT_EQ(row.size(), in_zone);
  }
}

TEST(LazyGraphBitset, BudgetBelowBookkeepingDisablesRows) {
  ZoneFixture f(gen::gnp(100, 0.3, 559));
  LazyGraph lazy = f.make();
  // The O(zone) bookkeeping alone exceeds a 64-byte budget: rows stay off.
  lazy.enable_bitset_rows(/*budget_bytes=*/64);
  EXPECT_FALSE(lazy.bitset_enabled());
  EXPECT_FALSE(lazy.bitset_row(0).valid());
}

TEST(LazyGraphBitset, BudgetExhaustionFallsBackGracefully) {
  ZoneFixture f(gen::gnp(100, 0.3, 556));
  LazyGraph lazy = f.make();
  // zone = 100 bits -> 2 words (16 bytes) per row.  Grant the bookkeeping
  // plus one word: no complete row fits, so the first build exhausts.
  const std::size_t bookkeeping =
      100 * (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  lazy.enable_bitset_rows(bookkeeping + 8);
  ASSERT_TRUE(lazy.bitset_enabled());
  EXPECT_FALSE(lazy.bitset_row(0).valid());
  EXPECT_FALSE(lazy.has_bitset(0));
  // membership still produces a usable view.
  NeighborhoodView view = lazy.membership(0);
  EXPECT_FALSE(view.has_bitset());
  EXPECT_GT(view.size(), 0u);
  EXPECT_EQ(lazy.stats().bitset_built, 0u);
}

TEST(LazyGraphBitset, DisabledAndOutOfZoneRowsAreInvalid) {
  ZoneFixture f(gen::gnp(40, 0.3, 557));
  {
    LazyGraph lazy = f.make();
    EXPECT_FALSE(lazy.bitset_enabled());
    EXPECT_FALSE(lazy.bitset_row(0).valid());
    EXPECT_EQ(lazy.stats().zone_size, 0u);
  }
  // Raise the incumbent so part of the graph falls outside the zone.
  ZoneFixture f2(gen::graph_union(gen::complete(8), gen::star(30)));
  f2.incumbent.store(5);
  LazyGraph lazy = f2.make();
  lazy.enable_bitset_rows(1 << 20);
  ASSERT_TRUE(lazy.bitset_enabled());
  ASSERT_GT(lazy.zone_begin(), 0u);
  EXPECT_FALSE(lazy.bitset_row(0).valid());  // leaf: below the zone
  BitsetRow in_zone = lazy.bitset_row(lazy.num_vertices() - 1);
  EXPECT_TRUE(in_zone.valid());
}

TEST(LazyGraphBitset, ForcedRepBuildsRowsInMembership) {
  ZoneFixture f(gen::gnp(60, 0.4, 558));
  LazyGraph lazy = f.make();
  lazy.enable_bitset_rows(1 << 20);
  lazy.set_preferred_rep(NeighborhoodRep::kBitset);
  NeighborhoodView view = lazy.membership(3);
  EXPECT_TRUE(view.has_bitset());
  EXPECT_FALSE(view.is_hashed());
  // contains() agrees with the base graph inside the zone (incumbent 0:
  // nothing filtered, zone covers everything).
  for (VertexId u = 0; u < lazy.num_vertices(); ++u) {
    bool edge = f.g.has_edge(f.order.new_to_orig[3], f.order.new_to_orig[u]);
    EXPECT_EQ(view.contains(u), edge) << u;
  }
}

}  // namespace
}  // namespace lazymc
