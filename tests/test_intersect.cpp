// Tests for the intersection kernels, especially the early-exit semantics
// of Algorithms 3 and 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hashset/hopscotch_set.hpp"
#include "intersect/intersect.hpp"
#include "support/random.hpp"

namespace lazymc {
namespace {

std::vector<VertexId> vec(std::initializer_list<VertexId> v) { return v; }

HopscotchSet make_set(const std::vector<VertexId>& v) {
  HopscotchSet s(v.size());
  for (VertexId x : v) s.insert(x);
  return s;
}

TEST(SortedLookup, BinarySearchContains) {
  auto data = vec({1, 3, 5, 7});
  SortedLookup look(data);
  EXPECT_TRUE(look.contains(1));
  EXPECT_TRUE(look.contains(7));
  EXPECT_FALSE(look.contains(2));
  EXPECT_FALSE(look.contains(0));
  EXPECT_EQ(look.size(), 4u);
}

TEST(IntersectSorted, BasicMerge) {
  auto a = vec({1, 2, 3, 5, 8});
  auto b = vec({2, 3, 4, 8, 9});
  auto out = intersect_sorted(a, b);
  EXPECT_EQ(out, vec({2, 3, 8}));
}

TEST(IntersectSorted, DisjointAndEmpty) {
  auto a = vec({1, 2});
  auto b = vec({3, 4});
  EXPECT_TRUE(intersect_sorted(a, b).empty());
  EXPECT_TRUE(intersect_sorted({}, b).empty());
  EXPECT_TRUE(intersect_sorted(a, {}).empty());
}

TEST(IntersectGallop, MatchesMergeOnSkewedSizes) {
  Rng rng(3);
  std::vector<VertexId> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(static_cast<VertexId>(rng.next_below(10000)));
  for (int i = 0; i < 5000; ++i) large.push_back(static_cast<VertexId>(rng.next_below(10000)));
  std::sort(small.begin(), small.end());
  small.erase(std::unique(small.begin(), small.end()), small.end());
  std::sort(large.begin(), large.end());
  large.erase(std::unique(large.begin(), large.end()), large.end());

  auto expected = intersect_sorted(small, large);
  std::vector<VertexId> out(std::min(small.size(), large.size()));
  std::size_t n = intersect_gallop(small, large, out.data());
  out.resize(n);
  EXPECT_EQ(out, expected);

  // Also with arguments swapped (gallop normalizes internally).
  std::vector<VertexId> out2(std::min(small.size(), large.size()));
  std::size_t n2 = intersect_gallop(large, small, out2.data());
  out2.resize(n2);
  EXPECT_EQ(out2, expected);
}

TEST(IntersectHash, MatchesReference) {
  auto a = vec({5, 1, 9, 12, 40});
  auto b = vec({9, 40, 2});
  HopscotchSet bs = make_set(b);
  std::vector<VertexId> out(a.size());
  std::size_t n = intersect_hash(std::span<const VertexId>(a), bs, out.data());
  out.resize(n);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, vec({9, 40}));
  EXPECT_EQ(intersect_size(std::span<const VertexId>(a), bs), 2u);
}

// ---- intersect_gt (Algorithm 3) -------------------------------------------

TEST(IntersectGt, ReturnsExactResultWhenAboveThreshold) {
  auto a = vec({1, 2, 3, 4, 5});
  HopscotchSet b = make_set(vec({2, 3, 5, 9}));
  std::vector<VertexId> out(a.size());
  int n = intersect_gt(std::span<const VertexId>(a), b, out.data(), 2);
  ASSERT_EQ(n, 3);
  out.resize(3);
  EXPECT_EQ(out, vec({2, 3, 5}));
}

TEST(IntersectGt, FailsWhenAtOrBelowThreshold) {
  auto a = vec({1, 2, 3, 4, 5});
  HopscotchSet b = make_set(vec({2, 3, 5, 9}));
  std::vector<VertexId> out(a.size());
  // |A ∩ B| == 3, not > 3.
  EXPECT_EQ(intersect_gt(std::span<const VertexId>(a), b, out.data(), 3),
            kTooSmall);
  EXPECT_EQ(intersect_gt(std::span<const VertexId>(a), b, out.data(), 4),
            kTooSmall);
}

TEST(IntersectGt, GuardsOnInputSizes) {
  auto a = vec({1, 2});
  HopscotchSet b = make_set(vec({1, 2, 3, 4, 5}));
  std::vector<VertexId> out(5);
  // n = 2 <= theta = 2: impossible regardless of content.
  EXPECT_EQ(intersect_gt(std::span<const VertexId>(a), b, out.data(), 2),
            kTooSmall);
  // m <= theta.
  auto a2 = vec({1, 2, 3, 4, 5, 6});
  HopscotchSet b2 = make_set(vec({1, 2}));
  EXPECT_EQ(intersect_gt(std::span<const VertexId>(a2), b2, out.data(), 2),
            kTooSmall);
}

TEST(IntersectGt, NegativeThetaGivesExactIntersection) {
  auto a = vec({1, 2, 3});
  HopscotchSet b = make_set(vec({7, 8}));
  std::vector<VertexId> out(3);
  int n = intersect_gt(std::span<const VertexId>(a), b, out.data(), -1);
  EXPECT_EQ(n, 0);  // empty but reported exactly, since 0 > -1
}

// ---- intersect_size_gt_val -------------------------------------------------

TEST(IntersectSizeGtVal, ExactSizeWhenAbove) {
  auto a = vec({1, 2, 3, 4, 5, 6});
  HopscotchSet b = make_set(vec({2, 4, 6, 8}));
  EXPECT_EQ(intersect_size_gt_val(std::span<const VertexId>(a), b, 1), 3);
  EXPECT_EQ(intersect_size_gt_val(std::span<const VertexId>(a), b, 2), 3);
  EXPECT_EQ(intersect_size_gt_val(std::span<const VertexId>(a), b, 3),
            kTooSmall);
}

TEST(IntersectSizeGtVal, EarlyExitDoesNotChangeAnswer) {
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    std::vector<VertexId> a, b;
    for (int i = 0; i < 30; ++i) {
      a.push_back(static_cast<VertexId>(rng.next_below(60)));
      b.push_back(static_cast<VertexId>(rng.next_below(60)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    HopscotchSet bs = make_set(b);
    std::size_t truth = intersect_size(std::span<const VertexId>(a), bs);
    for (std::int64_t theta = -1; theta <= 12; ++theta) {
      int r = intersect_size_gt_val(std::span<const VertexId>(a), bs, theta);
      if (static_cast<std::int64_t>(truth) > theta) {
        EXPECT_EQ(r, static_cast<int>(truth));
      } else {
        EXPECT_EQ(r, kTooSmall);
      }
    }
  }
}

// ---- intersect_size_gt_bool (Algorithm 4) ----------------------------------

TEST(IntersectSizeGtBool, BasicTrueFalse) {
  auto a = vec({1, 2, 3, 4, 5});
  HopscotchSet b = make_set(vec({1, 2, 3}));
  EXPECT_TRUE(intersect_size_gt_bool(std::span<const VertexId>(a), b, 2));
  EXPECT_FALSE(intersect_size_gt_bool(std::span<const VertexId>(a), b, 3));
}

TEST(IntersectSizeGtBool, SecondExitFiresOnLargePrefixHit) {
  // All of A's first elements hit: the second exit should answer true
  // before scanning the (large) tail.  Correctness is what we check here.
  std::vector<VertexId> a;
  for (VertexId v = 0; v < 1000; ++v) a.push_back(v);
  HopscotchSet b = make_set(a);  // everything hits
  EXPECT_TRUE(intersect_size_gt_bool(std::span<const VertexId>(a), b, 10));
  EXPECT_TRUE(
      intersect_size_gt_bool(std::span<const VertexId>(a), b, 10, false));
}

TEST(IntersectSizeGtBool, BothVariantsAgreeExhaustively) {
  Rng rng(23);
  for (int round = 0; round < 300; ++round) {
    std::vector<VertexId> a, b;
    std::size_t na = 1 + rng.next_below(25);
    std::size_t nb = 1 + rng.next_below(25);
    for (std::size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<VertexId>(rng.next_below(40)));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<VertexId>(rng.next_below(40)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    HopscotchSet bs = make_set(b);
    std::size_t truth = intersect_size(std::span<const VertexId>(a), bs);
    for (std::int64_t theta = -1; theta <= 10; ++theta) {
      bool expected = static_cast<std::int64_t>(truth) > theta;
      EXPECT_EQ(
          intersect_size_gt_bool(std::span<const VertexId>(a), bs, theta, true),
          expected)
          << "round " << round << " theta " << theta;
      EXPECT_EQ(intersect_size_gt_bool(std::span<const VertexId>(a), bs, theta,
                                       false),
                expected)
          << "round " << round << " theta " << theta << " (no 2nd exit)";
    }
  }
}

TEST(IntersectSizeGtBool, EmptyInputs) {
  std::vector<VertexId> empty;
  HopscotchSet b = make_set(vec({1, 2, 3}));
  EXPECT_FALSE(intersect_size_gt_bool(std::span<const VertexId>(empty), b, 0));
  // |{} ∩ B| = 0 > -1 is true.
  EXPECT_TRUE(intersect_size_gt_bool(std::span<const VertexId>(empty), b, -1));
}

TEST(Intersect, WorksWithSortedLookupAsB) {
  auto a = vec({1, 3, 5, 7, 9});
  auto b = vec({3, 7, 11});
  SortedLookup look(b);
  EXPECT_EQ(intersect_size_gt_val(std::span<const VertexId>(a), look, 1), 2);
  EXPECT_TRUE(intersect_size_gt_bool(std::span<const VertexId>(a), look, 1));
  EXPECT_FALSE(intersect_size_gt_bool(std::span<const VertexId>(a), look, 2));
}

TEST(IntersectGt, AgreesWithReferenceRandomized) {
  Rng rng(29);
  for (int round = 0; round < 200; ++round) {
    std::vector<VertexId> a, b;
    std::size_t na = rng.next_below(30);
    std::size_t nb = rng.next_below(30);
    for (std::size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<VertexId>(rng.next_below(50)));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<VertexId>(rng.next_below(50)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    HopscotchSet bs = make_set(b);
    auto expected = intersect_reference(a, b);
    for (std::int64_t theta = -1; theta <= 8; ++theta) {
      std::vector<VertexId> out(a.size() + 1);
      int r = intersect_gt(std::span<const VertexId>(a), bs, out.data(), theta);
      if (static_cast<std::int64_t>(expected.size()) > theta) {
        ASSERT_EQ(r, static_cast<int>(expected.size()));
        out.resize(expected.size());
        std::sort(out.begin(), out.end());
        EXPECT_EQ(out, expected);
      } else {
        EXPECT_EQ(r, kTooSmall);
      }
    }
  }
}

}  // namespace
}  // namespace lazymc
