// Negative-compile probe for the thread-safety annotation layer
// (support/thread_annotations.hpp).  Compiled twice by the
// tsa_negative_compile ctest under Clang with -Werror=thread-safety:
//
//   * without LAZYMC_TSA_MISUSE — the locked accessors only; must compile.
//   * with LAZYMC_TSA_MISUSE — three canonical violations (unlocked read,
//     unlocked write, self-deadlock); the build MUST fail, proving the
//     annotations actually reject misuse rather than being inert macros.
//
// GCC expands every annotation to nothing, so this file is never part of
// the normal build — only the Clang-gated ctest touches it.
#include "support/mutex.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace lazymc_tsa_probe {

class Guarded {
 public:
  void deposit(int amount) {
    lazymc::MutexLock guard(mutex_);
    balance_ += amount;
  }
  int cached() {
    lazymc::SpinLockGuard guard(spin_);
    return cached_;
  }
#ifdef LAZYMC_TSA_MISUSE
  // Violation 1: reading a GUARDED_BY member with no capability held.
  int peek_unlocked() { return balance_; }
  // Violation 2: writing a spinlock-guarded member with no capability.
  void poke_unlocked(int v) { cached_ = v; }
  // Violation 3: re-acquiring a capability already held (self-deadlock).
  void double_lock() {
    lazymc::MutexLock outer(mutex_);
    lazymc::MutexLock inner(mutex_);
    balance_ += 1;
  }
#endif

 private:
  lazymc::Mutex mutex_;
  lazymc::SpinLock spin_;
  int balance_ LAZYMC_GUARDED_BY(mutex_) = 0;
  int cached_ LAZYMC_GUARDED_BY(spin_) = 0;
};

int touch() {
  Guarded g;
  g.deposit(1);
#ifdef LAZYMC_TSA_MISUSE
  g.poke_unlocked(2);
  g.double_lock();
  return g.peek_unlocked();
#else
  return g.cached();
#endif
}

}  // namespace lazymc_tsa_probe
