// Tests for vertex ordering and relabelling.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"

namespace lazymc {
namespace {

TEST(Order, IsBijective) {
  Graph g = gen::gnp(80, 0.1, 3);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  ASSERT_EQ(order.size(), g.num_vertices());
  std::vector<char> seen(g.num_vertices(), 0);
  for (VertexId i = 0; i < order.size(); ++i) {
    VertexId orig = order.new_to_orig[i];
    EXPECT_FALSE(seen[orig]);
    seen[orig] = 1;
    EXPECT_EQ(order.orig_to_new[orig], i);
  }
}

TEST(Order, SortedByCorenessThenDegree) {
  Graph g = gen::plant_clique(gen::gnp(100, 0.05, 5), 9, 6);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  for (VertexId i = 0; i + 1 < order.size(); ++i) {
    VertexId a = order.new_to_orig[i];
    VertexId b = order.new_to_orig[i + 1];
    std::pair<VertexId, VertexId> ka{core.coreness[a], g.degree(a)};
    std::pair<VertexId, VertexId> kb{core.coreness[b], g.degree(b)};
    EXPECT_LE(ka, kb) << "position " << i;
  }
}

TEST(Order, DeterministicStability) {
  Graph g = gen::gnp(60, 0.1, 7);
  auto core = kcore::coreness(g);
  auto a = kcore::order_by_coreness_degree(g, core.coreness);
  auto b = kcore::order_by_coreness_degree(g, core.coreness);
  EXPECT_EQ(a.new_to_orig, b.new_to_orig);
}

TEST(Order, SizeMismatchThrows) {
  Graph g = gen::path(5);
  std::vector<VertexId> wrong(3, 0);
  EXPECT_THROW(kcore::order_by_coreness_degree(g, wrong),
               std::invalid_argument);
}

TEST(Order, FromPeelRespectsSequence) {
  Graph g = gen::path(4);
  std::vector<VertexId> peel{3, 1, 2, 0};
  auto order = kcore::order_from_peel(g, peel);
  EXPECT_EQ(order.new_to_orig, peel);
  EXPECT_EQ(order.orig_to_new[3], 0u);
  EXPECT_EQ(order.orig_to_new[0], 3u);
}

TEST(Order, FromPeelAppendsMissingVertices) {
  Graph g = gen::path(5);
  std::vector<VertexId> partial{4, 2};
  auto order = kcore::order_from_peel(g, partial);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.new_to_orig[0], 4u);
  EXPECT_EQ(order.new_to_orig[1], 2u);
  // remaining in original-id order
  EXPECT_EQ(order.new_to_orig[2], 0u);
  EXPECT_EQ(order.new_to_orig[3], 1u);
  EXPECT_EQ(order.new_to_orig[4], 3u);
}

TEST(Relabel, PreservesStructure) {
  Graph g = gen::gnp(50, 0.15, 9);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  Graph h = kcore::relabel(g, order);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      EXPECT_TRUE(h.has_edge(order.orig_to_new[v], order.orig_to_new[u]));
    }
  }
}

TEST(Relabel, NeighborListsSorted) {
  Graph g = gen::gnp(40, 0.2, 11);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  Graph h = kcore::relabel(g, order);
  for (VertexId v = 0; v < h.num_vertices(); ++v) {
    auto nbrs = h.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(Order, PeelOrderBoundsRightNeighborhoods) {
  // The degeneracy peeling order guarantees right-neighborhoods <=
  // coreness; the (coreness, degree) order should stay close in practice.
  Graph g = gen::gnp(120, 0.08, 13);
  auto core = kcore::coreness(g);
  auto peel_order = kcore::order_from_peel(g, core.peel_order);
  EXPECT_LE(kcore::max_right_neighborhood(g, peel_order), core.degeneracy);
}

}  // namespace
}  // namespace lazymc
