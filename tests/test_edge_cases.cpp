// Edge-case tests across modules: degenerate inputs, unusual structures,
// and representation boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"
#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/lazymc.hpp"
#include "vc/kvc.hpp"
#include "vc/mc_via_vc.hpp"

namespace lazymc {
namespace {

DenseSubgraph induce_all(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return induce_dense(g, all);
}

// ---- graphs with exotic degree structure -----------------------------------

TEST(EdgeCases, TwoDisjointCliques) {
  // The solver must not merge components.
  GraphBuilder b(12);
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) {
      b.add_edge(i, j);          // K6 on 0..5
      b.add_edge(i + 6, j + 6);  // K6 on 6..11
    }
  }
  Graph g = b.build();
  auto r = mc::lazy_mc(g);
  EXPECT_EQ(r.omega, 6u);
  // The clique lies entirely in one component.
  bool low = r.clique.front() < 6;
  for (VertexId v : r.clique) EXPECT_EQ(v < 6, low);
}

TEST(EdgeCases, CliqueMinusOneEdge) {
  // K8 minus one edge: omega = 7.
  GraphBuilder b(8);
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) {
      if (!(i == 0 && j == 1)) b.add_edge(i, j);
    }
  }
  auto r = mc::lazy_mc(b.build());
  EXPECT_EQ(r.omega, 7u);
}

TEST(EdgeCases, TuranGraphT33) {
  // Complete tripartite K(3,3,3): omega = 3 (one vertex per part).
  GraphBuilder b(9);
  for (VertexId i = 0; i < 9; ++i) {
    for (VertexId j = i + 1; j < 9; ++j) {
      if (i / 3 != j / 3) b.add_edge(i, j);
    }
  }
  Graph g = b.build();
  auto r = mc::lazy_mc(g);
  EXPECT_EQ(r.omega, 3u);
  // Dense (d = 6) with omega 3: a clique-core-gap-4 stress case.
  auto core = kcore::coreness(g);
  EXPECT_EQ(core.degeneracy, 6u);
}

TEST(EdgeCases, OverlappingCliquesShareVertices) {
  // Two K7s sharing 3 vertices: omega = 7, and the shared vertices have
  // the highest degree — heuristic seeds land there.
  GraphBuilder b(11);
  auto add_clique = [&](std::vector<VertexId> vs) {
    for (std::size_t i = 0; i < vs.size(); ++i) {
      for (std::size_t j = i + 1; j < vs.size(); ++j) {
        b.add_edge(vs[i], vs[j]);
      }
    }
  };
  add_clique({0, 1, 2, 3, 4, 5, 6});
  add_clique({4, 5, 6, 7, 8, 9, 10});
  auto r = mc::lazy_mc(b.build());
  EXPECT_EQ(r.omega, 7u);
}

TEST(EdgeCases, LongPathGraph) {
  auto r = mc::lazy_mc(gen::path(5000));
  EXPECT_EQ(r.omega, 2u);
}

TEST(EdgeCases, SelfContainedStarForest) {
  // Many stars: omega = 2, degeneracy 1, instant certification.
  GraphBuilder b(0);
  VertexId base = 0;
  for (int s = 0; s < 50; ++s) {
    for (VertexId leaf = 1; leaf <= 5; ++leaf) {
      b.add_edge(base, base + leaf);
    }
    base += 6;
  }
  auto r = mc::lazy_mc(b.build());
  EXPECT_EQ(r.omega, 2u);
  EXPECT_EQ(r.search.evaluated, 0u);  // heuristic certifies zero gap
}

// ---- k-VC structural cases --------------------------------------------------

TEST(EdgeCases, KvcDisjointPathsAndCycles) {
  // P5 (needs 2) + C6 (needs 3) + C5 (needs 3) + isolated vertices.
  GraphBuilder b(20);
  for (VertexId i = 0; i + 1 < 5; ++i) b.add_edge(i, i + 1);     // P5: 0..4
  for (VertexId i = 0; i < 6; ++i) b.add_edge(5 + i, 5 + (i + 1) % 6);
  for (VertexId i = 0; i < 5; ++i) b.add_edge(11 + i, 11 + (i + 1) % 5);
  DenseSubgraph s = induce_all(b.build());
  EXPECT_EQ(vc::minimum_vertex_cover(s), 2u + 3u + 3u);
  auto r = vc::solve_kvc(s, 8);
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(vc::solve_kvc(s, 7).feasible);
}

TEST(EdgeCases, KvcDegreeTwoChainOfTriangles) {
  // Triangles sharing no vertices, connected by bridges: the triangle
  // rule fires repeatedly.
  GraphBuilder b(9);
  auto tri = [&](VertexId a) {
    b.add_edge(a, a + 1);
    b.add_edge(a + 1, a + 2);
    b.add_edge(a, a + 2);
  };
  tri(0);
  tri(3);
  tri(6);
  b.add_edge(2, 3);
  b.add_edge(5, 6);
  DenseSubgraph s = induce_all(b.build());
  std::size_t mvc = vc::minimum_vertex_cover(s);
  EXPECT_GE(mvc, 6u);  // 2 per triangle
  EXPECT_LE(mvc, 7u);
  auto r = vc::solve_kvc(s, static_cast<std::int64_t>(mvc));
  EXPECT_TRUE(r.feasible);
}

TEST(EdgeCases, McViaVcOnNearCompleteGraph) {
  // K30 minus a perfect matching: omega = 15? No — omega = 29 - ... :
  // each vertex misses exactly one other, so a maximum clique picks one
  // endpoint per missing edge: omega = 15.
  GraphBuilder b(30);
  for (VertexId i = 0; i < 30; ++i) {
    for (VertexId j = i + 1; j < 30; ++j) {
      if (!(j == i + 15 && i < 15)) b.add_edge(i, j);
    }
  }
  DenseSubgraph s = induce_all(b.build());
  auto r = vc::max_clique_via_vc(s, 0);
  EXPECT_EQ(r.clique.size(), 15u);
  auto ref = baselines::max_clique_reference(b.build());
  EXPECT_EQ(ref.size(), 15u);
}

// ---- io robustness ----------------------------------------------------------

TEST(EdgeCases, DimacsIgnoresUnknownRecords) {
  std::istringstream in(
      "c comment\n"
      "p edge 4 2\n"
      "n 1 3\n"
      "e 1 2\n"
      "d 0 0\n"
      "e 3 4\n");
  Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeCases, EdgeListWithLargeIds) {
  std::istringstream in("0 999999\n999999 12345\n");
  Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 1000000u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(999999), 2u);
}

// ---- lazy graph boundaries --------------------------------------------------

TEST(EdgeCases, LazyGraphVertexWithNoNeighbors) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  Graph g = b.build();
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  std::atomic<VertexId> inc{0};
  LazyGraph lazy(g, order, core.coreness, &inc);
  for (VertexId v = 0; v < 5; ++v) {
    auto s = lazy.sorted_neighborhood(v);
    auto& h = lazy.hashed_neighborhood(v);
    EXPECT_EQ(s.size(), h.size());
  }
}

TEST(EdgeCases, LazyGraphNullIncumbentPointerFiltersNothing) {
  Graph g = gen::gnp(40, 0.2, 301);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  LazyGraph lazy(g, order, core.coreness, nullptr);
  std::size_t total = 0;
  for (VertexId v = 0; v < 40; ++v) total += lazy.sorted_neighborhood(v).size();
  EXPECT_EQ(total, 2 * g.num_edges());
}

// ---- order boundaries -------------------------------------------------------

TEST(EdgeCases, OrderOfEmptyAndSingletonGraphs) {
  Graph empty;
  auto core_e = kcore::coreness(empty);
  auto order_e = kcore::order_by_coreness_degree(empty, core_e.coreness);
  EXPECT_EQ(order_e.size(), 0u);

  GraphBuilder b(1);
  Graph one = b.build();
  auto core_1 = kcore::coreness(one);
  auto order_1 = kcore::order_by_coreness_degree(one, core_1.coreness);
  ASSERT_EQ(order_1.size(), 1u);
  EXPECT_EQ(order_1.new_to_orig[0], 0u);
}

TEST(EdgeCases, RelabelRoundTripsThroughInverseOrder) {
  Graph g = gen::gnp(30, 0.3, 303);
  auto core = kcore::coreness(g);
  auto order = kcore::order_by_coreness_degree(g, core.coreness);
  Graph h = kcore::relabel(g, order);
  // Relabel back with the inverse permutation: must equal the original.
  kcore::VertexOrder inverse;
  inverse.new_to_orig = order.orig_to_new;
  inverse.orig_to_new = order.new_to_orig;
  Graph back = kcore::relabel(h, inverse);
  EXPECT_TRUE(std::ranges::equal(back.adjacency(), g.adjacency()));
  EXPECT_TRUE(std::ranges::equal(back.offsets(), g.offsets()));
}

}  // namespace
}  // namespace lazymc
