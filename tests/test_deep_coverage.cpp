// Deeper coverage for modules with thinner direct tests: baseline edge
// cases, hopscotch growth/rehash, greedy coloring on suite instances,
// thread-pool fuzz, and cover minimality checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baselines/domega.hpp"
#include "baselines/mcbrb.hpp"
#include "baselines/pmc.hpp"
#include "baselines/reference.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "graph/suite.hpp"
#include "hashset/hopscotch_set.hpp"
#include "mc/greedy_color.hpp"
#include "mc/heuristic.hpp"
#include "mc/incumbent.hpp"
#include "support/parallel.hpp"
#include "support/random.hpp"
#include "vc/kvc.hpp"

namespace lazymc {
namespace {

// ---- baselines on degenerate inputs ----------------------------------------

TEST(DeepBaselines, EmptyGraphAllSolvers) {
  Graph g;
  EXPECT_EQ(baselines::pmc_solve(g).omega, 0u);
  EXPECT_EQ(baselines::domega_solve(g, baselines::DomegaMode::kLinearScan).omega,
            0u);
  EXPECT_EQ(
      baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch).omega,
      0u);
  EXPECT_EQ(baselines::mcbrb_solve(g).omega, 0u);
}

TEST(DeepBaselines, EdgelessGraphAllSolvers) {
  GraphBuilder b(10);
  Graph g = b.build();
  EXPECT_EQ(baselines::pmc_solve(g).omega, 1u);
  EXPECT_EQ(baselines::mcbrb_solve(g).omega, 1u);
  EXPECT_EQ(baselines::domega_solve(g, baselines::DomegaMode::kLinearScan).omega,
            1u);
}

TEST(DeepBaselines, DomegaOnZeroGapGraphStopsAtFirstProbe) {
  // Zero gap: the first (gap 0) probe succeeds, which is dOmega-LS's best
  // case (the paper's motivation for the LS variant).
  Graph g = gen::plant_clique(gen::barabasi_albert(150, 3, 401), 9, 402);
  auto ls = baselines::domega_solve(g, baselines::DomegaMode::kLinearScan);
  EXPECT_EQ(ls.omega, 9u);
}

TEST(DeepBaselines, DomegaBinarySearchOnBipartite) {
  // omega=2 with degeneracy ~np: BS must descend the whole range.
  Graph g = gen::bipartite(30, 30, 0.4, 403);
  auto bs = baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch);
  EXPECT_EQ(bs.omega, 2u);
}

TEST(DeepBaselines, SolversAcceptDisconnectedGraphs) {
  Graph g = gen::graph_union(gen::complete(5), gen::cycle(20));
  EXPECT_EQ(baselines::pmc_solve(g).omega, 5u);
  EXPECT_EQ(baselines::mcbrb_solve(g).omega, 5u);
  EXPECT_EQ(
      baselines::domega_solve(g, baselines::DomegaMode::kBinarySearch).omega,
      5u);
}

// ---- hopscotch growth path --------------------------------------------------

TEST(DeepHopscotch, GrowthPreservesAllElements) {
  // Start tiny and insert far beyond capacity to force repeated rehash.
  HopscotchSet s(1);
  std::size_t initial_cap = s.capacity();
  for (VertexId v = 0; v < 4000; ++v) s.insert(v * 2 + 1);
  EXPECT_GT(s.capacity(), initial_cap);
  EXPECT_EQ(s.size(), 4000u);
  for (VertexId v = 0; v < 4000; ++v) {
    EXPECT_TRUE(s.contains(v * 2 + 1));
    EXPECT_FALSE(s.contains(v * 2));
  }
}

TEST(DeepHopscotch, ClusteredKeysForceDisplacement) {
  // Keys engineered to share home buckets under Fibonacci hashing stress
  // the displacement logic: use a small table and many inserts.
  HopscotchSet s(4);
  Rng rng(405);
  std::vector<VertexId> keys;
  for (int i = 0; i < 300; ++i) {
    keys.push_back(static_cast<VertexId>(rng.next_below(1u << 30)));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (VertexId k : keys) s.insert(k);
  EXPECT_EQ(s.size(), keys.size());
  for (VertexId k : keys) EXPECT_TRUE(s.contains(k));
}

// ---- greedy coloring across the suite ---------------------------------------

TEST(DeepColoring, ProperOnAllTinySuiteInstances) {
  for (const auto& name : {"sinaweibo", "WormNet", "yahoo", "USAroad"}) {
    auto inst = suite::make_instance(name, suite::Scale::kTiny);
    const Graph& g = inst.graph;
    std::vector<VertexId> all(g.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    DenseSubgraph s = induce_dense(g, all);
    DynamicBitset p(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) p.set(i);
    auto c = mc::greedy_color(s, p);
    std::vector<VertexId> color_of(s.size(), 0);
    for (std::size_t i = 0; i < c.order.size(); ++i) {
      color_of[c.order[i]] = c.color[i];
    }
    for (std::size_t v = 0; v < s.size(); ++v) {
      for (std::size_t u = s.adj[v].find_first(); u < s.adj[v].size();
           u = s.adj[v].find_next(u)) {
        ASSERT_NE(color_of[v], color_of[u]) << name;
      }
    }
    auto ref = baselines::max_clique_reference(g);
    EXPECT_GE(c.num_colors, ref.size()) << name;  // chi >= omega
  }
}

// ---- thread pool fuzz --------------------------------------------------------

TEST(DeepThreadPool, RandomizedRangesAndGrains) {
  ThreadPool pool(3);
  Rng rng(407);
  for (int round = 0; round < 100; ++round) {
    std::size_t begin = rng.next_below(100);
    std::size_t end = begin + rng.next_below(5000);
    std::size_t grain = 1 + rng.next_below(700);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(begin, end, [&](std::size_t i) { sum += i; }, grain);
    std::uint64_t expected = 0;
    for (std::size_t i = begin; i < end; ++i) expected += i;
    ASSERT_EQ(sum.load(), expected) << "round " << round;
  }
}

TEST(DeepThreadPool, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int i = 0; i < 500; ++i) {
    pool.parallel_for(0, 3, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 1500);
}

// ---- k-VC cover minimality near the boundary ---------------------------------

TEST(DeepKvc, CoverAtExactMinimumIsMinimal) {
  for (std::uint64_t seed = 420; seed <= 430; ++seed) {
    Graph g = gen::gnp(13, 0.35, seed);
    std::vector<VertexId> all(13);
    std::iota(all.begin(), all.end(), 0);
    DenseSubgraph s = induce_dense(g, all);
    std::size_t mvc = vc::minimum_vertex_cover(s);
    auto r = vc::solve_kvc(s, static_cast<std::int64_t>(mvc));
    ASSERT_TRUE(r.feasible) << seed;
    // The returned cover is a cover of size <= mvc; by minimality of mvc
    // it has size exactly mvc... unless it includes redundant vertices
    // within budget — verify size <= mvc and coverage.
    EXPECT_LE(r.cover.size(), mvc) << seed;
    std::vector<char> in(13, 0);
    for (VertexId v : r.cover) in[v] = 1;
    for (std::size_t v = 0; v < 13; ++v) {
      for (std::size_t u = v + 1; u < 13; ++u) {
        if (s.adj[v].test(u)) {
          EXPECT_TRUE(in[v] || in[u]) << seed;
        }
      }
    }
  }
}

// ---- degree heuristic determinism --------------------------------------------

TEST(DeepHeuristic, DegreeHeuristicSeedsByDegreeNotId) {
  // Vertex ids shuffled: the heuristic must key on degree, finding the
  // planted clique regardless of labels.
  Rng rng(431);
  Graph base = gen::plant_clique(gen::gnp(150, 0.02, 432), 11, 433);
  // Random relabel.
  std::vector<VertexId> perm(base.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  GraphBuilder b(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId u : base.neighbors(v)) {
      if (v < u) b.add_edge(perm[v], perm[u]);
    }
  }
  Graph shuffled = b.build();
  Incumbent a, c;
  mc::degree_based_heuristic(base, a);
  mc::degree_based_heuristic(shuffled, c);
  // Tie-breaking may differ under relabelling, but the planted clique's
  // members dominate the degree ranking either way.
  EXPECT_GE(a.size(), 10u);
  EXPECT_GE(c.size(), 10u);
}

}  // namespace
}  // namespace lazymc
