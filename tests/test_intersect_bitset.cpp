// Property tests for the word-parallel intersection engine: BitsetRow /
// SparseWordSet kernels, prefetched batch hash probes, and the adaptive
// IntersectPolicy dispatch — every (representation x kernel x θ)
// combination is checked against intersect_reference, including θ = -1,
// θ >= min(|A|,|B|), empty sides, and word-boundary sizes (63/64/65).
//
// The forced-tier suites re-run the word-parallel kernels under every
// SIMD tier the build + CPU support (scalar is always one of them),
// asserting bit-identical results at the vector-width boundaries
// (255/256/257 and 511/512/513 bits) and at budget-exit positions that
// fall *inside* an AVX2/AVX-512 block.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hashset/hopscotch_set.hpp"
#include "intersect/intersect.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/intersect_policy.hpp"
#include "support/random.hpp"
#include "support/simd.hpp"

namespace lazymc {
namespace {

/// RAII tier forcing; restores auto dispatch on scope exit.
struct ForcedTier {
  explicit ForcedTier(simd::Tier t) { ok = simd::force_tier(t); }
  ~ForcedTier() { simd::reset_tier(); }
  bool ok = false;
};

using simd::supported_tiers;

/// Owning helper: packs `elements` (ids >= zone_begin) into row words.
struct OwnedRow {
  std::vector<std::uint64_t> words;
  BitsetRow row;

  OwnedRow(const std::vector<VertexId>& elements, VertexId zone_begin,
           VertexId zone_bits) {
    words.assign((static_cast<std::size_t>(zone_bits) + 63) / 64, 0);
    std::uint32_t count = 0;
    for (VertexId v : elements) {
      const VertexId off = v - zone_begin;
      words[off >> 6] |= 1ULL << (off & 63);
      ++count;
    }
    row = BitsetRow{words.data(), zone_begin, zone_bits, count};
  }
};

std::vector<VertexId> random_zone_set(Rng& rng, std::size_t max_size,
                                      VertexId zone_begin,
                                      VertexId zone_bits) {
  std::vector<VertexId> v;
  const std::size_t size = rng.next_below(max_size + 1);
  for (std::size_t i = 0; i < size; ++i) {
    v.push_back(zone_begin + static_cast<VertexId>(rng.next_below(zone_bits)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

HopscotchSet make_set(const std::vector<VertexId>& v) {
  HopscotchSet s(v.size());
  for (VertexId x : v) s.insert(x);
  return s;
}

TEST(SparseWordSet, BuildPacksSortedIdsByWord) {
  SparseWordSet a;
  std::vector<VertexId> ids = {100, 101, 163, 164, 300};
  a.build({ids.data(), ids.size()}, 100);
  ASSERT_EQ(a.count(), 5u);
  ASSERT_EQ(a.num_entries(), 3u);  // words 0 (offs 0,1,63), 1 (64), 3 (200)
  EXPECT_EQ(a.indices()[0], 0u);
  EXPECT_EQ(a.bits()[0], (1ULL << 0) | (1ULL << 1) | (1ULL << 63));
  EXPECT_EQ(a.indices()[1], 1u);
  EXPECT_EQ(a.bits()[1], 1ULL << 0);
  EXPECT_EQ(a.indices()[2], 3u);
  EXPECT_EQ(a.bits()[2], 1ULL << 8);
}

TEST(BitsetRow, ContainsClipsToZone) {
  OwnedRow owned({10, 73, 74}, 10, 65);
  const BitsetRow& row = owned.row;
  EXPECT_TRUE(row.contains(10));
  EXPECT_TRUE(row.contains(73));
  EXPECT_TRUE(row.contains(74));
  EXPECT_FALSE(row.contains(11));
  EXPECT_FALSE(row.contains(9));    // below the zone
  EXPECT_FALSE(row.contains(75));   // past the zone
  EXPECT_FALSE(row.contains(200));  // far past the zone
  EXPECT_EQ(row.size(), 3u);
  EXPECT_FALSE(BitsetRow{}.valid());
  EXPECT_TRUE(row.valid());
}

// All word-parallel kernels against intersect_reference, across zone
// offsets, word-boundary zone sizes, and the full θ sweep.
TEST(BitsetKernels, MatchReferenceExhaustively) {
  Rng rng(111);
  for (VertexId zone_begin : {VertexId{0}, VertexId{7}, VertexId{64}}) {
    for (VertexId zone_bits : {VertexId{63}, VertexId{64}, VertexId{65},
                               VertexId{200}}) {
      for (int round = 0; round < 60; ++round) {
        auto a = random_zone_set(rng, 40, zone_begin, zone_bits);
        auto b = random_zone_set(rng, 40, zone_begin, zone_bits);
        SparseWordSet aw;
        aw.build({a.data(), a.size()}, zone_begin);
        OwnedRow owned(b, zone_begin, zone_bits);
        const BitsetRow& row = owned.row;
        const auto expected = intersect_reference(a, b);
        const std::int64_t truth = static_cast<std::int64_t>(expected.size());
        EXPECT_EQ(intersect_size(aw, row), expected.size());

        const std::int64_t max_theta = static_cast<std::int64_t>(
            std::min(a.size(), b.size()) + 2);
        for (std::int64_t theta = -1; theta <= max_theta; ++theta) {
          const bool above = truth > theta;
          EXPECT_EQ(intersect_size_gt_bool(aw, row, theta, true), above)
              << "zb=" << zone_begin << " bits=" << zone_bits
              << " theta=" << theta;
          EXPECT_EQ(intersect_size_gt_bool(aw, row, theta, false), above);
          int v = intersect_size_gt_val(aw, row, theta);
          EXPECT_EQ(v, above ? static_cast<int>(truth) : kTooSmall);

          std::vector<VertexId> out(a.size() + 1);
          int g = intersect_gt(aw, row, out.data(), theta);
          if (above) {
            ASSERT_EQ(g, static_cast<int>(truth));
            out.resize(expected.size());
            EXPECT_EQ(out, expected);  // ascending, like the scalar kernel
          } else {
            EXPECT_EQ(g, kTooSmall);
          }
        }
      }
    }
  }
}

TEST(BitsetKernels, EmptySides) {
  SparseWordSet empty_a;
  empty_a.build({}, 0);
  OwnedRow b({1, 2, 3}, 0, 64);
  EXPECT_FALSE(intersect_size_gt_bool(empty_a, b.row, 0));
  EXPECT_TRUE(intersect_size_gt_bool(empty_a, b.row, -1));  // 0 > -1
  EXPECT_EQ(intersect_size_gt_val(empty_a, b.row, 0), kTooSmall);

  std::vector<VertexId> a = {1, 2, 3};
  SparseWordSet aw;
  aw.build({a.data(), a.size()}, 0);
  OwnedRow empty_b({}, 0, 64);
  EXPECT_FALSE(intersect_size_gt_bool(aw, empty_b.row, 0));
  EXPECT_EQ(intersect_size_gt_val(aw, empty_b.row, 0), kTooSmall);
  std::vector<VertexId> out(4);
  EXPECT_EQ(intersect_gt(aw, empty_b.row, out.data(), 0), kTooSmall);
  EXPECT_EQ(intersect_gt(aw, empty_b.row, out.data(), -1), 0);
}

// Every supported SIMD tier must return bit-identical results to the
// reference at the vector-width boundaries: 255/256/257 bits straddle an
// AVX2 block (4 x 64) and 511/512/513 an AVX-512 one (8 x 64), so block
// loops, masked/scalar tails, and the per-block budget checks all get
// exercised on either side of a full vector.
TEST(BitsetKernelTiers, AllTiersMatchReferenceAtVectorBoundaries) {
  for (simd::Tier tier : supported_tiers()) {
    ForcedTier forced(tier);
    ASSERT_TRUE(forced.ok) << simd::tier_name(tier);
    Rng rng(1000 + static_cast<std::uint64_t>(tier));
    for (VertexId zone_begin : {VertexId{0}, VertexId{7}}) {
      for (VertexId zone_bits :
           {VertexId{255}, VertexId{256}, VertexId{257}, VertexId{511},
            VertexId{512}, VertexId{513}}) {
        for (int round = 0; round < 25; ++round) {
          auto a = random_zone_set(rng, 160, zone_begin, zone_bits);
          auto b = random_zone_set(rng, 160, zone_begin, zone_bits);
          SparseWordSet aw;
          aw.build({a.data(), a.size()}, zone_begin);
          OwnedRow owned(b, zone_begin, zone_bits);
          const BitsetRow& row = owned.row;
          const auto expected = intersect_reference(a, b);
          const std::int64_t truth =
              static_cast<std::int64_t>(expected.size());
          EXPECT_EQ(intersect_size(aw, row), expected.size());
          std::vector<VertexId> out(a.size() + 1);
          EXPECT_EQ(intersect_words(aw, row, out.data()), expected.size());

          const std::int64_t max_theta =
              static_cast<std::int64_t>(std::min(a.size(), b.size()) + 2);
          for (std::int64_t theta = -1; theta <= max_theta; ++theta) {
            const bool above = truth > theta;
            EXPECT_EQ(intersect_size_gt_bool(aw, row, theta, true), above)
                << simd::tier_name(tier) << " bits=" << zone_bits
                << " theta=" << theta;
            EXPECT_EQ(intersect_size_gt_bool(aw, row, theta, false), above);
            EXPECT_EQ(intersect_size_gt_val(aw, row, theta),
                      above ? static_cast<int>(truth) : kTooSmall);
            int g = intersect_gt(aw, row, out.data(), theta);
            if (above) {
              ASSERT_EQ(g, static_cast<int>(truth));
              EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                                     out.begin()));
            } else {
              EXPECT_EQ(g, kTooSmall);
            }
          }
        }
      }
    }
  }
}

// Budget exits that trip *inside* a vector block: A occupies 16 full
// words (1024 elements), B keeps only words [0, keep) of A, so the miss
// budget h = |A| - θ runs dry at a controlled word position — including
// positions in the middle of an AVX2 (4-word) or AVX-512 (8-word) block.
// Tiers check the budget once per block, which by the monotonicity
// argument in wp_kernels.hpp must never change the verdict; this test
// pins that on every supported tier, θ regime, and exit word.
TEST(BitsetKernelTiers, BudgetExitInsideVectorBlock) {
  constexpr VertexId kZoneBits = 1024;  // 16 words, all occupied by A
  std::vector<VertexId> a(kZoneBits);
  for (VertexId v = 0; v < kZoneBits; ++v) a[v] = v;
  SparseWordSet aw;
  aw.build({a.data(), a.size()}, 0);
  ASSERT_EQ(aw.num_entries(), 16u);

  for (simd::Tier tier : supported_tiers()) {
    ForcedTier forced(tier);
    ASSERT_TRUE(forced.ok);
    for (std::size_t keep = 0; keep <= 16; ++keep) {
      std::vector<VertexId> b;
      for (VertexId v = 0; v < static_cast<VertexId>(keep * 64); ++v) {
        b.push_back(v);
      }
      OwnedRow owned(b, 0, kZoneBits);
      const std::int64_t truth = static_cast<std::int64_t>(b.size());
      // Thetas chosen so the failure exit fires after ~1, ~keep/2, ~keep
      // and ~16 words — i.e. at every alignment within a block.
      for (std::int64_t theta :
           {std::int64_t{-1}, std::int64_t{0}, truth - 65, truth - 1, truth,
            truth + 1, truth + 63, std::int64_t{1023}}) {
        const bool above = truth > theta;
        EXPECT_EQ(intersect_size_gt_bool(aw, owned.row, theta, true), above)
            << simd::tier_name(tier) << " keep=" << keep
            << " theta=" << theta;
        EXPECT_EQ(intersect_size_gt_bool(aw, owned.row, theta, false), above);
        EXPECT_EQ(intersect_size_gt_val(aw, owned.row, theta),
                  above ? static_cast<int>(truth) : kTooSmall);
        std::vector<VertexId> out(a.size() + 1);
        int g = intersect_gt(aw, owned.row, out.data(), theta);
        if (above) {
          ASSERT_EQ(g, static_cast<int>(truth));
          EXPECT_TRUE(std::equal(b.begin(), b.end(), out.begin()));
        } else {
          EXPECT_EQ(g, kTooSmall);
        }
      }
    }
  }
}

// Prefetched batch probes must be bit-identical to the scalar hash
// kernels for every θ, including sizes around the lookahead and word
// boundaries (63/64/65) and empty inputs.
TEST(PrefetchKernels, MatchScalarHashKernels) {
  Rng rng(222);
  for (std::size_t na : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                         std::size_t{63}, std::size_t{64}, std::size_t{65},
                         std::size_t{200}}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<VertexId> a, b;
      for (std::size_t i = 0; i < na; ++i) {
        a.push_back(static_cast<VertexId>(rng.next_below(300)));
      }
      std::size_t nb = rng.next_below(120);
      for (std::size_t i = 0; i < nb; ++i) {
        b.push_back(static_cast<VertexId>(rng.next_below(300)));
      }
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      HopscotchSet bs = make_set(b);
      std::span<const VertexId> as(a);

      EXPECT_EQ(intersect_size_prefetch(as, bs), intersect_size(as, bs));
      const std::int64_t max_theta =
          static_cast<std::int64_t>(std::min(a.size(), bs.size()) + 2);
      for (std::int64_t theta = -1; theta <= max_theta; ++theta) {
        EXPECT_EQ(intersect_size_gt_bool_prefetch(as, bs, theta, true),
                  intersect_size_gt_bool(as, bs, theta, true));
        EXPECT_EQ(intersect_size_gt_bool_prefetch(as, bs, theta, false),
                  intersect_size_gt_bool(as, bs, theta, false));
        EXPECT_EQ(intersect_size_gt_val_prefetch(as, bs, theta),
                  intersect_size_gt_val(as, bs, theta));
        std::vector<VertexId> out1(a.size() + 1), out2(a.size() + 1);
        int r1 = intersect_gt_prefetch(as, bs, out1.data(), theta);
        int r2 = intersect_gt(as, bs, out2.data(), theta);
        EXPECT_EQ(r1, r2);
        if (r1 != kTooSmall) {
          out1.resize(static_cast<std::size_t>(r1));
          out2.resize(static_cast<std::size_t>(r2));
          EXPECT_EQ(out1, out2);
        }
      }
    }
  }
}

TEST(SortedKernels, SizeGtValMatchesReference) {
  Rng rng(333);
  for (int round = 0; round < 200; ++round) {
    std::vector<VertexId> a, b;
    std::size_t na = rng.next_below(40);
    std::size_t nb = rng.next_below(40);
    for (std::size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<VertexId>(rng.next_below(70)));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<VertexId>(rng.next_below(70)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    const std::int64_t truth =
        static_cast<std::int64_t>(intersect_reference(a, b).size());
    EXPECT_EQ(intersect_sorted_size(a, b), static_cast<std::size_t>(truth));
    for (std::int64_t theta = -1; theta <= 12; ++theta) {
      int r = intersect_sorted_size_gt_val(a, b, theta);
      EXPECT_EQ(r, truth > theta ? static_cast<int>(truth) : kTooSmall)
          << "theta=" << theta;
    }
  }
}

// The adaptive dispatcher must give representation-independent answers:
// the same A and B presented as a hash set, a sorted array, or a bitset
// row (with and without the word form of A) agree with the reference for
// every kernel and θ, and the counters record where each call ran.
TEST(IntersectPolicyDispatch, AllRepresentationsAgree) {
  Rng rng(444);
  const VertexId zone_begin = 5;
  const VertexId zone_bits = 130;
  mc::KernelCounters counters;
  mc::IntersectPolicy policy;
  policy.counters = &counters;
  mc::IntersectPolicy no_exits;
  no_exits.early_exits = false;
  no_exits.second_exit = false;

  for (int round = 0; round < 120; ++round) {
    auto a = random_zone_set(rng, 30, zone_begin, zone_bits);
    auto b = random_zone_set(rng, 30, zone_begin, zone_bits);
    SparseWordSet aw;
    aw.build({a.data(), a.size()}, zone_begin);
    OwnedRow owned(b, zone_begin, zone_bits);
    HopscotchSet hs = make_set(b);

    NeighborhoodView hash_view(&hs, {});
    NeighborhoodView sorted_view(nullptr, {b.data(), b.size()});
    NeighborhoodView bitset_view(nullptr, {}, owned.row);
    const NeighborhoodView* views[] = {&hash_view, &sorted_view, &bitset_view};

    const auto expected = intersect_reference(a, b);
    const std::int64_t truth = static_cast<std::int64_t>(expected.size());
    std::span<const VertexId> as(a);

    for (std::int64_t theta = -1; theta <= 10; ++theta) {
      for (const NeighborhoodView* view : views) {
        for (const SparseWordSet* words :
             {static_cast<const SparseWordSet*>(nullptr),
              static_cast<const SparseWordSet*>(&aw)}) {
          for (const mc::IntersectPolicy* p : {&policy, &no_exits}) {
            EXPECT_EQ(p->size_gt_bool(as, *view, theta, words), truth > theta);
            EXPECT_EQ(p->size_gt_val(as, *view, theta, words),
                      truth > theta ? static_cast<int>(truth) : kTooSmall);
            std::vector<VertexId> out(a.size() + 1);
            int g = p->gt(as, *view, out.data(), theta, words);
            if (truth > theta) {
              ASSERT_EQ(g, static_cast<int>(truth));
              out.resize(expected.size());
              std::sort(out.begin(), out.end());
              EXPECT_EQ(out, expected);
            } else {
              EXPECT_EQ(g, kTooSmall);
            }
          }
        }
      }
    }
  }
  // Every representation path was exercised and counted.
  EXPECT_GT(counters.bitset_word.load(), 0u);
  EXPECT_GT(counters.bitset_probe.load(), 0u);
  EXPECT_GT(counters.hash.load() + counters.hash_batched.load(), 0u);
  EXPECT_GT(counters.merge.load() + counters.gallop.load(), 0u);
}

TEST(IntersectPolicyDispatch, ShapeHeuristicsPickExpectedKernels) {
  mc::KernelCounters counters;
  mc::IntersectPolicy policy;
  policy.counters = &counters;

  // Large sorted B vs small A -> binary-search probing ("gallop").
  std::vector<VertexId> big_b;
  for (VertexId v = 0; v < 4096; ++v) big_b.push_back(v * 2);
  std::vector<VertexId> small_a = {4, 8, 600};
  NeighborhoodView big_sorted(nullptr, {big_b.data(), big_b.size()});
  policy.size_gt_bool(small_a, big_sorted, 1);
  EXPECT_EQ(counters.gallop.load(), 1u);
  EXPECT_EQ(counters.merge.load(), 0u);

  // Comparable sorted sizes -> merge.
  std::vector<VertexId> mid_b(big_b.begin(), big_b.begin() + 8);
  NeighborhoodView mid_sorted(nullptr, {mid_b.data(), mid_b.size()});
  policy.size_gt_bool(small_a, mid_sorted, 1);
  EXPECT_EQ(counters.merge.load(), 1u);

  // Hash-backed B: batched when |A| >= batch_min, serial below.
  HopscotchSet hs = make_set(big_b);
  NeighborhoodView hashed(&hs, {});
  policy.size_gt_bool(small_a, hashed, 1);
  EXPECT_EQ(counters.hash.load(), 1u);
  std::vector<VertexId> big_a(big_b.begin(), big_b.end());
  policy.size_gt_bool(big_a, hashed, 1);
  EXPECT_EQ(counters.hash_batched.load(), 1u);
}

}  // namespace
}  // namespace lazymc
