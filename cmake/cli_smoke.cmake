# End-to-end smoke test for the `lazymc` CLI driver, run by ctest as
#   cmake -DLAZYMC_BIN=... -DWORK_DIR=... -P cli_smoke.cmake
# Exercises both graph sources (synthetic-suite generator and a DIMACS
# file) and both output modes, and checks the reported omega.

if(NOT LAZYMC_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DLAZYMC_BIN=<lazymc> -DWORK_DIR=<dir> "
                      "-P cli_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_lazymc out_var)
  execute_process(COMMAND "${LAZYMC_BIN}" ${ARGN}
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE error
                  RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "lazymc ${ARGN} exited with ${status}:\n${error}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

function(expect output pattern what)
  if(NOT output MATCHES "${pattern}")
    message(FATAL_ERROR "${what}: expected /${pattern}/ in:\n${output}")
  endif()
endfunction()

# 1. Generator instance, JSON output, full lazymc instrumentation.
run_lazymc(json_out --graph gen:dimacs:tiny --solver lazymc --threads 2
           --time-limit 300 --json)
expect("${json_out}" "\"omega\":[0-9]+" "generator JSON omega")
expect("${json_out}" "\"phases\":" "generator JSON phase times")
expect("${json_out}" "\"search\":" "generator JSON search stats")
expect("${json_out}" "\"lazy_graph\":" "generator JSON lazy-graph stats")

# 2. DIMACS file: K4 on vertices 1-4 plus an isolated vertex 5 (omega 4,
# and the declared n=5 must survive the read).
set(clq "${WORK_DIR}/smoke_k4.clq")
file(WRITE "${clq}" "c smoke instance\np edge 5 6\ne 1 2\ne 1 3\ne 1 4\ne 2 3\ne 2 4\ne 3 4\n")

run_lazymc(text_out --graph "${clq}" --solver lazymc)
expect("${text_out}" "omega: +4" "DIMACS text omega")
expect("${text_out}" "5 vertices" "DIMACS declared vertex count")

# 3. Same file through a baseline solver, JSON output.
run_lazymc(ref_out --graph "${clq}" --solver reference --json)
expect("${ref_out}" "\"omega\":4" "DIMACS reference omega")

message(STATUS "cli_smoke passed")
