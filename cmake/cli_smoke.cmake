# End-to-end smoke test for the `lazymc` CLI driver, run by ctest as
#   cmake -DLAZYMC_BIN=... -DWORK_DIR=... -P cli_smoke.cmake
# Exercises both graph sources (synthetic-suite generator and a DIMACS
# file) and both output modes, and checks the reported omega.

if(NOT LAZYMC_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DLAZYMC_BIN=<lazymc> -DWORK_DIR=<dir> "
                      "-P cli_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_lazymc out_var)
  execute_process(COMMAND "${LAZYMC_BIN}" ${ARGN}
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE error
                  RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "lazymc ${ARGN} exited with ${status}:\n${error}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

function(expect output pattern what)
  if(NOT output MATCHES "${pattern}")
    message(FATAL_ERROR "${what}: expected /${pattern}/ in:\n${output}")
  endif()
endfunction()

# 1. Generator instance, JSON output, full lazymc instrumentation.
run_lazymc(json_out --graph gen:dimacs:tiny --solver lazymc --threads 2
           --time-limit 300 --json)
expect("${json_out}" "\"omega\":[0-9]+" "generator JSON omega")
expect("${json_out}" "\"verification\":\"ok\"" "generator JSON verification")
expect("${json_out}" "\"phases\":" "generator JSON phase times")
expect("${json_out}" "\"search\":" "generator JSON search stats")
expect("${json_out}" "\"lazy_graph\":" "generator JSON lazy-graph stats")
expect("${json_out}" "\"load_seconds\":[0-9]" "generator JSON load time")
expect("${json_out}" "\"load_path\":\"gen\"" "generator JSON load path")

# 2. DIMACS file: K4 on vertices 1-4 plus an isolated vertex 5 (omega 4,
# and the declared n=5 must survive the read).
set(clq "${WORK_DIR}/smoke_k4.clq")
file(WRITE "${clq}" "c smoke instance\np edge 5 6\ne 1 2\ne 1 3\ne 1 4\ne 2 3\ne 2 4\ne 3 4\n")

run_lazymc(text_out --graph "${clq}" --solver lazymc)
expect("${text_out}" "omega: +4" "DIMACS text omega")
expect("${text_out}" "5 vertices" "DIMACS declared vertex count")
expect("${text_out}" "verification: ok" "DIMACS text witness verification")
expect("${text_out}" "loaded in [0-9.]+s via parse" "DIMACS text load path")

# 3. Same file through a baseline solver, JSON output.
run_lazymc(ref_out --graph "${clq}" --solver reference --json)
expect("${ref_out}" "\"omega\":4" "DIMACS reference omega")
expect("${ref_out}" "\"verification\":\"ok\"" "reference witness verification")

# 3b. Binary graph store: convert the DIMACS file and a generator
# instance to .lmg, solve straight off the mmap, and check the reported
# load path plus zero-copy row adoption (no lazily built rows).
if(LAZYMC_CONVERT_BIN)
  set(k4_lmg "${WORK_DIR}/smoke_k4.lmg")
  execute_process(COMMAND "${LAZYMC_CONVERT_BIN}" "${clq}" "${k4_lmg}"
                          --with-rows --verify
                  OUTPUT_VARIABLE conv_out ERROR_VARIABLE conv_err
                  RESULT_VARIABLE conv_status)
  if(NOT conv_status EQUAL 0)
    message(FATAL_ERROR "lazymc-convert exited with ${conv_status}:"
                        "\n${conv_out}\n${conv_err}")
  endif()
  expect("${conv_out}" "verified" "converter round-trip verification")
  run_lazymc(lmg_out --graph "${k4_lmg}" --solver lazymc --json)
  expect("${lmg_out}" "\"omega\":4" "mmap-loaded omega")
  expect("${lmg_out}" "\"load_path\":\"mmap\"" "mmap load path in report")
  expect("${lmg_out}" "\"verification\":\"ok\"" "mmap-loaded verification")

  set(webcc_lmg "${WORK_DIR}/smoke_webcc.lmg")
  execute_process(COMMAND "${LAZYMC_CONVERT_BIN}" gen:webcc:tiny
                          "${webcc_lmg}" --rows-omega 1 --verify
                  RESULT_VARIABLE conv_status)
  if(NOT conv_status EQUAL 0)
    message(FATAL_ERROR "lazymc-convert gen:webcc:tiny exited with "
                        "${conv_status}")
  endif()
  run_lazymc(rows_out --graph "${webcc_lmg}" --solver lazymc --rep bitset
             --json)
  expect("${rows_out}" "\"load_path\":\"mmap\"" "store load path")
  expect("${rows_out}" "\"rows_prebuilt\":[1-9]" "prebuilt rows adopted")
  expect("${rows_out}" "\"bitset_built\":0" "no rows built into the arena")
  run_lazymc(gen_rows_out --graph gen:webcc:tiny --solver lazymc
             --rep bitset --json)
  string(REGEX MATCH "\"omega\":[0-9]+" lmg_omega "${rows_out}")
  string(REGEX MATCH "\"omega\":[0-9]+" gen_omega "${gen_rows_out}")
  if(NOT lmg_omega STREQUAL gen_omega)
    message(FATAL_ERROR "store vs parse omega diverged: ${lmg_omega} vs "
                        "${gen_omega}")
  endif()

  # A truncated store must be an input error (exit 3), not a crash.
  set(trunc_lmg "${WORK_DIR}/smoke_trunc.lmg")
  execute_process(
      COMMAND sh -c "head -c 150 '${k4_lmg}' > '${trunc_lmg}'")
  execute_process(COMMAND "${LAZYMC_BIN}" --graph "${trunc_lmg}"
                  OUTPUT_VARIABLE trunc_out ERROR_VARIABLE trunc_err
                  RESULT_VARIABLE trunc_status)
  if(NOT trunc_status EQUAL 3)
    message(FATAL_ERROR "truncated store should exit 3, got "
                        "${trunc_status}:\n${trunc_out}\n${trunc_err}")
  endif()
endif()

# 4. Batch mode: a manifest plus a repeated --graph stream one JSON object
# per instance (JSON implied, no --json needed).
set(manifest "${WORK_DIR}/smoke_manifest.txt")
file(WRITE "${manifest}" "# smoke manifest\ngen:webcc:tiny\n\n${clq} # trailing comment\n")
run_lazymc(batch_out --manifest "${manifest}" --graph gen:talk:tiny
           --threads 2)
string(REGEX MATCHALL "\"omega\":[0-9]+" batch_omegas "${batch_out}")
list(LENGTH batch_omegas batch_count)
if(NOT batch_count EQUAL 3)
  message(FATAL_ERROR "batch mode: expected 3 JSON objects, got "
                      "${batch_count}:\n${batch_out}")
endif()
expect("${batch_out}" "smoke_k4" "batch mode ran the manifest's file spec")

# 5. A failing instance emits a machine-readable error object and the
# batch-with-failures exit code (5), without aborting the rest of the
# batch.
execute_process(COMMAND "${LAZYMC_BIN}" --graph gen:webcc:tiny
                        --graph /nonexistent.clq
                OUTPUT_VARIABLE fail_out ERROR_VARIABLE fail_err
                RESULT_VARIABLE fail_status)
if(NOT fail_status EQUAL 5)
  message(FATAL_ERROR "batch with a bad instance should exit 5, got "
                      "${fail_status}:\n${fail_out}\n${fail_err}")
endif()
expect("${fail_out}" "\"omega\":" "good instance still solved in failing batch")
expect("${fail_out}" "\"error\":" "bad instance reported as an error object")
expect("${fail_out}" "\"error_kind\":\"input\"" "error object carries its kind")
expect("${fail_out}" "\"attempts\":1" "error object counts attempts")

# 6. Subproblem splitting forced on must not change omega.
run_lazymc(split_out --graph "${clq}" --split on --split-min-cands 2 --json)
expect("${split_out}" "\"omega\":4" "split-on omega")

# 7. Split-work estimation gate must not change omega either.
run_lazymc(work_out --graph "${clq}" --split on --split-min-cands 2
           --split-min-work 1 --json)
expect("${work_out}" "\"omega\":4" "split-min-work omega")

# 8. The scalar kernel tier can always be forced; the report names it.
run_lazymc(kern_out --graph "${clq}" --kernels scalar --json)
expect("${kern_out}" "\"omega\":4" "kernels-scalar omega")
expect("${kern_out}" "\"tier\":\"scalar\"" "forced tier surfaced in report")

# --- exit-code contract (documented in --help and the README) -----------

function(expect_exit expected what)
  execute_process(COMMAND "${LAZYMC_BIN}" ${ARGN}
                  OUTPUT_VARIABLE output ERROR_VARIABLE error
                  RESULT_VARIABLE status)
  if(NOT status EQUAL ${expected})
    message(FATAL_ERROR "${what}: expected exit ${expected}, got ${status}:"
                        "\n${output}\n${error}")
  endif()
  set(last_out "${output}" PARENT_SCOPE)
endfunction()

# 9. 0 = solved; 2 = timed out (best-so-far is still verified); 3 = input
# error (unreadable graph, bad flag).
expect_exit(0 "solved exit code" --graph "${clq}")
expect_exit(2 "timed-out exit code"
            --graph gen:human-2:small --time-limit 0.001 --json)
expect("${last_out}" "\"timed_out\":true" "timeout flagged in report")
expect("${last_out}" "\"verification\":\"ok\"" "timed-out witness verified")
expect_exit(3 "missing-file exit code" --graph /nonexistent.clq)
expect_exit(3 "bad-flag exit code" --graph "${clq}" --no-such-flag)
expect_exit(3 "bad-manifest exit code" --manifest /nonexistent.manifest)

# 10. Crash-safe batch: a journaled sweep records completed instances; a
# --resume re-run skips them (solving only what is missing) and exits 0.
set(journal "${WORK_DIR}/smoke_journal.jsonl")
file(REMOVE "${journal}")
run_lazymc(j1_out --graph gen:webcc:tiny --graph gen:talk:tiny
           --journal "${journal}")
file(READ "${journal}" journal_text)
expect("${journal_text}" "\"spec\":\"gen:webcc:tiny\"" "first spec journaled")
expect("${journal_text}" "\"spec\":\"gen:talk:tiny\"" "second spec journaled")
expect("${journal_text}" "\"status\":\"ok\"" "journal records completion")

# Simulate a sweep killed halfway: keep only the first journal line, then
# resume a three-instance sweep.  Only the two missing instances may run.
string(REGEX REPLACE "\n.*" "\n" half_journal "${journal_text}")
file(WRITE "${journal}" "${half_journal}")
run_lazymc(resume_out --graph gen:webcc:tiny --graph gen:talk:tiny
           --graph "${clq}" --journal "${journal}" --resume)
if(resume_out MATCHES "gen:webcc:tiny")
  message(FATAL_ERROR "resume re-solved a journaled instance:\n${resume_out}")
endif()
string(REGEX MATCHALL "\"omega\":[0-9]+" resume_omegas "${resume_out}")
list(LENGTH resume_omegas resume_count)
if(NOT resume_count EQUAL 2)
  message(FATAL_ERROR "resume: expected 2 solves, got ${resume_count}:"
                      "\n${resume_out}")
endif()
file(READ "${journal}" journal_text)
expect("${journal_text}" "smoke_k4" "resumed sweep journaled the file spec")

# --resume without --journal is an input error.
expect_exit(3 "resume-without-journal exit code" --graph "${clq}" --resume)

# 11. SIGINT during a long solve: the driver reports best-so-far with
# "interrupted": true and exits with the documented code (6).  MCE on the
# medium gene network reliably runs far longer than the kill delay.
if(UNIX)
  execute_process(
      COMMAND sh -c "'${LAZYMC_BIN}' --solver mce --graph gen:human-2:medium \
--json > '${WORK_DIR}/interrupt.json' & pid=$!; sleep 1; \
kill -INT $pid; wait $pid; exit $?"
      RESULT_VARIABLE int_status)
  if(NOT int_status EQUAL 6)
    message(FATAL_ERROR "interrupted solve: expected exit 6, got "
                        "${int_status}")
  endif()
  file(READ "${WORK_DIR}/interrupt.json" int_out)
  expect("${int_out}" "\"interrupted\":true" "interrupt flagged in report")
  expect("${int_out}" "\"omega\":[1-9]" "interrupted solve kept best-so-far")
endif()

message(STATUS "cli_smoke passed")
