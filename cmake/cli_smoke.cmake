# End-to-end smoke test for the `lazymc` CLI driver, run by ctest as
#   cmake -DLAZYMC_BIN=... -DWORK_DIR=... -P cli_smoke.cmake
# Exercises both graph sources (synthetic-suite generator and a DIMACS
# file) and both output modes, and checks the reported omega.

if(NOT LAZYMC_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DLAZYMC_BIN=<lazymc> -DWORK_DIR=<dir> "
                      "-P cli_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_lazymc out_var)
  execute_process(COMMAND "${LAZYMC_BIN}" ${ARGN}
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE error
                  RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "lazymc ${ARGN} exited with ${status}:\n${error}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

function(expect output pattern what)
  if(NOT output MATCHES "${pattern}")
    message(FATAL_ERROR "${what}: expected /${pattern}/ in:\n${output}")
  endif()
endfunction()

# 1. Generator instance, JSON output, full lazymc instrumentation.
run_lazymc(json_out --graph gen:dimacs:tiny --solver lazymc --threads 2
           --time-limit 300 --json)
expect("${json_out}" "\"omega\":[0-9]+" "generator JSON omega")
expect("${json_out}" "\"verification\":\"ok\"" "generator JSON verification")
expect("${json_out}" "\"phases\":" "generator JSON phase times")
expect("${json_out}" "\"search\":" "generator JSON search stats")
expect("${json_out}" "\"lazy_graph\":" "generator JSON lazy-graph stats")

# 2. DIMACS file: K4 on vertices 1-4 plus an isolated vertex 5 (omega 4,
# and the declared n=5 must survive the read).
set(clq "${WORK_DIR}/smoke_k4.clq")
file(WRITE "${clq}" "c smoke instance\np edge 5 6\ne 1 2\ne 1 3\ne 1 4\ne 2 3\ne 2 4\ne 3 4\n")

run_lazymc(text_out --graph "${clq}" --solver lazymc)
expect("${text_out}" "omega: +4" "DIMACS text omega")
expect("${text_out}" "5 vertices" "DIMACS declared vertex count")
expect("${text_out}" "verification: ok" "DIMACS text witness verification")

# 3. Same file through a baseline solver, JSON output.
run_lazymc(ref_out --graph "${clq}" --solver reference --json)
expect("${ref_out}" "\"omega\":4" "DIMACS reference omega")
expect("${ref_out}" "\"verification\":\"ok\"" "reference witness verification")

# 4. Batch mode: a manifest plus a repeated --graph stream one JSON object
# per instance (JSON implied, no --json needed).
set(manifest "${WORK_DIR}/smoke_manifest.txt")
file(WRITE "${manifest}" "# smoke manifest\ngen:webcc:tiny\n\n${clq} # trailing comment\n")
run_lazymc(batch_out --manifest "${manifest}" --graph gen:talk:tiny
           --threads 2)
string(REGEX MATCHALL "\"omega\":[0-9]+" batch_omegas "${batch_out}")
list(LENGTH batch_omegas batch_count)
if(NOT batch_count EQUAL 3)
  message(FATAL_ERROR "batch mode: expected 3 JSON objects, got "
                      "${batch_count}:\n${batch_out}")
endif()
expect("${batch_out}" "smoke_k4" "batch mode ran the manifest's file spec")

# 5. A failing instance emits an error object and a nonzero exit, without
# aborting the rest of the batch.
execute_process(COMMAND "${LAZYMC_BIN}" --graph gen:webcc:tiny
                        --graph /nonexistent.clq
                OUTPUT_VARIABLE fail_out ERROR_VARIABLE fail_err
                RESULT_VARIABLE fail_status)
if(fail_status EQUAL 0)
  message(FATAL_ERROR "batch with a bad instance should exit nonzero")
endif()
expect("${fail_out}" "\"omega\":" "good instance still solved in failing batch")
expect("${fail_out}" "\"error\":" "bad instance reported as an error object")

# 6. Subproblem splitting forced on must not change omega.
run_lazymc(split_out --graph "${clq}" --split on --split-min-cands 2 --json)
expect("${split_out}" "\"omega\":4" "split-on omega")

# 7. Split-work estimation gate must not change omega either.
run_lazymc(work_out --graph "${clq}" --split on --split-min-cands 2
           --split-min-work 1 --json)
expect("${work_out}" "\"omega\":4" "split-min-work omega")

# 8. The scalar kernel tier can always be forced; the report names it.
run_lazymc(kern_out --graph "${clq}" --kernels scalar --json)
expect("${kern_out}" "\"omega\":4" "kernels-scalar omega")
expect("${kern_out}" "\"tier\":\"scalar\"" "forced tier surfaced in report")

message(STATUS "cli_smoke passed")
