# Negative-compile check for the thread-safety annotations, run by ctest
# (Clang only) as
#   cmake -DCXX=<clang++> -DSRC=<tsa_misuse.cpp> -DINC=<src dir>
#         -P tsa_negative_compile.cmake
#
# Pass 1 (control): the probe without its misuse block must compile, so a
# failure in pass 2 can only come from the planted violations.
# Pass 2: with -DLAZYMC_TSA_MISUSE the compiler must REJECT the file with
# thread-safety diagnostics — proving the annotation macros expand to real
# attributes Clang enforces, not inert tokens.

if(NOT CXX OR NOT SRC OR NOT INC)
  message(FATAL_ERROR "usage: cmake -DCXX=... -DSRC=... -DINC=... "
                      "-P tsa_negative_compile.cmake")
endif()

set(flags -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    "-I${INC}")

execute_process(COMMAND "${CXX}" ${flags} "${SRC}"
                RESULT_VARIABLE control_status
                ERROR_VARIABLE control_err)
if(NOT control_status EQUAL 0)
  message(FATAL_ERROR "control compile of ${SRC} failed — the harness is "
                      "broken, not the annotations:\n${control_err}")
endif()

execute_process(COMMAND "${CXX}" ${flags} -DLAZYMC_TSA_MISUSE "${SRC}"
                RESULT_VARIABLE misuse_status
                ERROR_VARIABLE misuse_err)
if(misuse_status EQUAL 0)
  message(FATAL_ERROR "misuse compile of ${SRC} succeeded — the "
                      "thread-safety annotations are not rejecting "
                      "guarded-member access without the lock")
endif()
if(NOT misuse_err MATCHES "-Wthread-safety")
  message(FATAL_ERROR "misuse compile failed for the wrong reason "
                      "(expected thread-safety diagnostics):\n${misuse_err}")
endif()

message(STATUS "tsa_negative_compile passed")
