#include "daemon/watchdog.hpp"

#include <chrono>

#include "daemon/broker.hpp"
#include "support/control.hpp"

namespace lazymc::daemon {

Watchdog::Watchdog(RequestBroker& broker, WatchdogConfig config)
    : broker_(broker), config_(config) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::loop() {
  const auto interval = std::chrono::duration<double>(
      config_.interval_seconds > 0 ? config_.interval_seconds : 0.25);
  for (;;) {
    {
      MutexLock lock(mutex_);
      // A spurious wakeup just means an early scan — no predicate loop
      // needed around the timed wait.
      if (!stopping_) cv_.wait_for(lock.native(), interval);
      if (stopping_) return;
    }

    for (const auto& ticket : broker_.live()) {
      const SolveControl& control = ticket->control();

      // Runaway: past deadline + grace and not yet cancelled — force the
      // cancel so every cooperative stop check trips on its fast path.
      if (!control.cancelled() &&
          control.elapsed() > control.time_limit() + config_.grace_seconds) {
        control.cancel(StopCause::kDeadline);
        cancels_.fetch_add(1, std::memory_order_relaxed);
      }

      // Stall: cancelled, yet the heartbeat (slow-path check counter) has
      // stopped advancing — the workers are wedged somewhere that never
      // consults the control.  Report once per ticket.
      if (control.cancelled() && !ticket->done()) {
        const std::uint64_t beat = control.heartbeats();
        if (beat != ticket->watchdog_last_heartbeat) {
          ticket->watchdog_last_heartbeat = beat;
          ticket->watchdog_flat_scans = 0;
        } else if (!ticket->watchdog_stall_reported &&
                   ++ticket->watchdog_flat_scans >= config_.stall_scans) {
          ticket->watchdog_stall_reported = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

}  // namespace lazymc::daemon
