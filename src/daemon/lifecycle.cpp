#include "daemon/lifecycle.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <fstream>
#include <string>

#include "support/control.hpp"
#include "support/error.hpp"

namespace lazymc::daemon {
namespace {

void on_terminate(int) { interrupt::request(); }
void on_hup(int) { signals::g_hup.store(true, std::memory_order_relaxed); }

/// Reads a pid from `path`; 0 when the file is missing, unreadable, or
/// holds no parseable pid (treated as stale).
pid_t read_pidfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  long pid = 0;
  in >> pid;
  if (!in || pid <= 0) return 0;
  return static_cast<pid_t>(pid);
}

}  // namespace

void install_daemon_signal_handlers() {
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);
  std::signal(SIGHUP, on_hup);
  std::signal(SIGPIPE, SIG_IGN);
}

Pidfile::Pidfile(const std::string& path, const std::string& stale_socket)
    : path_(path) {
  // Open without truncating (the file may belong to a live instance
  // until the flock says otherwise), then race for the exclusive lock.
  // The lock is held for the daemon's lifetime, so of two simultaneously
  // started daemons exactly one proceeds past this point — the loser can
  // never pass a stale check and unlink the winner's socket.
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error(ErrorKind::kInput, "cannot open pidfile '" + path_ + "'",
                errno);
  }
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    const int saved_errno = errno;
    const pid_t holder = read_pidfile(path_);
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorKind::kInput,
                "lazymcd already running (pid " + std::to_string(holder) +
                    ", pidfile '" + path_ + "')",
                saved_errno == EWOULDBLOCK ? 0 : saved_errno);
  }

  // Stale check, re-run under the lock: any pid recorded here belongs to
  // an instance that no longer holds the lock.  Probe it anyway in case
  // it predates the lock scheme — kill(pid, 0) delivers no signal; ESRCH
  // means gone, EPERM means alive under another uid (still a live
  // owner).
  const pid_t existing = read_pidfile(path_);
  if (existing > 0 && existing != ::getpid()) {
    if (::kill(existing, 0) == 0 || errno == EPERM) {
      ::close(fd_);
      fd_ = -1;
      throw Error(ErrorKind::kInput,
                  "lazymcd already running (pid " + std::to_string(existing) +
                      ", pidfile '" + path_ + "')");
    }
    // The previous instance died without cleanup (crash, kill -9).
    // Reclaim its socket so the restart's bind() proceeds; we overwrite
    // the pidfile in place below.
    if (!stale_socket.empty()) ::unlink(stale_socket.c_str());
    recovered_stale_ = true;
  }

  const std::string pid_line = std::to_string(::getpid()) + "\n";
  bool written = ::ftruncate(fd_, 0) == 0 && ::lseek(fd_, 0, SEEK_SET) == 0;
  if (written) {
    std::size_t off = 0;
    while (off < pid_line.size()) {
      const ::ssize_t n =
          ::write(fd_, pid_line.data() + off, pid_line.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        written = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
  }
  if (!written) {
    const int saved_errno = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorKind::kInput, "cannot write pidfile '" + path_ + "'",
                saved_errno);
  }
}

Pidfile::~Pidfile() {
  ::unlink(path_.c_str());
  if (fd_ >= 0) ::close(fd_);  // releases the flock last
}

}  // namespace lazymc::daemon
