#include "daemon/lifecycle.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <fstream>
#include <string>

#include "support/control.hpp"
#include "support/error.hpp"

namespace lazymc::daemon {
namespace {

void on_terminate(int) { interrupt::request(); }
void on_hup(int) { signals::g_hup.store(true, std::memory_order_relaxed); }

/// Reads a pid from `path`; 0 when the file is missing, unreadable, or
/// holds no parseable pid (treated as stale).
pid_t read_pidfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  long pid = 0;
  in >> pid;
  if (!in || pid <= 0) return 0;
  return static_cast<pid_t>(pid);
}

}  // namespace

void install_daemon_signal_handlers() {
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);
  std::signal(SIGHUP, on_hup);
  std::signal(SIGPIPE, SIG_IGN);
}

Pidfile::Pidfile(const std::string& path, const std::string& stale_socket)
    : path_(path) {
  const pid_t existing = read_pidfile(path_);
  if (existing > 0) {
    // kill(pid, 0): existence probe, no signal delivered.  ESRCH means
    // the recorded instance is gone; EPERM means it exists under another
    // uid — still a live owner, refuse.
    if (::kill(existing, 0) == 0 || errno == EPERM) {
      throw Error(ErrorKind::kInput,
                  "lazymcd already running (pid " + std::to_string(existing) +
                      ", pidfile '" + path_ + "')");
    }
    // Stale: the previous instance died without cleanup (crash, kill
    // -9).  Reclaim its pidfile and socket so the restart proceeds.
    ::unlink(path_.c_str());
    if (!stale_socket.empty()) ::unlink(stale_socket.c_str());
    recovered_stale_ = true;
  }

  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw Error(ErrorKind::kInput, "cannot write pidfile '" + path_ + "'",
                errno);
  }
  out << ::getpid() << '\n';
  out.flush();
  if (!out) {
    throw Error(ErrorKind::kInput, "short write to pidfile '" + path_ + "'");
  }
}

Pidfile::~Pidfile() { ::unlink(path_.c_str()); }

}  // namespace lazymc::daemon
