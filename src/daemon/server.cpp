#include "daemon/server.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <iostream>
#include <list>
#include <sstream>
#include <thread>
#include <utility>

#include "cli/report.hpp"
#include "daemon/lifecycle.hpp"
#include "daemon/protocol.hpp"
#include "mc/lazymc.hpp"
#include "support/control.hpp"
#include "support/faultinject.hpp"
#include "support/json.hpp"
#include "support/jsonmini.hpp"
#include "support/parallel.hpp"
#include "support/socket.hpp"
#include "support/timer.hpp"

namespace lazymc::daemon {
namespace {

/// Mirrors the executor's catch-site policy for paths outside the broker
/// (graph loads, connection dispatch).
Error classify_current_exception() {
  try {
    throw;
  } catch (const Error& e) {
    return e;
  } catch (const std::bad_alloc&) {
    return Error(ErrorKind::kResource, "out of memory");
  } catch (const std::exception& e) {
    return Error(ErrorKind::kInternal, e.what());
  } catch (...) {
    return Error(ErrorKind::kInternal, "unknown exception");
  }
}

std::string chomp(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

}  // namespace

std::shared_ptr<const cli::LoadedGraph> GraphStore::get(
    const std::string& spec) {
  // The lock only covers the map: the first requester publishes a future
  // and parses outside the lock, so only requests for the *same* graph
  // wait on the load while everything else (cached gets, size()) flows.
  std::promise<std::shared_ptr<const cli::LoadedGraph>> promise;
  Future future;
  bool loader = false;
  {
    MutexLock lock(mutex_);
    auto it = graphs_.find(spec);
    if (it != graphs_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      graphs_.emplace(spec, future);
      loader = true;
    }
  }
  if (!loader) return future.get();  // rethrows the loader's Error

  Error failure(ErrorKind::kInternal, "");
  try {
    auto loaded =
        std::make_shared<const cli::LoadedGraph>(cli::load_graph(spec));
    promise.set_value(loaded);
    return loaded;
  } catch (const Error& e) {
    failure = e;
  } catch (const std::bad_alloc&) {
    failure = Error(ErrorKind::kResource, "out of memory loading '" + spec + "'");
  } catch (const std::exception& e) {
    failure = Error(ErrorKind::kInput, e.what(), errno);
  }
  {
    // Forget the failed load first so a request arriving after the
    // waiters were failed starts a fresh attempt.
    MutexLock lock(mutex_);
    graphs_.erase(spec);
  }
  promise.set_exception(std::make_exception_ptr(failure));
  throw failure;
}

std::size_t GraphStore::size() const {
  MutexLock lock(mutex_);
  std::size_t ready = 0;
  for (const auto& entry : graphs_) {
    // Entries are in-flight or successfully loaded (failures are erased
    // before their waiters are failed), so ready means loaded.
    if (entry.second.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++ready;
    }
  }
  return ready;
}

std::vector<std::pair<std::string, std::shared_ptr<const cli::LoadedGraph>>>
GraphStore::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::shared_ptr<const cli::LoadedGraph>>>
      out;
  out.reserve(graphs_.size());
  for (const auto& entry : graphs_) {
    if (entry.second.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      out.emplace_back(entry.first, entry.second.get());
    }
  }
  return out;
}

Server::Server(ServerConfig config) : config_(std::move(config)) {}

namespace {

/// All mutable daemon state, scoped to one run().
struct Daemon {
  explicit Daemon(const ServerConfig& server_config)
      : config(server_config), journal(server_config.journal_path) {}

  const ServerConfig& config;
  GraphStore store;
  cli::Journal journal;
  Mutex journal_mutex;  ///< record()/reopen() from executors + accept loop

  std::unique_ptr<RequestBroker> broker;
  std::unique_ptr<Watchdog> watchdog;

  WallTimer uptime;
  bool recovered_stale = false;
  std::size_t journal_recovered = 0;

  std::atomic<bool> drain_requested{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> closing_connections{false};

  /// Cumulative hybrid-row build totals across completed solves (status
  /// verb reporting; relaxed — monitoring, not coordination).
  std::atomic<std::uint64_t> hybrid_rows_array{0};
  std::atomic<std::uint64_t> hybrid_rows_bitset{0};
  std::atomic<std::uint64_t> hybrid_rows_run{0};
  std::atomic<std::uint64_t> hybrid_row_bytes{0};

  /// One ticket -> one response line (the broker's SolveFn).
  std::string solve_ticket(RequestTicket& ticket) {
    const std::shared_ptr<const cli::LoadedGraph> loaded =
        store.get(ticket.graph());

    cli::RunReport report;
    report.request_id = ticket.client_id().empty()
                            ? std::to_string(ticket.id())
                            : ticket.client_id();
    report.graph = loaded->description;
    report.solver = "lazymc";
    report.threads = num_threads();
    report.num_vertices = loaded->graph.num_vertices();
    report.num_edges = loaded->graph.num_edges();
    report.load_seconds = loaded->load_seconds;
    report.load_path = loaded->load_path;

    mc::LazyMCConfig mc_config;
    // Binary-store graphs carry their preprocessing; the solve consumes
    // the stored order/coreness and adopts the mmap'ed rows zero-copy
    // when the zone is compatible (lifetime: `loaded` outlives the solve).
    mc::PrebuiltGraph prebuilt;
    if (loaded->store && loaded->store->has_order()) {
      prebuilt.order = &loaded->store->order();
      prebuilt.coreness = &loaded->store->coreness();
      prebuilt.degeneracy = loaded->store->degeneracy();
      prebuilt.rows = loaded->store->rows();
      mc_config.prebuilt = &prebuilt;
    }
    // The per-request isolation seam: this solve observes (and is
    // cancellable through) the ticket's control only.
    mc_config.control = &ticket.control();
    // Per-request representation choice (validated at parse time; empty
    // keeps the config default, auto).
    const std::string& rep = ticket.rep();
    if (rep == "hash") {
      mc_config.neighborhood_rep = NeighborhoodRep::kHash;
    } else if (rep == "sorted") {
      mc_config.neighborhood_rep = NeighborhoodRep::kSorted;
    } else if (rep == "bitset") {
      mc_config.neighborhood_rep = NeighborhoodRep::kBitset;
    } else if (rep == "hybrid") {
      mc_config.neighborhood_rep = NeighborhoodRep::kHybrid;
    }

    WallTimer timer;
    mc::LazyMCResult result = mc::lazy_mc(loaded->graph, mc_config);
    report.solve_seconds = timer.elapsed();

    report.clique = std::move(result.clique);
    report.omega = result.omega;
    report.has_lazymc = true;
    result.clique = report.clique;  // keep the embedded copy coherent
    report.lazymc = std::move(result);

    const StopCause cause = ticket.control().stop_cause();
    report.interrupted = cause == StopCause::kInterrupted ||
                         cause == StopCause::kCancelled;
    report.timed_out = !report.interrupted &&
                       (cause == StopCause::kDeadline || report.lazymc.timed_out);
    report.request_status = report.interrupted ? "interrupted"
                            : report.timed_out ? "timeout"
                                               : "ok";

    // Same independent witness re-check the CLI performs: even a
    // best-so-far (interrupted/timeout) clique must verify against the
    // input graph before it is sent anywhere.
    const bool ok =
        report.clique.size() == static_cast<std::size_t>(report.omega) &&
        is_clique(loaded->graph, report.clique);
    report.verification = ok ? "ok" : "failed";
    report.fault_sites = faults::snapshot();
    if (!ok) {
      throw Error(ErrorKind::kInternal,
                  "result verification failed for request " +
                      report.request_id + " on " + report.graph);
    }

    const LazyGraph::Stats& lg = report.lazymc.lazy_graph;
    hybrid_rows_array.fetch_add(lg.hybrid_rows_array,
                                std::memory_order_relaxed);
    hybrid_rows_bitset.fetch_add(lg.hybrid_rows_bitset,
                                 std::memory_order_relaxed);
    hybrid_rows_run.fetch_add(lg.hybrid_rows_run, std::memory_order_relaxed);
    hybrid_row_bytes.fetch_add(lg.hybrid_array_bytes + lg.hybrid_bitset_bytes +
                                   lg.hybrid_run_bytes,
                               std::memory_order_relaxed);

    {
      MutexLock lock(journal_mutex);
      journal.record(ticket.graph(), report.request_status, report.omega);
    }

    std::ostringstream buf;
    cli::render_json(report, buf);
    return chomp(buf.str());
  }

  std::string status_response() {
    const RequestBroker::Counters c = broker->counters();
    std::ostringstream buf;
    JsonWriter w(buf);
    w.open();
    w.field("ok", true);
    w.field("pid", static_cast<std::int64_t>(::getpid()));
    w.field("uptime_seconds", uptime.elapsed());
    w.field("threads", num_threads());
    w.field("executors", config.executors);
    w.field("draining", broker->draining());
    w.field("graphs", store.size());
    // Per-graph load provenance: how each resident graph materialized
    // ("parse"/"mmap"/"gen") and what the load cost, so operators can
    // see at a glance which instances would benefit from conversion to
    // the binary store.
    w.open_array("graph_store");
    for (const auto& [spec, g] : store.snapshot()) {
      w.open();
      w.field("spec", spec);
      w.field("description", g->description);
      w.field("load_seconds", g->load_seconds);
      w.field("load_path", g->load_path);
      w.field("num_vertices", g->graph.num_vertices());
      w.field("num_edges", g->graph.num_edges());
      w.close();
    }
    w.close_array();
    w.open("requests");
    w.field("admitted", c.admitted);
    w.field("completed", c.completed);
    w.field("failed", c.failed);
    w.field("shed", c.shed);
    w.field("queued", c.queued);
    w.field("running", c.running);
    w.field("in_flight", c.in_flight());
    w.close();
    w.open("watchdog");
    w.field("cancels", watchdog->cancels());
    w.field("stalls", watchdog->stalls());
    w.close();
    w.open("hybrid_rows");
    w.field("array", hybrid_rows_array.load(std::memory_order_relaxed));
    w.field("bitset", hybrid_rows_bitset.load(std::memory_order_relaxed));
    w.field("run", hybrid_rows_run.load(std::memory_order_relaxed));
    w.field("bytes", hybrid_row_bytes.load(std::memory_order_relaxed));
    w.close();
    w.field("recovered_stale", recovered_stale);
    w.field("journal_recovered", journal_recovered);
    w.close();
    return buf.str();
  }

  /// Dispatches one parsed request to its response line.
  std::string dispatch(const Request& request) {
    switch (request.verb) {
      case Verb::kLoad: {
        const auto loaded = store.get(request.graph);
        std::ostringstream detail;
        detail << loaded->description << ": " << loaded->graph.num_vertices()
               << " vertices, " << loaded->graph.num_edges() << " edges, via "
               << loaded->load_path;
        if (!request.rep.empty()) detail << ", rep=" << request.rep;
        return ack_response("load", detail.str());
      }
      case Verb::kSolve: {
        // Blocks this connection thread until an executor completes the
        // ticket; other connections (and other requests on *their*
        // threads) keep flowing.
        auto ticket = broker->submit(request.graph, request.time_limit,
                                     request.id, request.rep);
        return ticket->wait();
      }
      case Verb::kStatus:
        return status_response();
      case Verb::kDrain:
        broker->drain(/*cancel_in_flight=*/false);
        drain_requested.store(true, std::memory_order_relaxed);
        return ack_response("drain",
                            "draining: new requests shed, in-flight "
                            "requests finish, then the daemon exits");
      case Verb::kStop:
        broker->drain(/*cancel_in_flight=*/true);
        stop_requested.store(true, std::memory_order_relaxed);
        return ack_response("stop",
                            "stopping: in-flight requests return verified "
                            "best-so-far results, then the daemon exits");
    }
    throw Error(ErrorKind::kInternal, "unhandled verb");
  }

  /// One client connection, line at a time.  A request error answers the
  /// request and keeps the connection; an I/O error (or EOF, or daemon
  /// shutdown) ends it.
  void serve_connection(net::Fd fd) {
    net::LineChannel channel(fd.get());
    std::string line;
    for (;;) {
      net::LineChannel::ReadStatus status;
      try {
        status = channel.read_line(line, /*timeout_ms=*/250);
      } catch (...) {
        return;  // connection-level read failure: close quietly
      }
      if (status == net::LineChannel::ReadStatus::kEof) return;
      if (status == net::LineChannel::ReadStatus::kTimeout) {
        if (closing_connections.load(std::memory_order_relaxed)) return;
        continue;
      }
      if (line.empty()) continue;

      std::string response;
      try {
        // Injected connection failure (fault builds): this connection's
        // request fails structurally; the daemon and its peers carry on.
        LAZYMC_FAULT_THROW("conn.io");
        response = dispatch(parse_request(line));
      } catch (...) {
        const Error err = classify_current_exception();
        std::string id;
        try {
          json_get_string(line, "id", id);  // best effort for the envelope
        } catch (...) {
          // Nothing parsed from a hostile line may escape this thread:
          // an uncaught exception here would std::terminate the daemon.
          id.clear();
        }
        response = error_response(id, err.kind(), err.what(),
                                  err.sys_errno());
      }
      try {
        channel.write_line(response);
      } catch (...) {
        return;  // peer went away mid-response
      }
    }
  }
};

}  // namespace

int Server::run() {
  install_daemon_signal_handlers();

  Daemon d(config_);

  // Supervised startup: claim the pidfile (recovering a crashed
  // instance's leftovers), then the socket.
  Pidfile pidfile(config_.pidfile_path, config_.socket_path);
  d.recovered_stale = pidfile.recovered_stale();

  if (d.journal.enabled()) {
    try {
      d.journal_recovered = d.journal.completed().size();
    } catch (const std::exception& e) {
      // A torn journal (power loss mid-line) must not block restart, no
      // matter how it is corrupted; the journal is an audit trail, not a
      // correctness dependency.
      std::cerr << "lazymcd: ignoring unreadable journal: " << e.what()
                << "\n";
    }
  }

  net::UnixListener listener(config_.socket_path, /*backlog=*/16);

  set_num_threads(config_.threads);
  BrokerConfig broker_config;
  broker_config.executors = config_.executors;
  broker_config.max_queue = config_.max_queue;
  broker_config.default_time_limit = config_.default_time_limit;
  broker_config.max_time_limit = config_.max_time_limit;
  d.broker = std::make_unique<RequestBroker>(
      broker_config, [&d](RequestTicket& t) { return d.solve_ticket(t); });
  d.watchdog = std::make_unique<Watchdog>(*d.broker, config_.watchdog);

  std::cerr << "lazymcd: serving on " << config_.socket_path << " (pid "
            << ::getpid() << ", " << num_threads() << " solver threads, "
            << config_.executors << " executors)"
            << (d.recovered_stale ? ", recovered stale instance" : "")
            << "\n";

  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::list<std::unique_ptr<Connection>> connections;
  std::size_t active = 0;

  const auto reap = [&connections, &active]() {
    for (auto it = connections.begin(); it != connections.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = connections.erase(it);
        --active;
      } else {
        ++it;
      }
    }
  };

  for (;;) {
    if (interrupt::requested() &&
        !d.stop_requested.load(std::memory_order_relaxed)) {
      // SIGTERM/SIGINT: the global flag already cancels every in-flight
      // control (default interrupt source); drain the broker so the
      // accounting and admission agree with the signal.
      d.broker->drain(/*cancel_in_flight=*/true);
      d.stop_requested.store(true, std::memory_order_relaxed);
    }
    if (d.stop_requested.load(std::memory_order_relaxed)) break;
    if (d.drain_requested.load(std::memory_order_relaxed) &&
        d.broker->counters().in_flight() == 0) {
      break;
    }
    if (signals::consume_hup()) {
      MutexLock lock(d.journal_mutex);
      d.journal.reopen();
      std::cerr << "lazymcd: SIGHUP — journal reopened\n";
    }

    reap();

    net::Fd client = listener.accept(/*timeout_ms=*/200);
    if (!client.valid()) continue;

    if (active >= config_.max_connections) {
      // Connection-level load shedding: answer structurally, then close.
      try {
        net::LineChannel channel(client.get());
        channel.write_line(error_response(
            "", ErrorKind::kOverloaded,
            "connection limit reached (" +
                std::to_string(config_.max_connections) +
                "); back off and retry"));
      } catch (...) {
      }
      continue;
    }

    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    connection->thread = std::thread(
        [&d, raw](net::Fd fd) {
          d.serve_connection(std::move(fd));
          raw->done.store(true, std::memory_order_release);
        },
        std::move(client));
    connections.push_back(std::move(connection));
    ++active;
  }

  // Shutdown: every admitted ticket completes (cancelled solves unwind
  // to best-so-far responses), connections observe the closing flag at
  // their next read timeout, then supervision and the broker wind down.
  d.broker->wait_idle();
  d.closing_connections.store(true, std::memory_order_relaxed);
  for (auto& connection : connections) connection->thread.join();
  connections.clear();
  d.watchdog.reset();
  d.broker.reset();

  std::cerr << "lazymcd: exiting ("
            << (d.stop_requested.load(std::memory_order_relaxed) ? "stop"
                                                                 : "drain")
            << ")\n";
  return 0;
}

}  // namespace lazymc::daemon
