// Watchdog: the daemon's supervision thread.
//
// Cooperative cancellation only works when the cancellee keeps checking
// its SolveControl.  The watchdog covers the two failure modes that break
// that assumption:
//
//  * runaway solves — a request past its deadline whose workers have not
//    yet observed it (or whose solve entered a phase with sparse stop
//    checks).  After a grace period beyond the deadline the watchdog
//    cancels the control with StopCause::kDeadline, which every stop
//    check in the solver observes on its fast path.
//  * stalled solves — a cancelled request whose heartbeat counter (bumped
//    by SolveControl's slow-path checks) stops advancing between scans:
//    the workers are wedged somewhere non-cooperative.  The watchdog
//    cannot safely kill threads, so it reports the stall (once per
//    ticket, counted for the health endpoint) and leaves the executor
//    parked — bounded-admission keeps the rest of the daemon serving.
//
// One watchdog thread scans RequestBroker::live() at a fixed interval;
// per-ticket scratch (last seen heartbeat, stall-reported latch) lives on
// the ticket and is touched only by this thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <thread>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace lazymc::daemon {

class RequestBroker;

struct WatchdogConfig {
  /// Scan period (seconds).
  double interval_seconds = 0.25;
  /// Slack beyond a request's deadline before the watchdog force-cancels
  /// (covers benign scheduling delay between deadline and the next
  /// cooperative check).
  double grace_seconds = 1.0;
  /// Scans a cancelled-but-still-running ticket may go without heartbeat
  /// progress before it is declared stalled.
  std::uint64_t stall_scans = 8;
};

class Watchdog {
 public:
  Watchdog(RequestBroker& broker, WatchdogConfig config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Deadline force-cancels issued so far.
  std::uint64_t cancels() const {
    return cancels_.load(std::memory_order_relaxed);
  }
  /// Stalled (cancelled, heartbeat-flat) tickets detected so far.
  std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  RequestBroker& broker_;
  const WatchdogConfig config_;

  std::atomic<std::uint64_t> cancels_{0};
  std::atomic<std::uint64_t> stalls_{0};

  Mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ LAZYMC_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace lazymc::daemon
