#include "daemon/protocol.hpp"

#include <sstream>

#include "support/json.hpp"
#include "support/jsonmini.hpp"

namespace lazymc::daemon {

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kLoad: return "load";
    case Verb::kSolve: return "solve";
    case Verb::kStatus: return "status";
    case Verb::kDrain: return "drain";
    case Verb::kStop: return "stop";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  Request request;
  std::string verb;
  if (!json_get_string(line, "verb", verb)) {
    throw Error(ErrorKind::kInput,
                "request has no \"verb\" field: " + line);
  }
  if (verb == "load") {
    request.verb = Verb::kLoad;
  } else if (verb == "solve") {
    request.verb = Verb::kSolve;
  } else if (verb == "status" || verb == "health") {
    request.verb = Verb::kStatus;
  } else if (verb == "drain") {
    request.verb = Verb::kDrain;
  } else if (verb == "stop") {
    request.verb = Verb::kStop;
  } else {
    throw Error(ErrorKind::kInput, "unknown verb '" + verb + "'");
  }
  json_get_string(line, "graph", request.graph);
  json_get_string(line, "id", request.id);
  if (json_get_string(line, "rep", request.rep) && !request.rep.empty() &&
      request.rep != "auto" && request.rep != "hash" &&
      request.rep != "sorted" && request.rep != "bitset" &&
      request.rep != "hybrid") {
    throw Error(ErrorKind::kInput,
                "unknown rep '" + request.rep +
                    "' (expected auto|hash|sorted|bitset|hybrid)");
  }
  double limit = 0;
  if (json_get_number(line, "time_limit", limit)) {
    if (!(limit >= 0)) {
      throw Error(ErrorKind::kInput,
                  "time_limit must be non-negative, got " +
                      std::to_string(limit));
    }
    request.time_limit = limit;
  }
  if ((request.verb == Verb::kLoad || request.verb == Verb::kSolve) &&
      request.graph.empty()) {
    throw Error(ErrorKind::kInput,
                std::string(verb_name(request.verb)) +
                    " request needs a \"graph\" field");
  }
  return request;
}

std::string format_request(const Request& request) {
  std::ostringstream buf;
  JsonWriter w(buf);
  w.open();
  w.field("verb", verb_name(request.verb));
  if (!request.graph.empty()) w.field("graph", request.graph);
  if (!request.rep.empty()) w.field("rep", request.rep);
  if (request.time_limit > 0) w.field("time_limit", request.time_limit);
  if (!request.id.empty()) w.field("id", request.id);
  w.close();
  return buf.str();
}

std::string error_response(const std::string& request_id, ErrorKind kind,
                           const std::string& message, int sys_errno) {
  std::ostringstream buf;
  JsonWriter w(buf);
  w.open();
  w.field("ok", false);
  if (!request_id.empty()) w.field("request_id", request_id);
  w.field("error", message);
  w.field("error_kind", error_kind_name(kind));
  if (sys_errno != 0) w.field("errno", sys_errno);
  w.close();
  return buf.str();
}

std::string ack_response(const std::string& verb, const std::string& detail) {
  std::ostringstream buf;
  JsonWriter w(buf);
  w.open();
  w.field("ok", true);
  w.field("verb", verb);
  if (!detail.empty()) w.field("detail", detail);
  w.close();
  return buf.str();
}

}  // namespace lazymc::daemon
