// lazymcd — resident LazyMC clique service.
//
// Loads graphs once, then multiplexes concurrent solve requests onto the
// shared solver pool with per-request isolation, bounded admission, a
// deadline/stall watchdog, and a supervised drain-then-exit lifecycle.
// See src/daemon/server.hpp for the architecture and protocol.hpp for
// the wire format; `lazymc-ctl` is the matching client.

#include <cstdlib>
#include <iostream>
#include <string>

#include "daemon/server.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace lazymc::daemon {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitInputError = 3;
constexpr int kExitInternalError = 4;

void print_usage(std::ostream& out) {
  out <<
      "Usage: lazymcd --socket PATH [options]\n"
      "\n"
      "Resident LazyMC solver daemon (see lazymc-ctl for the client).\n"
      "\n"
      "  --socket PATH          Unix socket to serve on (required)\n"
      "  --pidfile PATH         pidfile (default: SOCKET.pid); a live\n"
      "                         instance refuses to start, a stale one is\n"
      "                         recovered\n"
      "  --journal PATH         request journal (durable one-line JSON per\n"
      "                         completed request; SIGHUP re-opens it)\n"
      "  --threads N            solver pool threads (default: hardware)\n"
      "  --executors N          concurrent running solves (default 2)\n"
      "  --max-queue N          admitted-but-waiting bound before requests\n"
      "                         are shed with \"overloaded\" (default 16)\n"
      "  --max-connections N    concurrent client connections (default 32)\n"
      "  --default-time-limit S per-request budget when the request names\n"
      "                         none (seconds; default unlimited)\n"
      "  --max-time-limit S     hard cap on any request budget\n"
      "  --watchdog-interval S  supervision scan period (default 0.25)\n"
      "  --watchdog-grace S     slack past a deadline before the watchdog\n"
      "                         force-cancels (default 1.0)\n"
      "\n"
      "Signals: SIGTERM/SIGINT drain-with-cancel (in-flight requests\n"
      "return verified best-so-far, exit 0); SIGHUP re-opens the journal.\n";
}

[[noreturn]] void fail(const std::string& message) {
  throw Error(ErrorKind::kInput, message);
}

double parse_seconds(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos != value.size() || !(parsed > 0)) fail(flag + " needs a positive number of seconds, got '" + value + "'");
    return parsed;
  } catch (const Error&) {
    throw;
  } catch (...) {
    fail(flag + " needs a positive number of seconds, got '" + value + "'");
  }
}

std::size_t parse_count(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const long parsed = std::stol(value, &pos);
    if (pos != value.size() || parsed < 0) fail(flag + " needs a non-negative integer, got '" + value + "'");
    return static_cast<std::size_t>(parsed);
  } catch (const Error&) {
    throw;
  } catch (...) {
    fail(flag + " needs a non-negative integer, got '" + value + "'");
  }
}

int daemon_main(int argc, char** argv) {
  ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return kExitOk;
    } else if (arg == "--socket") {
      config.socket_path = value();
    } else if (arg == "--pidfile") {
      config.pidfile_path = value();
    } else if (arg == "--journal") {
      config.journal_path = value();
    } else if (arg == "--threads") {
      config.threads = parse_count(arg, value());
    } else if (arg == "--executors") {
      config.executors = parse_count(arg, value());
    } else if (arg == "--max-queue") {
      config.max_queue = parse_count(arg, value());
    } else if (arg == "--max-connections") {
      config.max_connections = parse_count(arg, value());
    } else if (arg == "--default-time-limit") {
      config.default_time_limit = parse_seconds(arg, value());
    } else if (arg == "--max-time-limit") {
      config.max_time_limit = parse_seconds(arg, value());
    } else if (arg == "--watchdog-interval") {
      config.watchdog.interval_seconds = parse_seconds(arg, value());
    } else if (arg == "--watchdog-grace") {
      config.watchdog.grace_seconds = parse_seconds(arg, value());
    } else {
      fail("unknown flag '" + arg + "' (try --help)");
    }
  }
  if (config.socket_path.empty()) fail("--socket is required (try --help)");
  if (config.pidfile_path.empty()) {
    config.pidfile_path = config.socket_path + ".pid";
  }

  faults::configure_from_env();
  Server server(config);
  return server.run();
}

}  // namespace
}  // namespace lazymc::daemon

int main(int argc, char** argv) {
  try {
    return lazymc::daemon::daemon_main(argc, argv);
  } catch (const lazymc::Error& e) {
    std::cerr << "lazymcd: error: " << e.what() << "\n";
    return e.kind() == lazymc::ErrorKind::kInput
               ? lazymc::daemon::kExitInputError
               : lazymc::daemon::kExitInternalError;
  } catch (const std::exception& e) {
    std::cerr << "lazymcd: internal error: " << e.what() << "\n";
    return lazymc::daemon::kExitInternalError;
  }
}
