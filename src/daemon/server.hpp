// lazymcd server: a resident clique-solving service over a Unix socket.
//
// Composition of the daemon substrate:
//
//   UnixListener  --accept-->  connection threads (bounded)
//        |                         | parse_request (protocol.hpp)
//        |                         v
//        |                    RequestBroker  --executors-->  lazy_mc on
//        |                         ^                         the shared
//        |                     Watchdog                      ThreadPool
//        |
//   Pidfile + signal handlers (lifecycle.hpp), request Journal
//
// Graphs are loaded once into an in-process store and shared read-only
// across requests; each request owns its SolveControl / incumbent /
// stats (LazyMCConfig::control), so concurrent solves interleave on the
// pool at job granularity without sharing mutable solve state.
//
// Lifecycle verbs and signals:
//   drain / SIGHUP?  -> no: drain verb only.  Refuse new work
//                       (kOverloaded sheds), let in-flight requests
//                       finish naturally, then exit 0.
//   stop / SIGTERM / SIGINT -> refuse new work, cancel in-flight
//                       controls (StopCause::kInterrupted); solves
//                       unwind cooperatively and their clients receive
//                       verified best-so-far reports with
//                       "interrupted": true; exit 0.
//   SIGHUP           -> re-open the request journal (rotation), keep
//                       serving.
#pragma once

#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cli/graph_source.hpp"
#include "cli/journal.hpp"
#include "daemon/broker.hpp"
#include "daemon/watchdog.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace lazymc::daemon {

struct ServerConfig {
  std::string socket_path;
  std::string pidfile_path;
  /// Empty disables journaling.
  std::string journal_path;
  /// Solver pool threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Concurrent running solves (broker executors).
  std::size_t executors = 2;
  /// Admission queue bound (beyond-running backlog before shedding).
  std::size_t max_queue = 16;
  /// Concurrent client connections before new ones are shed.
  std::size_t max_connections = 32;
  double default_time_limit = std::numeric_limits<double>::infinity();
  double max_time_limit = std::numeric_limits<double>::infinity();
  WatchdogConfig watchdog;
};

/// Load-once, share-forever graph cache.  The store mutex only guards
/// the spec -> future map, never a parse: the first request for a graph
/// publishes a shared_future under the lock and loads outside it, so
/// concurrent requests for the *same* graph wait on that future while
/// requests for cached graphs (and the status endpoint) stay responsive
/// throughout a multi-gigabyte load.
class GraphStore {
 public:
  /// Returns the cached graph for `spec`, loading (and caching) it on
  /// first use.  Throws classified Errors on load failure; a failed load
  /// is forgotten so a later request may retry it.
  std::shared_ptr<const cli::LoadedGraph> get(const std::string& spec);

  /// Number of fully loaded graphs (in-flight loads are not counted).
  std::size_t size() const;

  /// Snapshot of the fully loaded graphs, spec -> shared handle (status
  /// verb reporting).  In-flight loads are skipped; a ready future in
  /// the map is always a success (failures are erased before their
  /// waiters observe the exception).
  std::vector<std::pair<std::string, std::shared_ptr<const cli::LoadedGraph>>>
  snapshot() const;

 private:
  using Future = std::shared_future<std::shared_ptr<const cli::LoadedGraph>>;

  mutable Mutex mutex_;
  std::map<std::string, Future> graphs_ LAZYMC_GUARDED_BY(mutex_);
};

class Server {
 public:
  explicit Server(ServerConfig config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the accept loop until a lifecycle event (stop/drain verb or
  /// SIGTERM/SIGINT) completes shutdown.  Returns the process exit code
  /// (0 for every supervised shutdown path).
  int run();

 private:
  ServerConfig config_;
};

}  // namespace lazymc::daemon
