// Request broker: bounded admission, isolated execution, supervised
// completion — the failure-isolated request lifecycle of lazymcd.
//
// Every request admitted by the daemon becomes a RequestTicket owning
// exactly the state one solve needs: its own SolveControl (end-to-end
// deadline measured from admission, explicit cancel, the process
// interrupt flag as one input), its own completion latch, and its own
// response buffer.  Executor threads (a small fixed set, distinct from
// the solver pool's workers) pull tickets from a bounded FIFO queue and
// run the injected SolveFn; the solver pool is shared across concurrent
// executors via the ThreadPool launcher gate, so requests interleave at
// job granularity while their incumbents, stats, and scratch stay
// per-request.
//
// Robustness properties the broker enforces:
//  * bounded admission — a full queue (or a draining daemon) rejects with
//    a structured ErrorKind::kOverloaded *before* any work starts, so
//    load produces fast sheds instead of unbounded latency;
//  * failure isolation — an exception from one request (injected fault,
//    bad graph, resource exhaustion) is caught at the executor boundary,
//    classified, and turned into that request's error response; the
//    executor, the pool, and every concurrent request keep going;
//  * reconcilable accounting — admitted == completed + failed + shed +
//    in_flight at every consistent snapshot (counters and gauges are
//    updated under one lock), which the health endpoint exposes and the
//    CI robustness demo asserts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/control.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace lazymc::daemon {

struct BrokerConfig {
  /// Executor threads = maximum concurrently *running* solves.  Each
  /// executor multiplexes its request's parallel phases onto the shared
  /// solver pool.
  std::size_t executors = 2;
  /// Maximum *queued* (admitted, not yet running) requests before
  /// admission sheds with kOverloaded.
  std::size_t max_queue = 16;
  /// Budget applied when a request names none (seconds; infinity = no
  /// limit).
  double default_time_limit = std::numeric_limits<double>::infinity();
  /// Hard cap on any request's budget (seconds; infinity = uncapped).
  double max_time_limit = std::numeric_limits<double>::infinity();
};

/// One admitted request's lifecycle record.  Shared between the
/// connection thread (waits for completion), an executor (runs it), and
/// the watchdog (deadline/stall supervision) — each touching disjoint or
/// individually synchronized state.
class RequestTicket {
 public:
  RequestTicket(std::uint64_t id, std::string client_id, std::string graph,
                double time_limit, std::string rep = {})
      : id_(id),
        client_id_(std::move(client_id)),
        graph_(std::move(graph)),
        rep_(std::move(rep)),
        control_(time_limit) {}

  std::uint64_t id() const { return id_; }
  const std::string& client_id() const { return client_id_; }
  const std::string& graph() const { return graph_; }
  /// Requested neighborhood representation (empty = daemon default).
  const std::string& rep() const { return rep_; }

  /// The request's cancellation/deadline authority.  The deadline clock
  /// starts at *admission* (queue wait spends budget — under load a
  /// deadline bounds end-to-end latency, not just solve time).
  SolveControl& control() { return control_; }
  const SolveControl& control() const { return control_; }

  bool done() const {
    MutexLock lock(mutex_);
    return done_;
  }

  /// Blocks until an executor completed the ticket; returns the response
  /// line.
  std::string wait() {
    MutexLock lock(mutex_);
    while (!done_) cv_.wait(lock.native());
    return response_;
  }

  /// Executor side: publish the response and wake waiters.
  void complete(std::string response) {
    {
      MutexLock lock(mutex_);
      response_ = std::move(response);
      done_ = true;
    }
    cv_.notify_all();
  }

  // Watchdog-private bookkeeping (single watchdog thread; no locking).
  std::uint64_t watchdog_last_heartbeat = 0;
  std::uint64_t watchdog_flat_scans = 0;
  bool watchdog_stall_reported = false;

 private:
  const std::uint64_t id_;
  const std::string client_id_;
  const std::string graph_;
  const std::string rep_;
  SolveControl control_;

  mutable Mutex mutex_;
  std::condition_variable cv_;
  bool done_ LAZYMC_GUARDED_BY(mutex_) = false;
  std::string response_ LAZYMC_GUARDED_BY(mutex_);
};

class RequestBroker {
 public:
  /// Consistent accounting snapshot (taken under the broker lock).
  struct Counters {
    std::uint64_t admitted = 0;   ///< every submit() call
    std::uint64_t completed = 0;  ///< executor produced a result response
    std::uint64_t failed = 0;     ///< executor produced an error response
    std::uint64_t shed = 0;       ///< rejected at admission (kOverloaded)
    std::uint64_t queued = 0;     ///< gauge: admitted, not yet running
    std::uint64_t running = 0;    ///< gauge: currently executing
    std::uint64_t in_flight() const { return queued + running; }
  };

  /// `solve` runs one ticket to a response line (the server wires the
  /// real graph-store + lazy_mc path; tests inject fakes).  A throwing
  /// solve is the *failed* path — the broker classifies and responds.
  using SolveFn = std::function<std::string(RequestTicket&)>;

  RequestBroker(BrokerConfig config, SolveFn solve);
  /// Drains with cancel (so queued/running tickets unwind promptly),
  /// then joins the executors — every admitted ticket still gets its
  /// response before the broker dies.
  ~RequestBroker();

  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Admission control.  Returns the ticket on admission; throws
  /// Error(kOverloaded) when the queue is full or the broker is
  /// draining (counted as shed).  `time_limit` 0 means the configured
  /// default; the configured max caps either.
  std::shared_ptr<RequestTicket> submit(const std::string& graph,
                                        double time_limit,
                                        const std::string& client_id,
                                        const std::string& rep = {});

  /// Stops admitting (subsequent submits shed).  With `cancel_in_flight`,
  /// every queued and running ticket's control is cancelled with
  /// StopCause::kInterrupted so solves unwind to verified best-so-far
  /// responses promptly (SIGTERM / `stop` semantics); without it,
  /// in-flight work finishes naturally (`drain` semantics).
  void drain(bool cancel_in_flight);

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Blocks until every admitted ticket has completed (drain() must have
  /// been called, or this may wait forever under sustained traffic).
  void wait_idle();

  Counters counters() const;

  /// Live (queued or running) tickets, for the watchdog scan.
  std::vector<std::shared_ptr<RequestTicket>> live() const;

 private:
  void executor_loop();

  const BrokerConfig config_;
  const SolveFn solve_;

  mutable Mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::shared_ptr<RequestTicket>> queue_
      LAZYMC_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<RequestTicket>> live_
      LAZYMC_GUARDED_BY(mutex_);
  std::uint64_t next_id_ LAZYMC_GUARDED_BY(mutex_) = 1;
  std::uint64_t admitted_ LAZYMC_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ LAZYMC_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ LAZYMC_GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ LAZYMC_GUARDED_BY(mutex_) = 0;
  std::uint64_t running_ LAZYMC_GUARDED_BY(mutex_) = 0;
  bool stopping_ LAZYMC_GUARDED_BY(mutex_) = false;

  std::atomic<bool> draining_{false};
  std::vector<std::thread> executors_;
};

}  // namespace lazymc::daemon
