// lazymc-ctl — client for the lazymcd daemon.
//
// Sends one request line over the daemon's Unix socket, prints the
// one-line JSON response, and maps it to the CLI's exit-code contract:
// 0 solved/ok, 2 timeout, 3 input error, 4 internal/resource/overloaded,
// 6 interrupted (best-so-far).

#include <iostream>
#include <string>

#include "daemon/protocol.hpp"
#include "support/error.hpp"
#include "support/jsonmini.hpp"
#include "support/socket.hpp"

namespace lazymc::daemon {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitTimedOut = 2;
constexpr int kExitInputError = 3;
constexpr int kExitInternalError = 4;
constexpr int kExitInterrupted = 6;

void print_usage(std::ostream& out) {
  out <<
      "Usage: lazymc-ctl --socket PATH VERB [args]\n"
      "\n"
      "Verbs:\n"
      "  load GRAPH                  load (and cache) a graph in the daemon\n"
      "  solve GRAPH [--time-limit S] [--id ID]\n"
      "                              solve; prints the JSON report line\n"
      "  status | health             daemon health counters\n"
      "  drain                       refuse new work, finish in-flight, exit\n"
      "  stop                        refuse new work, cancel in-flight\n"
      "                              (best-so-far responses), exit\n"
      "\n"
      "GRAPH is a lazymc --graph spec (file path or gen:NAME[:SCALE]).\n"
      "Exit codes follow the lazymc CLI: 0 ok, 2 timeout, 3 input error,\n"
      "4 internal/overloaded, 6 interrupted.\n";
}

[[noreturn]] void fail(const std::string& message) {
  throw Error(ErrorKind::kInput, message);
}

int exit_code_for_response(const std::string& response) {
  bool ok = false;
  if (json_get_bool(response, "ok", ok) && !ok) {
    std::string kind;
    json_get_string(response, "error_kind", kind);
    if (kind == "input") return kExitInputError;
    if (kind == "interrupted") return kExitInterrupted;
    return kExitInternalError;  // internal, resource, overloaded
  }
  std::string status;
  if (json_get_string(response, "status", status)) {
    if (status == "timeout") return kExitTimedOut;
    if (status == "interrupted") return kExitInterrupted;
  }
  return kExitOk;
}

int ctl_main(int argc, char** argv) {
  std::string socket_path;
  Request request;
  bool have_verb = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return kExitOk;
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--time-limit") {
      const std::string v = value();
      try {
        std::size_t pos = 0;
        request.time_limit = std::stod(v, &pos);
        if (pos != v.size() || !(request.time_limit > 0)) throw Error(ErrorKind::kInput, "");
      } catch (...) {
        fail("--time-limit needs a positive number of seconds, got '" + v +
             "'");
      }
    } else if (arg == "--id") {
      request.id = value();
    } else if (!have_verb) {
      have_verb = true;
      if (arg == "load") {
        request.verb = Verb::kLoad;
      } else if (arg == "solve") {
        request.verb = Verb::kSolve;
      } else if (arg == "status" || arg == "health") {
        request.verb = Verb::kStatus;
      } else if (arg == "drain") {
        request.verb = Verb::kDrain;
      } else if (arg == "stop") {
        request.verb = Verb::kStop;
      } else {
        fail("unknown verb '" + arg + "' (try --help)");
      }
    } else if (request.graph.empty() &&
               (request.verb == Verb::kLoad || request.verb == Verb::kSolve)) {
      request.graph = arg;
    } else {
      fail("unexpected argument '" + arg + "' (try --help)");
    }
  }

  if (socket_path.empty()) fail("--socket is required (try --help)");
  if (!have_verb) fail("a verb is required (try --help)");
  if ((request.verb == Verb::kLoad || request.verb == Verb::kSolve) &&
      request.graph.empty()) {
    fail(std::string(verb_name(request.verb)) + " needs a GRAPH argument");
  }

  net::Fd fd = net::unix_connect(socket_path);
  net::LineChannel channel(fd.get());
  channel.write_line(format_request(request));

  std::string response;
  // Solves may legitimately run for a long time; block until the daemon
  // answers (its watchdog bounds the wait when the request carries a
  // deadline) or the connection drops.
  const auto status = channel.read_line(response, /*timeout_ms=*/-1);
  if (status != net::LineChannel::ReadStatus::kLine) {
    throw Error(ErrorKind::kInternal,
                "daemon closed the connection without a response");
  }
  std::cout << response << "\n";
  return exit_code_for_response(response);
}

}  // namespace
}  // namespace lazymc::daemon

int main(int argc, char** argv) {
  try {
    return lazymc::daemon::ctl_main(argc, argv);
  } catch (const lazymc::Error& e) {
    std::cerr << "lazymc-ctl: error: " << e.what() << "\n";
    return e.kind() == lazymc::ErrorKind::kInput
               ? lazymc::daemon::kExitInputError
               : lazymc::daemon::kExitInternalError;
  } catch (const std::exception& e) {
    std::cerr << "lazymc-ctl: internal error: " << e.what() << "\n";
    return lazymc::daemon::kExitInternalError;
  }
}
