// Supervised daemon lifecycle: pidfile ownership and signal wiring.
//
// A resident service must fail cleanly across its own crashes.  The
// pidfile protocol here follows the classic service-manager discipline
// (cf. openrc's start-stop-daemon): at startup read any existing
// pidfile, probe the recorded pid with kill(pid, 0), and
//
//  * pid alive  -> refuse to start (structured kInput error; two daemons
//                  on one socket is the unrecoverable state);
//  * pid dead / file stale -> a previous instance crashed (kill -9,
//                  OOM): remove the stale pidfile *and* the stale socket
//                  it names, remember the recovery for the health
//                  endpoint, and start normally.
//
// Signals: SIGTERM/SIGINT request the drain-then-exit path through the
// same process-global cooperative flag the CLI uses (every in-flight
// SolveControl observes it via its default interrupt source, so
// in-flight solves unwind to verified best-so-far responses).  SIGHUP
// sets a separate flag the accept loop polls to re-open the request
// journal (log rotation).  All handlers are single relaxed stores —
// async-signal-safe.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <string>

namespace lazymc::daemon {

namespace signals {

/// SIGHUP latch (journal rotation).  consume() returns true at most once
/// per delivered signal burst.
inline constinit std::atomic<bool> g_hup{false};

inline bool consume_hup() noexcept { return g_hup.exchange(false); }

}  // namespace signals

/// Installs SIGTERM/SIGINT -> interrupt::request() and SIGHUP ->
/// signals::g_hup.  SIGPIPE is ignored process-wide as a second line of
/// defence behind MSG_NOSIGNAL.
void install_daemon_signal_handlers();

/// RAII pidfile ownership with stale-instance recovery.
class Pidfile {
 public:
  /// Acquires `path` for this process.  Throws Error(kInput) when a live
  /// instance owns it.  On stale-pid detection also unlinks
  /// `stale_socket` (the dead instance's socket would otherwise make
  /// bind() fail with EADDRINUSE forever).
  Pidfile(const std::string& path, const std::string& stale_socket);
  ~Pidfile();

  Pidfile(const Pidfile&) = delete;
  Pidfile& operator=(const Pidfile&) = delete;

  /// True when acquisition removed a dead instance's leftovers (exposed
  /// by the health endpoint as "recovered_stale": the restart path the
  /// CI kill -9 test asserts).
  bool recovered_stale() const { return recovered_stale_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool recovered_stale_ = false;
};

}  // namespace lazymc::daemon
