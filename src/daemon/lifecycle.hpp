// Supervised daemon lifecycle: pidfile ownership and signal wiring.
//
// A resident service must fail cleanly across its own crashes.  The
// pidfile protocol here follows the classic service-manager discipline
// (cf. openrc's start-stop-daemon), made race-free with an exclusive
// flock held for the daemon's lifetime: at startup open the pidfile,
// try flock(LOCK_EX | LOCK_NB), and
//
//  * lock held elsewhere -> a live instance owns it: refuse to start
//                  (structured kInput error; two daemons on one socket
//                  is the unrecoverable state);
//  * lock won   -> re-run the stale check under the lock: a recorded,
//                  still-live pid (an instance predating the lock
//                  scheme) also refuses; a dead/absent pid means the
//                  previous instance crashed (kill -9, OOM): remove the
//                  stale socket it names, remember the recovery for the
//                  health endpoint, rewrite the pidfile, and start
//                  normally.
//
// Signals: SIGTERM/SIGINT request the drain-then-exit path through the
// same process-global cooperative flag the CLI uses (every in-flight
// SolveControl observes it via its default interrupt source, so
// in-flight solves unwind to verified best-so-far responses).  SIGHUP
// sets a separate flag the accept loop polls to re-open the request
// journal (log rotation).  All handlers are single relaxed stores —
// async-signal-safe.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <string>

namespace lazymc::daemon {

namespace signals {

/// SIGHUP latch (journal rotation).  consume() returns true at most once
/// per delivered signal burst.
inline constinit std::atomic<bool> g_hup{false};

inline bool consume_hup() noexcept { return g_hup.exchange(false); }

}  // namespace signals

/// Installs SIGTERM/SIGINT -> interrupt::request() and SIGHUP ->
/// signals::g_hup.  SIGPIPE is ignored process-wide as a second line of
/// defence behind MSG_NOSIGNAL.
void install_daemon_signal_handlers();

/// RAII pidfile ownership with stale-instance recovery.  Acquisition is
/// atomic: the file is claimed with an exclusive flock held for the
/// daemon's lifetime, so two simultaneously started daemons cannot both
/// pass a stale-pid probe and clobber each other's pidfile or socket —
/// exactly one wins the lock, the other fails structurally.
class Pidfile {
 public:
  /// Acquires `path` for this process.  Throws Error(kInput) when a live
  /// instance owns it.  On stale-pid detection also unlinks
  /// `stale_socket` (the dead instance's socket would otherwise make
  /// bind() fail with EADDRINUSE forever).
  Pidfile(const std::string& path, const std::string& stale_socket);
  ~Pidfile();

  Pidfile(const Pidfile&) = delete;
  Pidfile& operator=(const Pidfile&) = delete;

  /// True when acquisition removed a dead instance's leftovers (exposed
  /// by the health endpoint as "recovered_stale": the restart path the
  /// CI kill -9 test asserts).
  bool recovered_stale() const { return recovered_stale_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;  ///< held open (and flock'd) for the daemon's lifetime
  bool recovered_stale_ = false;
};

}  // namespace lazymc::daemon
