#include "daemon/broker.hpp"

#include <algorithm>

#include "daemon/protocol.hpp"
#include "support/faultinject.hpp"

namespace lazymc::daemon {
namespace {

/// Rethrows the in-flight exception classified (mirrors the batch
/// driver's catch-site policy: structured errors pass through, bad_alloc
/// is resource, anything else internal).
Error classify_current_exception() {
  try {
    throw;
  } catch (const Error& e) {
    return e;
  } catch (const std::bad_alloc&) {
    return Error(ErrorKind::kResource, "out of memory");
  } catch (const std::exception& e) {
    return Error(ErrorKind::kInternal, e.what());
  } catch (...) {
    return Error(ErrorKind::kInternal, "unknown exception");
  }
}

}  // namespace

RequestBroker::RequestBroker(BrokerConfig config, SolveFn solve)
    : config_(config), solve_(std::move(solve)) {
  const std::size_t n = std::max<std::size_t>(1, config_.executors);
  executors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

RequestBroker::~RequestBroker() {
  drain(/*cancel_in_flight=*/true);
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : executors_) t.join();
}

std::shared_ptr<RequestTicket> RequestBroker::submit(
    const std::string& graph, double time_limit,
    const std::string& client_id, const std::string& rep) {
  // Effective budget: request's own (0 = daemon default), capped by the
  // configured maximum.
  double limit = time_limit > 0 ? time_limit : config_.default_time_limit;
  limit = std::min(limit, config_.max_time_limit);

  MutexLock lock(mutex_);
  ++admitted_;
  try {
    if (draining_.load(std::memory_order_relaxed)) {
      throw Error(ErrorKind::kOverloaded,
                  "daemon is draining; request rejected");
    }
    if (queue_.size() >= config_.max_queue) {
      throw Error(ErrorKind::kOverloaded,
                  "admission queue full (" + std::to_string(queue_.size()) +
                      " queued); request shed — back off and retry");
    }
    // Injected admission failure (fault builds): a fault here must shed
    // this request and nothing else.
    LAZYMC_FAULT_THROW("request.admit");
  } catch (...) {
    ++shed_;
    throw;
  }

  auto ticket = std::make_shared<RequestTicket>(next_id_++, client_id, graph,
                                                limit, rep);
  queue_.push_back(ticket);
  live_.push_back(ticket);
  cv_work_.notify_one();
  return ticket;
}

void RequestBroker::drain(bool cancel_in_flight) {
  draining_.store(true, std::memory_order_relaxed);
  if (!cancel_in_flight) return;
  std::vector<std::shared_ptr<RequestTicket>> snapshot = live();
  for (const auto& ticket : snapshot) {
    ticket->control().cancel(StopCause::kInterrupted);
  }
}

void RequestBroker::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || running_ != 0) cv_idle_.wait(lock.native());
}

RequestBroker::Counters RequestBroker::counters() const {
  MutexLock lock(mutex_);
  Counters c;
  c.admitted = admitted_;
  c.completed = completed_;
  c.failed = failed_;
  c.shed = shed_;
  c.queued = queue_.size();
  c.running = running_;
  return c;
}

std::vector<std::shared_ptr<RequestTicket>> RequestBroker::live() const {
  MutexLock lock(mutex_);
  return live_;
}

void RequestBroker::executor_loop() {
  for (;;) {
    std::shared_ptr<RequestTicket> ticket;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) cv_work_.wait(lock.native());
      if (queue_.empty() && stopping_) return;
      ticket = queue_.front();
      queue_.pop_front();
      ++running_;
    }

    // One request, one failure domain: everything the solve throws is
    // caught here, classified, and becomes *this* ticket's response.
    std::string response;
    bool failed = false;
    try {
      // Injected execution failure (fault builds): the canonical "one
      // request dies, the daemon and its neighbours do not" site.
      LAZYMC_FAULT_THROW("request.exec");
      response = solve_(*ticket);
    } catch (...) {
      const Error err = classify_current_exception();
      response = error_response(ticket->client_id().empty()
                                    ? std::to_string(ticket->id())
                                    : ticket->client_id(),
                                err.kind(), err.what(), err.sys_errno());
      failed = true;
    }
    // Settle the accounting *before* publishing the response: a client
    // that sees its answer and immediately asks for status must find the
    // counters already reconciled.
    {
      MutexLock lock(mutex_);
      --running_;
      if (failed) {
        ++failed_;
      } else {
        ++completed_;
      }
      live_.erase(std::remove(live_.begin(), live_.end(), ticket),
                  live_.end());
      if (queue_.empty() && running_ == 0) cv_idle_.notify_all();
    }
    ticket->complete(std::move(response));
  }
}

}  // namespace lazymc::daemon
