// lazymcd wire protocol: newline-delimited JSON over a Unix socket.
//
// Each request is one flat JSON object on one line; each response is one
// JSON object on one line (solve responses reuse the CLI report writer,
// so a daemon solve and a `lazymc --json` run emit the same schema plus
// request_id/status fields).  Verbs:
//
//   {"verb":"load","graph":"<spec>",
//    "rep":"auto|hash|sorted|bitset|hybrid"}     load/cache a graph
//   {"verb":"solve","graph":"<spec>","rep":...,
//    "time_limit":S,"id":"<client id>"}          solve (budget and rep
//                                                optional)
//   {"verb":"status"}  (alias "health")          counters + lifecycle
//   {"verb":"drain"}                             refuse new work, let
//                                                in-flight finish, exit
//   {"verb":"stop"}                              refuse new work, cancel
//                                                in-flight (best-so-far
//                                                responses), exit
//
// Error responses are structured the same way the batch driver's error
// objects are: {"ok":false,"error":...,"error_kind":...} — clients
// branch on error_kind ("overloaded" means back off and retry).
#pragma once

#include <string>

#include "support/error.hpp"

namespace lazymc::daemon {

enum class Verb { kLoad, kSolve, kStatus, kDrain, kStop };

const char* verb_name(Verb verb);

struct Request {
  Verb verb = Verb::kStatus;
  /// Graph spec (load/solve).
  std::string graph;
  /// Per-request wall-clock budget in seconds; 0 = daemon default.
  double time_limit = 0;
  /// Client-supplied request id, echoed back in the response (may be
  /// empty; the daemon always assigns its own numeric id as well).
  std::string id;
  /// Neighborhood representation for this request (load/solve); empty
  /// means the daemon default (auto).  Validated at parse time.
  std::string rep;
};

/// Parses one request line.  Throws Error(kInput) on malformed or
/// unknown requests (the connection survives; the error is reported back
/// as a structured response).
Request parse_request(const std::string& line);

/// Serializes a request (used by lazymc-ctl; round-trips through
/// parse_request).
std::string format_request(const Request& request);

/// One-line structured error response.
std::string error_response(const std::string& request_id, ErrorKind kind,
                           const std::string& message, int sys_errno = 0);

/// One-line {"ok":true,...} acknowledgement with an optional detail
/// field (drain/stop acks).
std::string ack_response(const std::string& verb, const std::string& detail);

}  // namespace lazymc::daemon
