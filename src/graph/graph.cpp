#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace lazymc {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency) {
  auto owned = std::make_shared<Owned>();
  owned->offsets = std::move(offsets);
  owned->adjacency = std::move(adjacency);
  if (owned->offsets.empty()) {
    owned->offsets.push_back(0);
  }
  if (owned->offsets.back() != owned->adjacency.size()) {
    throw std::invalid_argument("Graph: offsets/adjacency size mismatch");
  }
  offsets_ = {owned->offsets.data(), owned->offsets.size()};
  adjacency_ = {owned->adjacency.data(), owned->adjacency.size()};
  storage_ = std::move(owned);
}

Graph::Graph(std::span<const EdgeId> offsets,
             std::span<const VertexId> adjacency,
             std::shared_ptr<const void> keepalive)
    : storage_(std::move(keepalive)), offsets_(offsets), adjacency_(adjacency) {
  if (offsets_.empty() || offsets_.back() != adjacency_.size()) {
    throw std::invalid_argument("Graph: offsets/adjacency size mismatch");
  }
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

VertexId Graph::max_degree() const {
  VertexId best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

bool is_clique(const Graph& g, std::span<const VertexId> clique) {
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      if (clique[i] == clique[j]) return false;
      if (!g.has_edge(clique[i], clique[j])) return false;
    }
  }
  return true;
}

}  // namespace lazymc
