// The named synthetic graph suite.
//
// The paper evaluates on 28 real graphs (Table I).  Those corpora are not
// redistributable, so each instance here is a laptop-scale synthetic
// analog engineered to land in the same structural regime as its namesake:
//
//  * zero clique-core gap (uk-union, dimacs, hudong, dblp, it, hollywood,
//    uk): a planted clique dominates the degeneracy, so heuristic search
//    can certify optimality and the must-subgraph is empty;
//  * large gap, sparse (sinaweibo, friendster, soflow, talk, flickr,
//    yahoo): power-law or bipartite backgrounds whose coreness far
//    exceeds omega;
//  * road networks (USAroad, CAroad): triangulated grids, tiny degeneracy;
//  * dense gene networks (WormNet, HS-CX, mouse, human-1, human-2):
//    overlapping dense blocks, very high density, the regime where
//    k-vertex-cover on the complement wins (Section IV-E).
//
// Instances are deterministic (fixed seeds) so experiments reproduce.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lazymc::suite {

enum class Scale {
  kTiny,    // unit/property tests: <= ~600 vertices
  kSmall,   // integration tests:   ~2k vertices
  kMedium,  // benchmark harness:   up to ~40k vertices
};

struct Instance {
  std::string name;          // paper graph this stands in for
  std::string regime;        // short description of the structural regime
  bool zero_gap_expected;    // paper reports clique-core gap == 0
  Graph graph;
};

/// All instance names, in Table I order.
std::vector<std::string> instance_names();

/// Builds one named instance at the given scale.  Throws on unknown name.
Instance make_instance(const std::string& name, Scale scale);

/// Builds the full suite (28 instances) at the given scale.
std::vector<Instance> make_suite(Scale scale);

}  // namespace lazymc::suite
