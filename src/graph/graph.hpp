// Immutable simple undirected graph in CSR (compressed sparse row) form.
//
// Invariants maintained by GraphBuilder / the factory functions:
//  * no self-loops, no duplicate edges,
//  * adjacency is symmetric (u in N(v) iff v in N(u)),
//  * each neighbor list is sorted ascending.
//
// Vertex ids are 32-bit; edge counts 64-bit (the paper's graphs reach
// 9.3G edges; the synthetic suite stays far below, but the representation
// does not impose an artificial ceiling).
//
// Storage is either owned (the classic vector-backed CSR) or borrowed
// from an external arena — e.g. the mmap'ed sections of a binary graph
// store (store/binary_graph.hpp), where the offsets and adjacency arrays
// are consumed zero-copy straight off the page cache.  Either way a
// Graph is two spans plus a shared keepalive, so copies are cheap and
// share the immutable storage.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace lazymc {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel meaning "no vertex".
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of CSR arrays.  offsets.size() == n+1,
  /// adjacency.size() == offsets.back() == 2*undirected edge count.
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency);

  /// Borrows externally owned CSR arrays (same shape contract as the
  /// owning constructor; the arrays must already satisfy it — this
  /// constructor validates sizes only, like the owning one).
  /// `keepalive` pins the backing storage (e.g. an mmap'ed file view)
  /// for the lifetime of this Graph and every copy of it.
  Graph(std::span<const EdgeId> offsets, std::span<const VertexId> adjacency,
        std::shared_ptr<const void> keepalive);

  /// Number of vertices.
  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  EdgeId num_edges() const { return adjacency_.size() / 2; }

  /// Degree of v.
  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Edge membership test via binary search: O(log deg(u)).
  bool has_edge(VertexId u, VertexId v) const;

  /// Largest degree in the graph (0 for the empty graph).
  VertexId max_degree() const;

  /// Raw CSR access (read-only) for algorithms that iterate everything.
  std::span<const EdgeId> offsets() const { return offsets_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }

 private:
  struct Owned {
    std::vector<EdgeId> offsets;
    std::vector<VertexId> adjacency;
  };

  // Owned storage (an Owned block) or the caller's keepalive for
  // borrowed storage; null only for the default-constructed empty graph.
  std::shared_ptr<const void> storage_;
  std::span<const EdgeId> offsets_;
  std::span<const VertexId> adjacency_;
};

/// True when `clique` (a list of distinct vertices) induces a complete
/// subgraph of g.  Used throughout the tests and by solver postconditions.
bool is_clique(const Graph& g, std::span<const VertexId> clique);

}  // namespace lazymc
