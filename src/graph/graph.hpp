// Immutable simple undirected graph in CSR (compressed sparse row) form.
//
// Invariants maintained by GraphBuilder / the factory functions:
//  * no self-loops, no duplicate edges,
//  * adjacency is symmetric (u in N(v) iff v in N(u)),
//  * each neighbor list is sorted ascending.
//
// Vertex ids are 32-bit; edge counts 64-bit (the paper's graphs reach
// 9.3G edges; the synthetic suite stays far below, but the representation
// does not impose an artificial ceiling).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lazymc {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel meaning "no vertex".
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of CSR arrays.  offsets.size() == n+1,
  /// adjacency.size() == offsets.back() == 2*undirected edge count.
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency);

  /// Number of vertices.
  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  EdgeId num_edges() const { return adjacency_.size() / 2; }

  /// Degree of v.
  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Edge membership test via binary search: O(log deg(u)).
  bool has_edge(VertexId u, VertexId v) const;

  /// Largest degree in the graph (0 for the empty graph).
  VertexId max_degree() const;

  /// Raw CSR access (read-only) for algorithms that iterate everything.
  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<VertexId>& adjacency() const { return adjacency_; }

 private:
  std::vector<EdgeId> offsets_;
  std::vector<VertexId> adjacency_;
};

/// True when `clique` (a list of distinct vertices) induces a complete
/// subgraph of g.  Used throughout the tests and by solver postconditions.
bool is_clique(const Graph& g, std::span<const VertexId> clique);

}  // namespace lazymc
