#include "graph/subgraph.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/builder.hpp"
#include "support/wordops.hpp"

namespace lazymc {

DenseSubgraph DenseSubgraph::complement() const {
  DenseSubgraph c;
  complement_into(c);
  return c;
}

void DenseSubgraph::complement_into(DenseSubgraph& out) const {
  const std::size_t n = size();
  out.reset_pooled(n);
  out.vertices.assign(vertices.begin(), vertices.end());
  // Word-wise NOT of each row (dispatched to the active SIMD tier),
  // masking the diagonal and the tail bits beyond n; the edge count falls
  // out of popcounts (degree sum / 2).
  std::size_t degree_sum = 0;
  const std::size_t words = (n + 63) / 64;
  const wordops::Table& ops = wordops::active();
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset& row = out.adj[i];
    ops.not_into(row.data(), adj[i].data(), words);
    row.reset(i);
    if (n % 64 != 0) {
      row.word(words - 1) &= (~0ULL) >> (64 - n % 64);
    }
    degree_sum += row.count();
  }
  out.num_edges = static_cast<EdgeId>(degree_sum / 2);
}

DenseSubgraph induce_dense(const Graph& g, std::span<const VertexId> verts) {
  DenseSubgraph s;
  s.vertices.assign(verts.begin(), verts.end());
  std::size_t n = verts.size();
  s.adj.assign(n, DynamicBitset(n));

  // original id -> local id map.  A hash map keeps extraction O(|verts| +
  // sum deg) without touching an O(|V|) scatter array, which matters when
  // many small subgraphs are extracted in parallel.
  std::unordered_map<VertexId, std::size_t> local;
  local.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) local.emplace(verts[i], i);

  EdgeId m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (VertexId u : g.neighbors(verts[i])) {
      auto it = local.find(u);
      if (it == local.end()) continue;
      std::size_t j = it->second;
      if (j == i) continue;
      s.adj[i].set(j);
      if (i < j) ++m;
    }
  }
  s.num_edges = m;
  return s;
}

Graph induce_csr(const Graph& g, std::span<const VertexId> verts,
                 std::vector<VertexId>* local_to_orig) {
  std::unordered_map<VertexId, VertexId> local;
  local.reserve(verts.size() * 2);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    local.emplace(verts[i], static_cast<VertexId>(i));
  }
  GraphBuilder b(static_cast<VertexId>(verts.size()));
  for (std::size_t i = 0; i < verts.size(); ++i) {
    for (VertexId u : g.neighbors(verts[i])) {
      auto it = local.find(u);
      if (it == local.end()) continue;
      if (it->second > i) b.add_edge(static_cast<VertexId>(i), it->second);
    }
  }
  if (local_to_orig) local_to_orig->assign(verts.begin(), verts.end());
  return b.build();
}

}  // namespace lazymc
