#include "graph/suite.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace lazymc::suite {
namespace {

using gen::barabasi_albert;
using gen::bipartite;
using gen::gene_blocks;
using gen::gnp;
using gen::graph_union;
using gen::grid;
using gen::planted_partition;
using gen::plant_clique;
using gen::rmat;
using gen::watts_strogatz;

/// Triangulated grid: grid graph plus one diagonal per cell.  Models road
/// networks (planar-ish, degeneracy 3, omega 3-4).
Graph road(VertexId rows, VertexId cols, std::uint64_t seed) {
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols) b.add_edge(id(r, c), id(r + 1, c + 1));
    }
  }
  Graph base = b.build();
  // A single K4 somewhere yields omega = 4 = degeneracy + 1 (gap 0),
  // matching USAroad/CAroad in Table I.
  return plant_clique(base, 4, seed);
}

/// Scale multipliers per suite scale.
struct Dims {
  VertexId n_small;   // generic "small graph" size
  VertexId n_large;   // generic "large graph" size
  VertexId clique;    // generic planted clique size
};

Dims dims(Scale s) {
  switch (s) {
    case Scale::kTiny:
      return {200, 600, 12};
    case Scale::kSmall:
      return {800, 2500, 18};
    case Scale::kMedium:
    default:
      return {6000, 24000, 30};
  }
}

using BuilderFn = std::function<Graph(Scale)>;

struct Spec {
  const char* name;
  const char* regime;
  bool zero_gap;
  BuilderFn build;
};

// Scaled helper: fraction of the generic large size, at least `min`.
VertexId scaled(Scale s, double frac, VertexId min_n = 64) {
  auto d = dims(s);
  auto v = static_cast<VertexId>(static_cast<double>(d.n_large) * frac);
  return std::max(v, min_n);
}

const std::vector<Spec>& specs() {
  static const std::vector<Spec> kSpecs = {
      // --- road networks: tiny degeneracy, omega 4, gap 0 ---------------
      {"USAroad", "triangulated grid road network", true,
       [](Scale s) {
         VertexId side = static_cast<VertexId>(
             s == Scale::kTiny ? 24 : (s == Scale::kSmall ? 50 : 160));
         return road(side, side, 11);
       }},
      {"CAroad", "triangulated grid road network (smaller)", true,
       [](Scale s) {
         VertexId side = static_cast<VertexId>(
             s == Scale::kTiny ? 16 : (s == Scale::kSmall ? 32 : 100));
         return road(side, side, 13);
       }},

      // --- heavy-tailed social/web graphs, large gap --------------------
      {"sinaweibo", "power-law microblog, huge hub degrees, large gap", false,
       [](Scale s) {
         auto d = dims(s);
         Graph g = rmat(s == Scale::kTiny ? 9 : (s == Scale::kSmall ? 11 : 14),
                        8, 0.57, 0.19, 0.19, 21);
         return plant_clique(g, d.clique, 22);
       }},
      {"friendster", "very sparse social graph, tiny clique, huge gap", false,
       [](Scale s) {
         Graph g = rmat(s == Scale::kTiny ? 9 : (s == Scale::kSmall ? 11 : 15),
                        3, 0.57, 0.19, 0.19, 31);
         return plant_clique(g, 8, 32);
       }},
      {"webcc", "web crawl with one huge dense community", false,
       [](Scale s) {
         auto d = dims(s);
         Graph bg = barabasi_albert(scaled(s, 0.6), 4, 41);
         Graph dense = gnp(d.clique * 3, 0.7, 42);
         return plant_clique(graph_union(bg, dense), d.clique, 43);
       }},
      {"soflow", "Q&A graph, power-law, moderate gap", false,
       [](Scale s) {
         auto d = dims(s);
         Graph g = rmat(s == Scale::kTiny ? 9 : (s == Scale::kSmall ? 11 : 14),
                        6, 0.55, 0.2, 0.2, 51);
         return plant_clique(g, d.clique / 2 + 4, 52);
       }},
      {"talk", "communication graph, star-dominated, moderate gap", false,
       [](Scale s) {
         Graph g = barabasi_albert(scaled(s, 0.8), 3, 61);
         Graph noise = gnp(scaled(s, 0.05), 0.08, 62);
         return plant_clique(graph_union(g, noise), 10, 63);
       }},
      {"patents", "citation graph, small cliques, moderate gap", false,
       [](Scale s) {
         Graph g = watts_strogatz(scaled(s, 0.9), 8, 0.3, 71);
         Graph noise = gnp(scaled(s, 0.03), 0.15, 72);
         return plant_clique(graph_union(g, noise), 9, 73);
       }},
      {"LiveJournal", "social graph with large near-clique community", false,
       [](Scale s) {
         auto d = dims(s);
         // Communities plus one small dense core: the core carries the
         // high coreness (non-zero gap) while most of the graph stays
         // outside the must subgraph (paper: omega 321, gap 52).
         // Community coreness stays below the planted clique so only the
         // compact dense core remains in the must subgraph.
         Graph g = planted_partition(
             static_cast<VertexId>(s == Scale::kTiny ? 10 : 24),
             scaled(s, 0.004, 24), 0.3, 3.0, 81);
         Graph core = gnp(scaled(s, 0.0125, 60), 0.55, 83);
         return plant_clique(graph_union(g, core), d.clique + 6, 82);
       }},
      {"flickr", "photo-sharing graph, many overlapping dense zones", false,
       [](Scale s) {
         auto d = dims(s);
         Graph g = gene_blocks(scaled(s, 0.12, 120), 30, scaled(s, 0.008, 24),
                               0.5, 91);
         Graph bg = barabasi_albert(scaled(s, 0.4), 3, 92);
         return plant_clique(graph_union(g, bg), d.clique / 2 + 2, 93);
       }},
      {"yahoo", "bipartite-ish messaging graph: omega 2, huge gap", false,
       [](Scale s) {
         return bipartite(scaled(s, 0.25), scaled(s, 0.25),
                          s == Scale::kMedium ? 0.004 : 0.02, 101);
       }},
      {"warwiki", "wiki graph, one dominant dense core, small gap", false,
       [](Scale s) {
         auto d = dims(s);
         Graph core = gnp(d.clique * 2, 0.92, 111);
         Graph bg = barabasi_albert(scaled(s, 0.5), 4, 112);
         return plant_clique(graph_union(core, bg), d.clique + 8, 113);
       }},
      {"topcats", "wiki categories, power-law, moderate gap", false,
       [](Scale s) {
         Graph g = rmat(s == Scale::kTiny ? 9 : (s == Scale::kSmall ? 11 : 13),
                        10, 0.5, 0.22, 0.22, 121);
         return plant_clique(g, 14, 122);
       }},
      {"pokec", "social network, modest gap", false,
       [](Scale s) {
         Graph g = planted_partition(
             static_cast<VertexId>(s == Scale::kTiny ? 8 : 20),
             scaled(s, 0.012, 24), 0.45, 6.0, 131);
         return plant_clique(g, 12, 132);
       }},
      {"orkut", "dense social network, dense community subproblems", false,
       [](Scale s) {
         // Compact, dense communities: the subgraphs that survive the
         // degree filters are near-cliques whose sparse complements suit
         // the k-VC route, as with the real orkut (paper Figs. 3/6).
         Graph g = planted_partition(
             static_cast<VertexId>(s == Scale::kTiny ? 8 : 20),
             scaled(s, 0.004, 20), 0.92, 10.0, 141);
         return plant_clique(g, 16, 142);
       }},
      {"higgs", "twitter cascade graph, dense core", false,
       [](Scale s) {
         auto d = dims(s);
         Graph core = gnp(d.clique * 3, 0.55, 151);
         Graph bg = rmat(s == Scale::kTiny ? 8 : (s == Scale::kSmall ? 10 : 13),
                         6, 0.55, 0.2, 0.2, 152);
         return plant_clique(graph_union(core, bg), d.clique / 2 + 5, 153);
       }},

      // --- zero-gap graphs: planted clique defines the degeneracy -------
      {"uk-union", "web graph, giant clique, gap 0", true,
       [](Scale s) {
         auto d = dims(s);
         Graph bg = barabasi_albert(dims(s).n_large, 5, 161);
         return plant_clique(bg, d.clique + 10, 162);
       }},
      {"dimacs", "web-derived graph, giant clique, gap 0", true,
       [](Scale s) {
         auto d = dims(s);
         Graph bg = barabasi_albert(scaled(s, 0.8), 6, 171);
         return plant_clique(bg, d.clique + 12, 172);
       }},
      {"hudong", "encyclopedia graph, giant clique, gap 0", true,
       [](Scale s) {
         auto d = dims(s);
         Graph bg = barabasi_albert(scaled(s, 0.5), 5, 181);
         return plant_clique(bg, d.clique + 6, 182);
       }},
      {"dblp", "co-authorship: cliques by construction, gap 0", true,
       [](Scale s) {
         // Papers = small cliques of authors; the largest "paper" sets omega.
         auto d = dims(s);
         Graph g = planted_partition(
             static_cast<VertexId>(s == Scale::kTiny ? 20 : 60),
             static_cast<VertexId>(8), 1.0, 1.5, 191);
         return plant_clique(g, d.clique / 2 + 6, 192);
       }},
      {"it", "web host graph, giant clique, gap 0", true,
       [](Scale s) {
         auto d = dims(s);
         Graph bg = barabasi_albert(scaled(s, 0.2), 6, 201);
         return plant_clique(bg, d.clique + 14, 202);
       }},
      {"hollywood", "actor collaboration: large clique, gap 0", true,
       [](Scale s) {
         auto d = dims(s);
         Graph g = planted_partition(
             static_cast<VertexId>(s == Scale::kTiny ? 12 : 40),
             static_cast<VertexId>(12), 1.0, 2.0, 211);
         return plant_clique(g, d.clique + 16, 212);
       }},
      {"uk", "small web crawl, giant clique, gap 0", true,
       [](Scale s) {
         auto d = dims(s);
         Graph bg = barabasi_albert(scaled(s, 0.06, 100), 8, 221);
         return plant_clique(bg, d.clique + 10, 222);
       }},

      // --- dense biological networks: high density, large gap -----------
      {"WormNet", "gene functional network, dense, small", false,
       [](Scale s) {
         VertexId n = s == Scale::kTiny ? 150 : (s == Scale::kSmall ? 400 : 1600);
         Graph g = gene_blocks(n, 12, n / 6, 0.75, 231);
         return plant_clique(g, static_cast<VertexId>(n / 12 + 4), 232);
       }},
      {"HS-CX", "human gene coexpression (small), dense", false,
       [](Scale s) {
         VertexId n = s == Scale::kTiny ? 120 : (s == Scale::kSmall ? 300 : 900);
         Graph g = gene_blocks(n, 10, n / 5, 0.8, 241);
         return plant_clique(g, static_cast<VertexId>(n / 10 + 4), 242);
       }},
      {"mouse", "mouse gene network: dense blocks, large gap", false,
       [](Scale s) {
         // p well below 1: block coreness stays near p*size while omega is
         // far smaller — the paper's gene networks have omega ~ d/2.
         VertexId n = s == Scale::kTiny ? 160 : (s == Scale::kSmall ? 360 : 1000);
         return gene_blocks(n, 16, n / 4, 0.62, 251);
       }},
      {"human-1", "human gene network 1: dense blocks, large gap", false,
       [](Scale s) {
         VertexId n = s == Scale::kTiny ? 140 : (s == Scale::kSmall ? 320 : 900);
         return gene_blocks(n, 14, n / 3, 0.62, 261);
       }},
      {"human-2", "human gene network 2: dense blocks, large gap", false,
       [](Scale s) {
         VertexId n = s == Scale::kTiny ? 130 : (s == Scale::kSmall ? 300 : 800);
         return gene_blocks(n, 14, n / 3, 0.66, 271);
       }},
  };
  return kSpecs;
}

// --- disk cache ------------------------------------------------------------
// Generators are deterministic but not free: make_suite(kMedium) builds
// ~28 graphs of up to ~40k vertices on every bench invocation.  Since the
// io layer round-trips DIMACS losslessly and GraphBuilder canonicalizes
// adjacency (sorted, deduplicated), a cached instance is bit-identical to
// a regenerated one, so instances are written once and reread afterwards.
//
// Cache key: instance name + scale + kCacheFormatVersion (bump the
// version whenever a generator or suite spec changes — the per-instance
// seeds live in the specs, so name/scale/version pins the content).
//
// LAZYMC_SUITE_CACHE env:
//   unset        -> ${XDG_CACHE_HOME:-$HOME/.cache}/lazymc-suite
//   a path       -> that directory
//   "off" or "0" -> caching disabled
// Any IO failure silently falls back to regeneration.

constexpr int kCacheFormatVersion = 1;

// Exhaustive on purpose (no default): adding a Scale without extending
// this mapping must fail the -Wswitch build rather than silently reuse
// another scale's cache files.
const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kTiny: return "tiny";
    case Scale::kSmall: return "small";
    case Scale::kMedium: return "medium";
  }
  return "unknown";  // unreachable for valid enum values
}

/// Resolved cache directory; empty when caching is disabled.
std::filesystem::path cache_dir() {
  static const std::filesystem::path dir = [] {
    std::filesystem::path d;
    if (const char* env = std::getenv("LAZYMC_SUITE_CACHE")) {
      std::string v = env;
      if (v.empty() || v == "off" || v == "0" || v == "none") return d;
      d = v;
    } else if (const char* xdg = std::getenv("XDG_CACHE_HOME")) {
      d = std::filesystem::path(xdg) / "lazymc-suite";
    } else if (const char* home = std::getenv("HOME")) {
      d = std::filesystem::path(home) / ".cache" / "lazymc-suite";
    } else {
      return d;  // nowhere sensible to cache
    }
    std::error_code ec;
    std::filesystem::create_directories(d, ec);
    if (ec) d.clear();
    return d;
  }();
  return dir;
}

std::filesystem::path cache_path(const std::string& name, Scale scale) {
  return cache_dir() /
         (name + "-" + scale_name(scale) + "-v" +
          std::to_string(kCacheFormatVersion) + ".clq");
}

Graph build_cached(const Spec& spec, Scale scale) {
  const std::filesystem::path dir = cache_dir();
  if (dir.empty()) return spec.build(scale);

  const std::filesystem::path path = cache_path(spec.name, scale);
  {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      try {
        return io::read_dimacs_file(path.string());
      } catch (const std::exception&) {
        // Corrupt or stale cache entry: fall through and rewrite it.
      }
    }
  }

  Graph g = spec.build(scale);
  // Write-to-temp + rename so concurrent bench/test processes never
  // observe a torn file (rename is atomic within one filesystem).
  std::filesystem::path tmp = path;
  tmp += ".tmp" + std::to_string(static_cast<unsigned long>(::getpid()));
  try {
    io::write_dimacs_file(g, tmp.string());
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) std::filesystem::remove(tmp, ec);
  } catch (const std::exception&) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
  return g;
}

}  // namespace

std::vector<std::string> instance_names() {
  std::vector<std::string> names;
  names.reserve(specs().size());
  for (const Spec& s : specs()) names.emplace_back(s.name);
  return names;
}

Instance make_instance(const std::string& name, Scale scale) {
  for (const Spec& s : specs()) {
    if (name == s.name) {
      return Instance{s.name, s.regime, s.zero_gap, build_cached(s, scale)};
    }
  }
  throw std::invalid_argument("unknown suite instance: " + name);
}

std::vector<Instance> make_suite(Scale scale) {
  std::vector<Instance> out;
  out.reserve(specs().size());
  for (const Spec& s : specs()) {
    out.push_back(Instance{s.name, s.regime, s.zero_gap, build_cached(s, scale)});
  }
  return out;
}

}  // namespace lazymc::suite
