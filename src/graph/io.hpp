// Graph readers/writers.
//
// Supported formats:
//  * plain edge list: one "u v" pair per line, '#' or '%' comments;
//  * DIMACS .clq / .col: "p edge N M" header, "e u v" lines (1-based).
//
// These are the formats the paper's graph corpus ships in (SNAP edge
// lists, DIMACS clique instances).  `read_graph` auto-detects by content.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace lazymc::io {

/// Reads a plain whitespace-separated edge list.  Lines starting with
/// '#' or '%' are comments.  Vertex ids are 0-based.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Reads a DIMACS "p edge" file ("c" comments, "e u v" edges, 1-based ids).
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);

/// Auto-detects DIMACS (leading 'c'/'p' records) vs plain edge list.
Graph read_graph_file(const std::string& path);

/// Writers (useful for exporting the synthetic suite).
void write_edge_list(const Graph& g, std::ostream& out);
void write_dimacs(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);
void write_dimacs_file(const Graph& g, const std::string& path);

}  // namespace lazymc::io
