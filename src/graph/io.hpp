// Graph readers/writers.
//
// Supported formats:
//  * plain edge list: one "u v" pair per line, '#' or '%' comments;
//  * DIMACS .clq / .col: "p edge N M" header, "e u v" lines (1-based).
//
// These are the formats the paper's graph corpus ships in (SNAP edge
// lists, DIMACS clique instances).  `read_graph` auto-detects by content.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace lazymc::io {

/// Reads a plain whitespace-separated edge list.  Lines starting with
/// '#' or '%' are comments.  Vertex ids are 0-based.  CRLF line endings
/// are accepted.  Ids beyond VertexId range throw instead of silently
/// truncating.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Reads a DIMACS "p edge" file ("c" comments, "e u v" edges, 1-based
/// ids).  CRLF line endings are accepted.  Throws std::runtime_error on a
/// missing/duplicate/misplaced 'p' line, ids outside [1, n], a vertex
/// count beyond VertexId range, or an edge count that disagrees with the
/// header (both the raw 'e' record count and the deduplicated edge count
/// are tried, so files listing both orientations still load).  Isolated
/// vertices declared by the header but untouched by any 'e' record are
/// preserved.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);

/// Auto-detects the format by content: `.lmg` binary stores (magic
/// bytes; the returned Graph keeps the mmap alive via its keepalive),
/// DIMACS (leading 'c'/'p'/'e' records), else plain edge list.
Graph read_graph_file(const std::string& path);

/// Writers (useful for exporting the synthetic suite).
void write_edge_list(const Graph& g, std::ostream& out);
void write_dimacs(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);
void write_dimacs_file(const Graph& g, const std::string& path);

}  // namespace lazymc::io
