// Synthetic graph generators.
//
// The paper evaluates on 28 real-world graphs (SNAP / Network Repository /
// webgraph corpora) which are not redistributable here.  These generators
// produce laptop-scale graphs spanning the same structural regimes the
// evaluation depends on: power-law degree distributions, community
// structure, zero vs. large clique-core gap, and near-complete gene-
// coexpression-like blocks.  See graph/suite.hpp for the named instances.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lazymc::gen {

/// Erdős–Rényi G(n, p).  Expected density p.
Graph gnp(VertexId n, double p, std::uint64_t seed);

/// Uniform random graph with exactly m distinct edges.
Graph gnm(VertexId n, EdgeId m, std::uint64_t seed);

/// Complete graph K_n.
Graph complete(VertexId n);

/// Simple cycle C_n (n >= 3).
Graph cycle(VertexId n);

/// Simple path P_n.
Graph path(VertexId n);

/// Star with n-1 leaves.
Graph star(VertexId n);

/// 2D grid graph (rows x cols); models road networks (USAroad/CAroad are
/// near-planar with tiny degeneracy and omega in {3,4}).
Graph grid(VertexId rows, VertexId cols);

/// Barabási–Albert preferential attachment: n vertices, each new vertex
/// attaches to `attach` existing ones.  Power-law degrees, low degeneracy.
Graph barabasi_albert(VertexId n, VertexId attach, std::uint64_t seed);

/// RMAT / Kronecker-style power-law generator (a,b,c,d probabilities).
/// Models web/social graphs with heavy-tailed degrees.
Graph rmat(VertexId scale, EdgeId edges_per_vertex, double a, double b,
           double c, std::uint64_t seed);

/// Watts–Strogatz small world: ring of n vertices, k nearest neighbors,
/// rewiring probability beta.
Graph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed);

/// Relaxed caveman / planted-partition graph: `communities` cliques of
/// `community_size` vertices, intra-community edges kept with p_intra,
/// inter-community noise edges with expected count n*avg_inter/2.
Graph planted_partition(VertexId communities, VertexId community_size,
                        double p_intra, double avg_inter, std::uint64_t seed);

/// Gene-coexpression-like graph: dense overlapping blocks over a small
/// vertex set, mimicking bio-mouse-gene / bio-human-gene (tens of
/// thousands of vertices, densities >> social graphs, large clique-core
/// gap).  `blocks` dense G(block_size, p_block) subgraphs placed at random
/// overlapping offsets.
Graph gene_blocks(VertexId n, VertexId blocks, VertexId block_size,
                  double p_block, std::uint64_t seed);

/// Random bipartite graph: parts of size n1 and n2, each cross edge kept
/// with probability p.  Triangle-free, so omega == 2 while the coreness can
/// be large — the extreme clique-core-gap regime (yahoo-member in the
/// paper: omega = 2, gap = 48).
Graph bipartite(VertexId n1, VertexId n2, double p, std::uint64_t seed);

/// Returns `g` with an additional clique planted on `clique_size` random
/// vertices.  Used to control omega and the clique-core gap.
Graph plant_clique(const Graph& g, VertexId clique_size, std::uint64_t seed,
                   std::vector<VertexId>* planted = nullptr);

/// Union of two graphs over max(n1, n2) vertices.
Graph graph_union(const Graph& a, const Graph& b);

/// Complement graph (on the same vertex set, self-loops excluded).
/// Intended for small n (allocates O(n^2) work).
Graph complement(const Graph& g);

}  // namespace lazymc::gen
