#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.hpp"
#include "support/random.hpp"

namespace lazymc::gen {
namespace {

/// Geometric skipping over the n*(n-1)/2 possible edges: samples each with
/// probability p in expected O(p*n^2) time.
template <typename EmitEdge>
void sample_gnp(VertexId n, double p, Rng& rng, EmitEdge&& emit) {
  if (p <= 0.0 || n < 2) return;
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = u + 1; v < n; ++v) emit(u, v);
    return;
  }
  const double log1mp = std::log1p(-p);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Row u of the upper triangle starts at linear index u*(2n-u-1)/2.
  auto row_start = [n](std::uint64_t row) {
    return row * (2 * static_cast<std::uint64_t>(n) - row - 1) / 2;
  };
  std::uint64_t idx = 0;  // next candidate linear edge index
  std::uint64_t row = 0;  // current row (maintained incrementally)
  while (idx < total) {
    // Geometric skip: number of failures before the next success.
    double u01 = rng.next_double();
    if (u01 >= 1.0) u01 = 0.5;
    double skip = std::floor(std::log1p(-u01) / log1mp);
    if (!(skip >= 0)) skip = 0;
    if (skip >= static_cast<double>(total - idx)) break;
    idx += static_cast<std::uint64_t>(skip);
    if (idx >= total) break;
    while (row + 1 < n && row_start(row + 1) <= idx) ++row;
    VertexId u = static_cast<VertexId>(row);
    VertexId v = static_cast<VertexId>(idx - row_start(row) + row + 1);
    emit(u, v);
    ++idx;
  }
}

}  // namespace

Graph gnp(VertexId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  sample_gnp(n, p, rng, [&](VertexId u, VertexId v) { b.add_edge(u, v); });
  return b.build();
}

Graph gnm(VertexId n, EdgeId m, std::uint64_t seed) {
  if (n < 2) return GraphBuilder(n).build();
  std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > total) throw std::invalid_argument("gnm: m exceeds possible edges");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  GraphBuilder b(n);
  while (chosen.size() < m) {
    VertexId u = static_cast<VertexId>(rng.next_below(n));
    VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    std::uint64_t key = static_cast<std::uint64_t>(u) * n + v;
    if (chosen.insert(key).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph complete(VertexId n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph cycle(VertexId n) {
  GraphBuilder b(n);
  if (n >= 3) {
    for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  } else if (n == 2) {
    b.add_edge(0, 1);
  }
  return b.build();
}

Graph path(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph star(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph grid(VertexId rows, VertexId cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph barabasi_albert(VertexId n, VertexId attach, std::uint64_t seed) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach == 0");
  Rng rng(seed);
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<VertexId> endpoints;
  VertexId seed_size = std::min<VertexId>(n, attach + 1);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = seed_size; v < n; ++v) {
    std::unordered_set<VertexId> targets;
    while (targets.size() < attach) {
      VertexId t = endpoints[rng.next_below(endpoints.size())];
      targets.insert(t);
    }
    for (VertexId t : targets) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Graph rmat(VertexId scale, EdgeId edges_per_vertex, double a, double b,
           double c, std::uint64_t seed) {
  double d = 1.0 - a - b - c;
  if (d < -1e-9) throw std::invalid_argument("rmat: a+b+c > 1");
  Rng rng(seed);
  VertexId n = VertexId{1} << scale;
  EdgeId m = static_cast<EdgeId>(n) * edges_per_vertex;
  GraphBuilder builder(n);
  for (EdgeId e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    for (VertexId bit = 0; bit < scale; ++bit) {
      double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // upper-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed) {
  if (k % 2 != 0) throw std::invalid_argument("watts_strogatz: k must be even");
  Rng rng(seed);
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId j = 1; j <= k / 2; ++j) {
      VertexId target = (v + j) % n;
      if (rng.next_double() < beta) {
        // Rewire to a uniform random endpoint (self handled by builder).
        target = static_cast<VertexId>(rng.next_below(n));
      }
      b.add_edge(v, target);
    }
  }
  return b.build();
}

Graph planted_partition(VertexId communities, VertexId community_size,
                        double p_intra, double avg_inter, std::uint64_t seed) {
  Rng rng(seed);
  VertexId n = communities * community_size;
  GraphBuilder b(n);
  for (VertexId comm = 0; comm < communities; ++comm) {
    VertexId base = comm * community_size;
    Rng local(seed ^ (0x9e3779b97f4a7c15ULL * (comm + 1)));
    sample_gnp(community_size, p_intra, local, [&](VertexId u, VertexId v) {
      b.add_edge(base + u, base + v);
    });
  }
  EdgeId inter = static_cast<EdgeId>(static_cast<double>(n) * avg_inter / 2.0);
  for (EdgeId e = 0; e < inter; ++e) {
    VertexId u = static_cast<VertexId>(rng.next_below(n));
    VertexId v = static_cast<VertexId>(rng.next_below(n));
    b.add_edge(u, v);
  }
  return b.build();
}

Graph gene_blocks(VertexId n, VertexId blocks, VertexId block_size,
                  double p_block, std::uint64_t seed) {
  if (block_size > n) throw std::invalid_argument("gene_blocks: block > n");
  Rng rng(seed);
  GraphBuilder b(n);
  std::vector<VertexId> members(block_size);
  for (VertexId blk = 0; blk < blocks; ++blk) {
    // Random contiguous window plus jitter gives overlapping dense zones.
    VertexId base = static_cast<VertexId>(rng.next_below(n - block_size + 1));
    for (VertexId i = 0; i < block_size; ++i) members[i] = base + i;
    Rng local(seed ^ (0xbf58476d1ce4e5b9ULL * (blk + 1)));
    sample_gnp(block_size, p_block, local, [&](VertexId u, VertexId v) {
      b.add_edge(members[u], members[v]);
    });
  }
  return b.build();
}

Graph bipartite(VertexId n1, VertexId n2, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n1 + n2);
  for (VertexId u = 0; u < n1; ++u) {
    for (VertexId v = 0; v < n2; ++v) {
      if (rng.next_double() < p) b.add_edge(u, n1 + v);
    }
  }
  return b.build();
}

Graph plant_clique(const Graph& g, VertexId clique_size, std::uint64_t seed,
                   std::vector<VertexId>* planted) {
  VertexId n = g.num_vertices();
  if (clique_size > n) {
    throw std::invalid_argument("plant_clique: clique larger than graph");
  }
  Rng rng(seed);
  // Floyd's algorithm for a uniform k-subset.
  std::unordered_set<VertexId> chosen;
  for (VertexId j = n - clique_size; j < n; ++j) {
    VertexId t = static_cast<VertexId>(rng.next_below(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<VertexId> members(chosen.begin(), chosen.end());
  std::sort(members.begin(), members.end());
  if (planted) *planted = members;

  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) b.add_edge(v, u);
    }
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      b.add_edge(members[i], members[j]);
    }
  }
  return b.build();
}

Graph graph_union(const Graph& a, const Graph& b) {
  GraphBuilder builder(std::max(a.num_vertices(), b.num_vertices()));
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    for (VertexId u : a.neighbors(v)) {
      if (v < u) builder.add_edge(v, u);
    }
  }
  for (VertexId v = 0; v < b.num_vertices(); ++v) {
    for (VertexId u : b.neighbors(v)) {
      if (v < u) builder.add_edge(v, u);
    }
  }
  return builder.build();
}

Graph complement(const Graph& g) {
  VertexId n = g.num_vertices();
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    std::size_t idx = 0;
    for (VertexId u = v + 1; u < n; ++u) {
      while (idx < nbrs.size() && nbrs[idx] < u) ++idx;
      if (idx < nbrs.size() && nbrs[idx] == u) continue;
      b.add_edge(v, u);
    }
  }
  return b.build();
}

}  // namespace lazymc::gen
