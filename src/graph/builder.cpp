#include "graph/builder.hpp"

#include <algorithm>

namespace lazymc {

Graph GraphBuilder::build() const {
  const VertexId n = n_;
  // Count directed arcs (both directions), skipping self-loops.
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (auto [u, v] : edges_) {
    if (u == v) continue;
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adjacency(offsets[n]);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (auto [u, v] : edges_) {
    if (u == v) continue;
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }

  // Sort and deduplicate each neighbor list, then compact.
  std::vector<EdgeId> new_offsets(static_cast<std::size_t>(n) + 1, 0);
  EdgeId write = 0;
  for (VertexId v = 0; v < n; ++v) {
    EdgeId lo = offsets[v], hi = offsets[v + 1];
    std::sort(adjacency.begin() + lo, adjacency.begin() + hi);
    EdgeId out = write;
    for (EdgeId i = lo; i < hi; ++i) {
      if (i == lo || adjacency[i] != adjacency[i - 1]) {
        adjacency[out++] = adjacency[i];
      }
    }
    new_offsets[v + 1] = out;
    write = out;
  }
  adjacency.resize(write);
  new_offsets[0] = 0;
  return Graph(std::move(new_offsets), std::move(adjacency));
}

Graph graph_from_edges(VertexId num_vertices,
                       const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder b(num_vertices);
  for (auto [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

}  // namespace lazymc
