// Induced-subgraph extraction.
//
// The branch-and-bound solvers (mc::BBSolver, vc::KvcSolver) operate on
// small, dense candidate sets (bounded by coreness), for which a local
// bitset adjacency matrix is by far the fastest representation: every
// candidate-set intersection becomes a word-parallel AND (cf. the paper's
// Section VI discussion of bit-level parallelism).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/bitset.hpp"

namespace lazymc {

/// A dense induced subgraph with local vertex ids 0..size()-1.
struct DenseSubgraph {
  /// local id -> original vertex id.
  std::vector<VertexId> vertices;
  /// adj[i] has bit j set iff local vertices i and j are adjacent.
  std::vector<DynamicBitset> adj;
  /// Number of undirected edges in the subgraph.
  EdgeId num_edges = 0;

  std::size_t size() const { return vertices.size(); }

  /// Edge density in [0, 1]; 0 for fewer than 2 vertices.
  double density() const {
    std::size_t n = size();
    if (n < 2) return 0.0;
    return 2.0 * static_cast<double>(num_edges) /
           (static_cast<double>(n) * static_cast<double>(n - 1));
  }

  /// Complement adjacency (self-loops excluded), same vertex order.
  DenseSubgraph complement() const;

  /// Complement into `out`, reusing out's row storage (scratch-arena
  /// path: no allocation once out's capacity covers this size).  `out`
  /// must not alias `this`.
  void complement_into(DenseSubgraph& out) const;

  /// Resets to n vertices with empty rows, reusing existing storage.
  /// `adj` may retain more than n rows; only rows [0, n) are meaningful.
  void reset_pooled(std::size_t n) {
    vertices.clear();
    if (adj.size() < n) adj.resize(n);
    for (std::size_t i = 0; i < n; ++i) adj[i].reinit(n);
    num_edges = 0;
  }
};

/// Extracts G[verts].  `verts` must contain distinct vertex ids; local ids
/// follow the order of `verts`.  O(sum deg(v)) using a scatter index.
DenseSubgraph induce_dense(const Graph& g, std::span<const VertexId> verts);

/// Extracts G[verts] as a CSR graph.  If `local_to_orig` is non-null it
/// receives the local->original id map (same order as verts).
Graph induce_csr(const Graph& g, std::span<const VertexId> verts,
                 std::vector<VertexId>* local_to_orig = nullptr);

}  // namespace lazymc
