// Builds a Graph from an arbitrary edge list: symmetrizes, removes
// self-loops and duplicates, sorts neighbor lists.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace lazymc {

class GraphBuilder {
 public:
  /// Pre-declares the number of vertices.  Vertices mentioned in edges may
  /// exceed this; the final count is max(declared, max id + 1).
  explicit GraphBuilder(VertexId num_vertices = 0) : n_(num_vertices) {}

  /// Adds an undirected edge.  Self-loops and duplicates are tolerated and
  /// removed at build time.
  void add_edge(VertexId u, VertexId v) {
    n_ = std::max({n_, u + 1, v + 1});
    edges_.emplace_back(u, v);
  }

  /// Guarantees the built graph has at least `n` vertices, without adding
  /// any edge.  Lets format readers honor a declared vertex count whose
  /// top vertices are isolated (e.g. a DIMACS "p edge n m" header).
  void ensure_vertices(VertexId n) { n_ = std::max(n_, n); }

  /// Vertex count the graph would have if built now.
  VertexId num_vertices() const { return n_; }

  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Builds the CSR graph.  The builder may be reused afterwards (it keeps
  /// its edges).
  Graph build() const;

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Convenience: builds a graph directly from an edge list.
Graph graph_from_edges(VertexId num_vertices,
                       const std::vector<std::pair<VertexId, VertexId>>& edges);

}  // namespace lazymc
