#include "graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "graph/builder.hpp"
#include "store/binary_graph.hpp"
#include "support/control.hpp"
#include "support/error.hpp"

namespace lazymc::io {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("lazymc::io: " + what);
}

// Cooperative interrupt check inside the read loops: SIGINT/SIGTERM
// during a multi-gigabyte load unwinds promptly (the driver maps
// ErrorKind::kInterrupted to its interrupted exit code) instead of only
// after the whole file has been parsed.  Polled every kInterruptStride
// lines so the relaxed atomic load stays off the parse profile.
constexpr std::uint64_t kInterruptStride = 4096;

void check_interrupt(std::uint64_t line_no) {
  if ((line_no & (kInterruptStride - 1)) != 0) return;
  if (interrupt::requested()) {
    throw Error(ErrorKind::kInterrupted,
                "graph load interrupted (line " + std::to_string(line_no) +
                    ")");
  }
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return in;
}

// CRLF inputs leave a trailing '\r' on every getline; strip it so Windows
// and Unix copies of the same file parse identically.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Buffered line scanner for the hot read loops: pulls 1 MiB chunks from
/// the stream and hands out string_views split on '\n' with memchr, so a
/// multi-gigabyte load does one istream call per megabyte instead of one
/// getline + istringstream pair per line.  Trailing '\r' is stripped
/// (CRLF tolerance, matching the getline paths).  The returned view is
/// valid only until the next call.
class LineScanner {
 public:
  explicit LineScanner(std::istream& in) : in_(in) {}

  bool next(std::string_view& line) {
    carry_.clear();
    for (;;) {
      if (pos_ == end_ && !refill()) {
        if (carry_.empty()) return false;
        line = carry_;  // final line without a trailing newline
        strip(line);
        return true;
      }
      const auto* nl = static_cast<const char*>(
          std::memchr(pos_, '\n', static_cast<std::size_t>(end_ - pos_)));
      if (nl) {
        if (carry_.empty()) {
          line = {pos_, static_cast<std::size_t>(nl - pos_)};
        } else {
          carry_.append(pos_, nl);
          line = carry_;
        }
        pos_ = nl + 1;
        strip(line);
        return true;
      }
      carry_.append(pos_, end_);  // line spans a chunk boundary
      pos_ = end_;
    }
  }

 private:
  static void strip(std::string_view& line) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  }

  bool refill() {
    if (eof_) return false;
    if (buf_.empty()) buf_.resize(std::size_t{1} << 20);
    in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    const std::streamsize got = in_.gcount();
    if (got <= 0) {
      eof_ = true;
      return false;
    }
    pos_ = buf_.data();
    end_ = buf_.data() + got;
    return true;
  }

  std::istream& in_;
  std::vector<char> buf_;
  std::string carry_;
  const char* pos_ = nullptr;
  const char* end_ = nullptr;
  bool eof_ = false;
};

/// Skips spaces/tabs, then parses a decimal u64 off the front of `s`.
/// False when no digits follow (the view is left unspecified then).
bool parse_u64(std::string_view& s, std::uint64_t& out) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  const char* first = s.data() + i;
  const char* last = s.data() + s.size();
  const auto [p, ec] = std::from_chars(first, last, out);
  if (ec != std::errc() || p == first) return false;
  s.remove_prefix(static_cast<std::size_t>(p - s.data()));
  return true;
}

/// Skips spaces/tabs, then one whitespace-delimited token.  False when
/// the view holds nothing but blanks.
bool skip_token(std::string_view& s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  const std::size_t begin = i;
  while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
  s.remove_prefix(i);
  return i > begin;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  GraphBuilder builder;
  LineScanner scanner(in);
  std::string_view line;
  std::uint64_t line_no = 0;
  // Largest representable 0-based id: the builder stores counts (id + 1)
  // in VertexId, so VertexId's max itself is off-limits too.
  constexpr std::uint64_t kMaxId = std::numeric_limits<VertexId>::max() - 1;
  while (scanner.next(line)) {
    ++line_no;
    check_interrupt(line_no);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::uint64_t u, v;
    if (!parse_u64(line, u) || !parse_u64(line, v)) {
      continue;  // tolerate stray lines
    }
    if (u > kMaxId || v > kMaxId) {
      fail("edge-list vertex id " + std::to_string(std::max(u, v)) +
           " exceeds the supported maximum " + std::to_string(kMaxId) +
           " (line " + std::to_string(line_no) + ")");
    }
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.build();
}

Graph read_dimacs(std::istream& in) {
  GraphBuilder builder;
  LineScanner scanner(in);
  std::string_view line;
  bool saw_problem = false;
  std::uint64_t declared_n = 0, declared_m = 0, edge_records = 0;
  std::uint64_t line_no = 0;
  while (scanner.next(line)) {
    ++line_no;
    check_interrupt(line_no);
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':
        break;
      case 'p': {
        if (saw_problem) {
          fail("duplicate DIMACS 'p' line (line " + std::to_string(line_no) +
               ")");
        }
        // "p <kind> <n> <m>"; the kind token is not validated, matching
        // the historical istream parse.
        std::string_view rest = line;
        skip_token(rest);  // the 'p'
        if (!skip_token(rest) || !parse_u64(rest, declared_n) ||
            !parse_u64(rest, declared_m)) {
          fail("malformed DIMACS 'p' line (line " + std::to_string(line_no) +
               ")");
        }
        if (declared_n > std::numeric_limits<VertexId>::max()) {
          fail("DIMACS vertex count " + std::to_string(declared_n) +
               " exceeds the supported maximum " +
               std::to_string(std::numeric_limits<VertexId>::max()) +
               " (line " + std::to_string(line_no) + ")");
        }
        builder.ensure_vertices(static_cast<VertexId>(declared_n));
        saw_problem = true;
        break;
      }
      case 'e': {
        if (!saw_problem) {
          fail("DIMACS 'e' record before the 'p' line (line " +
               std::to_string(line_no) + ")");
        }
        std::string_view rest = line.substr(1);  // past the 'e'
        std::uint64_t u, v;
        if (!parse_u64(rest, u) || !parse_u64(rest, v)) {
          fail("malformed DIMACS 'e' line (line " + std::to_string(line_no) +
               ")");
        }
        if (u == 0 || v == 0) {
          fail("DIMACS ids are 1-based (line " + std::to_string(line_no) +
               ")");
        }
        if (u > declared_n || v > declared_n) {
          fail("DIMACS edge (" + std::to_string(u) + ", " + std::to_string(v) +
               ") exceeds the declared vertex count " +
               std::to_string(declared_n) + " (line " +
               std::to_string(line_no) + ")");
        }
        ++edge_records;
        builder.add_edge(static_cast<VertexId>(u - 1),
                         static_cast<VertexId>(v - 1));
        break;
      }
      default:
        break;  // ignore unknown records (n, d, x, ...)
    }
  }
  if (!saw_problem) fail("missing DIMACS 'p' line");
  Graph g = builder.build();
  // Wild-corpus files sometimes list both orientations or duplicate
  // records, so accept when either the raw record count or the
  // deduplicated edge count matches the header.
  if (edge_records != declared_m && g.num_edges() != declared_m) {
    fail("DIMACS header declares " + std::to_string(declared_m) +
         " edges but the file has " + std::to_string(edge_records) +
         " 'e' records (" + std::to_string(g.num_edges()) +
         " distinct edges)");
  }
  return g;
}

Graph read_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_edge_list(in);
}

Graph read_dimacs_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_dimacs(in);
}

Graph read_graph_file(const std::string& path) {
  // Binary store first: the magic is unambiguous, and the returned Graph
  // keeps the mmap'ed view alive through its keepalive, so callers that
  // only want a Graph can stay oblivious to the format.
  if (store::is_lmg_file(path)) {
    return store::BinaryGraphView::open(path)->graph();
  }
  auto in = open_or_throw(path);
  // Peek at the first non-empty line.
  std::string line;
  std::streampos start = in.tellg();
  while (std::getline(in, line)) {
    strip_cr(line);
    if (!line.empty()) break;
  }
  in.clear();
  in.seekg(start);
  // DIMACS records: 'c' comments, the 'p' problem line, or — for header-
  // less fragments — an 'e' edge record (a plain edge list line is purely
  // numeric, so a leading 'e' is unambiguous).  Routing 'e' fragments to
  // read_dimacs turns the old silent-empty-graph outcome into a clear
  // "missing 'p' line" error.
  const bool dimacs =
      !line.empty() &&
      (line[0] == 'c' || line[0] == 'p' ||
       (line[0] == 'e' && line.size() > 1 && (line[1] == ' ' ||
                                              line[1] == '\t')));
  if (dimacs) return read_dimacs(in);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# " << g.num_vertices() << " vertices, " << g.num_edges()
      << " edges\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) out << v << ' ' << u << '\n';
    }
  }
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) out << "e " << (v + 1) << ' ' << (u + 1) << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_edge_list(g, out);
}

void write_dimacs_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_dimacs(g, out);
}

}  // namespace lazymc::io
