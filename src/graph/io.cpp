#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace lazymc::io {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("lazymc::io: " + what);
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return in;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u, v;
    if (!(ls >> u >> v)) continue;  // tolerate stray lines
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.build();
}

Graph read_dimacs(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  bool saw_problem = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':
        break;
      case 'p': {
        std::istringstream ls(line);
        std::string p, kind;
        std::uint64_t n = 0, m = 0;
        if (!(ls >> p >> kind >> n >> m)) fail("malformed DIMACS 'p' line");
        if (n > 0) builder.add_edge(static_cast<VertexId>(n - 1),
                                    static_cast<VertexId>(n - 1));  // sizes n
        saw_problem = true;
        break;
      }
      case 'e': {
        std::istringstream ls(line);
        char e;
        std::uint64_t u, v;
        if (!(ls >> e >> u >> v)) fail("malformed DIMACS 'e' line");
        if (u == 0 || v == 0) fail("DIMACS ids are 1-based");
        builder.add_edge(static_cast<VertexId>(u - 1),
                         static_cast<VertexId>(v - 1));
        break;
      }
      default:
        break;  // ignore unknown records (n, d, x, ...)
    }
  }
  if (!saw_problem) fail("missing DIMACS 'p' line");
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_edge_list(in);
}

Graph read_dimacs_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_dimacs(in);
}

Graph read_graph_file(const std::string& path) {
  auto in = open_or_throw(path);
  // Peek at the first non-empty line.
  std::string line;
  std::streampos start = in.tellg();
  while (std::getline(in, line) && line.empty()) {
  }
  in.clear();
  in.seekg(start);
  if (!line.empty() && (line[0] == 'c' || line[0] == 'p')) {
    return read_dimacs(in);
  }
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# " << g.num_vertices() << " vertices, " << g.num_edges()
      << " edges\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) out << v << ' ' << u << '\n';
    }
  }
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) out << "e " << (v + 1) << ' ' << (u + 1) << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_edge_list(g, out);
}

void write_dimacs_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_dimacs(g, out);
}

}  // namespace lazymc::io
