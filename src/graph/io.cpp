#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "support/control.hpp"
#include "support/error.hpp"

namespace lazymc::io {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("lazymc::io: " + what);
}

// Cooperative interrupt check inside the read loops: SIGINT/SIGTERM
// during a multi-gigabyte load unwinds promptly (the driver maps
// ErrorKind::kInterrupted to its interrupted exit code) instead of only
// after the whole file has been parsed.  Polled every kInterruptStride
// lines so the relaxed atomic load stays off the parse profile.
constexpr std::uint64_t kInterruptStride = 4096;

void check_interrupt(std::uint64_t line_no) {
  if ((line_no & (kInterruptStride - 1)) != 0) return;
  if (interrupt::requested()) {
    throw Error(ErrorKind::kInterrupted,
                "graph load interrupted (line " + std::to_string(line_no) +
                    ")");
  }
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return in;
}

// CRLF inputs leave a trailing '\r' on every getline; strip it so Windows
// and Unix copies of the same file parse identically.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  std::uint64_t line_no = 0;
  // Largest representable 0-based id: the builder stores counts (id + 1)
  // in VertexId, so VertexId's max itself is off-limits too.
  constexpr std::uint64_t kMaxId = std::numeric_limits<VertexId>::max() - 1;
  while (std::getline(in, line)) {
    ++line_no;
    check_interrupt(line_no);
    strip_cr(line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u, v;
    if (!(ls >> u >> v)) continue;  // tolerate stray lines
    if (u > kMaxId || v > kMaxId) {
      fail("edge-list vertex id " + std::to_string(std::max(u, v)) +
           " exceeds the supported maximum " + std::to_string(kMaxId) +
           " (line " + std::to_string(line_no) + ")");
    }
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.build();
}

Graph read_dimacs(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  bool saw_problem = false;
  std::uint64_t declared_n = 0, declared_m = 0, edge_records = 0;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    check_interrupt(line_no);
    strip_cr(line);
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':
        break;
      case 'p': {
        if (saw_problem) {
          fail("duplicate DIMACS 'p' line (line " + std::to_string(line_no) +
               ")");
        }
        std::istringstream ls(line);
        std::string p, kind;
        if (!(ls >> p >> kind >> declared_n >> declared_m)) {
          fail("malformed DIMACS 'p' line (line " + std::to_string(line_no) +
               ")");
        }
        if (declared_n > std::numeric_limits<VertexId>::max()) {
          fail("DIMACS vertex count " + std::to_string(declared_n) +
               " exceeds the supported maximum " +
               std::to_string(std::numeric_limits<VertexId>::max()) +
               " (line " + std::to_string(line_no) + ")");
        }
        builder.ensure_vertices(static_cast<VertexId>(declared_n));
        saw_problem = true;
        break;
      }
      case 'e': {
        if (!saw_problem) {
          fail("DIMACS 'e' record before the 'p' line (line " +
               std::to_string(line_no) + ")");
        }
        std::istringstream ls(line);
        char e;
        std::uint64_t u, v;
        if (!(ls >> e >> u >> v)) {
          fail("malformed DIMACS 'e' line (line " + std::to_string(line_no) +
               ")");
        }
        if (u == 0 || v == 0) {
          fail("DIMACS ids are 1-based (line " + std::to_string(line_no) +
               ")");
        }
        if (u > declared_n || v > declared_n) {
          fail("DIMACS edge (" + std::to_string(u) + ", " + std::to_string(v) +
               ") exceeds the declared vertex count " +
               std::to_string(declared_n) + " (line " +
               std::to_string(line_no) + ")");
        }
        ++edge_records;
        builder.add_edge(static_cast<VertexId>(u - 1),
                         static_cast<VertexId>(v - 1));
        break;
      }
      default:
        break;  // ignore unknown records (n, d, x, ...)
    }
  }
  if (!saw_problem) fail("missing DIMACS 'p' line");
  Graph g = builder.build();
  // Wild-corpus files sometimes list both orientations or duplicate
  // records, so accept when either the raw record count or the
  // deduplicated edge count matches the header.
  if (edge_records != declared_m && g.num_edges() != declared_m) {
    fail("DIMACS header declares " + std::to_string(declared_m) +
         " edges but the file has " + std::to_string(edge_records) +
         " 'e' records (" + std::to_string(g.num_edges()) +
         " distinct edges)");
  }
  return g;
}

Graph read_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_edge_list(in);
}

Graph read_dimacs_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_dimacs(in);
}

Graph read_graph_file(const std::string& path) {
  auto in = open_or_throw(path);
  // Peek at the first non-empty line.
  std::string line;
  std::streampos start = in.tellg();
  while (std::getline(in, line)) {
    strip_cr(line);
    if (!line.empty()) break;
  }
  in.clear();
  in.seekg(start);
  // DIMACS records: 'c' comments, the 'p' problem line, or — for header-
  // less fragments — an 'e' edge record (a plain edge list line is purely
  // numeric, so a leading 'e' is unambiguous).  Routing 'e' fragments to
  // read_dimacs turns the old silent-empty-graph outcome into a clear
  // "missing 'p' line" error.
  const bool dimacs =
      !line.empty() &&
      (line[0] == 'c' || line[0] == 'p' ||
       (line[0] == 'e' && line.size() > 1 && (line[1] == ' ' ||
                                              line[1] == '\t')));
  if (dimacs) return read_dimacs(in);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# " << g.num_vertices() << " vertices, " << g.num_edges()
      << " edges\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) out << v << ' ' << u << '\n';
    }
  }
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (v < u) out << "e " << (v + 1) << ' ' << (u + 1) << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_edge_list(g, out);
}

void write_dimacs_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_dimacs(g, out);
}

}  // namespace lazymc::io
