#include "lazygraph/lazy_graph.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "intersect/intersect.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"

namespace lazymc {

bool NeighborhoodView::contains(VertexId v) const {
  if (hash_) return hash_->contains(v);
  if (!sorted_.empty()) {
    return std::binary_search(sorted_.begin(), sorted_.end(), v);
  }
  if (row_.valid()) return row_.contains(v);
  if (hybrid_.valid()) return hybrid_.contains(v);
  return false;
}

LazyGraph::LazyGraph(const Graph& g, const kcore::VertexOrder& order,
                     const std::vector<VertexId>& coreness_orig,
                     const std::atomic<VertexId>* incumbent_size)
    : base_(&g),
      order_(&order),
      incumbent_size_(incumbent_size),
      n_(g.num_vertices()),
      flags_(g.num_vertices()),
      locks_(std::make_unique<SpinLock[]>(g.num_vertices())),
      hash_(g.num_vertices()),
      sorted_(g.num_vertices()),
      right_begin_(g.num_vertices(), 0) {
  if (coreness_orig.size() != n_ || order.size() != n_) {
    throw std::invalid_argument("LazyGraph: order/coreness size mismatch");
  }
  coreness_new_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) {
    coreness_new_[v] = coreness_orig[order.new_to_orig[v]];
  }
  for (auto& f : flags_) f.store(0, std::memory_order_relaxed);
}

std::vector<VertexId> LazyGraph::filtered_neighbors(VertexId v) const {
  // Lazy filtering by coreness against the incumbent size *now*
  // (Algorithm 2 line 20).  A relaxed read is safe: the incumbent only
  // grows, so a stale (smaller) value merely filters less.
  const VertexId bound = incumbent_size_
                             ? incumbent_size_->load(std::memory_order_relaxed)
                             : 0;
  const VertexId orig = order_->new_to_orig[v];
  std::vector<VertexId> result;
  auto nbrs = base_->neighbors(orig);
  result.reserve(nbrs.size());
  std::size_t filtered = 0;
  for (VertexId u_orig : nbrs) {
    VertexId u = order_->orig_to_new[u_orig];
    if (coreness_new_[u] >= bound) {
      result.push_back(u);
    } else {
      ++filtered;
    }
  }
  stat_kept_.fetch_add(result.size(), std::memory_order_relaxed);
  stat_filtered_.fetch_add(filtered, std::memory_order_relaxed);
  return result;
}

void LazyGraph::build_hash(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kHashBuilt) return;
  std::vector<VertexId> nbrs = filtered_neighbors(v);
  hash_[v].reserve(nbrs.size());
  for (VertexId u : nbrs) hash_[v].insert(u);
  stat_hash_built_.fetch_add(1, std::memory_order_relaxed);
  flags_[v].fetch_or(kHashBuilt, std::memory_order_release);
}

void LazyGraph::build_sorted(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kSortedBuilt) return;
  std::vector<VertexId> nbrs = filtered_neighbors(v);
  std::sort(nbrs.begin(), nbrs.end());
  sorted_[v] = std::move(nbrs);
  right_begin_[v] = static_cast<std::uint32_t>(
      std::upper_bound(sorted_[v].begin(), sorted_[v].end(), v) -
      sorted_[v].begin());
  stat_sorted_built_.fetch_add(1, std::memory_order_relaxed);
  flags_[v].fetch_or(kSortedBuilt, std::memory_order_release);
}

std::uint64_t* LazyGraph::carve(std::size_t stride_words) {
  SpinLockGuard guard(arena_lock_);
  if (slab_words_left_ < stride_words) {
    LAZYMC_FAULT_BAD_ALLOC("slab.alloc");
    // Variable container strides (hybrid mode) can leave a tail too small
    // for this carve.  The tail is unreachable memory, so account it as
    // waste and charge it to the budget — total arena allocation stays
    // within the cap, and carved + waste + remainder always explains the
    // allocated total (the checked-mode invariant below).
    if (slab_words_left_ > 0) {
      arena_waste_words_.fetch_add(slab_words_left_,
                                   std::memory_order_relaxed);
      bitset_budget_words_.fetch_sub(
          static_cast<std::int64_t>(slab_words_left_),
          std::memory_order_relaxed);
      slab_words_left_ = 0;
    }
    // The caller already reserved this carve from the budget, so
    // `remaining` counts the *other* rows that can still be admitted;
    // sizing the slab to them (plus this carve) keeps total arena
    // allocation within the budget instead of overshooting by up to a
    // slab.
    const std::int64_t remaining =
        bitset_budget_words_.load(std::memory_order_relaxed);
    std::size_t words = stride_words;
    if (remaining > 0) {
      words += std::min(slab_words_ - stride_words,
                        static_cast<std::size_t>(remaining) / stride_words *
                            stride_words);
    }
    // AlignedWords puts the slab base on a 64-byte boundary; carving at
    // multiples of 8 words keeps every row on one too.
    row_slabs_.emplace_back(words);
    arena_total_words_.fetch_add(words, std::memory_order_relaxed);
    slab_cursor_ = row_slabs_.back().data();
    slab_words_left_ = words;
  }
  std::uint64_t* row = slab_cursor_;
  slab_cursor_ += stride_words;
  slab_words_left_ -= stride_words;
  arena_carved_words_.fetch_add(stride_words, std::memory_order_relaxed);
  LAZYMC_ASSERT(arena_total_words_.load(std::memory_order_relaxed) ==
                    arena_carved_words_.load(std::memory_order_relaxed) +
                        arena_waste_words_.load(std::memory_order_relaxed) +
                        slab_words_left_,
                "slab arena accounting drifted: allocated != carved + waste "
                "+ remainder");
  return row;
}

void LazyGraph::build_bitset(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kBitsetBuilt) return;
  if (bitset_exhausted_.load(std::memory_order_relaxed)) return;
  // Reserve this row's words (at the aligned stride) from the global
  // budget before committing.
  const std::int64_t words = static_cast<std::int64_t>(row_stride_words_);
  if (bitset_budget_words_.fetch_sub(words, std::memory_order_relaxed) <
      words) {
    bitset_budget_words_.fetch_add(words, std::memory_order_relaxed);
    bitset_exhausted_.store(true, std::memory_order_relaxed);
    return;
  }
  std::vector<VertexId> nbrs;
  std::uint64_t* row = nullptr;
  try {
    LAZYMC_FAULT_BAD_ALLOC("bitset.row");
    nbrs = filtered_neighbors(v);
    row = carve_row();
  } catch (const std::bad_alloc&) {
    // Allocation failure degrades this one vertex, not the solve: refund
    // the reserved words (another row may still fit), count it, and leave
    // kBitsetBuilt clear so membership() falls back to hash/sorted.  The
    // exhausted flag stays down — later rows get their own chance.
    bitset_budget_words_.fetch_add(words, std::memory_order_relaxed);
    stat_bitset_degraded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Rows are carved at a 64-byte stride from 64-byte-aligned slabs; the
  // SIMD tiers' aligned loads rely on this.
  LAZYMC_ASSERT(reinterpret_cast<std::uintptr_t>(row) % 64 == 0,
                "bitset row is not 64-byte aligned");
  std::fill(row, row + row_words_, 0);
  std::uint32_t count = 0;
  for (VertexId u : nbrs) {
    if (u < zone_begin_) continue;
    const VertexId off = u - zone_begin_;
    LAZYMC_ASSERT(off < zone_bits_,
                  "bitset row bit outside the zone of interest");
    row[off >> 6] |= 1ULL << (off & 63);
    ++count;
  }
  LAZYMC_ASSERT_EXPENSIVE(
      std::accumulate(row, row + row_words_, std::size_t{0},
                      [](std::size_t acc, std::uint64_t w) {
                        return acc + static_cast<std::size_t>(
                                         std::popcount(w));
                      }) == count,
      "bitset row popcount does not match the bits written");
  row_ptr_[v - zone_begin_] = row;
  row_count_[v - zone_begin_] = count;
  stat_bitset_built_.fetch_add(1, std::memory_order_relaxed);
  stat_bitset_words_.fetch_add(row_stride_words_, std::memory_order_relaxed);
  // The release publishes the row pointer and its contents to readers
  // that load the flag with acquire (row_view).
  flags_[v].fetch_or(kBitsetBuilt, std::memory_order_release);
}

namespace {
// Payload of every empty hybrid row: valid pointer, zero units, no arena
// charge.  Read-only after static initialization.
std::uint64_t empty_hybrid_payload[1] = {0};
}  // namespace

void LazyGraph::build_hybrid(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kBitsetBuilt) return;
  if (bitset_exhausted_.load(std::memory_order_relaxed)) return;
  const VertexId zi = v - zone_begin_;

  // Phase 1 (may allocate, nothing reserved yet): the filtered
  // neighborhood as sorted in-zone offsets, plus the run decomposition.
  // An allocation failure here degrades this one vertex to hash/sorted.
  std::vector<std::uint32_t> offs;
  std::vector<std::uint32_t> run_payload;
  std::uint32_t runs = 0;
  try {
    LAZYMC_FAULT_BAD_ALLOC("bitset.row");
    std::vector<VertexId> nbrs = filtered_neighbors(v);
    offs.reserve(nbrs.size());
    for (VertexId u : nbrs) {
      if (u < zone_begin_) continue;
      const VertexId off = u - zone_begin_;
      LAZYMC_ASSERT(off < zone_bits_,
                    "hybrid row bit outside the zone of interest");
      offs.push_back(static_cast<std::uint32_t>(off));
    }
    std::sort(offs.begin(), offs.end());
    for (std::size_t i = 0; i < offs.size(); ++i) {
      if (i == 0 || offs[i] != offs[i - 1] + 1) ++runs;
    }
    run_payload.reserve(2 * static_cast<std::size_t>(runs));
    for (std::size_t i = 0; i < offs.size(); ++i) {
      if (i == 0 || offs[i] != offs[i - 1] + 1) {
        run_payload.push_back(offs[i]);  // start
        run_payload.push_back(1);        // length
      } else {
        ++run_payload.back();
      }
    }
  } catch (const std::bad_alloc&) {
    stat_bitset_degraded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t count = static_cast<std::uint32_t>(offs.size());

  // Container selection by per-row byte cost, at the carve granularity
  // (whole 64-byte cache lines — the budget charges the stride):
  //   array  — count u32 offsets, eligible when count <= array_max and it
  //            actually undercuts the packed words;
  //   run    — `runs` (start, len) pairs, chosen only when at least
  //            run_min_saving x smaller than the best dense alternative
  //            (cursor overhead is not worth a marginal saving);
  //   bitset — row_words_ packed words, the dense default.
  RowContainer kind = RowContainer::kBitset;
  std::size_t stride = row_stride_words_;
  std::uint32_t units = static_cast<std::uint32_t>(row_words_);
  if (count == 0) {
    kind = RowContainer::kArray;
    stride = 0;
    units = 0;
  } else {
    const std::size_t stride_array =
        ((static_cast<std::size_t>(count) + 1) / 2 + 7) & ~std::size_t{7};
    if (count <= hybrid_array_max_ && stride_array < stride) {
      kind = RowContainer::kArray;
      stride = stride_array;
      units = count;
    }
    const std::size_t stride_run =
        (static_cast<std::size_t>(runs) + 7) & ~std::size_t{7};
    if (static_cast<double>(stride_run) * hybrid_run_min_saving_ <=
        static_cast<double>(stride)) {
      kind = RowContainer::kRun;
      stride = stride_run;
      units = runs;
    }
  }

  std::uint64_t* row = empty_hybrid_payload;
  if (stride > 0) {
    // Reserve this container's words (at the carve stride) from the
    // global budget before committing.
    const std::int64_t words = static_cast<std::int64_t>(stride);
    if (bitset_budget_words_.fetch_sub(words, std::memory_order_relaxed) <
        words) {
      bitset_budget_words_.fetch_add(words, std::memory_order_relaxed);
      bitset_exhausted_.store(true, std::memory_order_relaxed);
      return;
    }
    try {
      row = carve(stride);
    } catch (const std::bad_alloc&) {
      // Same refund contract as build_bitset: the reserved words go back
      // (stride included — the budget charged the stride, so the refund
      // returns the stride), this vertex degrades, later rows still get
      // their chance.
      bitset_budget_words_.fetch_add(words, std::memory_order_relaxed);
      stat_bitset_degraded_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    LAZYMC_ASSERT(reinterpret_cast<std::uintptr_t>(row) % 64 == 0,
                  "hybrid row is not 64-byte aligned");
    // Phase 2 (no-throw): fill the carved payload.  Slab words are
    // value-initialized, so padding past the payload stays zero.
    switch (kind) {
      case RowContainer::kArray:
        std::memcpy(row, offs.data(), static_cast<std::size_t>(count) * 4);
        break;
      case RowContainer::kRun:
        std::memcpy(row, run_payload.data(), run_payload.size() * 4);
        break;
      case RowContainer::kBitset:
        std::fill(row, row + row_words_, 0);
        for (std::uint32_t off : offs) {
          row[off >> 6] |= 1ULL << (off & 63);
        }
        break;
    }
  }
  LAZYMC_ASSERT_EXPENSIVE(
      ([&] {
        const HybridRow hr{row,   zone_begin_, zone_bits_,
                           count, units,       kind};
        for (std::uint32_t off : offs) {
          if (!hr.contains(zone_begin_ + off)) return false;
        }
        std::size_t total = 0;
        hybrid_detail::for_each_word(hr, [&](std::uint32_t,
                                             std::uint64_t bits) {
          total += static_cast<std::size_t>(std::popcount(bits));
          return true;
        });
        return total == count;
      }()),
      "hybrid row container does not reproduce the offsets written");
  row_ptr_[zi] = row;
  row_count_[zi] = count;
  row_units_[zi] = units;
  row_kind_[zi] = static_cast<std::uint8_t>(kind);
  stat_bitset_built_.fetch_add(1, std::memory_order_relaxed);
  stat_bitset_words_.fetch_add(stride, std::memory_order_relaxed);
  stat_hybrid_rows_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  stat_hybrid_words_[static_cast<std::size_t>(kind)].fetch_add(
      stride, std::memory_order_relaxed);
  // The release publishes the row pointer, payload, and container
  // metadata to readers that load the flag with acquire (hybrid_view).
  flags_[v].fetch_or(kBitsetBuilt, std::memory_order_release);
}

bool LazyGraph::init_zone(std::size_t budget_bytes) {
  const VertexId bound = incumbent_size_
                             ? incumbent_size_->load(std::memory_order_relaxed)
                             : 0;
  // Relabelled ids are sorted by ascending coreness (both supported
  // orders), so the zone of interest is the suffix starting at the first
  // vertex with coreness >= the incumbent.
  const VertexId zb = static_cast<VertexId>(
      std::lower_bound(coreness_new_.begin(), coreness_new_.end(), bound) -
      coreness_new_.begin());
  if (zb >= n_) return false;  // empty zone: nothing left to search anyway
  const VertexId zone_bits = n_ - zb;
  // The per-vertex bookkeeping (row pointer + popcount array) is O(zone)
  // and allocated up front, so it counts against the budget too —
  // otherwise a huge zone could dwarf the cap before any row is built.
  const std::size_t overhead =
      static_cast<std::size_t>(zone_bits) *
      (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  if (budget_bytes <= overhead) return false;  // zone too large for budget
  zone_begin_ = zb;
  zone_bits_ = zone_bits;
  row_words_ = (static_cast<std::size_t>(zone_bits_) + 63) / 64;
  // Rows are carved at a 64-byte stride (whole cache lines) so each one
  // starts aligned; the budget charges the stride, not the raw width.
  row_stride_words_ = (row_words_ + 7) & ~std::size_t{7};
  row_ptr_.assign(zone_bits_, nullptr);
  row_count_.assign(zone_bits_, 0);
  const std::size_t budget_words = (budget_bytes - overhead) / 8;
  // Arena slabs target ~1 MiB, rounded to whole rows, never exceeding
  // what the zone or the budget can use — the allocator is touched once
  // per slab instead of once per row.
  std::size_t rows_per_slab =
      std::max<std::size_t>(1, (std::size_t{1} << 17) / row_stride_words_);
  rows_per_slab = std::min<std::size_t>(rows_per_slab, zone_bits_);
  rows_per_slab = std::min<std::size_t>(
      rows_per_slab,
      std::max<std::size_t>(1, budget_words / row_stride_words_));
  {
    // Zone enabling runs before concurrent use begins, but the arena
    // fields belong to arena_lock_, so initialize them under it — keeps
    // the lock discipline total (and -Wthread-safety clean).
    SpinLockGuard guard(arena_lock_);
    slab_words_ = rows_per_slab * row_stride_words_;
    slab_cursor_ = nullptr;
    slab_words_left_ = 0;
  }
  arena_total_words_.store(0, std::memory_order_relaxed);
  arena_carved_words_.store(0, std::memory_order_relaxed);
  arena_waste_words_.store(0, std::memory_order_relaxed);
  bitset_budget_words_.store(static_cast<std::int64_t>(budget_words),
                             std::memory_order_relaxed);
  bitset_exhausted_.store(false, std::memory_order_relaxed);
  return true;
}

void LazyGraph::enable_bitset_rows(std::size_t budget_bytes) {
  if (bitset_enabled_ || hybrid_enabled_) return;
  if (!init_zone(budget_bytes)) return;
  bitset_enabled_ = true;
}

void LazyGraph::enable_hybrid_rows(std::size_t budget_bytes,
                                   std::uint32_t array_max,
                                   double run_min_saving) {
  if (bitset_enabled_ || hybrid_enabled_) return;
  // The container metadata is 5 extra bytes per zone vertex on top of the
  // pointer + popcount bookkeeping init_zone charges.
  if (!init_zone(budget_bytes)) return;
  hybrid_array_max_ = array_max;
  // < 1 would let a *larger* run container beat the alternatives; clamp
  // so run selection is always a genuine saving.
  hybrid_run_min_saving_ = std::max(1.0, run_min_saving);
  row_units_.assign(zone_bits_, 0);
  row_kind_.assign(zone_bits_,
                   static_cast<std::uint8_t>(RowContainer::kBitset));
  hybrid_enabled_ = true;
}

bool LazyGraph::adopt_prebuilt_rows(const PrebuiltRows& rows, bool hybrid) {
  if (bitset_enabled_ || hybrid_enabled_) return false;
  if (!rows.valid()) return false;
  // The zone must be exactly the suffix [zone_begin, n) of relabelled
  // ids — the store and this graph must agree on the vertex order for
  // the bit positions to mean the same vertices.
  if (rows.zone_begin >= n_ || n_ - rows.zone_begin != rows.zone_bits) {
    return false;
  }
  const std::size_t words =
      (static_cast<std::size_t>(rows.zone_bits) + 63) / 64;
  if (rows.stride_words < words || rows.stride_words % 8 != 0 ||
      reinterpret_cast<std::uintptr_t>(rows.words) % 64 != 0) {
    return false;  // the SIMD tiers' aligned loads would be illegal
  }
  // Zone-coverage check: every vertex with coreness >= the incumbent must
  // be *inside* the stored zone.  Stored rows may cover extra low-coreness
  // vertices (they are supersets, safe by the heterogeneous-incumbent
  // filtering invariant) but never fewer — a vertex outside the stored
  // zone has no bit position, so its adjacency would silently vanish.
  const VertexId bound = incumbent_size_
                             ? incumbent_size_->load(std::memory_order_relaxed)
                             : 0;
  if (rows.zone_begin > 0 && coreness_new_[rows.zone_begin - 1] >= bound) {
    return false;  // stored zone is narrower than the live zone
  }

  zone_begin_ = rows.zone_begin;
  zone_bits_ = rows.zone_bits;
  row_words_ = words;
  row_stride_words_ = rows.stride_words;
  row_ptr_.resize(zone_bits_);
  row_count_.assign(rows.counts, rows.counts + zone_bits_);
  for (VertexId i = 0; i < zone_bits_; ++i) {
    // const_cast only to fit the shared row_ptr_ slot; adopted rows are
    // published as built, so no build path ever writes through them
    // (the backing mmap is PROT_READ — a write would fault).
    row_ptr_[i] = const_cast<std::uint64_t*>(
        rows.words + static_cast<std::size_t>(i) * rows.stride_words);
  }
  if (hybrid) {
    // Every adopted row is a packed bitset container over the full zone.
    row_units_.assign(zone_bits_, static_cast<std::uint32_t>(row_words_));
    row_kind_.assign(zone_bits_,
                     static_cast<std::uint8_t>(RowContainer::kBitset));
  }
  // No budget: nothing will ever be carved (every zone row already
  // exists), and out-of-zone vertices never get rows by construction.
  bitset_budget_words_.store(0, std::memory_order_relaxed);
  bitset_exhausted_.store(false, std::memory_order_relaxed);
  rows_prebuilt_ = zone_bits_;
  for (VertexId v = zone_begin_; v < n_; ++v) {
    // The release publishes the pointers and metadata written above to
    // readers that load the flag with acquire (row_view / hybrid_view).
    flags_[v].fetch_or(kBitsetBuilt, std::memory_order_release);
  }
  if (hybrid) {
    hybrid_enabled_ = true;
  } else {
    bitset_enabled_ = true;
  }
  return true;
}

const HopscotchSet& LazyGraph::hashed_neighborhood(VertexId v) {
  if (!(flags_[v].load(std::memory_order_acquire) & kHashBuilt)) {
    build_hash(v);
  }
  return hash_[v];
}

std::span<const VertexId> LazyGraph::sorted_neighborhood(VertexId v) {
  if (!(flags_[v].load(std::memory_order_acquire) & kSortedBuilt)) {
    build_sorted(v);
  }
  return {sorted_[v].data(), sorted_[v].size()};
}

std::span<const VertexId> LazyGraph::right_neighborhood(VertexId v) {
  auto all = sorted_neighborhood(v);
  return all.subspan(right_begin_[v]);
}

BitsetRow LazyGraph::bitset_row(VertexId v) {
  if (!bitset_enabled_ || v < zone_begin_) return {};
  if (!(flags_[v].load(std::memory_order_acquire) & kBitsetBuilt)) {
    build_bitset(v);
    if (!(flags_[v].load(std::memory_order_acquire) & kBitsetBuilt)) {
      return {};  // budget exhausted
    }
  }
  return row_view(v);
}

HybridRow LazyGraph::hybrid_row(VertexId v) {
  if (!hybrid_enabled_ || v < zone_begin_) return {};
  if (!(flags_[v].load(std::memory_order_acquire) & kBitsetBuilt)) {
    build_hybrid(v);
    if (!(flags_[v].load(std::memory_order_acquire) & kBitsetBuilt)) {
      return {};  // budget exhausted or degraded
    }
  }
  return hybrid_view(v);
}

NeighborhoodView LazyGraph::membership(VertexId v) {
  std::uint8_t f = flags_[v].load(std::memory_order_acquire);
  BitsetRow row{};
  HybridRow hyb{};
  if (f & kBitsetBuilt) {
    // kBitsetBuilt means "zone row built"; which view it decodes to
    // depends on the mode the zone was enabled in.
    if (hybrid_enabled_) {
      hyb = hybrid_view(v);
    } else {
      row = row_view(v);
    }
  }
  if (f & kHashBuilt) return NeighborhoodView(&hash_[v], {}, row, hyb);
  if (f & kSortedBuilt) {
    return NeighborhoodView(nullptr, {sorted_[v].data(), sorted_[v].size()},
                            row, hyb);
  }
  if (row.valid() || hyb.valid()) {
    return NeighborhoodView(nullptr, {}, row, hyb);
  }

  // Nothing exists yet: build by preference.
  if (rep_ == NeighborhoodRep::kHash) {
    return NeighborhoodView(&hashed_neighborhood(v), {});
  }
  if (rep_ == NeighborhoodRep::kSorted) {
    return NeighborhoodView(nullptr, sorted_neighborhood(v));
  }
  if (rep_ == NeighborhoodRep::kBitset) {
    BitsetRow r = bitset_row(v);
    if (r.valid()) return NeighborhoodView(nullptr, {}, r);
    // Out of zone or budget: fall through to the auto rule.
  }
  if (rep_ == NeighborhoodRep::kHybrid) {
    HybridRow r = hybrid_row(v);
    if (r.valid()) return NeighborhoodView(nullptr, {}, {}, r);
    // Out of zone or budget: fall through to the auto rule.
  }
  // Auto rule (paper: hash when degree > 16), upgraded to a zone row
  // when one is available and no more expensive to build than the set.
  const VertexId deg = original_degree(v);
  if (deg > kHashDegreeThreshold) {
    if (auto_wants_bitset(v, deg)) {
      if (hybrid_enabled_) {
        HybridRow r = hybrid_row(v);
        if (r.valid()) return NeighborhoodView(nullptr, {}, {}, r);
      } else {
        BitsetRow r = bitset_row(v);
        if (r.valid()) return NeighborhoodView(nullptr, {}, r);
      }
    }
    return NeighborhoodView(&hashed_neighborhood(v), {});
  }
  return NeighborhoodView(nullptr, sorted_neighborhood(v));
}

void LazyGraph::prepopulate(Prepopulate policy, VertexId must_threshold) {
  if (policy == Prepopulate::kNone) return;
  parallel_for(0, n_, [&](std::size_t i) {
    VertexId v = static_cast<VertexId>(i);
    if (policy != Prepopulate::kAll && coreness_new_[v] < must_threshold) {
      return;
    }
    // Build the preferred representation; hash is the historical default
    // and the fallback when a requested bitset row is unavailable.
    switch (rep_) {
      case NeighborhoodRep::kSorted:
        sorted_neighborhood(v);
        return;
      case NeighborhoodRep::kBitset:
        if (bitset_row(v).valid()) return;
        break;
      case NeighborhoodRep::kHybrid:
        if (hybrid_row(v).valid()) return;
        break;
      case NeighborhoodRep::kAuto:
        if (auto_wants_bitset(v, original_degree(v)) &&
            (hybrid_enabled_ ? hybrid_row(v).valid()
                             : bitset_row(v).valid())) {
          return;
        }
        break;
      case NeighborhoodRep::kHash:
        break;
    }
    hashed_neighborhood(v);
  }, 64);
}

LazyGraph::Stats LazyGraph::stats() const {
  constexpr auto kA = static_cast<std::size_t>(RowContainer::kArray);
  constexpr auto kB = static_cast<std::size_t>(RowContainer::kBitset);
  constexpr auto kR = static_cast<std::size_t>(RowContainer::kRun);
  Stats s;
  s.hash_built = stat_hash_built_.load(std::memory_order_relaxed);
  s.sorted_built = stat_sorted_built_.load(std::memory_order_relaxed);
  s.bitset_built = stat_bitset_built_.load(std::memory_order_relaxed);
  s.bitset_degraded = stat_bitset_degraded_.load(std::memory_order_relaxed);
  s.rows_prebuilt = rows_prebuilt_;
  s.bitset_bytes = stat_bitset_words_.load(std::memory_order_relaxed) * 8;
  s.zone_size = (bitset_enabled_ || hybrid_enabled_)
                    ? static_cast<std::size_t>(zone_bits_)
                    : 0;
  s.neighbors_kept = stat_kept_.load(std::memory_order_relaxed);
  s.neighbors_filtered = stat_filtered_.load(std::memory_order_relaxed);
  s.hybrid_rows_array = stat_hybrid_rows_[kA].load(std::memory_order_relaxed);
  s.hybrid_rows_bitset = stat_hybrid_rows_[kB].load(std::memory_order_relaxed);
  s.hybrid_rows_run = stat_hybrid_rows_[kR].load(std::memory_order_relaxed);
  s.hybrid_array_bytes =
      stat_hybrid_words_[kA].load(std::memory_order_relaxed) * 8;
  s.hybrid_bitset_bytes =
      stat_hybrid_words_[kB].load(std::memory_order_relaxed) * 8;
  s.hybrid_run_bytes =
      stat_hybrid_words_[kR].load(std::memory_order_relaxed) * 8;
  // The committed row bytes are exactly the per-class sum in hybrid mode
  // (quiescent check: callers read stats after the search completes).
  LAZYMC_ASSERT(!hybrid_enabled_ ||
                    s.bitset_bytes == s.hybrid_array_bytes +
                                          s.hybrid_bitset_bytes +
                                          s.hybrid_run_bytes,
                "hybrid per-class byte accounting drifted from the "
                "committed row total");
  return s;
}

}  // namespace lazymc
