#include "lazygraph/lazy_graph.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "intersect/intersect.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"

namespace lazymc {

bool NeighborhoodView::contains(VertexId v) const {
  if (hash_) return hash_->contains(v);
  if (!sorted_.empty() || !row_.valid()) {
    return std::binary_search(sorted_.begin(), sorted_.end(), v);
  }
  return row_.contains(v);
}

LazyGraph::LazyGraph(const Graph& g, const kcore::VertexOrder& order,
                     const std::vector<VertexId>& coreness_orig,
                     const std::atomic<VertexId>* incumbent_size)
    : base_(&g),
      order_(&order),
      incumbent_size_(incumbent_size),
      n_(g.num_vertices()),
      flags_(g.num_vertices()),
      locks_(std::make_unique<SpinLock[]>(g.num_vertices())),
      hash_(g.num_vertices()),
      sorted_(g.num_vertices()),
      right_begin_(g.num_vertices(), 0) {
  if (coreness_orig.size() != n_ || order.size() != n_) {
    throw std::invalid_argument("LazyGraph: order/coreness size mismatch");
  }
  coreness_new_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) {
    coreness_new_[v] = coreness_orig[order.new_to_orig[v]];
  }
  for (auto& f : flags_) f.store(0, std::memory_order_relaxed);
}

std::vector<VertexId> LazyGraph::filtered_neighbors(VertexId v) const {
  // Lazy filtering by coreness against the incumbent size *now*
  // (Algorithm 2 line 20).  A relaxed read is safe: the incumbent only
  // grows, so a stale (smaller) value merely filters less.
  const VertexId bound = incumbent_size_
                             ? incumbent_size_->load(std::memory_order_relaxed)
                             : 0;
  const VertexId orig = order_->new_to_orig[v];
  std::vector<VertexId> result;
  auto nbrs = base_->neighbors(orig);
  result.reserve(nbrs.size());
  std::size_t filtered = 0;
  for (VertexId u_orig : nbrs) {
    VertexId u = order_->orig_to_new[u_orig];
    if (coreness_new_[u] >= bound) {
      result.push_back(u);
    } else {
      ++filtered;
    }
  }
  stat_kept_.fetch_add(result.size(), std::memory_order_relaxed);
  stat_filtered_.fetch_add(filtered, std::memory_order_relaxed);
  return result;
}

void LazyGraph::build_hash(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kHashBuilt) return;
  std::vector<VertexId> nbrs = filtered_neighbors(v);
  hash_[v].reserve(nbrs.size());
  for (VertexId u : nbrs) hash_[v].insert(u);
  stat_hash_built_.fetch_add(1, std::memory_order_relaxed);
  flags_[v].fetch_or(kHashBuilt, std::memory_order_release);
}

void LazyGraph::build_sorted(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kSortedBuilt) return;
  std::vector<VertexId> nbrs = filtered_neighbors(v);
  std::sort(nbrs.begin(), nbrs.end());
  sorted_[v] = std::move(nbrs);
  right_begin_[v] = static_cast<std::uint32_t>(
      std::upper_bound(sorted_[v].begin(), sorted_[v].end(), v) -
      sorted_[v].begin());
  stat_sorted_built_.fetch_add(1, std::memory_order_relaxed);
  flags_[v].fetch_or(kSortedBuilt, std::memory_order_release);
}

std::uint64_t* LazyGraph::carve_row() {
  SpinLockGuard guard(arena_lock_);
  if (slab_words_left_ < row_stride_words_) {
    LAZYMC_FAULT_BAD_ALLOC("slab.alloc");
    // The caller already reserved this row from the budget, so `remaining`
    // counts the *other* rows that can still be admitted; sizing the slab
    // to them (plus this row) keeps total arena allocation within the
    // budget instead of overshooting by up to a slab.
    const std::int64_t remaining =
        bitset_budget_words_.load(std::memory_order_relaxed);
    std::size_t words = row_stride_words_;
    if (remaining > 0) {
      words += std::min(slab_words_ - row_stride_words_,
                        static_cast<std::size_t>(remaining) /
                            row_stride_words_ * row_stride_words_);
    }
    // AlignedWords puts the slab base on a 64-byte boundary; carving at
    // the row stride keeps every row on one too.
    row_slabs_.emplace_back(words);
    slab_cursor_ = row_slabs_.back().data();
    slab_words_left_ = words;
  }
  std::uint64_t* row = slab_cursor_;
  slab_cursor_ += row_stride_words_;
  slab_words_left_ -= row_stride_words_;
  return row;
}

void LazyGraph::build_bitset(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kBitsetBuilt) return;
  if (bitset_exhausted_.load(std::memory_order_relaxed)) return;
  // Reserve this row's words (at the aligned stride) from the global
  // budget before committing.
  const std::int64_t words = static_cast<std::int64_t>(row_stride_words_);
  if (bitset_budget_words_.fetch_sub(words, std::memory_order_relaxed) <
      words) {
    bitset_budget_words_.fetch_add(words, std::memory_order_relaxed);
    bitset_exhausted_.store(true, std::memory_order_relaxed);
    return;
  }
  std::vector<VertexId> nbrs;
  std::uint64_t* row = nullptr;
  try {
    LAZYMC_FAULT_BAD_ALLOC("bitset.row");
    nbrs = filtered_neighbors(v);
    row = carve_row();
  } catch (const std::bad_alloc&) {
    // Allocation failure degrades this one vertex, not the solve: refund
    // the reserved words (another row may still fit), count it, and leave
    // kBitsetBuilt clear so membership() falls back to hash/sorted.  The
    // exhausted flag stays down — later rows get their own chance.
    bitset_budget_words_.fetch_add(words, std::memory_order_relaxed);
    stat_bitset_degraded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Rows are carved at a 64-byte stride from 64-byte-aligned slabs; the
  // SIMD tiers' aligned loads rely on this.
  LAZYMC_ASSERT(reinterpret_cast<std::uintptr_t>(row) % 64 == 0,
                "bitset row is not 64-byte aligned");
  std::fill(row, row + row_words_, 0);
  std::uint32_t count = 0;
  for (VertexId u : nbrs) {
    if (u < zone_begin_) continue;
    const VertexId off = u - zone_begin_;
    LAZYMC_ASSERT(off < zone_bits_,
                  "bitset row bit outside the zone of interest");
    row[off >> 6] |= 1ULL << (off & 63);
    ++count;
  }
  LAZYMC_ASSERT_EXPENSIVE(
      std::accumulate(row, row + row_words_, std::size_t{0},
                      [](std::size_t acc, std::uint64_t w) {
                        return acc + static_cast<std::size_t>(
                                         std::popcount(w));
                      }) == count,
      "bitset row popcount does not match the bits written");
  row_ptr_[v - zone_begin_] = row;
  row_count_[v - zone_begin_] = count;
  stat_bitset_built_.fetch_add(1, std::memory_order_relaxed);
  stat_bitset_words_.fetch_add(row_stride_words_, std::memory_order_relaxed);
  // The release publishes the row pointer and its contents to readers
  // that load the flag with acquire (row_view).
  flags_[v].fetch_or(kBitsetBuilt, std::memory_order_release);
}

void LazyGraph::enable_bitset_rows(std::size_t budget_bytes) {
  if (bitset_enabled_) return;
  const VertexId bound = incumbent_size_
                             ? incumbent_size_->load(std::memory_order_relaxed)
                             : 0;
  // Relabelled ids are sorted by ascending coreness (both supported
  // orders), so the zone of interest is the suffix starting at the first
  // vertex with coreness >= the incumbent.
  const VertexId zb = static_cast<VertexId>(
      std::lower_bound(coreness_new_.begin(), coreness_new_.end(), bound) -
      coreness_new_.begin());
  if (zb >= n_) return;  // empty zone: nothing left to search anyway
  const VertexId zone_bits = n_ - zb;
  // The per-vertex bookkeeping (row pointer + popcount array) is O(zone)
  // and allocated up front, so it counts against the budget too —
  // otherwise a huge zone could dwarf the cap before any row is built.
  const std::size_t overhead =
      static_cast<std::size_t>(zone_bits) *
      (sizeof(std::uint64_t*) + sizeof(std::uint32_t));
  if (budget_bytes <= overhead) return;  // zone too large for this budget
  zone_begin_ = zb;
  zone_bits_ = zone_bits;
  row_words_ = (static_cast<std::size_t>(zone_bits_) + 63) / 64;
  // Rows are carved at a 64-byte stride (whole cache lines) so each one
  // starts aligned; the budget charges the stride, not the raw width.
  row_stride_words_ = (row_words_ + 7) & ~std::size_t{7};
  row_ptr_.assign(zone_bits_, nullptr);
  row_count_.assign(zone_bits_, 0);
  const std::size_t budget_words = (budget_bytes - overhead) / 8;
  // Arena slabs target ~1 MiB, rounded to whole rows, never exceeding
  // what the zone or the budget can use — the allocator is touched once
  // per slab instead of once per row.
  std::size_t rows_per_slab =
      std::max<std::size_t>(1, (std::size_t{1} << 17) / row_stride_words_);
  rows_per_slab = std::min<std::size_t>(rows_per_slab, zone_bits_);
  rows_per_slab = std::min<std::size_t>(
      rows_per_slab,
      std::max<std::size_t>(1, budget_words / row_stride_words_));
  {
    // enable_bitset_rows runs before concurrent use begins, but the
    // arena fields belong to arena_lock_, so initialize them under it —
    // keeps the lock discipline total (and -Wthread-safety clean).
    SpinLockGuard guard(arena_lock_);
    slab_words_ = rows_per_slab * row_stride_words_;
    slab_cursor_ = nullptr;
    slab_words_left_ = 0;
  }
  bitset_budget_words_.store(static_cast<std::int64_t>(budget_words),
                             std::memory_order_relaxed);
  bitset_exhausted_.store(false, std::memory_order_relaxed);
  bitset_enabled_ = true;
}

const HopscotchSet& LazyGraph::hashed_neighborhood(VertexId v) {
  if (!(flags_[v].load(std::memory_order_acquire) & kHashBuilt)) {
    build_hash(v);
  }
  return hash_[v];
}

std::span<const VertexId> LazyGraph::sorted_neighborhood(VertexId v) {
  if (!(flags_[v].load(std::memory_order_acquire) & kSortedBuilt)) {
    build_sorted(v);
  }
  return {sorted_[v].data(), sorted_[v].size()};
}

std::span<const VertexId> LazyGraph::right_neighborhood(VertexId v) {
  auto all = sorted_neighborhood(v);
  return all.subspan(right_begin_[v]);
}

BitsetRow LazyGraph::bitset_row(VertexId v) {
  if (!bitset_enabled_ || v < zone_begin_) return {};
  if (!(flags_[v].load(std::memory_order_acquire) & kBitsetBuilt)) {
    build_bitset(v);
    if (!(flags_[v].load(std::memory_order_acquire) & kBitsetBuilt)) {
      return {};  // budget exhausted
    }
  }
  return row_view(v);
}

NeighborhoodView LazyGraph::membership(VertexId v) {
  std::uint8_t f = flags_[v].load(std::memory_order_acquire);
  const BitsetRow row = (f & kBitsetBuilt) ? row_view(v) : BitsetRow{};
  if (f & kHashBuilt) return NeighborhoodView(&hash_[v], {}, row);
  if (f & kSortedBuilt) {
    return NeighborhoodView(nullptr, {sorted_[v].data(), sorted_[v].size()},
                            row);
  }
  if (row.valid()) return NeighborhoodView(nullptr, {}, row);

  // Nothing exists yet: build by preference.
  if (rep_ == NeighborhoodRep::kHash) {
    return NeighborhoodView(&hashed_neighborhood(v), {});
  }
  if (rep_ == NeighborhoodRep::kSorted) {
    return NeighborhoodView(nullptr, sorted_neighborhood(v));
  }
  if (rep_ == NeighborhoodRep::kBitset) {
    BitsetRow r = bitset_row(v);
    if (r.valid()) return NeighborhoodView(nullptr, {}, r);
    // Out of zone or budget: fall through to the auto rule.
  }
  // Auto rule (paper: hash when degree > 16), upgraded to a bitset row
  // when one is available and no more expensive to build than the set.
  const VertexId deg = original_degree(v);
  if (deg > kHashDegreeThreshold) {
    if (auto_wants_bitset(v, deg)) {
      BitsetRow r = bitset_row(v);
      if (r.valid()) return NeighborhoodView(nullptr, {}, r);
    }
    return NeighborhoodView(&hashed_neighborhood(v), {});
  }
  return NeighborhoodView(nullptr, sorted_neighborhood(v));
}

void LazyGraph::prepopulate(Prepopulate policy, VertexId must_threshold) {
  if (policy == Prepopulate::kNone) return;
  parallel_for(0, n_, [&](std::size_t i) {
    VertexId v = static_cast<VertexId>(i);
    if (policy != Prepopulate::kAll && coreness_new_[v] < must_threshold) {
      return;
    }
    // Build the preferred representation; hash is the historical default
    // and the fallback when a requested bitset row is unavailable.
    switch (rep_) {
      case NeighborhoodRep::kSorted:
        sorted_neighborhood(v);
        return;
      case NeighborhoodRep::kBitset:
        if (bitset_row(v).valid()) return;
        break;
      case NeighborhoodRep::kAuto:
        if (auto_wants_bitset(v, original_degree(v)) &&
            bitset_row(v).valid()) {
          return;
        }
        break;
      case NeighborhoodRep::kHash:
        break;
    }
    hashed_neighborhood(v);
  }, 64);
}

LazyGraph::Stats LazyGraph::stats() const {
  return Stats{stat_hash_built_.load(std::memory_order_relaxed),
               stat_sorted_built_.load(std::memory_order_relaxed),
               stat_bitset_built_.load(std::memory_order_relaxed),
               stat_bitset_degraded_.load(std::memory_order_relaxed),
               stat_bitset_words_.load(std::memory_order_relaxed) * 8,
               bitset_enabled_ ? static_cast<std::size_t>(zone_bits_) : 0,
               stat_kept_.load(std::memory_order_relaxed),
               stat_filtered_.load(std::memory_order_relaxed)};
}

}  // namespace lazymc
