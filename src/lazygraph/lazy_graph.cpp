#include "lazygraph/lazy_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "intersect/intersect.hpp"
#include "support/parallel.hpp"

namespace lazymc {

bool NeighborhoodView::contains(VertexId v) const {
  if (hash_) return hash_->contains(v);
  return std::binary_search(sorted_.begin(), sorted_.end(), v);
}

LazyGraph::LazyGraph(const Graph& g, const kcore::VertexOrder& order,
                     const std::vector<VertexId>& coreness_orig,
                     const std::atomic<VertexId>* incumbent_size)
    : base_(&g),
      order_(&order),
      incumbent_size_(incumbent_size),
      n_(g.num_vertices()),
      flags_(g.num_vertices()),
      locks_(std::make_unique<SpinLock[]>(g.num_vertices())),
      hash_(g.num_vertices()),
      sorted_(g.num_vertices()),
      right_begin_(g.num_vertices(), 0) {
  if (coreness_orig.size() != n_ || order.size() != n_) {
    throw std::invalid_argument("LazyGraph: order/coreness size mismatch");
  }
  coreness_new_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) {
    coreness_new_[v] = coreness_orig[order.new_to_orig[v]];
  }
  for (auto& f : flags_) f.store(0, std::memory_order_relaxed);
}

std::vector<VertexId> LazyGraph::filtered_neighbors(VertexId v) const {
  // Lazy filtering by coreness against the incumbent size *now*
  // (Algorithm 2 line 20).  A relaxed read is safe: the incumbent only
  // grows, so a stale (smaller) value merely filters less.
  const VertexId bound = incumbent_size_
                             ? incumbent_size_->load(std::memory_order_relaxed)
                             : 0;
  const VertexId orig = order_->new_to_orig[v];
  std::vector<VertexId> result;
  auto nbrs = base_->neighbors(orig);
  result.reserve(nbrs.size());
  std::size_t filtered = 0;
  for (VertexId u_orig : nbrs) {
    VertexId u = order_->orig_to_new[u_orig];
    if (coreness_new_[u] >= bound) {
      result.push_back(u);
    } else {
      ++filtered;
    }
  }
  stat_kept_.fetch_add(result.size(), std::memory_order_relaxed);
  stat_filtered_.fetch_add(filtered, std::memory_order_relaxed);
  return result;
}

void LazyGraph::build_hash(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kHashBuilt) return;
  std::vector<VertexId> nbrs = filtered_neighbors(v);
  hash_[v].reserve(nbrs.size());
  for (VertexId u : nbrs) hash_[v].insert(u);
  stat_hash_built_.fetch_add(1, std::memory_order_relaxed);
  flags_[v].fetch_or(kHashBuilt, std::memory_order_release);
}

void LazyGraph::build_sorted(VertexId v) {
  SpinLockGuard guard(locks_[v]);
  if (flags_[v].load(std::memory_order_relaxed) & kSortedBuilt) return;
  std::vector<VertexId> nbrs = filtered_neighbors(v);
  std::sort(nbrs.begin(), nbrs.end());
  sorted_[v] = std::move(nbrs);
  right_begin_[v] = static_cast<std::uint32_t>(
      std::upper_bound(sorted_[v].begin(), sorted_[v].end(), v) -
      sorted_[v].begin());
  stat_sorted_built_.fetch_add(1, std::memory_order_relaxed);
  flags_[v].fetch_or(kSortedBuilt, std::memory_order_release);
}

const HopscotchSet& LazyGraph::hashed_neighborhood(VertexId v) {
  if (!(flags_[v].load(std::memory_order_acquire) & kHashBuilt)) {
    build_hash(v);
  }
  return hash_[v];
}

std::span<const VertexId> LazyGraph::sorted_neighborhood(VertexId v) {
  if (!(flags_[v].load(std::memory_order_acquire) & kSortedBuilt)) {
    build_sorted(v);
  }
  return {sorted_[v].data(), sorted_[v].size()};
}

std::span<const VertexId> LazyGraph::right_neighborhood(VertexId v) {
  auto all = sorted_neighborhood(v);
  return all.subspan(right_begin_[v]);
}

NeighborhoodView LazyGraph::membership(VertexId v) {
  std::uint8_t f = flags_[v].load(std::memory_order_acquire);
  if (f & kHashBuilt) return NeighborhoodView(&hash_[v], {});
  if (f & kSortedBuilt) {
    return NeighborhoodView(nullptr, {sorted_[v].data(), sorted_[v].size()});
  }
  // Neither exists: pick by degree (paper: hash when degree > 16).
  if (original_degree(v) > kHashDegreeThreshold) {
    return NeighborhoodView(&hashed_neighborhood(v), {});
  }
  auto s = sorted_neighborhood(v);
  return NeighborhoodView(nullptr, s);
}

void LazyGraph::prepopulate(Prepopulate policy, VertexId must_threshold) {
  if (policy == Prepopulate::kNone) return;
  parallel_for(0, n_, [&](std::size_t i) {
    VertexId v = static_cast<VertexId>(i);
    if (policy == Prepopulate::kAll || coreness_new_[v] >= must_threshold) {
      hashed_neighborhood(v);
    }
  }, 64);
}

LazyGraph::Stats LazyGraph::stats() const {
  return Stats{stat_hash_built_.load(std::memory_order_relaxed),
               stat_sorted_built_.load(std::memory_order_relaxed),
               stat_kept_.load(std::memory_order_relaxed),
               stat_filtered_.load(std::memory_order_relaxed)};
}

}  // namespace lazymc
