// The lazy filtered hashed relabelled graph (paper Section IV-A,
// Algorithm 2).
//
// Design goals, quoting the paper:
//  * Relabelling: remap neighbor ids into the (coreness, degree) order
//    only when a neighborhood is first needed, memoizing the result.
//  * Lazy construction: never build neighborhoods for vertices the search
//    skips (most of the graph — Section III-A).
//  * Filtering: drop neighbors whose coreness is below the incumbent
//    clique size *at construction time*.  The zone of interest only
//    shrinks, so anything filtered now is irrelevant forever.
//  * Hashed sets: hopscotch sets enable O(|A|) intersections.
//
// Three neighborhood representations may exist per vertex:
//  * a hopscotch hash set (O(1) probes, ~6 bytes/neighbor),
//  * a sorted array (merge/galloping intersections, right-neighborhoods),
//  * a packed 64-bit bitset row over the *zone of interest* — the suffix
//    of relabelled ids whose coreness was >= the incumbent when
//    enable_bitset_rows() was called.  Rows turn |A ∩ B| > θ queries into
//    one AND + popcount per occupied word of A (see intersect/bitset_row
//    .hpp) and cost zone_size/8 bytes each, capped by a global budget.
//
// Any subset may have been built, each filtered against a possibly
// different incumbent size.  That is deliberate and safe: discrepancies
// involve only vertices that can no longer affect the search (Section
// IV-A); the bitset rows' zone clipping is the same argument one step
// further (out-of-zone vertices had coreness below the incumbent at
// enable time).
//
// Thread-safety: any number of threads may call the accessors
// concurrently; construction is serialized per-vertex with double-checked
// locking (flag read with acquire, publish with release).
// enable_bitset_rows / set_preferred_rep must be called before concurrent
// use begins.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "hashset/hopscotch_set.hpp"
#include "intersect/bitset_row.hpp"
#include "intersect/hybrid_row.hpp"
#include "kcore/order.hpp"
#include "support/check.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace lazymc {

/// Prepopulation policy for the Fig. 4 ablation.
enum class Prepopulate {
  kNone,          // fully lazy
  kMustSubgraph,  // default: prebuild hash sets for coreness >= threshold
  kAll,           // eager: prebuild every vertex's hash set
};

/// Which representation `membership()` builds when a vertex has none yet.
enum class NeighborhoodRep {
  kAuto,    // degree rule; prefer a bitset row when it is cheap (default)
  kHash,    // always a hopscotch set
  kSorted,  // always a sorted array
  kBitset,  // a bitset row whenever possible (zone + budget permitting)
  kHybrid,  // a hybrid row (array/bitset/run container per density)
};

/// A membership view over whichever representations a vertex has.
/// Satisfies the MembershipSet concept used by the intersection kernels;
/// the adaptive dispatcher (mc::IntersectPolicy) inspects the individual
/// representations to pick a kernel.
class NeighborhoodView {
 public:
  NeighborhoodView(const HopscotchSet* hash, std::span<const VertexId> sorted,
                   BitsetRow row = {}, HybridRow hybrid = {})
      : hash_(hash), sorted_(sorted), row_(row), hybrid_(hybrid) {}

  bool contains(VertexId v) const;
  std::size_t size() const {
    if (hash_) return hash_->size();
    if (!sorted_.empty()) return sorted_.size();
    if (row_.valid()) return row_.size();
    if (hybrid_.valid()) return hybrid_.size();
    return 0;
  }
  bool is_hashed() const { return hash_ != nullptr; }
  const HopscotchSet* hash_set() const { return hash_; }
  std::span<const VertexId> sorted() const { return sorted_; }
  bool has_bitset() const { return row_.valid(); }
  const BitsetRow& bitset() const { return row_; }
  bool has_hybrid() const { return hybrid_.valid(); }
  const HybridRow& hybrid() const { return hybrid_; }

 private:
  const HopscotchSet* hash_;  // preferred when present
  std::span<const VertexId> sorted_;
  BitsetRow row_;
  HybridRow hybrid_;
};

class LazyGraph {
 public:
  /// Degree above which the "either representation" accessor builds a hash
  /// set rather than a sorted array (paper Section IV-A: "degree over 16").
  static constexpr VertexId kHashDegreeThreshold = 16;

  /// `incumbent_size` is read (relaxed) every time a neighborhood is
  /// constructed; it must outlive the LazyGraph and only ever increase.
  LazyGraph(const Graph& g, const kcore::VertexOrder& order,
            const std::vector<VertexId>& coreness_orig,
            const std::atomic<VertexId>* incumbent_size);

  VertexId num_vertices() const { return n_; }

  /// Coreness of relabelled vertex v.
  VertexId coreness(VertexId v) const { return coreness_new_[v]; }

  /// Degree of relabelled vertex v in the *original* (unfiltered) graph.
  VertexId original_degree(VertexId v) const {
    return base_->degree(order_->new_to_orig[v]);
  }

  const kcore::VertexOrder& order() const { return *order_; }
  const Graph& base_graph() const { return *base_; }

  /// GetHashedNeighborhood (Algorithm 2): builds on first use.
  const HopscotchSet& hashed_neighborhood(VertexId v);

  /// Sorted filtered relabelled neighborhood; builds on first use.
  std::span<const VertexId> sorted_neighborhood(VertexId v);

  /// Right-neighborhood N+(v) = {u in N(v) filtered : u > v}, a suffix of
  /// the sorted representation.
  std::span<const VertexId> right_neighborhood(VertexId v);

  /// "Either representation" accessor: returns whatever exists (all built
  /// forms are exposed so the kernel dispatcher can choose); if nothing
  /// exists, builds one according to the preferred representation.
  NeighborhoodView membership(VertexId v);

  /// True when the respective representation has been constructed.
  bool has_hashed(VertexId v) const {
    return flags_[v].load(std::memory_order_acquire) & kHashBuilt;
  }
  bool has_sorted(VertexId v) const {
    return flags_[v].load(std::memory_order_acquire) & kSortedBuilt;
  }
  bool has_bitset(VertexId v) const {
    return flags_[v].load(std::memory_order_acquire) & kBitsetBuilt;
  }

  // ---- bitset rows over the zone of interest -----------------------------

  /// Fixes the zone of interest to the relabelled ids whose coreness is >=
  /// the incumbent *now* and allows bitset rows to be built for them, up
  /// to `budget_bytes` of total memory (the O(zone) bookkeeping allocated
  /// here is charged against the budget, the rest caps row storage).
  /// Call once, before the graph is used concurrently; a no-op when the
  /// zone is empty or the bookkeeping alone would bust the budget.
  void enable_bitset_rows(std::size_t budget_bytes);

  bool bitset_enabled() const { return bitset_enabled_; }
  /// First relabelled id inside the zone (zone = [zone_begin, n)).
  VertexId zone_begin() const { return zone_begin_; }
  /// Zone size in vertices (= bits per row).
  VertexId zone_size() const { return zone_bits_; }

  /// The packed filtered neighborhood of v over the zone; builds on first
  /// use.  Returns an invalid row when rows are disabled, v lies outside
  /// the zone, or the memory budget is exhausted.
  BitsetRow bitset_row(VertexId v);

  // ---- hybrid rows (Roaring-style per-row containers) --------------------

  /// Like enable_bitset_rows, but each row is stored as the cheapest of
  /// three containers for its density: a sorted u32 offset array (in-zone
  /// degree <= `array_max` and smaller than the packed words), run-length
  /// spans (at least `run_min_saving` x smaller than the best dense
  /// alternative), or the packed bitset words.  Containers are carved
  /// from the same slab arena with per-container byte accounting, so a
  /// budget that starves an all-bitset zone can still keep most rows on
  /// the word kernels.  Mutually exclusive with enable_bitset_rows; call
  /// once, before concurrent use.
  void enable_hybrid_rows(std::size_t budget_bytes, std::uint32_t array_max,
                          double run_min_saving);

  bool hybrid_enabled() const { return hybrid_enabled_; }

  // ---- prebuilt rows (binary graph store) --------------------------------

  /// Adopts a block of prebuilt zone rows (the binary graph store's
  /// mmap'ed row section) instead of building rows into the slab arena:
  /// every in-zone vertex is immediately marked built, pointing straight
  /// at the caller's storage — zero copies, zero arena carves, and
  /// stats().bitset_built stays 0 for adopted rows.
  ///
  /// `hybrid` selects which view the rows decode to (each prebuilt row is
  /// a packed bitset, which is also a valid kBitset hybrid container), so
  /// both --rep bitset and --rep hybrid solves can consume the same store.
  ///
  /// Returns false — leaving the graph untouched, lazy building still
  /// available — when rows are already enabled, `rows` is malformed for
  /// this graph (zone not the suffix [zone_begin, n), stride too small /
  /// unaligned), or the stored zone does not cover the zone the current
  /// incumbent implies (some vertex with coreness >= incumbent lies
  /// before the stored zone_begin; its bits would be missing from every
  /// row, which is NOT covered by the heterogeneous-incumbent invariant).
  ///
  /// Lifetime: the caller keeps the backing storage alive for this
  /// graph's lifetime.  Call before concurrent use, like the enable_*
  /// methods.
  bool adopt_prebuilt_rows(const PrebuiltRows& rows, bool hybrid);

  /// The hybrid row of v; builds on first use.  Invalid when hybrid rows
  /// are disabled, v lies outside the zone, or the budget is exhausted.
  HybridRow hybrid_row(VertexId v);

  /// Representation `membership()` builds when a vertex has none.
  void set_preferred_rep(NeighborhoodRep rep) { rep_ = rep; }
  NeighborhoodRep preferred_rep() const { return rep_; }

  /// Prebuilds neighborhoods according to `policy`; the must-subgraph
  /// policy builds vertices with coreness >= threshold (paper Section V-C:
  /// the must subgraph w.r.t. the incumbent found by degree-based
  /// heuristic search).  The representation follows the preferred-rep
  /// rule (bitset rows when enabled and cheap).  Runs in parallel.
  void prepopulate(Prepopulate policy, VertexId must_threshold);

  /// Instrumentation.
  struct Stats {
    std::size_t hash_built = 0;
    std::size_t sorted_built = 0;
    std::size_t bitset_built = 0;
    std::size_t bitset_degraded = 0;  // row builds that failed allocation
                                      // and fell back to hash/sorted
    std::size_t rows_prebuilt = 0;    // zone rows adopted from a binary
                                      // store (never built, never carved)
    std::size_t bitset_bytes = 0;  // row storage actually committed (all
                                   // containers; the arena's carved total)
    std::size_t zone_size = 0;     // bits per row (0 = rows disabled)
    std::size_t neighbors_kept = 0;
    std::size_t neighbors_filtered = 0;
    // Hybrid rows: how many rows each container class won, and the carved
    // bytes per class (all zero unless enable_hybrid_rows was called).
    std::size_t hybrid_rows_array = 0;
    std::size_t hybrid_rows_bitset = 0;
    std::size_t hybrid_rows_run = 0;
    std::size_t hybrid_array_bytes = 0;
    std::size_t hybrid_bitset_bytes = 0;
    std::size_t hybrid_run_bytes = 0;
  };
  Stats stats() const;

 private:
  static constexpr std::uint8_t kHashBuilt = 1;
  static constexpr std::uint8_t kSortedBuilt = 2;
  static constexpr std::uint8_t kBitsetBuilt = 4;

  /// Builds the filtered relabelled neighbor list of v (unsorted).
  std::vector<VertexId> filtered_neighbors(VertexId v) const;

  void build_hash(VertexId v);
  void build_sorted(VertexId v);
  /// Attempts to build v's bitset row (budget permitting); the kBitsetBuilt
  /// flag reports success.
  void build_bitset(VertexId v);
  /// Attempts to build v's hybrid row (container chosen by density);
  /// kBitsetBuilt doubles as the "zone row built" flag in hybrid mode.
  void build_hybrid(VertexId v);
  /// Shared zone fixing + arena setup for enable_{bitset,hybrid}_rows.
  /// Returns false when the zone is empty or the bookkeeping alone would
  /// bust the budget.
  bool init_zone(std::size_t budget_bytes);

  /// Whether the auto rule prefers a zone row (bitset or hybrid) for v:
  /// enabled, in zone, budget not exhausted, and the worst-case row build
  /// cost (zone_words memset) is within a small factor of the hash-set
  /// build cost (degree inserts).
  bool auto_wants_bitset(VertexId v, VertexId degree) const {
    return (bitset_enabled_ || hybrid_enabled_) && v >= zone_begin_ &&
           !bitset_exhausted_.load(std::memory_order_relaxed) &&
           row_words_ <= std::max<std::size_t>(64, 4 * std::size_t{degree});
  }

  BitsetRow row_view(VertexId v) const {
    LAZYMC_ASSERT(v >= zone_begin_ && v - zone_begin_ < zone_bits_,
                  "bitset row requested for a vertex outside the zone of "
                  "interest");
    const VertexId i = v - zone_begin_;
    return BitsetRow{row_ptr_[i], zone_begin_, zone_bits_, row_count_[i]};
  }

  HybridRow hybrid_view(VertexId v) const {
    LAZYMC_ASSERT(v >= zone_begin_ && v - zone_begin_ < zone_bits_,
                  "hybrid row requested for a vertex outside the zone of "
                  "interest");
    const VertexId i = v - zone_begin_;
    return HybridRow{row_ptr_[i],    zone_begin_,   zone_bits_,
                     row_count_[i],  row_units_[i],
                     static_cast<RowContainer>(row_kind_[i])};
  }

  /// Reserves `stride_words` (a multiple of 8, so every carve starts on a
  /// cache line) from the shared arena: pointer bump under a spinlock, a
  /// new slab when the current one cannot fit the request.  Caller fills
  /// outside the lock.  Only called after the global word budget admitted
  /// the carve; an abandoned slab tail is charged to the budget as waste
  /// so total arena allocation stays within the cap.
  std::uint64_t* carve(std::size_t stride_words);
  std::uint64_t* carve_row() { return carve(row_stride_words_); }

  const Graph* base_;
  const kcore::VertexOrder* order_;
  const std::atomic<VertexId>* incumbent_size_;
  VertexId n_;
  std::vector<VertexId> coreness_new_;  // indexed by relabelled id

  std::vector<std::atomic<std::uint8_t>> flags_;
  std::unique_ptr<SpinLock[]> locks_;
  std::vector<HopscotchSet> hash_;
  std::vector<std::vector<VertexId>> sorted_;
  std::vector<std::uint32_t> right_begin_;  // index into sorted_[v] where u > v

  // bitset rows (zone-indexed: entry i is relabelled vertex zone_begin_+i)
  NeighborhoodRep rep_ = NeighborhoodRep::kAuto;
  bool bitset_enabled_ = false;
  bool hybrid_enabled_ = false;
  VertexId zone_begin_ = 0;
  VertexId zone_bits_ = 0;
  std::size_t row_words_ = 0;
  // Hybrid container selection thresholds (enable_hybrid_rows).
  std::uint32_t hybrid_array_max_ = 4096;
  double hybrid_run_min_saving_ = 2.0;
  std::atomic<std::int64_t> bitset_budget_words_{0};
  std::atomic<bool> bitset_exhausted_{false};
  // Row storage: one shared arena of slab allocations carved per row,
  // instead of one heap vector per row — a built row costs 8 bytes of
  // bookkeeping (its pointer) plus its share of a slab, and concurrent
  // row builds touch the allocator ~once per slab rather than per row.
  // Slabs are 64-byte aligned and rows are carved at a 64-byte stride
  // (row_stride_words_, row_words_ rounded up to 8), so every row starts
  // on a cache-line boundary and aligned SIMD loads stay legal.  Rows
  // live as long as the graph; nothing is freed individually.
  std::size_t row_stride_words_ = 0;
  SpinLock arena_lock_;
  std::vector<simd::AlignedWords> row_slabs_ LAZYMC_GUARDED_BY(arena_lock_);
  std::uint64_t* slab_cursor_ LAZYMC_GUARDED_BY(arena_lock_) = nullptr;
  std::size_t slab_words_left_ LAZYMC_GUARDED_BY(arena_lock_) = 0;
  // Slab size, a multiple of the row stride.
  std::size_t slab_words_ LAZYMC_GUARDED_BY(arena_lock_) = 0;
  // Arena accounting (mutated under arena_lock_; atomic so stats() and the
  // checked-mode drift assert can read without the lock):
  //   total  = sum of allocated slab sizes,
  //   carved = words handed out to rows,
  //   waste  = abandoned slab tails (variable-stride carving only),
  // with total == carved + waste + slab_words_left_ at all times.
  std::atomic<std::size_t> arena_total_words_{0};
  std::atomic<std::size_t> arena_carved_words_{0};
  std::atomic<std::size_t> arena_waste_words_{0};
  std::vector<std::uint64_t*> row_ptr_;  // null until the row is built
  std::vector<std::uint32_t> row_count_;
  // Rows adopted from a binary store (adopt_prebuilt_rows): the zone size
  // at adoption, 0 when rows are lazily built.  The row pointers then
  // alias read-only caller storage, never the arena.
  std::size_t rows_prebuilt_ = 0;
  // Hybrid-row container metadata (zone-indexed, hybrid mode only).
  std::vector<std::uint32_t> row_units_;
  std::vector<std::uint8_t> row_kind_;

  // stats counters (relaxed)
  mutable std::atomic<std::size_t> stat_hash_built_{0};
  mutable std::atomic<std::size_t> stat_sorted_built_{0};
  mutable std::atomic<std::size_t> stat_bitset_built_{0};
  mutable std::atomic<std::size_t> stat_bitset_degraded_{0};
  mutable std::atomic<std::size_t> stat_bitset_words_{0};
  mutable std::atomic<std::size_t> stat_kept_{0};
  mutable std::atomic<std::size_t> stat_filtered_{0};
  // Hybrid per-container tallies (rows and carved words per class).
  mutable std::atomic<std::size_t> stat_hybrid_rows_[3]{};
  mutable std::atomic<std::size_t> stat_hybrid_words_[3]{};
};

}  // namespace lazymc
