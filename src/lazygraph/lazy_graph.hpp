// The lazy filtered hashed relabelled graph (paper Section IV-A,
// Algorithm 2).
//
// Design goals, quoting the paper:
//  * Relabelling: remap neighbor ids into the (coreness, degree) order
//    only when a neighborhood is first needed, memoizing the result.
//  * Lazy construction: never build neighborhoods for vertices the search
//    skips (most of the graph — Section III-A).
//  * Filtering: drop neighbors whose coreness is below the incumbent
//    clique size *at construction time*.  The zone of interest only
//    shrinks, so anything filtered now is irrelevant forever.
//  * Hashed sets: hopscotch sets enable O(|A|) intersections.
//
// Both a hash-set and a sorted-array representation may exist per vertex;
// they may have been filtered against different incumbent sizes.  That is
// deliberate and safe: discrepancies involve only vertices that can no
// longer affect the search (Section IV-A).
//
// Thread-safety: any number of threads may call the accessors
// concurrently; construction is serialized per-vertex with double-checked
// locking (flag read with acquire, publish with release).
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "hashset/hopscotch_set.hpp"
#include "kcore/order.hpp"
#include "support/spinlock.hpp"

namespace lazymc {

/// Prepopulation policy for the Fig. 4 ablation.
enum class Prepopulate {
  kNone,          // fully lazy
  kMustSubgraph,  // default: prebuild hash sets for coreness >= threshold
  kAll,           // eager: prebuild every vertex's hash set
};

/// A membership view over whichever representation a vertex has.  Satisfies
/// the MembershipSet concept used by the intersection kernels.
class NeighborhoodView {
 public:
  NeighborhoodView(const HopscotchSet* hash, std::span<const VertexId> sorted)
      : hash_(hash), sorted_(sorted) {}

  bool contains(VertexId v) const;
  std::size_t size() const {
    return hash_ ? hash_->size() : sorted_.size();
  }
  bool is_hashed() const { return hash_ != nullptr; }

 private:
  const HopscotchSet* hash_;  // preferred when present
  std::span<const VertexId> sorted_;
};

class LazyGraph {
 public:
  /// Degree above which the "either representation" accessor builds a hash
  /// set rather than a sorted array (paper Section IV-A: "degree over 16").
  static constexpr VertexId kHashDegreeThreshold = 16;

  /// `incumbent_size` is read (relaxed) every time a neighborhood is
  /// constructed; it must outlive the LazyGraph and only ever increase.
  LazyGraph(const Graph& g, const kcore::VertexOrder& order,
            const std::vector<VertexId>& coreness_orig,
            const std::atomic<VertexId>* incumbent_size);

  VertexId num_vertices() const { return n_; }

  /// Coreness of relabelled vertex v.
  VertexId coreness(VertexId v) const { return coreness_new_[v]; }

  /// Degree of relabelled vertex v in the *original* (unfiltered) graph.
  VertexId original_degree(VertexId v) const {
    return base_->degree(order_->new_to_orig[v]);
  }

  const kcore::VertexOrder& order() const { return *order_; }
  const Graph& base_graph() const { return *base_; }

  /// GetHashedNeighborhood (Algorithm 2): builds on first use.
  const HopscotchSet& hashed_neighborhood(VertexId v);

  /// Sorted filtered relabelled neighborhood; builds on first use.
  std::span<const VertexId> sorted_neighborhood(VertexId v);

  /// Right-neighborhood N+(v) = {u in N(v) filtered : u > v}, a suffix of
  /// the sorted representation.
  std::span<const VertexId> right_neighborhood(VertexId v);

  /// "Either representation" accessor: returns whatever exists, preferring
  /// the hash set; if neither exists, builds a hash set for high-degree
  /// vertices and a sorted array otherwise.
  NeighborhoodView membership(VertexId v);

  /// True when the respective representation has been constructed.
  bool has_hashed(VertexId v) const {
    return flags_[v].load(std::memory_order_acquire) & kHashBuilt;
  }
  bool has_sorted(VertexId v) const {
    return flags_[v].load(std::memory_order_acquire) & kSortedBuilt;
  }

  /// Prebuilds hash neighborhoods according to `policy`; the must-subgraph
  /// policy builds vertices with coreness >= threshold (paper Section V-C:
  /// the must subgraph w.r.t. the incumbent found by degree-based
  /// heuristic search).  Runs in parallel.
  void prepopulate(Prepopulate policy, VertexId must_threshold);

  /// Instrumentation.
  struct Stats {
    std::size_t hash_built = 0;
    std::size_t sorted_built = 0;
    std::size_t neighbors_kept = 0;
    std::size_t neighbors_filtered = 0;
  };
  Stats stats() const;

 private:
  static constexpr std::uint8_t kHashBuilt = 1;
  static constexpr std::uint8_t kSortedBuilt = 2;

  /// Builds the filtered relabelled neighbor list of v (unsorted).
  std::vector<VertexId> filtered_neighbors(VertexId v) const;

  void build_hash(VertexId v);
  void build_sorted(VertexId v);

  const Graph* base_;
  const kcore::VertexOrder* order_;
  const std::atomic<VertexId>* incumbent_size_;
  VertexId n_;
  std::vector<VertexId> coreness_new_;  // indexed by relabelled id

  std::vector<std::atomic<std::uint8_t>> flags_;
  std::unique_ptr<SpinLock[]> locks_;
  std::vector<HopscotchSet> hash_;
  std::vector<std::vector<VertexId>> sorted_;
  std::vector<std::uint32_t> right_begin_;  // index into sorted_[v] where u > v

  // stats counters (relaxed)
  mutable std::atomic<std::size_t> stat_hash_built_{0};
  mutable std::atomic<std::size_t> stat_sorted_built_{0};
  mutable std::atomic<std::size_t> stat_kept_{0};
  mutable std::atomic<std::size_t> stat_filtered_{0};
};

}  // namespace lazymc
