// Vertex ordering (paper Section IV-F).
//
// All parallel-friendly MC algorithms need a degeneracy-flavoured order,
// but the parallel coreness computation yields no unique peeling order.
// LazyMC therefore sorts by (coreness asc, degree asc), realized with two
// stable counting sorts: first by degree (the SAPCo-style degree sort),
// then by coreness.  Right-neighborhoods under this order are small —
// bounded by coreness for the peeling order, and empirically close for
// the (coreness, degree) order.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "kcore/kcore.hpp"

namespace lazymc::kcore {

/// A bijective relabelling of the vertex set.
struct VertexOrder {
  /// new id -> original id.  new ids are "positions"; higher = later.
  std::vector<VertexId> new_to_orig;
  /// original id -> new id.
  std::vector<VertexId> orig_to_new;

  VertexId size() const { return static_cast<VertexId>(new_to_orig.size()); }
};

/// Sorts vertices by (coreness asc, degree asc); both keys via stable
/// counting sorts, so the result is deterministic.
VertexOrder order_by_coreness_degree(const Graph& g,
                                     const std::vector<VertexId>& coreness);

/// Parallel variant: per-thread histograms + prefix sums (the SAPCo-sort
/// pattern the paper uses for the degree sort, followed by a stable
/// counting sort on coreness).  Produces the identical order to the
/// sequential version — determinism is part of the contract.
VertexOrder order_by_coreness_degree_parallel(
    const Graph& g, const std::vector<VertexId>& coreness);

/// Order given directly by a peeling sequence (vertex peeled first gets
/// new id 0).  Vertices absent from `peel_order` are appended at the end
/// in original-id order (can happen with lower-bounded coreness).
VertexOrder order_from_peel(const Graph& g,
                            const std::vector<VertexId>& peel_order);

/// Materializes the relabelled graph: vertex v of the result corresponds
/// to order.new_to_orig[v]; neighbor lists sorted ascending in new ids.
/// This is the *eager* construction the PMC baseline performs up front and
/// LazyMC avoids (Section III-B).
Graph relabel(const Graph& g, const VertexOrder& order);

/// Right-neighborhood size bound check helper: max over v of
/// |{u in N(v) : order(u) > order(v)}|.
VertexId max_right_neighborhood(const Graph& g, const VertexOrder& order);

}  // namespace lazymc::kcore
