// k-core decomposition and degeneracy.
//
// Coreness is the backbone of LazyMC's work-avoidance: a vertex of coreness
// c can belong to at most a (c+1)-clique, so every coreness below the
// incumbent clique size removes a vertex from the zone of interest
// (paper Sections II-III).
//
// Two algorithms are provided:
//  * `coreness` — Matula–Beck bucket peeling, O(n + m), sequential; also
//    yields the peeling (degeneracy) order.
//  * `coreness_parallel` — iterative parallel peeling (Dhulipala et al.
//    style rounds), used by LazyMC's preprocessing phase.  It produces the
//    same coreness values but no unique peeling order, which is why LazyMC
//    sorts by (coreness, degree) instead (Section IV-F).
//
// `coreness_lower_bounded` implements KCore(G, lb) from Algorithm 1: only
// vertices that could matter given an incumbent of size lb participate;
// the rest are reported with coreness 0 and never touched again.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lazymc::kcore {

struct CoreDecomposition {
  /// coreness[v] for every v.
  std::vector<VertexId> coreness;
  /// Largest coreness (the degeneracy d(G)).
  VertexId degeneracy = 0;
  /// Peeling order (only filled by the sequential algorithm): vertices in
  /// the order they were removed; right-neighborhoods w.r.t. this order
  /// have size <= coreness.
  std::vector<VertexId> peel_order;
};

/// Sequential Matula–Beck bucket peeling.  O(n + m).
CoreDecomposition coreness(const Graph& g);

/// Parallel iterative peeling over rounds; no peel order.
CoreDecomposition coreness_parallel(const Graph& g);

/// KCore(G, lb): coreness restricted to vertices with degree >= lb.
/// Vertices below the bound get coreness 0 (they cannot belong to a clique
/// of size > lb, so their exact coreness is irrelevant).  For surviving
/// vertices the reported value equals their true coreness whenever that
/// coreness is >= lb, which is the only case the MC search inspects.
CoreDecomposition coreness_lower_bounded(const Graph& g, VertexId lb);

/// Upper bound on the maximum clique: degeneracy + 1.
inline VertexId clique_upper_bound(const CoreDecomposition& core) {
  return core.degeneracy + 1;
}

}  // namespace lazymc::kcore
