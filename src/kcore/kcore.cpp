#include "kcore/kcore.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "support/parallel.hpp"

namespace lazymc::kcore {
namespace {

/// Bucket peeling restricted to the vertices with active[v] true.
/// Vertices outside get coreness 0.
CoreDecomposition peel(const Graph& g, const std::vector<char>* active) {
  const VertexId n = g.num_vertices();
  CoreDecomposition out;
  out.coreness.assign(n, 0);
  if (n == 0) return out;

  // Induced degrees.
  std::vector<VertexId> deg(n, 0);
  VertexId max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (active && !(*active)[v]) continue;
    VertexId d = 0;
    if (active) {
      for (VertexId u : g.neighbors(v)) d += (*active)[u] ? 1 : 0;
    } else {
      d = g.degree(v);
    }
    deg[v] = d;
    max_deg = std::max(max_deg, d);
  }

  // Bucket sort vertices by degree (classic O(n+m) peeling layout).
  std::vector<VertexId> bucket_start(static_cast<std::size_t>(max_deg) + 2, 0);
  std::size_t num_active = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (active && !(*active)[v]) continue;
    ++bucket_start[deg[v] + 1];
    ++num_active;
  }
  for (std::size_t i = 1; i < bucket_start.size(); ++i) {
    bucket_start[i] += bucket_start[i - 1];
  }
  std::vector<VertexId> order(num_active);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (active && !(*active)[v]) continue;
      pos[v] = cursor[deg[v]];
      order[cursor[deg[v]]++] = v;
    }
  }

  std::vector<char> removed(n, 0);
  VertexId degeneracy = 0;
  out.peel_order.reserve(num_active);
  for (std::size_t i = 0; i < num_active; ++i) {
    VertexId v = order[i];
    degeneracy = std::max(degeneracy, deg[v]);
    out.coreness[v] = degeneracy;
    out.peel_order.push_back(v);
    removed[v] = 1;
    for (VertexId u : g.neighbors(v)) {
      if (removed[u]) continue;
      if (active && !(*active)[u]) continue;
      if (deg[u] <= deg[v]) continue;  // already at/below the current level
      // Swap u to the front of its bucket, then shrink its degree.
      VertexId du = deg[u];
      VertexId pu = pos[u];
      VertexId bucket_front = bucket_start[du];
      VertexId w = order[bucket_front];
      if (w != u) {
        order[pu] = w;
        order[bucket_front] = u;
        pos[w] = pu;
        pos[u] = bucket_front;
      }
      ++bucket_start[du];
      --deg[u];
    }
  }
  out.degeneracy = degeneracy;
  return out;
}

}  // namespace

CoreDecomposition coreness(const Graph& g) { return peel(g, nullptr); }

CoreDecomposition coreness_lower_bounded(const Graph& g, VertexId lb) {
  if (lb == 0) return peel(g, nullptr);
  const VertexId n = g.num_vertices();
  std::vector<char> active(n, 0);
  // Iteratively discard vertices whose degree among active vertices drops
  // below lb; this is exactly computing the lb-core as a pre-filter.
  std::vector<VertexId> deg(n, 0);
  std::vector<VertexId> stack;
  // Snapshot the degree-based filter first; degrees are then computed
  // against this snapshot and every later removal propagates exactly once
  // through the stack (computing against the live set would double-count).
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    active[v] = deg[v] >= lb ? 1 : 0;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!active[v]) continue;
    VertexId d = 0;
    for (VertexId u : g.neighbors(v)) {
      d += (g.degree(u) >= lb) ? 1 : 0;  // initial snapshot membership
    }
    deg[v] = d;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (active[v] && deg[v] < lb) {
      active[v] = 0;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId u : g.neighbors(v)) {
      if (!active[u]) continue;
      if (--deg[u] < lb) {
        active[u] = 0;
        stack.push_back(u);
      }
    }
  }
  CoreDecomposition out = peel(g, &active);
  // Report coreness relative to the full graph: surviving vertices have
  // true coreness >= lb, and peeling the lb-core yields those exact values.
  return out;
}

CoreDecomposition coreness_parallel(const Graph& g) {
  const VertexId n = g.num_vertices();
  CoreDecomposition out;
  out.coreness.assign(n, 0);
  if (n == 0) return out;

  std::vector<std::atomic<VertexId>> deg(n);
  parallel_for(0, n, [&](std::size_t v) {
    deg[v].store(g.degree(static_cast<VertexId>(v)),
                 std::memory_order_relaxed);
  }, 1024);

  std::vector<char> alive(n, 1);
  std::vector<VertexId> frontier;
  std::vector<VertexId> next_frontier;
  std::size_t remaining = n;
  VertexId k = 0;

  while (remaining > 0) {
    // Collect all alive vertices with degree <= k (parallel scan into
    // per-thread buffers would be the scalable variant; a serial collect
    // is fine at suite scale and keeps the code auditable).
    frontier.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && deg[v].load(std::memory_order_relaxed) <= k) {
        frontier.push_back(v);
      }
    }
    if (frontier.empty()) {
      ++k;
      continue;
    }
    // Peel rounds at level k until the frontier drains.
    while (!frontier.empty()) {
      for (VertexId v : frontier) {
        alive[v] = 0;
        out.coreness[v] = k;
      }
      remaining -= frontier.size();
      next_frontier.clear();
      std::atomic<std::size_t> next_count{0};
      std::vector<VertexId> candidates;
      // Decrement neighbor degrees in parallel; collect newly <= k.
      Mutex collect_mutex;
      parallel_for(0, frontier.size(), [&](std::size_t i) {
        VertexId v = frontier[i];
        std::vector<VertexId> local;
        for (VertexId u : g.neighbors(v)) {
          if (!alive[u]) continue;
          VertexId before = deg[u].fetch_sub(1, std::memory_order_relaxed);
          if (before == k + 1) local.push_back(u);  // crossed the threshold
        }
        if (!local.empty()) {
          MutexLock guard(collect_mutex);
          candidates.insert(candidates.end(), local.begin(), local.end());
        }
      }, 64);
      (void)next_count;
      next_frontier.clear();
      for (VertexId u : candidates) {
        if (alive[u]) next_frontier.push_back(u);
      }
      frontier.swap(next_frontier);
    }
    ++k;
  }
  out.degeneracy = k == 0 ? 0 : k - 1;
  // Recompute exact degeneracy (k-1 may overshoot if last levels were
  // empty); take the max coreness actually assigned.
  VertexId d = 0;
  for (VertexId v = 0; v < n; ++v) d = std::max(d, out.coreness[v]);
  out.degeneracy = d;
  return out;
}

}  // namespace lazymc::kcore
