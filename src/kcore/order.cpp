#include "kcore/order.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/parallel.hpp"

namespace lazymc::kcore {
namespace {

/// Stable counting sort of `items` by key(item); keys in [0, num_keys).
std::vector<VertexId> counting_sort(const std::vector<VertexId>& items,
                                    std::size_t num_keys,
                                    const std::vector<VertexId>& key) {
  std::vector<std::size_t> count(num_keys + 1, 0);
  for (VertexId v : items) ++count[key[v] + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::vector<VertexId> out(items.size());
  for (VertexId v : items) out[count[key[v]]++] = v;
  return out;
}

/// Parallel stable counting sort (SAPCo pattern): the input is split into
/// per-thread blocks; each thread histograms its block; a serial prefix
/// sum over (key, block) pairs assigns each (block, key) run a disjoint
/// output range; threads scatter independently.  Stability follows from
/// blocks being contiguous and scanned in order.
std::vector<VertexId> counting_sort_parallel(
    const std::vector<VertexId>& items, std::size_t num_keys,
    const std::vector<VertexId>& key) {
  const std::size_t n = items.size();
  const std::size_t p = num_threads();
  if (n < 4096 || p == 1) return counting_sort(items, num_keys, key);
  const std::size_t block = (n + p - 1) / p;

  // hist[t][k]: occurrences of key k in block t.
  std::vector<std::vector<std::size_t>> hist(
      p, std::vector<std::size_t>(num_keys, 0));
  thread_pool().parallel_invoke_all([&](std::size_t t) {
    std::size_t lo = t * block, hi = std::min(n, lo + block);
    for (std::size_t i = lo; i < hi; ++i) ++hist[t][key[items[i]]];
  });

  // Serial prefix over key-major, block-minor order: output offset of the
  // first key-k element of block t.
  std::size_t running = 0;
  for (std::size_t k = 0; k < num_keys; ++k) {
    for (std::size_t t = 0; t < p; ++t) {
      std::size_t c = hist[t][k];
      hist[t][k] = running;
      running += c;
    }
  }

  std::vector<VertexId> out(n);
  thread_pool().parallel_invoke_all([&](std::size_t t) {
    std::size_t lo = t * block, hi = std::min(n, lo + block);
    std::vector<std::size_t>& cursor = hist[t];
    for (std::size_t i = lo; i < hi; ++i) {
      out[cursor[key[items[i]]]++] = items[i];
    }
  });
  return out;
}

VertexOrder finish_order(std::vector<VertexId> items) {
  VertexOrder order;
  order.new_to_orig = std::move(items);
  order.orig_to_new.assign(order.new_to_orig.size(), 0);
  for (VertexId i = 0; i < order.new_to_orig.size(); ++i) {
    order.orig_to_new[order.new_to_orig[i]] = i;
  }
  return order;
}

}  // namespace

VertexOrder order_by_coreness_degree(const Graph& g,
                                     const std::vector<VertexId>& coreness) {
  const VertexId n = g.num_vertices();
  if (coreness.size() != n) {
    throw std::invalid_argument("order_by_coreness_degree: size mismatch");
  }
  std::vector<VertexId> items(n);
  for (VertexId v = 0; v < n; ++v) items[v] = v;

  std::vector<VertexId> degree(n);
  VertexId max_deg = 0, max_core = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_deg = std::max(max_deg, degree[v]);
    max_core = std::max(max_core, coreness[v]);
  }
  // Secondary key first (stable sorts compose right-to-left).
  items = counting_sort(items, max_deg + 1, degree);
  items = counting_sort(items, max_core + 1, coreness);
  return finish_order(std::move(items));
}

VertexOrder order_by_coreness_degree_parallel(
    const Graph& g, const std::vector<VertexId>& coreness) {
  const VertexId n = g.num_vertices();
  if (coreness.size() != n) {
    throw std::invalid_argument(
        "order_by_coreness_degree_parallel: size mismatch");
  }
  std::vector<VertexId> items(n);
  std::vector<VertexId> degree(n);
  for (VertexId v = 0; v < n; ++v) {
    items[v] = v;
    degree[v] = g.degree(v);
  }
  VertexId max_deg = 0, max_core = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_deg = std::max(max_deg, degree[v]);
    max_core = std::max(max_core, coreness[v]);
  }
  items = counting_sort_parallel(items, max_deg + 1, degree);
  items = counting_sort_parallel(items, max_core + 1, coreness);
  return finish_order(std::move(items));
}

VertexOrder order_from_peel(const Graph& g,
                            const std::vector<VertexId>& peel_order) {
  const VertexId n = g.num_vertices();
  VertexOrder order;
  order.new_to_orig.reserve(n);
  std::vector<char> seen(n, 0);
  for (VertexId v : peel_order) {
    order.new_to_orig.push_back(v);
    seen[v] = 1;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!seen[v]) order.new_to_orig.push_back(v);
  }
  order.orig_to_new.assign(n, 0);
  for (VertexId i = 0; i < n; ++i) order.orig_to_new[order.new_to_orig[i]] = i;
  return order;
}

Graph relabel(const Graph& g, const VertexOrder& order) {
  const VertexId n = g.num_vertices();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    offsets[new_v + 1] =
        offsets[new_v] + g.degree(order.new_to_orig[new_v]);
  }
  std::vector<VertexId> adjacency(offsets[n]);
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    VertexId orig = order.new_to_orig[new_v];
    EdgeId out = offsets[new_v];
    for (VertexId u : g.neighbors(orig)) {
      adjacency[out++] = order.orig_to_new[u];
    }
    std::sort(adjacency.begin() + offsets[new_v],
              adjacency.begin() + offsets[new_v + 1]);
  }
  return Graph(std::move(offsets), std::move(adjacency));
}

VertexId max_right_neighborhood(const Graph& g, const VertexOrder& order) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    VertexId count = 0;
    VertexId pos = order.orig_to_new[v];
    for (VertexId u : g.neighbors(v)) {
      if (order.orig_to_new[u] > pos) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

}  // namespace lazymc::kcore
