// On-disk layout of the `.lmg` binary graph store.
//
// A `.lmg` file is the zero-parse form of a Graph: the CSR arrays (and
// optionally the degeneracy-order permutation, the coreness array, and
// prebuilt 64-byte-aligned packed bitset zone rows) laid out so that a
// single mmap makes them directly consumable — startup is O(page-fault)
// instead of O(parse), and the SIMD word kernels are legal straight off
// the page cache because every rows section starts on a 64-byte file
// offset at a 64-byte row stride.
//
// Layout (all integers little-endian; the reader refuses to open the
// format on a big-endian host rather than byte-swap):
//
//   [FileHeader: 128 bytes]
//   [SectionEntry x header.section_count]
//   [64-byte alignment padding]
//   [section payloads, each starting at its entry's 64-byte-aligned
//    file offset, zero-padded in between]
//
// Sections (sizes fixed by the header's n / m / zone fields):
//
//   kOffsets    u64[n+1]               CSR offsets, offsets[0] == 0,
//                                      non-decreasing, back == 2m
//   kAdjacency  u32[2m]                CSR adjacency, values < n
//   kNewToOrig  u32[n]                 (coreness, degree) order: new->orig
//   kOrigToNew  u32[n]                 inverse permutation
//   kCoreness   u32[n]                 exact coreness by ORIGINAL id
//   kRowCounts  u32[zone_bits]         per-row popcounts
//   kRowWords   u64[zone_bits*stride]  packed zone rows, row i at
//                                      i*row_stride_words, 64-byte aligned
//
// Integrity: the header carries a checksum of its own bytes and one of
// the section table; every section entry carries a checksum of its
// payload.  The checksum is an xxhash-style 64-bit mix — fast enough to
// verify at memory bandwidth on open, strong enough to catch accidental
// corruption (truncation, bit flips, torn writes).  It is not
// cryptographic and does not defend against adversarial files; the
// reader's structural validation (section bounds, offset monotonicity,
// adjacency range) is what keeps a hostile or corrupt file from causing
// out-of-bounds access.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace lazymc::store {

inline constexpr char kMagic[8] = {'L', 'M', 'G', 'R', 'P', 'H', '0', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Every section payload (and the section table itself) starts on a
/// 64-byte file offset so an mmap'ed row pointer is cache-line aligned.
inline constexpr std::size_t kSectionAlign = 64;

enum HeaderFlags : std::uint32_t {
  /// kNewToOrig / kOrigToNew / kCoreness sections are present.
  kFlagHasOrder = 1u << 0,
  /// kRowCounts / kRowWords sections are present (implies kFlagHasOrder).
  kFlagHasRows = 1u << 1,
};

enum class SectionKind : std::uint32_t {
  kOffsets = 1,
  kAdjacency = 2,
  kNewToOrig = 3,
  kOrigToNew = 4,
  kCoreness = 5,
  kRowCounts = 6,
  kRowWords = 7,
};

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;  // undirected edge count m
  std::uint32_t section_count;
  std::uint32_t degeneracy;
  std::uint32_t zone_begin;        // first relabelled id with a row
  std::uint32_t zone_bits;         // rows and bits per row (zone size)
  std::uint64_t row_stride_words;  // u64 words between consecutive rows
  std::uint64_t table_checksum;    // checksum of the section table bytes
  std::uint64_t reserved[7];
  std::uint64_t header_checksum;  // checksum of this struct's bytes
                                  // [0, offsetof(header_checksum))
};
static_assert(sizeof(FileHeader) == 128, "FileHeader layout drifted");

struct SectionEntry {
  std::uint32_t kind;  // SectionKind
  std::uint32_t reserved;
  std::uint64_t offset;      // from file start, kSectionAlign-aligned
  std::uint64_t size_bytes;  // payload size (excluding padding)
  std::uint64_t checksum;    // checksum of the payload bytes
};
static_assert(sizeof(SectionEntry) == 32, "SectionEntry layout drifted");

/// xxhash-style one-shot 64-bit checksum: 8-byte little-endian lanes
/// folded through a strong multiply-xorshift avalanche, with the length
/// mixed in so truncation to a block boundary still changes the digest.
inline std::uint64_t checksum_bytes(const void* data, std::size_t size) {
  constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
  constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
  constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kPrime3 ^ (static_cast<std::uint64_t>(size) * kPrime1);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p + i, 8);
    h ^= lane * kPrime2;
    h = std::rotl(h, 31) * kPrime1;
  }
  std::uint64_t tail = 0;
  for (std::size_t shift = 0; i < size; ++i, shift += 8) {
    tail |= static_cast<std::uint64_t>(p[i]) << shift;
  }
  h ^= tail * kPrime2;
  // splitmix64-style finalizer: full avalanche of the folded state.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace lazymc::store
