// The binary graph store: zero-parse mmap'ed graphs.
//
// `write_lmg` serializes a Graph — plus the (coreness, degree) order,
// the exact coreness array, and optionally prebuilt packed bitset zone
// rows — into the `.lmg` format (format.hpp).  `BinaryGraphView::open`
// mmaps such a file read-only, validates it end to end (magic, version,
// header/table/section checksums, section bounds, CSR structure), posts
// madvise hints (MADV_WILLNEED for the sequential arrays, MADV_RANDOM
// for the row zone), and exposes:
//
//   * a Graph whose CSR spans point straight into the mapping (the view
//     handle rides along as the Graph's keepalive, so the Graph — and
//     any copy — can outlive the handle the caller holds);
//   * the stored vertex order / coreness / degeneracy, ready to slot
//     into LazyMC's preprocessing seam (mc::PrebuiltGraph), skipping
//     the k-core and ordering phases entirely;
//   * a PrebuiltRows view over the mmap'ed row section for
//     LazyGraph::adopt_prebuilt_rows — bitset rows come straight off
//     the page cache instead of being rebuilt into the slab arena.
//
// Because the mapping is read-only and file-backed, every process that
// opens the same `.lmg` shares clean pages: a second daemon (or a
// benchmark sweep re-running the same instance) pays page-cache hits,
// not I/O, and never duplicates the graph in RAM.
//
// Failure model: every validation failure throws Error(ErrorKind::kInput)
// with a message naming what was wrong — a truncated or bit-flipped file
// is reported structurally, never dereferenced past the mapping.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "intersect/bitset_row.hpp"
#include "kcore/order.hpp"
#include "store/format.hpp"

namespace lazymc::store {

/// Preprocessing results to serialize alongside the CSR arrays.
/// `order` / `coreness` are required (the converter always computes
/// them; they are what make the store a preprocessed graph rather than
/// a compressed one).  Rows are optional.
struct LmgBuildData {
  const kcore::VertexOrder* order = nullptr;
  /// Exact coreness by *original* vertex id (lower bound 0 — the stored
  /// decomposition must stay valid for any future incumbent).
  const std::vector<VertexId>* coreness = nullptr;
  VertexId degeneracy = 0;
  /// When true, pack a bitset row for every relabelled vertex whose
  /// coreness is >= rows_omega (the zone of interest a solve with that
  /// incumbent would fix).  rows_omega == 0 stores no rows even when
  /// with_rows is set (a zone covering isolated vertices is useless).
  bool with_rows = false;
  VertexId rows_omega = 0;
};

/// Serializes g (+ data) to `path`.  Throws Error(kInput) on I/O failure.
void write_lmg(const Graph& g, const LmgBuildData& data,
               const std::string& path);

/// True when `path` exists and starts with the `.lmg` magic bytes.
/// Never throws — unreadable files simply report false (the text readers
/// then produce their usual errors).
bool is_lmg_file(const std::string& path);

class BinaryGraphView : public std::enable_shared_from_this<BinaryGraphView> {
 public:
  /// Maps and fully validates `path`.  Throws Error(kInput) on any
  /// malformed, truncated, or corrupt content; Error(kResource) when the
  /// OS refuses the mapping.
  static std::shared_ptr<BinaryGraphView> open(const std::string& path);

  BinaryGraphView(const BinaryGraphView&) = delete;
  BinaryGraphView& operator=(const BinaryGraphView&) = delete;
  ~BinaryGraphView();

  /// Zero-copy CSR view into the mapping.  The returned Graph holds this
  /// view as its keepalive, so it (and copies) may outlive the caller's
  /// handle.
  Graph graph() const;

  bool has_order() const { return (header_.flags & kFlagHasOrder) != 0; }
  bool has_rows() const { return (header_.flags & kFlagHasRows) != 0; }

  /// Stored (coreness, degree) order.  Only valid when has_order().
  const kcore::VertexOrder& order() const { return order_; }
  /// Stored exact coreness by original id.  Only valid when has_order().
  const std::vector<VertexId>& coreness() const { return coreness_; }
  VertexId degeneracy() const { return header_.degeneracy; }

  /// View over the mmap'ed row section; !valid() when has_rows() is
  /// false.  Lifetime: valid as long as this view is alive (callers that
  /// hand rows to a LazyGraph must keep the view's shared_ptr).
  PrebuiltRows rows() const;

  VertexId zone_begin() const { return header_.zone_begin; }
  VertexId zone_size() const { return header_.zone_bits; }
  std::uint64_t file_bytes() const { return map_size_; }

 private:
  BinaryGraphView() = default;

  void validate_and_index(const std::string& path);
  const unsigned char* section(SectionKind kind, std::uint64_t* size) const;

  void* map_ = nullptr;
  std::uint64_t map_size_ = 0;
  FileHeader header_{};
  std::vector<SectionEntry> sections_;
  // O(n) copies out of the mapping: these feed std::vector-shaped seams
  // (kcore::VertexOrder, the coreness argument of LazyGraph).  The big
  // payloads — CSR arrays and rows — stay zero-copy.
  kcore::VertexOrder order_;
  std::vector<VertexId> coreness_;
};

}  // namespace lazymc::store
