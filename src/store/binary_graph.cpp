#include "store/binary_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "support/error.hpp"

namespace lazymc::store {
namespace {

static_assert(std::endian::native == std::endian::little,
              "the .lmg format is little-endian; this build targets a "
              "big-endian host (add byte-swapping before enabling it)");

[[noreturn]] void bad_input(const std::string& path, const std::string& what,
                            int sys_errno = 0) {
  throw Error(ErrorKind::kInput, "lmg '" + path + "': " + what, sys_errno);
}

std::size_t aligned_up(std::size_t offset) {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/// RAII for the writer's FILE*; the reader uses raw fds + mmap.
struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f) std::fclose(f);
  }
};

void write_bytes(std::FILE* f, const void* data, std::size_t size,
                 const std::string& path) {
  if (size == 0) return;
  if (std::fwrite(data, 1, size, f) != size) {
    bad_input(path, "write failed", errno);
  }
}

void write_padding(std::FILE* f, std::size_t from, std::size_t to,
                   const std::string& path) {
  static constexpr char zeros[kSectionAlign] = {};
  while (from < to) {
    const std::size_t chunk = std::min<std::size_t>(to - from, sizeof zeros);
    write_bytes(f, zeros, chunk, path);
    from += chunk;
  }
}

}  // namespace

void write_lmg(const Graph& g, const LmgBuildData& data,
               const std::string& path) {
  if (!data.order || !data.coreness) {
    throw Error(ErrorKind::kInternal,
                "write_lmg: order and coreness are required");
  }
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  if (data.order->size() != n || data.coreness->size() != n) {
    throw Error(ErrorKind::kInternal,
                "write_lmg: order/coreness size disagrees with the graph");
  }

  // ---- optional rows: fix the zone from the stored order/coreness ------
  VertexId zone_begin = 0, zone_bits = 0;
  std::size_t stride_words = 0;
  std::vector<std::uint64_t> row_words;
  std::vector<std::uint32_t> row_counts;
  if (data.with_rows && data.rows_omega > 0 && n > 0) {
    // Relabelled ids sort by ascending coreness, so the zone is the
    // suffix starting at the first id whose coreness >= rows_omega —
    // identical to LazyGraph::init_zone with rows_omega as the incumbent.
    VertexId zb = n;
    for (VertexId v = 0; v < n; ++v) {
      if ((*data.coreness)[data.order->new_to_orig[v]] >= data.rows_omega) {
        zb = v;
        break;
      }
    }
    if (zb < n) {
      zone_begin = zb;
      zone_bits = n - zb;
      const std::size_t words = (static_cast<std::size_t>(zone_bits) + 63) / 64;
      stride_words = (words + 7) & ~std::size_t{7};  // 64-byte row stride
      row_words.assign(static_cast<std::size_t>(zone_bits) * stride_words, 0);
      row_counts.assign(zone_bits, 0);
      for (VertexId v = zone_begin; v < n; ++v) {
        const std::size_t i = v - zone_begin;
        std::uint64_t* row = row_words.data() + i * stride_words;
        std::uint32_t count = 0;
        for (VertexId u_orig : g.neighbors(data.order->new_to_orig[v])) {
          const VertexId u = data.order->orig_to_new[u_orig];
          if (u < zone_begin) continue;
          const VertexId bit = u - zone_begin;
          row[bit >> 6] |= 1ULL << (bit & 63);
          ++count;
        }
        row_counts[i] = count;
      }
    }
  }
  const bool has_rows = zone_bits > 0;

  // ---- section table ---------------------------------------------------
  struct Payload {
    SectionKind kind;
    const void* data;
    std::uint64_t size;
  };
  std::vector<Payload> payloads;
  const auto offsets = g.offsets();
  const auto adjacency = g.adjacency();
  // A default-constructed empty Graph has no offsets array at all, but
  // the format always stores n+1 entries; give n = 0 its single zero.
  static constexpr EdgeId kEmptyOffsets[1] = {0};
  payloads.push_back({SectionKind::kOffsets,
                      offsets.empty() ? kEmptyOffsets : offsets.data(),
                      offsets.empty() ? sizeof(EdgeId) : offsets.size_bytes()});
  payloads.push_back({SectionKind::kAdjacency, adjacency.data(),
                      adjacency.size_bytes()});
  payloads.push_back({SectionKind::kNewToOrig, data.order->new_to_orig.data(),
                      std::uint64_t{n} * sizeof(VertexId)});
  payloads.push_back({SectionKind::kOrigToNew, data.order->orig_to_new.data(),
                      std::uint64_t{n} * sizeof(VertexId)});
  payloads.push_back({SectionKind::kCoreness, data.coreness->data(),
                      std::uint64_t{n} * sizeof(VertexId)});
  if (has_rows) {
    payloads.push_back({SectionKind::kRowCounts, row_counts.data(),
                        std::uint64_t{zone_bits} * sizeof(std::uint32_t)});
    payloads.push_back({SectionKind::kRowWords, row_words.data(),
                        std::uint64_t{row_words.size()} * 8});
  }

  std::vector<SectionEntry> table(payloads.size());
  std::size_t cursor = aligned_up(sizeof(FileHeader) +
                                  table.size() * sizeof(SectionEntry));
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    table[i].kind = static_cast<std::uint32_t>(payloads[i].kind);
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].size_bytes = payloads[i].size;
    table[i].checksum = checksum_bytes(payloads[i].data, payloads[i].size);
    cursor = aligned_up(cursor + payloads[i].size);
  }

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kFormatVersion;
  header.flags = kFlagHasOrder | (has_rows ? kFlagHasRows : 0u);
  header.num_vertices = n;
  header.num_edges = m;
  header.section_count = static_cast<std::uint32_t>(table.size());
  header.degeneracy = data.degeneracy;
  header.zone_begin = zone_begin;
  header.zone_bits = zone_bits;
  header.row_stride_words = stride_words;
  header.table_checksum =
      checksum_bytes(table.data(), table.size() * sizeof(SectionEntry));
  header.header_checksum =
      checksum_bytes(&header, offsetof(FileHeader, header_checksum));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) bad_input(path, "cannot open for writing", errno);
  FileCloser closer{f};
  write_bytes(f, &header, sizeof header, path);
  write_bytes(f, table.data(), table.size() * sizeof(SectionEntry), path);
  std::size_t written = sizeof header + table.size() * sizeof(SectionEntry);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    write_padding(f, written, table[i].offset, path);
    write_bytes(f, payloads[i].data, payloads[i].size, path);
    written = table[i].offset + payloads[i].size;
  }
  if (std::fflush(f) != 0) bad_input(path, "flush failed", errno);
}

bool is_lmg_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  return in.gcount() == sizeof magic &&
         std::memcmp(magic, kMagic, sizeof magic) == 0;
}

// ---- reader ---------------------------------------------------------------

std::shared_ptr<BinaryGraphView> BinaryGraphView::open(
    const std::string& path) {
  std::shared_ptr<BinaryGraphView> view(new BinaryGraphView());

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) bad_input(path, "cannot open", errno);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    bad_input(path, "cannot stat", err);
  }
  view->map_size_ = static_cast<std::uint64_t>(st.st_size);
  if (view->map_size_ < sizeof(FileHeader)) {
    ::close(fd);
    bad_input(path, "truncated: " + std::to_string(view->map_size_) +
                        " bytes is smaller than the header");
  }
  void* map = ::mmap(nullptr, view->map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_errno = errno;
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    throw Error(ErrorKind::kResource, "lmg '" + path + "': mmap failed",
                map_errno);
  }
  view->map_ = map;
#ifdef MADV_WILLNEED
  // The validation pass below touches every page anyway; WILLNEED lets
  // the kernel bring them in with large sequential reads instead of
  // one-page-at-a-time faults.
  ::madvise(map, view->map_size_, MADV_WILLNEED);
#endif

  view->validate_and_index(path);

#ifdef MADV_RANDOM
  // The row zone is probed row-at-a-time in search order, not
  // sequentially — tell the kernel not to waste readahead on it.
  if (view->has_rows()) {
    std::uint64_t size = 0;
    const unsigned char* rows = view->section(SectionKind::kRowWords, &size);
    const auto page =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    auto begin = reinterpret_cast<std::uintptr_t>(rows) & ~(page - 1);
    const auto end = reinterpret_cast<std::uintptr_t>(rows) + size;
    ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_RANDOM);
  }
#endif
  return view;
}

BinaryGraphView::~BinaryGraphView() {
  if (map_) ::munmap(map_, map_size_);
}

const unsigned char* BinaryGraphView::section(SectionKind kind,
                                              std::uint64_t* size) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.kind == static_cast<std::uint32_t>(kind)) {
      if (size) *size = entry.size_bytes;
      return static_cast<const unsigned char*>(map_) + entry.offset;
    }
  }
  if (size) *size = 0;
  return nullptr;
}

void BinaryGraphView::validate_and_index(const std::string& path) {
  const auto* base = static_cast<const unsigned char*>(map_);

  // ---- header ----------------------------------------------------------
  std::memcpy(&header_, base, sizeof header_);
  if (std::memcmp(header_.magic, kMagic, sizeof kMagic) != 0) {
    bad_input(path, "bad magic (not a .lmg file)");
  }
  if (header_.version != kFormatVersion) {
    bad_input(path, "unsupported format version " +
                        std::to_string(header_.version) + " (expected " +
                        std::to_string(kFormatVersion) + ")");
  }
  if (checksum_bytes(base, offsetof(FileHeader, header_checksum)) !=
      header_.header_checksum) {
    bad_input(path, "header checksum mismatch (corrupt or torn file)");
  }
  if (header_.num_vertices >
      std::uint64_t{std::numeric_limits<VertexId>::max()} - 1) {
    bad_input(path, "vertex count " + std::to_string(header_.num_vertices) +
                        " exceeds the supported maximum");
  }
  const auto n = static_cast<std::uint64_t>(header_.num_vertices);
  const std::uint64_t m = header_.num_edges;
  if (m > (std::uint64_t{1} << 61)) {
    bad_input(path, "edge count " + std::to_string(m) + " is implausible");
  }
  if (header_.section_count == 0 || header_.section_count > 16) {
    bad_input(path, "section count " + std::to_string(header_.section_count) +
                        " out of range");
  }

  // ---- section table ---------------------------------------------------
  const std::uint64_t table_bytes =
      std::uint64_t{header_.section_count} * sizeof(SectionEntry);
  if (sizeof(FileHeader) + table_bytes > map_size_) {
    bad_input(path, "truncated: section table extends past end of file");
  }
  if (checksum_bytes(base + sizeof(FileHeader), table_bytes) !=
      header_.table_checksum) {
    bad_input(path, "section table checksum mismatch");
  }
  sections_.resize(header_.section_count);
  std::memcpy(sections_.data(), base + sizeof(FileHeader), table_bytes);

  // ---- per-section bounds + checksums ----------------------------------
  for (const SectionEntry& entry : sections_) {
    if (entry.offset % kSectionAlign != 0 ||
        entry.offset < sizeof(FileHeader) + table_bytes) {
      bad_input(path, "section " + std::to_string(entry.kind) +
                          " has a misaligned or overlapping offset");
    }
    // Overflow-safe containment: size must fit between offset and EOF.
    if (entry.offset > map_size_ ||
        entry.size_bytes > map_size_ - entry.offset) {
      bad_input(path, "section " + std::to_string(entry.kind) +
                          " extends past end of file (offset " +
                          std::to_string(entry.offset) + ", size " +
                          std::to_string(entry.size_bytes) + ", file " +
                          std::to_string(map_size_) + ")");
    }
    if (checksum_bytes(base + entry.offset, entry.size_bytes) !=
        entry.checksum) {
      bad_input(path, "section " + std::to_string(entry.kind) +
                          " checksum mismatch (corrupt file)");
    }
  }

  const auto require = [&](SectionKind kind, std::uint64_t expected_bytes,
                           const char* name) -> const unsigned char* {
    std::uint64_t size = 0;
    const unsigned char* data = section(kind, &size);
    if (!data) bad_input(path, std::string("missing ") + name + " section");
    if (size != expected_bytes) {
      bad_input(path, std::string(name) + " section has " +
                          std::to_string(size) + " bytes, expected " +
                          std::to_string(expected_bytes));
    }
    return data;
  };

  // ---- CSR structure ---------------------------------------------------
  const auto* offsets = reinterpret_cast<const EdgeId*>(
      require(SectionKind::kOffsets, (n + 1) * sizeof(EdgeId), "offsets"));
  const auto* adjacency = reinterpret_cast<const VertexId*>(require(
      SectionKind::kAdjacency, 2 * m * sizeof(VertexId), "adjacency"));
  if (offsets[0] != 0) bad_input(path, "CSR offsets do not start at 0");
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      bad_input(path, "CSR offsets decrease at vertex " + std::to_string(v));
    }
  }
  if (offsets[n] != 2 * m) {
    bad_input(path, "CSR offsets end at " + std::to_string(offsets[n]) +
                        ", expected 2*m = " + std::to_string(2 * m));
  }
  for (std::uint64_t e = 0; e < 2 * m; ++e) {
    if (adjacency[e] >= n) {
      bad_input(path, "adjacency entry " + std::to_string(e) +
                          " names vertex " + std::to_string(adjacency[e]) +
                          " >= n = " + std::to_string(n));
    }
  }

  // ---- order + coreness ------------------------------------------------
  if (has_rows() && !has_order()) {
    bad_input(path, "rows flag set without the order flag");
  }
  if (has_order()) {
    const auto* new_to_orig = reinterpret_cast<const VertexId*>(require(
        SectionKind::kNewToOrig, n * sizeof(VertexId), "new_to_orig"));
    const auto* orig_to_new = reinterpret_cast<const VertexId*>(require(
        SectionKind::kOrigToNew, n * sizeof(VertexId), "orig_to_new"));
    const auto* coreness = reinterpret_cast<const VertexId*>(
        require(SectionKind::kCoreness, n * sizeof(VertexId), "coreness"));
    VertexId prev_core = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      const VertexId orig = new_to_orig[v];
      if (orig >= n || orig_to_new[orig] != v) {
        bad_input(path, "order arrays are not inverse permutations at new "
                        "id " + std::to_string(v));
      }
      const VertexId c = coreness[orig];
      if (c >= n && n > 0) {
        bad_input(path, "coreness " + std::to_string(c) + " >= n at vertex " +
                            std::to_string(orig));
      }
      // LazyGraph's zone logic requires ids sorted by ascending coreness.
      if (c < prev_core) {
        bad_input(path,
                  "stored order is not sorted by ascending coreness at new "
                  "id " + std::to_string(v));
      }
      prev_core = c;
    }
    order_.new_to_orig.assign(new_to_orig, new_to_orig + n);
    order_.orig_to_new.assign(orig_to_new, orig_to_new + n);
    coreness_.resize(n);
    for (std::uint64_t v = 0; v < n; ++v) coreness_[v] = coreness[v];
  }

  // ---- rows ------------------------------------------------------------
  if (has_rows()) {
    const std::uint64_t zb = header_.zone_begin;
    const std::uint64_t bits = header_.zone_bits;
    const std::uint64_t stride = header_.row_stride_words;
    if (bits == 0 || zb >= n || zb + bits != n) {
      bad_input(path, "row zone [" + std::to_string(zb) + ", +" +
                          std::to_string(bits) +
                          ") does not cover a suffix of the vertex ids");
    }
    const std::uint64_t words = (bits + 63) / 64;
    if (stride < words || stride % 8 != 0 || stride > words + 7) {
      bad_input(path, "row stride " + std::to_string(stride) +
                          " words is invalid for a " + std::to_string(bits) +
                          "-bit zone");
    }
    require(SectionKind::kRowCounts, bits * sizeof(std::uint32_t),
            "row counts");
    require(SectionKind::kRowWords, bits * stride * 8, "row words");
  }
}

Graph BinaryGraphView::graph() const {
  const auto n = static_cast<std::size_t>(header_.num_vertices);
  const auto m = static_cast<std::size_t>(header_.num_edges);
  std::uint64_t size = 0;
  const auto* offsets =
      reinterpret_cast<const EdgeId*>(section(SectionKind::kOffsets, &size));
  const auto* adjacency = reinterpret_cast<const VertexId*>(
      section(SectionKind::kAdjacency, &size));
  return Graph(std::span<const EdgeId>(offsets, n + 1),
               std::span<const VertexId>(adjacency, 2 * m),
               shared_from_this());
}

PrebuiltRows BinaryGraphView::rows() const {
  if (!has_rows()) return {};
  std::uint64_t size = 0;
  PrebuiltRows rows;
  rows.words = reinterpret_cast<const std::uint64_t*>(
      section(SectionKind::kRowWords, &size));
  rows.counts = reinterpret_cast<const std::uint32_t*>(
      section(SectionKind::kRowCounts, &size));
  rows.zone_begin = header_.zone_begin;
  rows.zone_bits = header_.zone_bits;
  rows.stride_words = static_cast<std::size_t>(header_.row_stride_words);
  return rows;
}

}  // namespace lazymc::store
