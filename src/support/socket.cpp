#include "support/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace lazymc::net {
namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error(ErrorKind::kInput,
                "socket path '" + path + "' exceeds the sun_path limit (" +
                    std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(const std::string& path, int backlog)
    : path_(path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw Error(ErrorKind::kInput, "socket() failed", errno);
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    std::string hint =
        saved == EADDRINUSE
            ? " (another daemon may own it; stale sockets are removed "
              "automatically only after a stale-pidfile check)"
            : "";
    throw Error(ErrorKind::kInput,
                "cannot bind '" + path + "'" + hint, saved);
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw Error(ErrorKind::kInput, "listen on '" + path + "' failed", errno);
  }
  fd_ = std::move(fd);
}

UnixListener::~UnixListener() {
  fd_.reset();
  ::unlink(path_.c_str());  // best effort
}

Fd UnixListener::accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_.get();
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Fd();  // signal: caller re-checks flags
    throw Error(ErrorKind::kInput, "poll on listener failed", errno);
  }
  if (ready == 0) return Fd();  // timeout
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) {
    // Transient accept failures (the client went away between poll and
    // accept, fd pressure) are not fatal to the daemon.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EMFILE || errno == ENFILE) {
      return Fd();
    }
    throw Error(ErrorKind::kInput, "accept failed", errno);
  }
  return Fd(client);
}

Fd unix_connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    throw Error(ErrorKind::kInput, "socket() failed", errno);
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw Error(ErrorKind::kInput,
                "cannot connect to daemon socket '" + path +
                    "' (is lazymcd running?)",
                errno);
  }
  return fd;
}

LineChannel::ReadStatus LineChannel::read_line(std::string& out,
                                               int timeout_ms) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (timeout_ms >= 0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) return ReadStatus::kTimeout;
        throw Error(ErrorKind::kInput, "poll on connection failed", errno);
      }
      if (ready == 0) return ReadStatus::kTimeout;
    }
    char chunk[4096];
    const ::ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorKind::kInput, "read from connection failed", errno);
    }
    if (n == 0) {
      // EOF: a final unterminated line is surfaced once, then EOF.
      if (!buffer_.empty()) {
        out = std::move(buffer_);
        buffer_.clear();
        return ReadStatus::kLine;
      }
      return ReadStatus::kEof;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineChannel::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process-
    // killing SIGPIPE — one misbehaving client must never take down the
    // daemon.
    const ::ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorKind::kInput, "write to connection failed", errno);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace lazymc::net
