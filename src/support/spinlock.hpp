// Test-and-test-and-set spinlock.  Used for the per-vertex locks of the
// lazy graph (Algorithm 2, line 5): critical sections are short
// (construct one neighborhood) and contention is rare, so a 1-byte
// spinlock per vertex beats std::mutex on footprint.
#pragma once

#include <atomic>

namespace lazymc {

class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; relaxed load avoids cache-line ping-pong while held
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinLockGuard() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace lazymc
