// Test-and-test-and-set spinlock.  Used for the per-vertex locks of the
// lazy graph (Algorithm 2, line 5): critical sections are short
// (construct one neighborhood) and contention is rare, so a 1-byte
// spinlock per vertex beats std::mutex on footprint.
//
// SpinLock is an annotated capability ("spinlock"), so Clang's thread
// safety analysis checks acquire/release balance and GUARDED_BY
// discipline for every structure it protects (see
// support/thread_annotations.hpp).
#pragma once

#include <atomic>

#include "support/thread_annotations.hpp"

namespace lazymc {

class LAZYMC_CAPABILITY("spinlock") SpinLock {
 public:
  void lock() LAZYMC_ACQUIRE() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; relaxed load avoids cache-line ping-pong while held
      }
    }
  }

  bool try_lock() LAZYMC_TRY_ACQUIRE(true) {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() LAZYMC_RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock.
class LAZYMC_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) LAZYMC_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() LAZYMC_RELEASE() { lock_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace lazymc
