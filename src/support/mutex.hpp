// Annotated mutex wrapper for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::unique_lock carry no thread-safety
// attributes, so locking through them is invisible to -Wthread-safety.
// This header wraps them with the LAZYMC_CAPABILITY annotations; all
// runtime code that needs a blocking mutex (the ThreadPool, the global
// pool registry, parallel collectors) locks through these types so the
// GUARDED_BY discipline is machine-checked.
//
// MutexLock exposes the underlying std::unique_lock for condition
// variable waits; condition predicates are written as explicit
// while-loops in the annotated caller (not as wait(lock, pred) lambdas)
// so the analysis sees the guarded reads in a scope that holds the
// capability.
#pragma once

#include <mutex>

#include "support/thread_annotations.hpp"

namespace lazymc {

class LAZYMC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LAZYMC_ACQUIRE() { m_.lock(); }
  bool try_lock() LAZYMC_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void unlock() LAZYMC_RELEASE() { m_.unlock(); }

  /// The wrapped mutex, for std::condition_variable::wait.  Callers go
  /// through MutexLock::native(); waiting re-locks before returning, so
  /// the capability model (lock held for the MutexLock's whole scope)
  /// stays truthful at every point the caller can observe.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex (std::unique_lock underneath, so condition
/// variables can wait on it).
class LAZYMC_SCOPED_CAPABILITY MutexLock {
 public:
  // Acquire through the annotated Mutex::lock(), then adopt into the
  // unique_lock: the analysis verifies ACQUIRE/RELEASE functions really
  // do acquire/release in their bodies, and only the wrapper's calls are
  // visible to it.
  explicit MutexLock(Mutex& mutex) LAZYMC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    lock_ = std::unique_lock<std::mutex>(mutex_.native(), std::adopt_lock);
  }
  ~MutexLock() LAZYMC_RELEASE() {
    // Hand ownership back so the unlock runs through the annotated path
    // (and exactly once).
    static_cast<void>(lock_.release());
    mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For condition_variable::wait(native()).
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

}  // namespace lazymc
