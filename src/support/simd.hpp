// SIMD tier model for the word-parallel kernels.
//
// Three tiers cover every word loop in the engine:
//   kScalar — portable 64-bit words + __builtin_popcountll; always present.
//   kAvx2   — 256-bit lanes (4 words), VPAND + the PSHUFB nibble-LUT
//             popcount; compiled only under __AVX2__.
//   kAvx512 — 512-bit lanes (8 words), VPANDQ + native VPOPCNTQ; compiled
//             only under __AVX512F__ + __AVX512VPOPCNTDQ__.
//
// Compile-time guards decide which tiers *exist* in the binary (the
// default build is scalar-only; configure with -DLAZYMC_SIMD=avx2/avx512
// or -march=native to compile the vector tiers in).  A one-time CPUID
// check (`best_tier`) decides which compiled tier actually *runs*, so a
// binary built with -mavx512* still degrades safely on an AVX2-only
// host... of the tiers it was allowed to assume.  `force_tier` overrides
// the choice process-wide for A/B runs (`lazymc --kernels ...`) and for
// the forced-tier agreement tests; every dispatch site re-reads
// `current_tier()` through one relaxed atomic.
//
// The vector kernels use unaligned loads and per-word gathers, so no
// *correctness* requirement falls on data placement; alignment helpers
// (AlignedAllocator, kRowAlignment) exist so the hot row storage sits on
// cache-line boundaries and aligned vector loads stay legal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <vector>

#if defined(__AVX2__)
#define LAZYMC_HAVE_AVX2 1
#else
#define LAZYMC_HAVE_AVX2 0
#endif

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)
#define LAZYMC_HAVE_AVX512 1
#else
#define LAZYMC_HAVE_AVX512 0
#endif

#if LAZYMC_HAVE_AVX2 || LAZYMC_HAVE_AVX512
#include <immintrin.h>
#endif

namespace lazymc::simd {

enum class Tier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr std::size_t kNumTiers = 3;

/// Row storage alignment (bytes): one cache line, enough for any tier's
/// aligned vector load.
inline constexpr std::size_t kRowAlignment = 64;

/// "scalar" / "avx2" / "avx512" (matches the --kernels spellings).
const char* tier_name(Tier t);

/// Whether the tier's kernels were compiled into this binary (the macro
/// guards above, evaluated under the build's flags).
bool tier_compiled(Tier t);

/// Compiled in *and* supported by the running CPU.
bool tier_supported(Tier t);

/// Highest supported tier (cached after the first CPUID query).
Tier best_tier();

/// The tier every dispatch site routes to: the forced tier when one is
/// set, else best_tier().
Tier current_tier();

/// Forces all kernel dispatch to `t` (process-global).  Returns false —
/// and changes nothing — when the tier is not supported here.
bool force_tier(Tier t);

/// Clears any forced tier; dispatch returns to best_tier().
void reset_tier();

/// The currently forced tier, or nullopt under auto dispatch.
std::optional<Tier> forced_tier();

/// All tiers this build + CPU can run, ascending (always starts with
/// kScalar); the domain forced-tier sweeps iterate over.
std::vector<Tier> supported_tiers();

/// Selects the table matching current_tier() from per-tier candidates,
/// walking down a tier when the preferred one was not compiled in (the
/// vector pointers are null then).  Shared by every dispatch cascade so
/// adding a tier means editing one switch.
template <typename T>
const T& pick_table(const T& scalar, const T* avx2, const T* avx512) {
  switch (current_tier()) {
    case Tier::kAvx512:
      if (avx512) return *avx512;
      [[fallthrough]];
    case Tier::kAvx2:
      if (avx2) return *avx2;
      [[fallthrough]];
    case Tier::kScalar:
      break;
  }
  return scalar;
}

/// std::vector allocator with a fixed alignment (a power of two >=
/// alignof(T)).  Used for bitset words and slab arenas so rows start on
/// cache-line boundaries.
template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  // The non-type Align parameter defeats allocator_traits' generic
  // rebind pattern; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// 64-bit words on cache-line boundaries: the storage type for bitset
/// rows, slab arenas, and scratch word buffers.
using AlignedWords =
    std::vector<std::uint64_t, AlignedAllocator<std::uint64_t, kRowAlignment>>;

#if LAZYMC_HAVE_AVX2

/// Per-64-bit-lane popcount without VPOPCNTQ: PSHUFB nibble lookup, then
/// PSADBW folds the byte counts into each quadword (the standard
/// Mula/Kurz/Lemire construction).
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Horizontal sum of the four 64-bit lanes.
inline std::uint64_t reduce_add_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

#endif  // LAZYMC_HAVE_AVX2

}  // namespace lazymc::simd
