// Parallel runtime substrate for LazyMC.
//
// The paper builds on the Parlay scheduler; this module provides the subset
// of functionality the algorithms actually need, tuned so the scheduler
// itself stays off the profile:
//
//  * `parallel_for` / `parallel_reduce` are template-dispatched: the body
//    is invoked through a per-type trampoline (one indirect call per
//    participant per launch), so per-iteration calls inline — no
//    `std::function` erasure anywhere on the hot path.
//  * Iteration ranges are *sharded*: each participant owns a contiguous
//    slice of [begin, end) and claims grain-sized chunks from it with a
//    single relaxed fetch_add on its own cache line.  A participant that
//    drains its shard steals chunks from the other shards round-robin, so
//    skewed per-iteration costs still balance without a central counter.
//  * `WorkQueue<T>` is a sharded multi-producer multi-consumer queue
//    (per-shard locked rings, batch push, steal-half) for irregular work
//    that does not fit a flat loop — e.g. the systematic-search worklist.
//  * `TaskGroup` + `drain_queue` extend the WorkQueue drain to *nested*
//    work: consumers may push new items while draining (e.g. a giant
//    branch-and-bound subproblem splitting itself into stealable tasks),
//    and the drain terminates only when every item ever added — not just
//    the initial batch — has been completed.
//
// Nested-parallelism rule: a `parallel_for` / `parallel_invoke_all` issued
// from inside a worker of the same pool runs the whole range inline on the
// calling worker (no new job is published).  This keeps the runtime
// deadlock-free without a full work-stealing scheduler and matches how
// LazyMC uses parallelism: one flat parallel phase at a time, with
// irregular work routed through WorkQueue instead of nested forks.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <thread>

#include "support/faultinject.hpp"
#include <type_traits>
#include <vector>

#include "support/check.hpp"
#include "support/mutex.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace lazymc {

namespace detail {

/// One shard of a sharded iteration range.  Padded to a cache line so
/// owners claiming from their own shard never false-share.
struct alignas(64) RangeShard {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

/// A [begin, end) range split into one contiguous shard per participant.
/// Participants claim grain-sized chunks from their own shard first, then
/// steal chunks from other shards round-robin.
class ShardedRange {
 public:
  ShardedRange(std::size_t begin, std::size_t end, std::size_t participants,
               std::size_t grain)
      : parts_(participants == 0 ? 1 : participants),
        grain_(grain == 0 ? 1 : grain),
        shards_(std::make_unique<RangeShard[]>(parts_)) {
    const std::size_t n = end - begin;
    const std::size_t per = (n + parts_ - 1) / parts_;
    for (std::size_t p = 0; p < parts_; ++p) {
      std::size_t lo = begin + std::min(n, p * per);
      std::size_t hi = begin + std::min(n, (p + 1) * per);
      shards_[p].next.store(lo, std::memory_order_relaxed);
      shards_[p].end = hi;
    }
  }

  /// Claims the next chunk for participant `p`: own shard first, then the
  /// other shards in round-robin order.  Returns false when no work is
  /// left anywhere.
  bool claim(std::size_t p, std::size_t& lo, std::size_t& hi) {
    if (p >= parts_) p %= parts_;
    for (std::size_t off = 0; off < parts_; ++off) {
      if (claim_from(shards_[(p + off) % parts_], lo, hi)) return true;
    }
    return false;
  }

  /// Marks every shard drained (used to cut short after an exception).
  void poison() {
    for (std::size_t p = 0; p < parts_; ++p) {
      shards_[p].next.store(shards_[p].end, std::memory_order_relaxed);
    }
  }

 private:
  bool claim_from(RangeShard& s, std::size_t& lo, std::size_t& hi) {
    // The load guards the fetch_add so drained shards are not incremented
    // without bound by polling thieves; the race it leaves is benign.
    if (s.next.load(std::memory_order_relaxed) >= s.end) return false;
    lo = s.next.fetch_add(grain_, std::memory_order_relaxed);
    if (lo >= s.end) return false;
    hi = std::min(s.end, lo + grain_);
    return true;
  }

  std::size_t parts_;
  std::size_t grain_;
  std::unique_ptr<RangeShard[]> shards_;
};

/// A job handed to the pool.  `run` is a per-body-type trampoline set by
/// the launching template, so the scheduler performs exactly one indirect
/// call per participant and the per-iteration body call inlines.
struct JobBase {
  void (*run)(JobBase&, std::size_t participant) = nullptr;
  SpinLock error_lock;
  std::exception_ptr error LAZYMC_GUARDED_BY(error_lock);

  void capture_error() noexcept {
    SpinLockGuard guard(error_lock);
    if (!error) error = std::current_exception();
  }

  /// The first captured error (null when none).  Read under the lock so
  /// the error protocol is fully lock-disciplined; the caller uses this
  /// after the join, but taking the lock costs nothing there.
  std::exception_ptr take_error() {
    SpinLockGuard guard(error_lock);
    return error;
  }
};

template <typename Body>
struct ParallelForJob final : JobBase {
  ParallelForJob(Body& b, std::size_t begin, std::size_t end,
                 std::size_t participants, std::size_t grain)
      : body(&b), range(begin, end, participants, grain) {
    run = &dispatch;
  }

  Body* body;
  ShardedRange range;

  static void dispatch(JobBase& base, std::size_t p) {
    auto& self = static_cast<ParallelForJob&>(base);
    Body& body = *self.body;
    std::size_t lo = 0, hi = 0;
    try {
      while (self.range.claim(p, lo, hi)) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }
    } catch (...) {
      self.capture_error();
      self.range.poison();
    }
  }
};

template <typename Fn>
struct InvokeAllJob final : JobBase {
  explicit InvokeAllJob(Fn& f) : fn(&f) { run = &dispatch; }

  Fn* fn;

  static void dispatch(JobBase& base, std::size_t p) {
    auto& self = static_cast<InvokeAllJob&>(base);
    try {
      (*self.fn)(p);
    } catch (...) {
      self.capture_error();
    }
  }
};

}  // namespace detail

/// A fork-join thread pool.  One global instance (see `thread_pool()`) is
/// shared by the whole library; tests may construct private pools.
///
/// Launch discipline: any number of external (non-worker) threads may
/// launch jobs concurrently — the epoch-based publication still has a
/// single launcher slot, so launchers serialize on an internal gate and
/// each job runs to completion before the next is published.  This is
/// what lets a resident daemon multiplex concurrent solve requests onto
/// one pool: requests interleave at job granularity (a parallel phase or
/// a queue drain each being one job), and a request blocked behind a
/// long drain stays cancellable through its own SolveControl, which the
/// draining job's stop predicate polls.  Calls *from inside a worker*
/// never take the gate (they run inline, see the nested-parallelism
/// rule), so worker-side nesting cannot deadlock against it.
class ThreadPool {
 public:
  /// Creates a pool running `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (always >= 1; the caller participates).
  std::size_t num_threads() const { return threads_.size() + 1; }

  /// Runs `body(i)` for i in [begin, end).  The range is split into one
  /// contiguous shard per participant; each participant claims blocks of
  /// `grain` iterations from its own shard and steals blocks from other
  /// shards once its own is drained.  Blocks until all iterations
  /// complete.  Re-entrant calls from a worker thread run sequentially
  /// (see the nested-parallelism rule above).  Exceptions thrown by
  /// `body` propagate to the caller (first one wins).
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t grain = 1) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    if (in_worker() || threads_.empty() || end - begin <= grain) {
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }
    detail::ParallelForJob<std::remove_reference_t<Body>> job(
        body, begin, end, num_threads(), grain);
    run_job(job);
  }

  /// Runs `fn(t)` once on each of the `num_threads()` participants
  /// (t = participant index).  Used for per-thread accumulators and for
  /// draining a WorkQueue with one shard per participant.
  template <typename Fn>
  void parallel_invoke_all(Fn&& fn) {
    if (in_worker() || threads_.empty()) {
      for (std::size_t t = 0; t < num_threads(); ++t) fn(t);
      return;
    }
    detail::InvokeAllJob<std::remove_reference_t<Fn>> job(fn);
    run_job(job);
  }

  /// True when called from inside one of this pool's workers.
  bool in_worker() const;

 private:
  void worker_loop(std::size_t worker_index);
  /// Publishes `job`, participates as participant 0, joins, rethrows.
  void run_job(detail::JobBase& job);

  std::vector<std::thread> threads_;
  /// Serializes external launchers (held across one entire job, from
  /// publication to join).  Ordered strictly before mutex_.
  Mutex launch_mutex_;
  Mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  detail::JobBase* current_job_ LAZYMC_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t job_epoch_ LAZYMC_GUARDED_BY(mutex_) = 0;
  std::size_t workers_done_ LAZYMC_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ LAZYMC_GUARDED_BY(mutex_) = false;
};

/// Returns the process-wide pool.  The first call creates it with
/// hardware concurrency.
ThreadPool& thread_pool();

/// Sets the number of threads used by `thread_pool()`.  Destroys and
/// recreates the global pool; must not be called concurrently with other
/// library operations.  Used by the Fig. 7 thread sweep.
void set_num_threads(std::size_t n);

/// Current size of the global pool.
std::size_t num_threads();

/// Convenience wrappers over the global pool. ------------------------------

template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  thread_pool().parallel_for(begin, end, std::forward<Body>(body), grain);
}

/// Parallel reduction: combines `body(i)` over [begin, end) with `combine`,
/// starting from `identity`.  `combine` must be associative.  Shares the
/// sharded claiming scheme with parallel_for; per-participant partials are
/// combined on the calling thread.
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Body&& body,
                  Combine&& combine, std::size_t grain = 256) {
  if (begin >= end) return identity;
  ThreadPool& pool = thread_pool();
  const std::size_t p = pool.num_threads();
  std::vector<T> partial(p, identity);
  detail::ShardedRange range(begin, end, p, grain == 0 ? 1 : grain);
  pool.parallel_invoke_all([&](std::size_t t) {
    T acc = identity;
    std::size_t lo = 0, hi = 0;
    while (range.claim(t, lo, hi)) {
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
    }
    partial[t] = acc;
  });
  T result = identity;
  for (const T& v : partial) result = combine(result, v);
  return result;
}

/// A sharded multi-producer multi-consumer work queue for irregular work
/// that does not fit a flat parallel_for.
///
/// Each shard is a small locked ring: owners push to the back and pop from
/// the *front* (so items pushed in priority order are consumed in priority
/// order), while a consumer whose shard is empty steals the *back half* of
/// a victim shard in one locked operation (steal-half), keeping future
/// steals off the victim's cache line.  Locks are per-shard spinlocks;
/// with one shard per participant the common pop is uncontended.
///
/// `size()` counts queued items only — an item being executed by a
/// consumer is no longer in the queue.  When producers have finished
/// pushing, `pop` returning false means the queue is globally empty, which
/// is the termination condition for drain loops.
template <typename T>
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        shards_(std::make_unique<Shard[]>(num_shards_)) {}

  std::size_t num_shards() const { return num_shards_; }

  /// Appends one item to `shard` (lowest priority in that shard).
  void push(std::size_t shard, T item) {
    Shard& s = shard_at(shard);
    {
      SpinLockGuard guard(s.lock);
      s.items.push_back(std::move(item));
    }
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Prepends one item to `shard` (highest priority: the owner's next pop
  /// claims it before anything older).  Used for depth-first work spawned
  /// mid-drain — e.g. subproblem tasks, which should run before the
  /// breadth of remaining probe chunks so their results prune it.  The
  /// consumed-prefix slot before `head` is reused when available, so
  /// steady-state front-pushes into an active shard do not shift the ring.
  void push_front(std::size_t shard, T item) {
    Shard& s = shard_at(shard);
    {
      SpinLockGuard guard(s.lock);
      if (s.head > 0) {
        s.items[--s.head] = std::move(item);
      } else {
        s.items.insert(s.items.begin(), std::move(item));
      }
    }
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a batch under one lock acquisition.
  template <typename It>
  void push_batch(std::size_t shard, It first, It last) {
    if (first == last) return;
    Shard& s = shard_at(shard);
    std::size_t count = 0;
    {
      SpinLockGuard guard(s.lock);
      for (It it = first; it != last; ++it, ++count) s.items.push_back(*it);
    }
    size_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Pops the highest-priority item of the participant's own shard.
  bool try_pop_local(std::size_t shard, T& out) {
    Shard& s = shard_at(shard);
    SpinLockGuard guard(s.lock);
    if (!take_front(s, out)) return false;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Steals roughly half of a victim shard (scanning round-robin from
  /// `thief + 1`), keeps the loot in the thief's shard and returns the
  /// loot's highest-priority item.  Items move straight from the victim
  /// into the thief's shard (both locks held, acquired in global index
  /// order so symmetric steals cannot deadlock); once the thief shard's
  /// vector capacity has grown to its high-water mark, steals allocate
  /// nothing.
  bool try_steal(std::size_t thief, T& out) {
    thief %= num_shards_;
    Shard& mine = shards_[thief];
    for (std::size_t off = 1; off < num_shards_; ++off) {
      const std::size_t vi = (thief + off) % num_shards_;
      if (steal_from(mine, shards_[vi], /*victim_first=*/vi < thief, out)) {
        return true;
      }
    }
    return false;
  }

  /// Pop-or-steal for participant `shard`.  False = queue globally empty
  /// (assuming no concurrent pushes).
  bool pop(std::size_t shard, T& out) {
    if (try_pop_local(shard, out)) return true;
    return try_steal(shard, out);
  }

  /// Number of queued (not yet claimed) items.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

 private:
  struct alignas(64) Shard {
    SpinLock lock;
    // FIFO from `head`; back half is steal territory.
    std::vector<T> items LAZYMC_GUARDED_BY(lock);
    std::size_t head LAZYMC_GUARDED_BY(lock) = 0;  // first live item
  };

  Shard& shard_at(std::size_t shard) { return shards_[shard % num_shards_]; }

  /// Moves the back half of `victim` into `mine`, returning the loot's
  /// highest-priority item through `out`.  Both locks are taken in global
  /// shard-index order (`victim_first` says which comes first), which the
  /// thread-safety analysis cannot express — the conditional acquisition
  /// order aliases the two capabilities — so this one function opts out;
  /// every access below still happens with both shard locks held.
  bool steal_from(Shard& mine, Shard& victim, bool victim_first,
                  T& out) LAZYMC_NO_THREAD_SAFETY_ANALYSIS {
    SpinLockGuard g1(victim_first ? victim.lock : mine.lock);
    SpinLockGuard g2(victim_first ? mine.lock : victim.lock);
    const std::size_t avail = victim.items.size() - victim.head;
    if (avail == 0) return false;
    const std::size_t take = (avail + 1) / 2;
    auto src = victim.items.end() - static_cast<std::ptrdiff_t>(take);
    out = std::move(*src);
    mine.items.insert(mine.items.end(), std::move_iterator(src + 1),
                      std::move_iterator(victim.items.end()));
    victim.items.resize(victim.items.size() - take);
    compact(victim);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  static bool take_front(Shard& s, T& out) LAZYMC_REQUIRES(s.lock) {
    if (s.head == s.items.size()) return false;
    out = std::move(s.items[s.head++]);
    compact(s);
    return true;
  }

  /// Reclaims the consumed prefix once it dominates the buffer.
  static void compact(Shard& s) LAZYMC_REQUIRES(s.lock) {
    if (s.head == s.items.size()) {
      s.items.clear();
      s.head = 0;
    } else if (s.head >= 64 && s.head * 2 >= s.items.size()) {
      s.items.erase(s.items.begin(),
                    s.items.begin() + static_cast<std::ptrdiff_t>(s.head));
      s.head = 0;
    }
  }

  std::size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::size_t> size_{0};
};

/// Completion tracking for nested task groups draining through a WorkQueue.
///
/// `pop` returning false only proves the queue is *currently* empty; when
/// consumers may push new work while draining (subproblem splitting), that
/// is not a termination signal — another consumer might be about to push.
/// The group counts outstanding items instead: producers `add()` *before*
/// pushing (so an item is never visible in the queue without being
/// counted), consumers `complete()` after fully processing one (including
/// pushing any children, which were add()ed first).  `done()` therefore
/// means: every item ever added has been completed, and no live item can
/// spawn more.
class TaskGroup {
 public:
  void add(std::size_t n = 1) {
    pending_.fetch_add(static_cast<std::ptrdiff_t>(n),
                       std::memory_order_relaxed);
  }
  void complete() {
    [[maybe_unused]] const std::ptrdiff_t prev =
        pending_.fetch_sub(1, std::memory_order_release);
    LAZYMC_ASSERT(prev > 0,
                  "TaskGroup::complete() without a matching add() — "
                  "drain accounting out of balance");
  }
  bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }
  std::size_t pending() const {
    return static_cast<std::size_t>(
        pending_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::ptrdiff_t> pending_{0};
};

/// Drains `queue` with every pool participant until `group.done()` — the
/// two-level drain loop shared by probe chunks and subproblem tasks.
///
/// `process(participant, item)` may push new items (after group.add());
/// the helper calls group.complete() for it.  `stop()` is polled each
/// iteration by every participant; when it returns true all participants
/// abandon the drain regardless of pending work (cooperative
/// cancellation — pending counts are not repaired, the group is dead).
/// Participants that find the queue momentarily empty back off
/// exponentially (yield, then micro-sleeps) so waiters do not starve the
/// workers still producing — important when the pool is oversubscribed.
template <typename T, typename Process, typename Stop>
void drain_queue(ThreadPool& pool, WorkQueue<T>& queue, TaskGroup& group,
                 Process&& process, Stop&& stop) {
  // An exception in `process` leaves the group permanently non-done; the
  // abort flag gets the other participants out before the error
  // propagates through the pool (first one wins, as with parallel_for).
  std::atomic<bool> aborted{false};
  pool.parallel_invoke_all([&](std::size_t p) {
    T item;
    unsigned idle_spins = 0;
    while (!group.done()) {
      if (aborted.load(std::memory_order_relaxed) || stop()) break;
      if (queue.pop(p, item)) {
        idle_spins = 0;
        // Injected scheduling stall (fault builds only): models a worker
        // descheduled between claiming an item and processing it, which
        // the completion accounting must tolerate without losing work.
        LAZYMC_FAULT_STALL("worker.stall", 2);
        try {
          process(p, item);
        } catch (...) {
          aborted.store(true, std::memory_order_relaxed);
          group.complete();
          throw;
        }
        group.complete();
      } else if (++idle_spins < 64) {
        std::this_thread::yield();
      } else {
        // Capped exponential backoff: 2us doubling to ~1ms.
        const unsigned shift = std::min(idle_spins - 64, 9u);
        std::this_thread::sleep_for(std::chrono::microseconds(2u << shift));
      }
    }
  });
  // Balance invariant at drain exit: when the group reports done (every
  // add() matched by a complete()), nothing may be left in the queue —
  // an uncounted push would strand work.  A stop()-cancelled drain exits
  // with the group legitimately non-done, so the check is conditional.
  LAZYMC_ASSERT(!group.done() || queue.empty(),
                "drain_queue exit: TaskGroup is done but items remain "
                "queued (an item was pushed without TaskGroup::add)");
}

}  // namespace lazymc
