// Parallel runtime substrate for LazyMC.
//
// The paper builds on the Parlay scheduler; this module provides the subset
// of functionality the algorithms actually need — a persistent thread pool
// with statically- and dynamically-scheduled parallel_for, parallel
// reduction, and a thread-count knob for the scalability experiments
// (Fig. 7).  Nested parallel_for calls from inside a worker execute
// sequentially, which matches how LazyMC uses parallelism (one flat parfor
// per phase over vertices / degeneracy levels).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lazymc {

/// A fork-join thread pool.  One global instance (see `thread_pool()`) is
/// shared by the whole library; tests may construct private pools.
class ThreadPool {
 public:
  /// Creates a pool running `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (always >= 1).
  std::size_t num_threads() const { return threads_.size() + 1; }

  /// Runs `body(i)` for i in [begin, end).  Iterations are divided into
  /// contiguous blocks of at least `grain` iterations, distributed over all
  /// workers with work-stealing-style dynamic chunk claiming.  Blocks until
  /// all iterations complete.  Re-entrant calls from a worker thread run
  /// sequentially.  Exceptions thrown by `body` propagate to the caller
  /// (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Runs `fn(t)` once on each of the `num_threads()` participants
  /// (t = participant index).  Used for per-thread accumulators.
  void parallel_invoke_all(const std::function<void(std::size_t)>& fn);

  /// True when called from inside one of this pool's workers.
  bool in_worker() const;

 private:
  struct Job {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    // When per_thread is true, body receives the participant index instead
    // of loop indices, exactly once per participant.
    bool per_thread = false;
    std::atomic<std::size_t> remaining_participants{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop(std::size_t worker_index);
  void run_job_portion(Job& job, std::size_t participant);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job* current_job_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  std::size_t workers_done_ = 0;
  bool shutting_down_ = false;
};

/// Returns the process-wide pool.  The first call creates it with
/// `default_num_threads()` workers.
ThreadPool& thread_pool();

/// Sets the number of threads used by `thread_pool()`.  Destroys and
/// recreates the global pool; must not be called concurrently with other
/// library operations.  Used by the Fig. 7 thread sweep.
void set_num_threads(std::size_t n);

/// Current size of the global pool.
std::size_t num_threads();

/// Convenience wrappers over the global pool. ------------------------------

template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  std::function<void(std::size_t)> fn = std::forward<Body>(body);
  thread_pool().parallel_for(begin, end, fn, grain);
}

/// Parallel reduction: combines `body(i)` over [begin, end) with `combine`,
/// starting from `identity`.  `combine` must be associative.
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Body&& body,
                  Combine&& combine, std::size_t grain = 256) {
  ThreadPool& pool = thread_pool();
  std::size_t p = pool.num_threads();
  std::vector<T> partial(p, identity);
  std::atomic<std::size_t> next{begin};
  std::function<void(std::size_t)> fn = [&](std::size_t t) {
    T acc = identity;
    for (;;) {
      std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      std::size_t hi = std::min(end, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
    }
    partial[t] = acc;
  };
  pool.parallel_invoke_all(fn);
  T result = identity;
  for (const T& v : partial) result = combine(result, v);
  return result;
}

}  // namespace lazymc
