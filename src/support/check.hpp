// Machine-checked invariants for the checked build mode.
//
// Configure with -DLAZYMC_CHECKED=ON to compile every LAZYMC_ASSERT /
// LAZYMC_ASSERT_EXPENSIVE in the runtime to a real check that prints the
// violated condition and aborts.  In the default build both macros
// compile to nothing — the condition expression is not evaluated — so
// release benchmarks are unaffected.
//
// Two tiers:
//  * LAZYMC_ASSERT            — O(1)-ish checks cheap enough to sit on
//                               warm paths (lock balance, bounds,
//                               monotonicity).
//  * LAZYMC_ASSERT_EXPENSIVE  — whole-structure verification (prefix-
//                               popcount consistency, is-a-clique); may
//                               change the complexity of the enclosing
//                               operation.
//
// Failures abort (after an unbuffered stderr report) rather than throw:
// an invariant violation means memory is already in a state the
// exception path cannot be trusted with, and abort() is what gtest
// death tests intercept.
#pragma once

#if defined(LAZYMC_CHECKED)

#include <cstdio>
#include <cstdlib>

namespace lazymc::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* what,
                                      const char* file, int line) {
  std::fprintf(stderr, "lazymc checked-mode invariant violated: %s\n  %s\n  at %s:%d\n",
               what, cond, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lazymc::detail

#define LAZYMC_CHECKED_ENABLED 1
#define LAZYMC_ASSERT(cond, what)                                       \
  ((cond) ? static_cast<void>(0)                                        \
          : ::lazymc::detail::check_failed(#cond, what, __FILE__, __LINE__))
#define LAZYMC_ASSERT_EXPENSIVE(cond, what) LAZYMC_ASSERT(cond, what)

#else

#define LAZYMC_CHECKED_ENABLED 0
#define LAZYMC_ASSERT(cond, what) static_cast<void>(0)
#define LAZYMC_ASSERT_EXPENSIVE(cond, what) static_cast<void>(0)

#endif
