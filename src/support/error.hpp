// Structured errors for the failure model.
//
// Everything the solver core or the CLI can fail with is classified into
// an ErrorKind so downstream harnesses (the batch driver today, the
// daemon tomorrow) can tell transient failures — worth retrying — from
// permanent ones, and map each to a distinct exit code.  Plain
// std::exception escaping a solve is classified at the catch site
// (bad_alloc => resource, anything else => internal).
#pragma once

#include <stdexcept>
#include <string>

namespace lazymc {

enum class ErrorKind {
  /// Bad input: unparseable flags, unreadable/ill-formed graph files,
  /// malformed manifests or fault specs.  Never transient.
  kInput,
  /// Resource exhaustion (allocation failure, injected resource faults).
  /// Transient: a retry may succeed once pressure subsides.
  kResource,
  /// A bug surfaced: unexpected exception, failed result verification.
  /// Not transient — retrying reproduces it.
  kInternal,
  /// The run was cancelled by SIGINT/SIGTERM.  Not transient; the caller
  /// stops the sweep instead of retrying.
  kInterrupted,
  /// Load shedding: the daemon's admission queue is full (or it is
  /// draining), so the request was rejected *before* any work started.
  /// Transient by design — the structured rejection is what lets a
  /// client back off and retry instead of piling onto a saturated
  /// server.
  kOverloaded,
};

inline const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInput: return "input";
    case ErrorKind::kResource: return "resource";
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kInterrupted: return "interrupted";
    case ErrorKind::kOverloaded: return "overloaded";
  }
  return "?";
}

/// Whether a failure of this kind is worth retrying (--retries, or a
/// daemon client backing off a shed request).
inline bool error_kind_transient(ErrorKind kind) {
  return kind == ErrorKind::kResource || kind == ErrorKind::kOverloaded;
}

/// An exception carrying its classification (and the OS errno when one
/// was involved, e.g. a failed open).  Catch sites that see a plain
/// std::exception wrap it in one of these before it crosses a reporting
/// boundary.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& what, int sys_errno = 0)
      : std::runtime_error(what), kind_(kind), errno_(sys_errno) {}

  ErrorKind kind() const { return kind_; }
  /// OS errno captured where the failure happened; 0 = not applicable.
  int sys_errno() const { return errno_; }
  bool transient() const { return error_kind_transient(kind_); }

 private:
  ErrorKind kind_;
  int errno_;
};

}  // namespace lazymc
