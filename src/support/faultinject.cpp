#include "support/faultinject.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace lazymc::faults {
namespace {

#if LAZYMC_FAULTS_ENABLED

enum class Mode : std::uint8_t { kOff, kNth, kEvery, kProb };

#endif

}  // namespace

#if LAZYMC_FAULTS_ENABLED

namespace detail {

// Trigger fields are written under the registry mutex (between solves)
// and read relaxed from poll(); the hit counter is the only field
// mutated on the hot path.
struct SiteState {
  std::string name;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
  std::atomic<Mode> mode{Mode::kOff};
  std::atomic<std::uint64_t> param{0};  // nth: N / every: K / prob: threshold
  std::atomic<std::uint64_t> seed{0};
};

}  // namespace detail

namespace {

using detail::SiteState;

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<SiteState>> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites outlive all threads
  return *r;
}

SiteState* intern_locked(Registry& r, const std::string& name) {
  auto it = r.sites.find(name);
  if (it == r.sites.end()) {
    auto state = std::make_unique<SiteState>();
    state->name = name;
    it = r.sites.emplace(name, std::move(state)).first;
  }
  return it->second.get();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[noreturn]] void bad_spec(const std::string& entry, const char* why) {
  throw Error(ErrorKind::kInput,
              "bad fault spec '" + entry + "': " + why);
}

std::uint64_t parse_u64(const std::string& entry, const std::string& text,
                        const char* what) {
  if (text.empty() || text.find_first_not_of("0123456789") !=
                          std::string::npos) {
    bad_spec(entry, what);
  }
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), nullptr, 10);
  if (errno != 0) bad_spec(entry, what);
  return static_cast<std::uint64_t>(value);
}

void apply_entry(const std::string& entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    bad_spec(entry, "expected site=trigger");
  }
  const std::string site_name = entry.substr(0, eq);
  const std::string trigger = entry.substr(eq + 1);
  const std::size_t colon = trigger.find(':');
  if (colon == std::string::npos) {
    bad_spec(entry, "expected nth:N, every:K or prob:P[:seed]");
  }
  const std::string kind = trigger.substr(0, colon);
  const std::string rest = trigger.substr(colon + 1);

  Mode mode = Mode::kOff;
  std::uint64_t param = 0;
  std::uint64_t seed = 0;
  if (kind == "nth" || kind == "every") {
    mode = kind == "nth" ? Mode::kNth : Mode::kEvery;
    param = parse_u64(entry, rest, "count must be a positive integer");
    if (param == 0) bad_spec(entry, "count must be a positive integer");
  } else if (kind == "prob") {
    mode = Mode::kProb;
    std::string prob_text = rest;
    const std::size_t seed_colon = rest.find(':');
    if (seed_colon != std::string::npos) {
      prob_text = rest.substr(0, seed_colon);
      seed = parse_u64(entry, rest.substr(seed_colon + 1),
                       "seed must be an unsigned integer");
    }
    char* end = nullptr;
    errno = 0;
    const double p = std::strtod(prob_text.c_str(), &end);
    if (prob_text.empty() || end == nullptr || *end != '\0' || errno != 0 ||
        !(p >= 0.0) || !(p <= 1.0)) {
      bad_spec(entry, "probability must be in [0, 1]");
    }
    // Map p to a u64 threshold; p == 1 must fire on every hit.
    param = p >= 1.0 ? ~0ull
                     : static_cast<std::uint64_t>(
                           std::ldexp(p, 64) < 1.0 ? (p > 0.0 ? 1.0 : 0.0)
                                                   : std::ldexp(p, 64));
  } else {
    bad_spec(entry, "unknown trigger (want nth, every or prob)");
  }

  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  SiteState* site = intern_locked(r, site_name);
  site->param.store(param, std::memory_order_relaxed);
  site->seed.store(seed, std::memory_order_relaxed);
  site->mode.store(mode, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

SiteState* intern(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return intern_locked(r, name);
}

bool poll(SiteState* site) {
  const std::uint64_t hit =
      site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const Mode mode = site->mode.load(std::memory_order_relaxed);
  if (mode == Mode::kOff) return false;
  const std::uint64_t param = site->param.load(std::memory_order_relaxed);
  bool fire = false;
  switch (mode) {
    case Mode::kOff:
      break;
    case Mode::kNth:
      fire = hit == param;
      break;
    case Mode::kEvery:
      fire = hit % param == 0;
      break;
    case Mode::kProb: {
      // param == ~0 means p == 1: fire unconditionally (a threshold
      // compare would miss the one hash value equal to the max).
      const std::uint64_t s = site->seed.load(std::memory_order_relaxed);
      fire = param == ~0ull || splitmix64(s ^ hit) < param;
      break;
    }
  }
  if (fire) site->fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void stall(std::uint64_t milliseconds) {
  std::this_thread::sleep_for(std::chrono::milliseconds(milliseconds));
}

}  // namespace detail

void configure(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    if (!entry.empty()) apply_entry(entry);
    begin = end + 1;
  }
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, site] : r.sites) {
    site->mode.store(Mode::kOff, std::memory_order_relaxed);
    site->param.store(0, std::memory_order_relaxed);
    site->seed.store(0, std::memory_order_relaxed);
    site->hits.store(0, std::memory_order_relaxed);
    site->fires.store(0, std::memory_order_relaxed);
  }
}

std::vector<SiteStats> snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<SiteStats> out;
  out.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites) {
    SiteStats stats;
    stats.name = name;
    stats.hits = site->hits.load(std::memory_order_relaxed);
    stats.fires = site->fires.load(std::memory_order_relaxed);
    stats.armed = site->mode.load(std::memory_order_relaxed) != Mode::kOff;
    out.push_back(std::move(stats));
  }
  return out;
}

#else  // !LAZYMC_FAULTS_ENABLED

void configure(const std::string& spec) {
  // A non-empty spec is a hard error: the user asked for a fault plan
  // this binary cannot honour, and running "clean" instead would report
  // a fault-free pass the experiment never executed.
  for (const char c : spec) {
    if (c != ',' && c != ' ') {
      throw Error(ErrorKind::kInput,
                  "fault injection requested ('" + spec +
                      "') but this binary was built without "
                      "-DLAZYMC_FAULTS=ON");
    }
  }
}

void reset() {}

std::vector<SiteStats> snapshot() { return {}; }

#endif  // LAZYMC_FAULTS_ENABLED

void configure_from_env() {
  const char* env = std::getenv("LAZYMC_FAULTS");
  if (env != nullptr && *env != '\0') configure(env);
}

}  // namespace lazymc::faults
