// Unix-domain-socket helpers for the lazymcd daemon and lazymc-ctl.
//
// Thin RAII wrappers over the POSIX API, shaped for a newline-delimited
// JSON protocol: a listener with poll()-based timed accepts (so the
// accept loop can observe drain/reload flags between clients), a
// connector, and a buffered line channel with timed reads (so a
// connection thread blocked on a slow client still notices a drain).
// Errors carry errno through the structured Error type; EOF and timeout
// are ordinary return values, not errors.
#pragma once

#include <string>

namespace lazymc::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int get() const { return fd_; }
  void reset();

 private:
  int fd_ = -1;
};

/// A bound, listening Unix-domain socket.  The socket file is unlinked on
/// destruction (best effort) — the daemon owns its socket path the way it
/// owns its pidfile.
class UnixListener {
 public:
  /// Binds and listens on `path`.  Throws Error(kInput, errno) on
  /// failure; EADDRINUSE is reported with a hint about stale daemons
  /// (the lifecycle layer removes stale sockets after the pidfile check,
  /// so reaching this error means a live daemon probably owns the path).
  explicit UnixListener(const std::string& path, int backlog = 64);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Waits up to `timeout_ms` for a connection.  Returns an invalid Fd on
  /// timeout or EINTR (the caller re-checks its lifecycle flags and calls
  /// again); throws Error on unrecoverable accept failures.
  Fd accept(int timeout_ms);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Fd fd_;
};

/// Connects to the daemon socket at `path`.  Throws Error(kInput, errno)
/// when the daemon is not there (connection refused / no such file).
Fd unix_connect(const std::string& path);

/// Buffered newline-delimited reader/writer over a connected socket.
class LineChannel {
 public:
  enum class ReadStatus { kLine, kEof, kTimeout };

  /// Does not own `fd`; the caller keeps the Fd alive for the channel's
  /// lifetime.
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Reads one '\n'-terminated line (terminator stripped).  With
  /// `timeout_ms` >= 0, waits at most that long for *new* data before
  /// returning kTimeout (already-buffered lines are returned
  /// immediately); -1 blocks.  Throws Error(kInput, errno) on socket
  /// errors.
  ReadStatus read_line(std::string& out, int timeout_ms = -1);

  /// Writes `line` plus '\n' in full.  Throws Error(kInput, errno) on
  /// socket errors (including EPIPE when the peer vanished).
  void write_line(const std::string& line);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace lazymc::net
