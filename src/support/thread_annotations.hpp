// Clang Thread Safety Analysis annotations (no-ops on other compilers).
//
// The runtime's locking protocols — the WorkQueue shard rings, the
// ThreadPool job epoch, the lazy graph's slab arena, the incumbent swap —
// are documented *to the compiler* with these macros, so a Clang build
// with -Wthread-safety (CI's static-analysis job compiles with
// -Werror=thread-safety) proves at compile time that every access to a
// guarded member happens with the right lock held, and that every
// acquire has a matching release.  See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the model.
//
// Conventions:
//  * Lock types are declared LAZYMC_CAPABILITY("mutex"/"spinlock"); RAII
//    guards are LAZYMC_SCOPED_CAPABILITY.
//  * Data protected by a lock is declared LAZYMC_GUARDED_BY(lock); the
//    analysis then rejects unlocked reads and writes.
//  * Functions that expect the caller to hold a lock are declared
//    LAZYMC_REQUIRES(lock).
//  * Per-element lock arrays (LazyGraph's per-vertex locks) are beyond
//    the analysis' aliasing model; those critical sections still use the
//    annotated guard types, but their guarded data carries no
//    GUARDED_BY.  The double-checked flag publication that layers on
//    top is checked dynamically instead (TSan job + checked build).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define LAZYMC_TSA(x) __attribute__((x))
#else
#define LAZYMC_TSA(x)  // no-op outside Clang
#endif

/// Declares a type to be a lock ("capability" in analysis terms).
#define LAZYMC_CAPABILITY(x) LAZYMC_TSA(capability(x))

/// Declares an RAII type that acquires in its constructor and releases in
/// its destructor.
#define LAZYMC_SCOPED_CAPABILITY LAZYMC_TSA(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define LAZYMC_GUARDED_BY(x) LAZYMC_TSA(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define LAZYMC_PT_GUARDED_BY(x) LAZYMC_TSA(pt_guarded_by(x))

/// Function that acquires the capability (and does not release it).
#define LAZYMC_ACQUIRE(...) LAZYMC_TSA(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define LAZYMC_RELEASE(...) LAZYMC_TSA(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define LAZYMC_TRY_ACQUIRE(ret, ...) \
  LAZYMC_TSA(try_acquire_capability(ret __VA_OPT__(, ) __VA_ARGS__))

/// Function whose caller must hold the capability.
#define LAZYMC_REQUIRES(...) LAZYMC_TSA(requires_capability(__VA_ARGS__))

/// Function whose caller must NOT hold the capability (deadlock guard).
#define LAZYMC_EXCLUDES(...) LAZYMC_TSA(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define LAZYMC_RETURN_CAPABILITY(x) LAZYMC_TSA(lock_returned(x))

/// Escape hatch for protocols the analysis cannot express (documented at
/// each use site).
#define LAZYMC_NO_THREAD_SAFETY_ANALYSIS \
  LAZYMC_TSA(no_thread_safety_analysis)
