// Deterministic, fast PRNG used by the graph generators and property tests.
// SplitMix64 for seeding, xoshiro256** for the stream; both are public
// domain algorithms (Blackman & Vigna).
#pragma once

#include <cstdint>

namespace lazymc {

/// SplitMix64: used to expand a single seed into initial state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace lazymc
