#include "support/parallel.hpp"

#include <algorithm>

namespace lazymc {
namespace {

thread_local ThreadPool* g_current_pool = nullptr;

std::size_t default_num_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_num_threads();
  // The calling thread participates, so spawn num_threads-1 workers.
  std::size_t spawn = num_threads > 0 ? num_threads - 1 : 0;
  threads_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::in_worker() const { return g_current_pool == this; }

void ThreadPool::worker_loop(std::size_t worker_index) {
  g_current_pool = this;
  // Participant index: the caller is 0, workers are 1..threads_.size().
  const std::size_t participant = worker_index + 1;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    detail::JobBase* job = nullptr;
    {
      // Explicit wait loop (not wait(lock, pred)): the predicate reads
      // epoch state guarded by mutex_, and spelling the loop out keeps
      // those reads in a scope the thread-safety analysis can see holds
      // the capability.
      MutexLock lock(mutex_);
      while (!shutting_down_ &&
             (current_job_ == nullptr || job_epoch_ == seen_epoch)) {
        cv_start_.wait(lock.native());
      }
      if (shutting_down_) return;
      seen_epoch = job_epoch_;
      job = current_job_;
    }
    job->run(*job, participant);
    {
      MutexLock lock(mutex_);
      ++workers_done_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::run_job(detail::JobBase& job) {
  // Launcher gate: concurrent external launchers (e.g. daemon request
  // executors) serialize here, so the single current_job_ slot and the
  // workers_done_ count only ever describe one job at a time.  The gate
  // is held through the join below; the caller participates in its own
  // job, so a waiting launcher costs nothing but its own latency.
  MutexLock launch(launch_mutex_);
  {
    MutexLock lock(mutex_);
    current_job_ = &job;
    ++job_epoch_;
    workers_done_ = 0;
  }
  cv_start_.notify_all();

  // The caller participates as participant 0.  While it runs its share it
  // is "inside" the pool exactly like a worker: a nested launch from the
  // job body must take the inline path, not re-enter this gate.
  ThreadPool* const enclosing = g_current_pool;
  g_current_pool = this;
  job.run(job, 0);
  g_current_pool = enclosing;

  {
    MutexLock lock(mutex_);
    while (workers_done_ != threads_.size()) cv_done_.wait(lock.native());
    current_job_ = nullptr;
  }
  // Read under the error lock (take_error): the join above orders every
  // worker's capture before this point, but the protocol is simplest to
  // verify when the field is only ever touched with its lock held.
  if (std::exception_ptr error = job.take_error()) {
    std::rethrow_exception(error);
  }
}

namespace {
Mutex g_pool_mutex;
// The pointer (not the pool) is guarded: callers hold references to the
// pool beyond the registry lock by the documented contract that
// set_num_threads is not called concurrently with library operations.
std::unique_ptr<ThreadPool> g_pool LAZYMC_GUARDED_BY(g_pool_mutex);
}  // namespace

ThreadPool& thread_pool() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_num_threads(std::size_t n) {
  MutexLock lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(n == 0 ? default_num_threads() : n);
}

std::size_t num_threads() { return thread_pool().num_threads(); }

}  // namespace lazymc
