#include "support/parallel.hpp"

#include <algorithm>
#include <memory>

namespace lazymc {
namespace {

thread_local ThreadPool* g_current_pool = nullptr;

std::size_t default_num_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_num_threads();
  // The calling thread participates, so spawn num_threads-1 workers.
  std::size_t spawn = num_threads > 0 ? num_threads - 1 : 0;
  threads_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::in_worker() const { return g_current_pool == this; }

void ThreadPool::worker_loop(std::size_t /*worker_index*/) {
  g_current_pool = this;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return shutting_down_ || (current_job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutting_down_) return;
      seen_epoch = job_epoch_;
      job = current_job_;
    }
    // Participant index: workers are 1..threads_.size(); caller is 0.
    run_job_portion(*job, /*participant=*/seen_epoch % 1 + 1);  // index fixed below
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::run_job_portion(Job& job, std::size_t participant) {
  try {
    if (job.per_thread) {
      std::size_t t = job.next.fetch_add(1, std::memory_order_relaxed);
      if (t < job.end) (*job.body)(t);
    } else {
      for (;;) {
        std::size_t lo = job.next.fetch_add(job.grain, std::memory_order_relaxed);
        if (lo >= job.end) break;
        std::size_t hi = std::min(job.end, lo + job.grain);
        for (std::size_t i = lo; i < hi; ++i) (*job.body)(i);
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.error_mutex);
    if (!job.error) job.error = std::current_exception();
    // Drain the remaining iterations so other participants finish quickly.
    job.next.store(job.end, std::memory_order_relaxed);
  }
  (void)participant;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  // Nested calls and tiny ranges run inline.
  if (in_worker() || threads_.empty() || end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.body = &body;
  job.per_thread = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++job_epoch_;
    workers_done_ = 0;
  }
  cv_start_.notify_all();

  // The caller participates too.
  run_job_portion(job, 0);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return workers_done_ == threads_.size(); });
    current_job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_invoke_all(const std::function<void(std::size_t)>& fn) {
  std::size_t p = num_threads();
  if (in_worker() || threads_.empty()) {
    for (std::size_t t = 0; t < p; ++t) fn(t);
    return;
  }
  Job job;
  job.next.store(0, std::memory_order_relaxed);
  job.end = p;
  job.body = &fn;
  job.per_thread = true;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++job_epoch_;
    workers_done_ = 0;
  }
  cv_start_.notify_all();
  run_job_portion(job, 0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return workers_done_ == threads_.size(); });
    current_job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {
std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;
}  // namespace

ThreadPool& thread_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_num_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(n == 0 ? default_num_threads() : n);
}

std::size_t num_threads() { return thread_pool().num_threads(); }

}  // namespace lazymc
