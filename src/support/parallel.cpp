#include "support/parallel.hpp"

#include <algorithm>

namespace lazymc {
namespace {

thread_local ThreadPool* g_current_pool = nullptr;

std::size_t default_num_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_num_threads();
  // The calling thread participates, so spawn num_threads-1 workers.
  std::size_t spawn = num_threads > 0 ? num_threads - 1 : 0;
  threads_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::in_worker() const { return g_current_pool == this; }

void ThreadPool::worker_loop(std::size_t worker_index) {
  g_current_pool = this;
  // Participant index: the caller is 0, workers are 1..threads_.size().
  const std::size_t participant = worker_index + 1;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    detail::JobBase* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] {
        return shutting_down_ ||
               (current_job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutting_down_) return;
      seen_epoch = job_epoch_;
      job = current_job_;
    }
    job->run(*job, participant);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::run_job(detail::JobBase& job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++job_epoch_;
    workers_done_ = 0;
  }
  cv_start_.notify_all();

  // The caller participates as participant 0.
  job.run(job, 0);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return workers_done_ == threads_.size(); });
    current_job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {
std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;
}  // namespace

ThreadPool& thread_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_num_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(n == 0 ? default_num_threads() : n);
}

std::size_t num_threads() { return thread_pool().num_threads(); }

}  // namespace lazymc
