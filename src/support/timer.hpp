// Wall-clock timing used by the per-phase instrumentation (Fig. 2, 3, 7).
#pragma once

#include <chrono>

namespace lazymc {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds before restart.
  double lap() {
    auto now = clock::now();
    double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or the last lap().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lazymc
