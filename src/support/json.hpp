// Minimal streaming JSON writer shared by the CLI reporter and the bench
// harness.  Tracks comma placement so emitters read like the output's
// shape; values are numbers, bools, short strings, or flat arrays.  Not a
// general serializer — no pretty-printing, no non-finite numbers.
#pragma once

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace lazymc {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {
    out_ << std::setprecision(9);
  }

  /// Opens an object: anonymous (array element / root) or keyed.
  void open(const std::string& key = "") {
    comma();
    label(key);
    out_ << '{';
    first_ = true;
  }
  void close() {
    out_ << '}';
    first_ = false;
  }

  void open_array(const std::string& key = "") {
    comma();
    label(key);
    out_ << '[';
    first_ = true;
  }
  void close_array() {
    out_ << ']';
    first_ = false;
  }

  void field(const std::string& key, const std::string& value) {
    comma();
    label(key);
    string(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    comma();
    label(key);
    out_ << value;
  }
  void field(const std::string& key, bool value) {
    comma();
    label(key);
    out_ << (value ? "true" : "false");
  }
  template <typename Int,
            typename = std::enable_if_t<std::is_integral_v<Int>>>
  void field(const std::string& key, Int value) {
    comma();
    label(key);
    integer(value);
  }
  template <typename Int,
            typename = std::enable_if_t<std::is_integral_v<Int>>>
  void field(const std::string& key, const std::vector<Int>& values) {
    comma();
    label(key);
    out_ << '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out_ << ',';
      integer(values[i]);
    }
    out_ << ']';
  }

  /// Array elements.
  void value(const std::string& v) {
    comma();
    string(v);
  }
  void value(double v) {
    comma();
    out_ << v;
  }

  /// Emits pre-validated JSON text verbatim (e.g. a number rendered
  /// elsewhere) as an array element.
  void raw_value(const std::string& json) {
    comma();
    out_ << json;
  }

 private:
  template <typename Int>
  void integer(Int value) {
    if constexpr (std::is_signed_v<Int>) {
      out_ << static_cast<std::int64_t>(value);
    } else {
      out_ << static_cast<std::uint64_t>(value);
    }
  }

  void comma() {
    if (!first_) out_ << ',';
    first_ = false;
  }
  void label(const std::string& key) {
    if (key.empty()) return;
    string(key);
    out_ << ':';
  }
  void string(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out_ << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                 << static_cast<int>(c) << std::dec << std::setfill(' ');
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  bool first_ = true;
};

}  // namespace lazymc
