// Minimal field extraction from one-line flat JSON objects.
//
// The repo's own emitters (JsonWriter) produce compact, one-object-per-
// line JSON with no whitespace around separators; the batch journal, the
// daemon protocol, and lazymc-ctl all need to read a handful of fields
// back out of such lines without a general JSON parser.  These helpers
// scan for `"key":` and decode the value in place.  They understand
// exactly what JsonWriter emits — strings with its escape set, integer
// and decimal numbers, booleans — which is the whole wire format.
//
// Limitations (by design): a key that also appears inside a *string
// value* earlier in the line could be matched first; our keys (spec,
// verb, status, omega, ...) never appear in value positions in these
// streams.  Nested objects are handled only in that a key lookup finds
// the first occurrence anywhere in the line.
#pragma once

#include <cstdlib>
#include <string>

namespace lazymc {

/// Extracts and unescapes the string value of `"key":"..."`.  Returns
/// false when the key is absent or the value is not a string.
inline bool json_get_string(const std::string& line, const std::string& key,
                            std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= line.size()) break;
    switch (line[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        const std::string hex = line.substr(i + 1, 4);
        out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

/// Extracts the numeric value of `"key":N` (integer or decimal).
/// Returns false when the key is absent or not followed by a number.
inline bool json_get_number(const std::string& line, const std::string& key,
                            double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  out = value;
  return true;
}

/// Extracts the boolean value of `"key":true|false`.
inline bool json_get_bool(const std::string& line, const std::string& key,
                          bool& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t v = at + needle.size();
  if (line.compare(v, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(v, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

}  // namespace lazymc
