// Minimal field extraction from one-line flat JSON objects.
//
// The repo's own emitters (JsonWriter) produce compact, one-object-per-
// line JSON with no whitespace around separators; the batch journal, the
// daemon protocol, and lazymc-ctl all need to read a handful of fields
// back out of such lines without a general JSON parser.  These helpers
// scan for `"key":` and decode the value in place.  They understand
// exactly what JsonWriter emits — strings with its escape set, integer
// and decimal numbers, booleans — which is the whole wire format.
//
// Limitations (by design): a key that also appears inside a *string
// value* earlier in the line could be matched first; our keys (spec,
// verb, status, omega, ...) never appear in value positions in these
// streams.  Nested objects are handled only in that a key lookup finds
// the first occurrence anywhere in the line.
#pragma once

#include <cstdlib>
#include <string>

namespace lazymc {

/// Extracts and unescapes the string value of `"key":"..."`.  Returns
/// false when the key is absent or the value is not a string.  Never
/// throws on malformed input (these lines come from clients and from
/// possibly-torn journal files): a bad escape returns false.
inline bool json_get_string(const std::string& line, const std::string& key,
                            std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= line.size()) break;
    switch (line[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        unsigned code = 0;
        for (int k = 1; k <= 4; ++k) {
          const char h = line[i + k];
          unsigned digit = 0;
          if (h >= '0' && h <= '9') {
            digit = static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<unsigned>(h - 'a') + 10;
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<unsigned>(h - 'A') + 10;
          } else {
            return false;  // malformed escape on untrusted input
          }
          code = code * 16 + digit;
        }
        i += 4;
        // UTF-8-encode the BMP codepoint.  Surrogate halves never occur:
        // JsonWriter only emits \u00XX for control characters, and
        // anything else malformed enough to carry one decodes to an
        // (invalid) 3-byte sequence rather than crashing the reader.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

/// Extracts the numeric value of `"key":N` (integer or decimal).
/// Returns false when the key is absent or not followed by a number.
inline bool json_get_number(const std::string& line, const std::string& key,
                            double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  out = value;
  return true;
}

/// Extracts the boolean value of `"key":true|false`.
inline bool json_get_bool(const std::string& line, const std::string& key,
                          bool& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t v = at + needle.size();
  if (line.compare(v, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(v, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

}  // namespace lazymc
