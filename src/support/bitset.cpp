#include "support/bitset.hpp"

#include <algorithm>

#include "support/wordops.hpp"

namespace lazymc {
namespace {

// Below this many words the dispatched call (atomic tier load + indirect
// call) costs more than it saves; the dense B&B rows that dominate these
// ops are often 1-4 words.  The inline loops are bit-identical to the
// scalar tier, so forced-tier A/B runs still agree exactly.
constexpr std::size_t kInlineWords = 8;

}  // namespace

std::size_t DynamicBitset::count() const {
  if (words_.size() < kInlineWords) {
    std::size_t c = 0;
    for (std::uint64_t w : words_) {
      c += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return c;
  }
  return wordops::active().popcount(words_.data(), words_.size());
}

std::size_t DynamicBitset::count_and(const DynamicBitset& other) const {
  std::size_t n = std::min(words_.size(), other.words_.size());
  if (n < kInlineWords) {
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i) {
      c += static_cast<std::size_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
    }
    return c;
  }
  return wordops::active().popcount_and(words_.data(), other.words_.data(), n);
}

void DynamicBitset::and_with(const DynamicBitset& other) {
  std::size_t n = std::min(words_.size(), other.words_.size());
  if (n < kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
  } else {
    wordops::active().and_assign(words_.data(), other.words_.data(), n);
  }
  for (std::size_t i = n; i < words_.size(); ++i) words_[i] = 0;
}

void DynamicBitset::assign_and(const DynamicBitset& a, const DynamicBitset& b) {
  bits_ = a.bits_;
  words_.resize(a.words_.size());
  std::size_t n = std::min(a.words_.size(), b.words_.size());
  if (n < kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) words_[i] = a.words_[i] & b.words_[i];
  } else {
    wordops::active().and_into(words_.data(), a.words_.data(), b.words_.data(),
                               n);
  }
  for (std::size_t i = n; i < words_.size(); ++i) words_[i] = 0;
}

void DynamicBitset::and_not_with(const DynamicBitset& other) {
  std::size_t n = std::min(words_.size(), other.words_.size());
  if (n < kInlineWords) {
    for (std::size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
  } else {
    wordops::active().and_not_assign(words_.data(), other.words_.data(), n);
  }
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w]) return w * 64 + static_cast<unsigned>(__builtin_ctzll(words_[w]));
  }
  return bits_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const {
  ++i;
  if (i >= bits_) return bits_;
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~0ULL << (i & 63));
  for (;;) {
    if (word) return w * 64 + static_cast<unsigned>(__builtin_ctzll(word));
    if (++w >= words_.size()) return bits_;
    word = words_[w];
  }
}

bool DynamicBitset::any() const {
  for (std::uint64_t w : words_) {
    if (w) return true;
  }
  return false;
}

}  // namespace lazymc
