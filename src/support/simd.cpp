#include "support/simd.hpp"

#include <atomic>

namespace lazymc::simd {
namespace {

/// CPU feature probe, independent of what this binary was compiled with.
bool cpu_has(Tier t) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vpopcntdq");
  }
  return false;
#else
  return t == Tier::kScalar;
#endif
}

/// -1 = auto (best_tier); otherwise the forced Tier value.
std::atomic<int> g_forced{-1};

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "?";
}

bool tier_compiled(Tier t) {
  switch (t) {
    case Tier::kScalar: return true;
    case Tier::kAvx2: return LAZYMC_HAVE_AVX2 != 0;
    case Tier::kAvx512: return LAZYMC_HAVE_AVX512 != 0;
  }
  return false;
}

bool tier_supported(Tier t) { return tier_compiled(t) && cpu_has(t); }

Tier best_tier() {
  static const Tier best = [] {
    if (tier_supported(Tier::kAvx512)) return Tier::kAvx512;
    if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
    return Tier::kScalar;
  }();
  return best;
}

Tier current_tier() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  return forced < 0 ? best_tier() : static_cast<Tier>(forced);
}

bool force_tier(Tier t) {
  if (!tier_supported(t)) return false;
  g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
  return true;
}

void reset_tier() { g_forced.store(-1, std::memory_order_relaxed); }

std::optional<Tier> forced_tier() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced < 0) return std::nullopt;
  return static_cast<Tier>(forced);
}

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers;
  for (std::size_t t = 0; t < kNumTiers; ++t) {
    if (tier_supported(static_cast<Tier>(t))) {
      tiers.push_back(static_cast<Tier>(t));
    }
  }
  return tiers;
}

}  // namespace lazymc::simd
