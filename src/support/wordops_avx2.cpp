// AVX2 word-array primitives: 256-bit lanes (4 words per step), popcount
// via the PSHUFB nibble LUT (support/simd.hpp).  Compiled to an empty
// registry unless the build enables __AVX2__ (-DLAZYMC_SIMD=avx2 or
// -march=native); runtime reachability is additionally gated by CPUID in
// simd::current_tier().
#include "support/wordops.hpp"

#if LAZYMC_HAVE_AVX2

#include <bit>

namespace lazymc::wordops {
namespace {

std::size_t v_popcount(const std::uint64_t* src, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, simd::popcount_epi64(v));
  }
  std::size_t c = simd::reduce_add_epi64(acc);
  for (; i < n; ++i) c += std::popcount(src[i]);
  return c;
}

std::size_t v_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc,
                           simd::popcount_epi64(_mm256_and_si256(va, vb)));
  }
  std::size_t c = simd::reduce_add_epi64(acc);
  for (; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

void v_and_assign(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void v_and_not_assign(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes (~first) & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void v_and_into(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void v_not_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(s, ones));
  }
  for (; i < n; ++i) dst[i] = ~src[i];
}

void v_gather_and(std::uint64_t* dst, const std::uint64_t* bits,
                  const std::uint32_t* idx, const std::uint64_t* table,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256i g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(table), vi, 8);
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(vb, g));
  }
  for (; i < n; ++i) dst[i] = bits[i] & table[idx[i]];
}

constexpr Table kAvx2{simd::Tier::kAvx2, v_popcount,  v_popcount_and,
                      v_and_assign,      v_and_not_assign,
                      v_and_into,        v_not_into,  v_gather_and};

}  // namespace

const Table* avx2_table() { return &kAvx2; }

}  // namespace lazymc::wordops

#else  // !LAZYMC_HAVE_AVX2

namespace lazymc::wordops {
const Table* avx2_table() { return nullptr; }
}  // namespace lazymc::wordops

#endif
