// AVX2 word-array primitives: 256-bit lanes (4 words per step), popcount
// via the PSHUFB nibble LUT (support/simd.hpp); the bulk popcount paths
// accumulate 16-word blocks through a Harley-Seal carry-save tree before
// any horizontal reduce.  Compiled to an empty
// registry unless the build enables __AVX2__ (-DLAZYMC_SIMD=avx2 or
// -march=native); runtime reachability is additionally gated by CPUID in
// simd::current_tier().
#include "support/wordops.hpp"

#if LAZYMC_HAVE_AVX2

#include <bit>

namespace lazymc::wordops {
namespace {

/// Carry-save adder step: (h, l) <- a + b + c as a 2-bit column sum per
/// bit position (h carries weight 2, l weight 1).
inline void csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

/// Harley-Seal accumulation over a 16-word (4-vector) block: the CSA tree
/// folds four vectors into ones/twos carries so the PSHUFB popcount and
/// its horizontal reduce run once per block instead of once per vector
/// (Mula, Kurz, Lemire, "Faster population counts using AVX2
/// instructions").  `total` accumulates fours-weighted popcounts; the
/// ones/twos carries fold in only at the end, so the deferred reduce is
/// exact for any n.
struct HarleySeal {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();

  inline void block(__m256i v0, __m256i v1, __m256i v2, __m256i v3) {
    __m256i twos_a, twos_b, fours;
    csa(twos_a, ones, ones, v0, v1);
    csa(twos_b, ones, ones, v2, v3);
    csa(fours, twos, twos, twos_a, twos_b);
    total = _mm256_add_epi64(total, simd::popcount_epi64(fours));
  }

  inline std::size_t reduce() const {
    return 4 * simd::reduce_add_epi64(total) +
           2 * simd::reduce_add_epi64(simd::popcount_epi64(twos)) +
           simd::reduce_add_epi64(simd::popcount_epi64(ones));
  }
};

inline __m256i load4(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

std::size_t v_popcount(const std::uint64_t* src, std::size_t n) {
  HarleySeal hs;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    hs.block(load4(src + i), load4(src + i + 4), load4(src + i + 8),
             load4(src + i + 12));
  }
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, simd::popcount_epi64(load4(src + i)));
  }
  std::size_t c = hs.reduce() + simd::reduce_add_epi64(acc);
  for (; i < n; ++i) c += std::popcount(src[i]);
  return c;
}

std::size_t v_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  HarleySeal hs;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    hs.block(_mm256_and_si256(load4(a + i), load4(b + i)),
             _mm256_and_si256(load4(a + i + 4), load4(b + i + 4)),
             _mm256_and_si256(load4(a + i + 8), load4(b + i + 8)),
             _mm256_and_si256(load4(a + i + 12), load4(b + i + 12)));
  }
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, simd::popcount_epi64(_mm256_and_si256(load4(a + i),
                                                   load4(b + i))));
  }
  std::size_t c = hs.reduce() + simd::reduce_add_epi64(acc);
  for (; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

void v_and_assign(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void v_and_not_assign(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes (~first) & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void v_and_into(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] & b[i];
}

void v_not_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(s, ones));
  }
  for (; i < n; ++i) dst[i] = ~src[i];
}

void v_gather_and(std::uint64_t* dst, const std::uint64_t* bits,
                  const std::uint32_t* idx, const std::uint64_t* table,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256i g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(table), vi, 8);
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(vb, g));
  }
  for (; i < n; ++i) dst[i] = bits[i] & table[idx[i]];
}

constexpr Table kAvx2{simd::Tier::kAvx2, v_popcount,  v_popcount_and,
                      v_and_assign,      v_and_not_assign,
                      v_and_into,        v_not_into,  v_gather_and};

}  // namespace

const Table* avx2_table() { return &kAvx2; }

}  // namespace lazymc::wordops

#else  // !LAZYMC_HAVE_AVX2

namespace lazymc::wordops {
const Table* avx2_table() { return nullptr; }
}  // namespace lazymc::wordops

#endif
