// Runtime-dispatched primitives over contiguous arrays of 64-bit words.
//
// Every word loop in the engine that is not an early-exit intersection —
// DynamicBitset::count/count_and/and_with/..., DenseSubgraph row
// complements, the k-VC degree-update rows, the induce_from_lazy row fill
// — funnels through one of these primitives, so a single KernelDispatch
// decision (support/simd.hpp) upgrades all of them to AVX2/AVX-512 at
// once.  The scalar table is always present; the vector tables exist only
// when their ISA was compiled in (wordops_avx2.cpp / wordops_avx512.cpp
// under the LAZYMC_HAVE_* guards) and are reachable only when the CPU
// supports them.
//
// All functions tolerate unaligned pointers and n == 0; `gather_and` is
// the only non-contiguous one (indexed reads of `table`, for the sparse
// word-set x bitset-row row fill).
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/simd.hpp"

namespace lazymc::wordops {

struct Table {
  simd::Tier tier;
  /// Total set bits in src[0..n).
  std::size_t (*popcount)(const std::uint64_t* src, std::size_t n);
  /// Total set bits in (a & b)[0..n).
  std::size_t (*popcount_and)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
  /// dst[i] &= src[i].
  void (*and_assign)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n);
  /// dst[i] &= ~src[i].
  void (*and_not_assign)(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n);
  /// dst[i] = a[i] & b[i] (dst may alias a or b).
  void (*and_into)(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n);
  /// dst[i] = ~src[i] (dst may alias src).
  void (*not_into)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
  /// dst[i] = bits[i] & table[idx[i]] — the gathered AND at the heart of
  /// the sparse-word-set kernels; dst must not alias table.
  void (*gather_and)(std::uint64_t* dst, const std::uint64_t* bits,
                     const std::uint32_t* idx, const std::uint64_t* table,
                     std::size_t n);
};

const Table& scalar_table();
/// Null when the respective ISA was not compiled in.
const Table* avx2_table();
const Table* avx512_table();

/// The table for simd::current_tier() (falls back down-tier defensively
/// if a forced tier has no table in this binary).
const Table& active();

}  // namespace lazymc::wordops
