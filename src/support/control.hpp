// Cooperative cancellation / time-limit control shared by all solvers.
//
// The paper's Table II enforces a 30-minute timeout ("T.O." rows).  All
// branch-and-bound solvers in this repo check a SolveControl every few
// thousand nodes and unwind cleanly, reporting best-so-far plus a
// timed_out flag, which lets the benchmark harness reproduce timeout
// behaviour without killing processes.
//
// Per-request isolation (daemon substrate): a SolveControl is the unit of
// request lifecycle ownership.  Each concurrent solve owns one, and three
// independent inputs can stop it:
//
//   * its own deadline (time_limit_seconds, measured from construction);
//   * an explicit cancel() from any thread holding the control — the
//     watchdog, a faulted worker, or a client-driven abort;
//   * an *interrupt source*: a caller-chosen atomic flag, by default the
//     process-global SIGINT/SIGTERM flag below.  The global flag is one
//     input among the per-request ones, not a hard-wired dependency — a
//     daemon drains every in-flight request through it while tests (and
//     future transports) can point a request at a private flag, or at
//     none.
//
// The first cause to fire is recorded (stop_cause()) so the reporting
// layer can distinguish "deadline expired" from "cancelled" from
// "process interrupted" without guessing from global state.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "support/timer.hpp"

namespace lazymc {

namespace interrupt {

/// Process-wide cooperative interrupt flag (SIGINT/SIGTERM).  request()
/// is a single relaxed store on a constant-initialized atomic, so the
/// CLI's signal handler may call it directly (async-signal-safe).
/// SolveControls observe the flag through their interrupt source (the
/// default), so one signal cancels every solve in flight and each run
/// still reports best-so-far.
inline constinit std::atomic<bool> g_requested{false};

inline void request() noexcept {
  g_requested.store(true, std::memory_order_relaxed);
}
inline bool requested() noexcept {
  return g_requested.load(std::memory_order_relaxed);
}
inline void clear() noexcept {
  g_requested.store(false, std::memory_order_relaxed);
}

}  // namespace interrupt

/// Why a SolveControl stopped (first cause wins).
enum class StopCause : int {
  kNone = 0,
  /// The control's own wall-clock budget expired (cooperatively observed
  /// or enforced by a watchdog).
  kDeadline = 1,
  /// Explicit cancel() without a stated cause: a faulted worker draining
  /// its peers, a client abort, a shed request.
  kCancelled = 2,
  /// The interrupt source fired (SIGINT/SIGTERM drain by default).
  kInterrupted = 3,
};

inline const char* stop_cause_name(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kDeadline: return "deadline";
    case StopCause::kCancelled: return "cancelled";
    case StopCause::kInterrupted: return "interrupted";
  }
  return "?";
}

class SolveControl {
 public:
  SolveControl() = default;
  explicit SolveControl(double time_limit_seconds)
      : time_limit_(time_limit_seconds) {}

  /// Redirects the interrupt input to `flag` (nullptr = ignore process
  /// interrupts entirely).  Call before the solve starts sharing the
  /// control with workers; the pointer must outlive the control's use.
  void set_interrupt_source(const std::atomic<bool>* flag) {
    interrupt_source_ = flag;
  }

  /// Cheap check; reads the wall clock on the first call and then every
  /// kCheckInterval calls.  Thread-safe: each caller passes its own
  /// counter (zero-initialized).
  bool should_stop(std::uint64_t& local_counter) const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if ((++local_counter & (kCheckInterval - 1)) != 1) return false;
    // Liveness heartbeat: one relaxed add per slow-path check.  A watchdog
    // that sees the heartbeat stand still while the request runs knows the
    // workers are wedged somewhere non-cooperative.
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    if (interrupt_source_ &&
        interrupt_source_->load(std::memory_order_relaxed)) {
      cancel(StopCause::kInterrupted);
      return true;
    }
    if (timer_.elapsed() > time_limit_) {
      cancel(StopCause::kDeadline);
      return true;
    }
    return false;
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (interrupt_source_ &&
            interrupt_source_->load(std::memory_order_relaxed));
  }

  /// const: any holder of the shared control may cancel (a worker that
  /// hit an unrecoverable error, the watchdog, the signal path, the time
  /// limit).  The first recorded cause sticks.
  void cancel(StopCause cause = StopCause::kCancelled) const {
    int expected = static_cast<int>(StopCause::kNone);
    cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// The first cause that stopped this control.  When the interrupt
  /// source fired but no cooperative check has observed it yet, reports
  /// kInterrupted (so post-solve classification never misses a signal
  /// that raced the final check).
  StopCause stop_cause() const {
    const int cause = cause_.load(std::memory_order_relaxed);
    if (cause != static_cast<int>(StopCause::kNone)) {
      return static_cast<StopCause>(cause);
    }
    if (interrupt_source_ &&
        interrupt_source_->load(std::memory_order_relaxed)) {
      return StopCause::kInterrupted;
    }
    return StopCause::kNone;
  }

  bool interrupted() const { return stop_cause() == StopCause::kInterrupted; }

  /// Slow-path check count across all workers; advances while the solve
  /// makes cooperative progress (stall detection input).
  std::uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

  double elapsed() const { return timer_.elapsed(); }
  double time_limit() const { return time_limit_; }

 private:
  static constexpr std::uint64_t kCheckInterval = 4096;

  double time_limit_ = std::numeric_limits<double>::infinity();
  const std::atomic<bool>* interrupt_source_ = &interrupt::g_requested;
  WallTimer timer_;
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<int> cause_{static_cast<int>(StopCause::kNone)};
  mutable std::atomic<std::uint64_t> heartbeats_{0};
};

}  // namespace lazymc
