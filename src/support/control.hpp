// Cooperative cancellation / time-limit control shared by all solvers.
//
// The paper's Table II enforces a 30-minute timeout ("T.O." rows).  All
// branch-and-bound solvers in this repo check a SolveControl every few
// thousand nodes and unwind cleanly, reporting best-so-far plus a
// timed_out flag, which lets the benchmark harness reproduce timeout
// behaviour without killing processes.
#pragma once

#include <atomic>
#include <limits>

#include "support/timer.hpp"

namespace lazymc {

namespace interrupt {

/// Process-wide cooperative interrupt flag (SIGINT/SIGTERM).  request()
/// is a single relaxed store on a constant-initialized atomic, so the
/// CLI's signal handler may call it directly (async-signal-safe).
/// Every SolveControl observes the flag, so one signal cancels whatever
/// solve is in flight and the run still reports best-so-far.
inline constinit std::atomic<bool> g_requested{false};

inline void request() noexcept {
  g_requested.store(true, std::memory_order_relaxed);
}
inline bool requested() noexcept {
  return g_requested.load(std::memory_order_relaxed);
}
inline void clear() noexcept {
  g_requested.store(false, std::memory_order_relaxed);
}

}  // namespace interrupt

class SolveControl {
 public:
  SolveControl() = default;
  explicit SolveControl(double time_limit_seconds)
      : time_limit_(time_limit_seconds) {}

  /// Cheap check; reads the wall clock on the first call and then every
  /// kCheckInterval calls.  Thread-safe: each caller passes its own
  /// counter (zero-initialized).
  bool should_stop(std::uint64_t& local_counter) const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if ((++local_counter & (kCheckInterval - 1)) != 1) return false;
    if (interrupt::requested() || timer_.elapsed() > time_limit_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           interrupt::requested();
  }
  /// const: any holder of the shared control may cancel (a worker that
  /// hit an unrecoverable error, the signal path, the time limit).
  void cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  double elapsed() const { return timer_.elapsed(); }
  double time_limit() const { return time_limit_; }

 private:
  static constexpr std::uint64_t kCheckInterval = 4096;

  double time_limit_ = std::numeric_limits<double>::infinity();
  WallTimer timer_;
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace lazymc
