// AVX-512 word-array primitives: 512-bit lanes (8 words per step) with
// native per-lane popcount (VPOPCNTQ).  Guarded by __AVX512F__ +
// __AVX512VPOPCNTDQ__; the tail uses a length mask instead of a scalar
// loop.
#include "support/wordops.hpp"

#if LAZYMC_HAVE_AVX512

namespace lazymc::wordops {
namespace {

inline __mmask8 tail_mask(std::size_t left) {
  return static_cast<__mmask8>((1u << left) - 1u);
}

std::size_t v_popcount(const std::uint64_t* src, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_loadu_si512(src + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i v = _mm512_maskz_loadu_epi64(m, src + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

std::size_t v_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

void v_and_assign(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_and_si512(_mm512_loadu_si512(dst + i),
                                         _mm512_loadu_si512(src + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, dst + i),
                                       _mm512_maskz_loadu_epi64(m, src + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

void v_and_not_assign(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // andnot computes (~first) & second.
    _mm512_storeu_si512(dst + i,
                        _mm512_andnot_si512(_mm512_loadu_si512(src + i),
                                            _mm512_loadu_si512(dst + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i v =
        _mm512_andnot_si512(_mm512_maskz_loadu_epi64(m, src + i),
                            _mm512_maskz_loadu_epi64(m, dst + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

void v_and_into(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_and_si512(_mm512_loadu_si512(a + i),
                                                  _mm512_loadu_si512(b + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

void v_not_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_xor_si512(_mm512_loadu_si512(src + i), ones));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i v =
        _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, src + i), ones);
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

void v_gather_and(std::uint64_t* dst, const std::uint64_t* bits,
                  const std::uint32_t* idx, const std::uint64_t* table,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m512i g = _mm512_i32gather_epi64(vi, table, 8);
    _mm512_storeu_si512(dst + i,
                        _mm512_and_si512(_mm512_loadu_si512(bits + i), g));
  }
  for (; i < n; ++i) dst[i] = bits[i] & table[idx[i]];
}

constexpr Table kAvx512{simd::Tier::kAvx512, v_popcount,  v_popcount_and,
                        v_and_assign,        v_and_not_assign,
                        v_and_into,          v_not_into,  v_gather_and};

}  // namespace

const Table* avx512_table() { return &kAvx512; }

}  // namespace lazymc::wordops

#else  // !LAZYMC_HAVE_AVX512

namespace lazymc::wordops {
const Table* avx512_table() { return nullptr; }
}  // namespace lazymc::wordops

#endif
