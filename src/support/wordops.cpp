#include "support/wordops.hpp"

#include <bit>

namespace lazymc::wordops {
namespace {

std::size_t sc_popcount(const std::uint64_t* src, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += std::popcount(src[i]);
  return c;
}

std::size_t sc_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

void sc_and_assign(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void sc_and_not_assign(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void sc_and_into(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
}

void sc_not_into(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ~src[i];
}

void sc_gather_and(std::uint64_t* dst, const std::uint64_t* bits,
                   const std::uint32_t* idx, const std::uint64_t* table,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bits[i] & table[idx[i]];
}

constexpr Table kScalar{simd::Tier::kScalar, sc_popcount,  sc_popcount_and,
                        sc_and_assign,       sc_and_not_assign,
                        sc_and_into,         sc_not_into,  sc_gather_and};

}  // namespace

const Table& scalar_table() { return kScalar; }

const Table& active() {
  return simd::pick_table(kScalar, avx2_table(), avx512_table());
}

}  // namespace lazymc::wordops
