// Deterministic fault injection.
//
// A registry of named injection sites compiled in only under
// -DLAZYMC_FAULTS=ON; in normal builds every macro below folds to a
// constant and the hot paths carry zero cost.  Each site is polled with
// LAZYMC_FAULT_FIRED("name") (or one of the action wrappers) and fires
// according to a trigger configured at process level:
//
//   site=nth:N       fire exactly on the N-th hit (1-based)
//   site=every:K     fire on every K-th hit
//   site=prob:P      fire each hit with probability P in [0,1],
//   site=prob:P:S    deterministically: splitmix64(S ^ hit) < P * 2^64
//
// Specs are comma-separated lists of entries, read from the
// LAZYMC_FAULTS environment variable (configure_from_env) or --fault
// flags (faults::configure).  Sites are interned lazily, so a spec may
// name a site before the code path that registers it has ever run; a
// misspelled site simply never fires (snapshot() makes that visible:
// its hit count stays zero).
//
// Hit counting is lock-free (one relaxed fetch_add per poll); trigger
// reconfiguration takes the registry mutex and is meant to happen
// between solves, not during one.
#pragma once

#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "support/error.hpp"

#if defined(LAZYMC_FAULTS)
#define LAZYMC_FAULTS_ENABLED 1
#else
#define LAZYMC_FAULTS_ENABLED 0
#endif

namespace lazymc::faults {

/// Per-site counters returned by snapshot().
struct SiteStats {
  std::string name;
  std::uint64_t hits = 0;   ///< times the site was polled
  std::uint64_t fires = 0;  ///< times the poll said "fail now"
  bool armed = false;       ///< a trigger is currently configured
};

/// The exception injected at error-action sites ("worker.exec").
/// Classified as a resource failure so the batch driver treats it as
/// transient — exactly the retry path injection is meant to exercise.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& site)
      : Error(ErrorKind::kResource,
              "injected fault at site '" + site + "'") {}
};

/// True when the binary was built with -DLAZYMC_FAULTS=ON.
constexpr bool enabled() { return LAZYMC_FAULTS_ENABLED != 0; }

/// Parse and apply a trigger spec ("a=nth:3,b=prob:0.5:42").  Throws
/// Error(kInput) on malformed specs, and on any non-empty spec when the
/// binary was built without fault support (silently ignoring a
/// requested fault plan would invalidate the experiment).
void configure(const std::string& spec);

/// configure() with the LAZYMC_FAULTS environment variable, if set.
void configure_from_env();

/// Disarm every trigger and zero all counters.
void reset();

/// Counters for every site that has been interned (configured or hit),
/// sorted by name.  Empty in non-fault builds.
std::vector<SiteStats> snapshot();

#if LAZYMC_FAULTS_ENABLED

namespace detail {

struct SiteState;

/// Intern `name`, creating its state on first use.  Called once per
/// call site via a function-local static.
SiteState* intern(const char* name);

/// Count a hit and report whether the configured trigger fires.
bool poll(SiteState* site);

/// Sleep briefly — the "injected stall" action for scheduling sites.
void stall(std::uint64_t milliseconds);

}  // namespace detail

/// Evaluates to true when the named site fires on this hit.
#define LAZYMC_FAULT_FIRED(name)                                      \
  ([]() -> bool {                                                     \
    static ::lazymc::faults::detail::SiteState* lazymc_fault_state =  \
        ::lazymc::faults::detail::intern(name);                       \
    return ::lazymc::faults::detail::poll(lazymc_fault_state);        \
  }())

/// Simulate allocation failure: throws std::bad_alloc when the site
/// fires.  Place at the top of the allocation being modelled so the
/// degradation path sees exactly what a real failure would produce.
#define LAZYMC_FAULT_BAD_ALLOC(name)             \
  do {                                           \
    if (LAZYMC_FAULT_FIRED(name)) {              \
      throw std::bad_alloc();                    \
    }                                            \
  } while (0)

/// Inject a structured failure: throws faults::InjectedFault.
#define LAZYMC_FAULT_THROW(name)                       \
  do {                                                 \
    if (LAZYMC_FAULT_FIRED(name)) {                    \
      throw ::lazymc::faults::InjectedFault(name);     \
    }                                                  \
  } while (0)

/// Inject a scheduling stall: sleeps `ms` milliseconds when the site
/// fires (models a descheduled/starved worker, not a failure).
#define LAZYMC_FAULT_STALL(name, ms)             \
  do {                                           \
    if (LAZYMC_FAULT_FIRED(name)) {              \
      ::lazymc::faults::detail::stall(ms);       \
    }                                            \
  } while (0)

#else  // !LAZYMC_FAULTS_ENABLED

#define LAZYMC_FAULT_FIRED(name) false
#define LAZYMC_FAULT_BAD_ALLOC(name) static_cast<void>(0)
#define LAZYMC_FAULT_THROW(name) static_cast<void>(0)
#define LAZYMC_FAULT_STALL(name, ms) static_cast<void>(0)

#endif  // LAZYMC_FAULTS_ENABLED

}  // namespace lazymc::faults
