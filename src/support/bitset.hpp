// Dynamic bitset used as adjacency-matrix rows by the dense branch-and-bound
// solvers (mc::BBSolver, vc::KvcSolver).  Subproblems handed to those
// solvers are small (bounded by coreness), so a flat 64-bit-word bitset with
// popcount-based intersection is the fastest representation.
//
// Word storage is 64-byte aligned (simd::AlignedWords), so every row —
// including the trimmed DenseSubgraph copies inside SharedSubproblem
// tasks — starts on a cache-line boundary like the lazy-graph row arena;
// the bulk word loops (count/count_and/and_with/...) route through the
// runtime-dispatched wordops tier (scalar/AVX2/AVX-512) above a small-n
// inline path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/simd.hpp"

namespace lazymc {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  std::size_t num_words() const { return words_.size(); }

  /// Re-initializes to `bits` zero bits, reusing the existing word storage
  /// when capacity allows.  Lets scratch-arena owners (SearchScratch)
  /// recycle bitsets across subproblems without per-probe heap traffic.
  void reinit(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  void set(std::size_t i) {
    LAZYMC_ASSERT(i < bits_, "DynamicBitset::set out of bounds");
    words_[i >> 6] |= 1ULL << (i & 63);
  }
  void reset(std::size_t i) {
    LAZYMC_ASSERT(i < bits_, "DynamicBitset::reset out of bounds");
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool test(std::size_t i) const {
    LAZYMC_ASSERT(i < bits_, "DynamicBitset::test out of bounds");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  std::size_t count() const;

  /// Number of set bits in (this AND other).  Sizes must match.
  std::size_t count_and(const DynamicBitset& other) const;

  /// this &= other.
  void and_with(const DynamicBitset& other);

  /// this = a & b (resizes to a's size).
  void assign_and(const DynamicBitset& a, const DynamicBitset& b);

  /// this &= ~other.
  void and_not_with(const DynamicBitset& other);

  /// Index of lowest set bit, or size() when empty.
  std::size_t find_first() const;

  /// Index of next set bit strictly after `i`, or size() when none.
  std::size_t find_next(std::size_t i) const;

  bool any() const;
  bool none() const { return !any(); }

  /// Calls fn(i) for every set bit i in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

  std::uint64_t word(std::size_t w) const { return words_[w]; }
  std::uint64_t& word(std::size_t w) { return words_[w]; }

  /// Raw word storage (64-byte aligned); for the wordops primitives.
  const std::uint64_t* data() const { return words_.data(); }
  std::uint64_t* data() { return words_.data(); }

  bool operator==(const DynamicBitset& other) const = default;

 private:
  std::size_t bits_ = 0;
  simd::AlignedWords words_;
};

}  // namespace lazymc
