#include "hashset/hopscotch_set.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lazymc {
namespace {

std::size_t table_size_for(std::size_t expected) {
  // Target load factor <= 2/3; minimum size covers the hop range.
  std::size_t want = std::max<std::size_t>(expected * 3 / 2 + 1, 32);
  return std::bit_ceil(want);
}

}  // namespace

void HopscotchSet::reserve(std::size_t expected) {
  std::size_t cap = table_size_for(expected);
  buckets_.assign(cap, kEmpty);
  hop_mask_.assign(cap, 0);
  size_ = 0;
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
}

bool HopscotchSet::insert(VertexId v) {
  if (v == kEmpty) throw std::invalid_argument("HopscotchSet: reserved key");
  if (buckets_.empty()) reserve(kHopRange);
  if (contains(v)) return false;
  while (!try_insert(v)) grow_and_rehash();
  ++size_;
  return true;
}

bool HopscotchSet::try_insert(VertexId v) {
  const std::size_t cap = buckets_.size();
  const std::size_t home = index_of(v);

  // Linear probe for a free slot.
  std::size_t dist = 0;
  for (; dist < cap; ++dist) {
    if (buckets_[wrap(home + dist)] == kEmpty) break;
  }
  if (dist == cap) return false;  // table full

  // Hopscotch displacement: move the free slot backwards until it lies
  // within the hop range of `home`.
  while (dist >= kHopRange) {
    // Look at the kHopRange-1 buckets preceding the free slot; find an
    // element whose home allows it to move into the free slot.
    bool moved = false;
    for (std::size_t back = kHopRange - 1; back > 0; --back) {
      std::size_t candidate_pos = wrap(home + dist - back);
      VertexId occupant = buckets_[candidate_pos];
      if (occupant == kEmpty) continue;
      std::size_t occ_home = index_of(occupant);
      // Distance from occupant's home to the free slot (mod cap).
      std::size_t free_pos = wrap(home + dist);
      std::size_t d = (free_pos - occ_home) & (cap - 1);
      if (d >= kHopRange) continue;  // would leave its neighborhood
      // Move occupant into the free slot.
      std::size_t old_d = (candidate_pos - occ_home) & (cap - 1);
      buckets_[free_pos] = occupant;
      buckets_[candidate_pos] = kEmpty;
      hop_mask_[occ_home] =
          (hop_mask_[occ_home] & ~(1u << old_d)) | (1u << d);
      dist -= back;
      moved = true;
      break;
    }
    if (!moved) return false;  // displacement failed -> grow
  }

  buckets_[wrap(home + dist)] = v;
  hop_mask_[home] |= 1u << dist;
  return true;
}

void HopscotchSet::grow_and_rehash() {
  std::vector<VertexId> elements;
  elements.reserve(size_);
  for (VertexId x : buckets_) {
    if (x != kEmpty) elements.push_back(x);
  }
  std::size_t new_cap = buckets_.empty() ? 32 : buckets_.size() * 2;
  for (;;) {
    buckets_.assign(new_cap, kEmpty);
    hop_mask_.assign(new_cap, 0);
    shift_ = 64 - static_cast<unsigned>(std::countr_zero(new_cap));
    bool ok = true;
    for (VertexId x : elements) {
      if (!try_insert(x)) {
        ok = false;
        break;
      }
    }
    if (ok) return;
    new_cap *= 2;
  }
}

std::vector<VertexId> HopscotchSet::to_sorted_vector() const {
  std::vector<VertexId> out;
  out.reserve(size_);
  for_each([&](VertexId v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lazymc
