// Hopscotch hash set of vertex ids (Herlihy, Shavit & Tzafrir, DISC'08).
//
// Configuration follows the paper's Section V: the neighborhood (hop
// range) H is 16 — one 64-byte cache line of 4-byte vertex ids — and
// membership within a neighborhood is tracked with a per-bucket bitmask
// rather than deltas.  `contains` therefore touches at most two cache
// lines: the home bucket's bitmask word and the candidate slots.
//
// The set is built once (by the lazy graph, filtered at construction time)
// and then read concurrently without synchronization; inserts are not
// thread-safe and happen only while the owning vertex's lock is held
// (Algorithm 2's double-checked locking).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lazymc {

class HopscotchSet {
 public:
  /// Hop range: one cache line of 16 4-byte ids.
  static constexpr std::size_t kHopRange = 16;

  HopscotchSet() = default;

  /// Reserves capacity for `expected` elements (Algorithm 2 line 17
  /// reserves |N(v)| up front, so rehashes are rare).
  explicit HopscotchSet(std::size_t expected) { reserve(expected); }

  /// Re-initializes to an empty set with room for `expected` elements.
  void reserve(std::size_t expected);

  /// Inserts v.  Returns false if already present.  Not thread-safe.
  bool insert(VertexId v);

  /// Membership test.  Safe for concurrent readers once building is done.
  bool contains(VertexId v) const {
    if (buckets_.empty()) return false;
    std::size_t home = index_of(v);
    std::uint32_t mask = hop_mask_[home];
    while (mask) {
      unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      if (buckets_[wrap(home + bit)] == v) return true;
      mask &= mask - 1;
    }
    return false;
  }

  /// Home bucket index of v (hash only; no memory touched).  The batch
  /// kernels compute this once per key, prefetch with it, then probe with
  /// contains_at — a serial contains() would hash the key a second time.
  std::size_t home_of(VertexId v) const {
    return buckets_.empty() ? 0 : index_of(v);
  }

  /// Requests the home bucket's bitmask and slot cache lines ahead of a
  /// future contains_at(home, v) — the batch-probe kernels
  /// (intersect_*_prefetch) issue this kProbeLookahead iterations early so
  /// consecutive probe misses overlap in the memory system.
  void prefetch_home(std::size_t home) const {
    if (buckets_.empty()) return;
    __builtin_prefetch(hop_mask_.data() + home, /*rw=*/0, /*locality=*/1);
    __builtin_prefetch(buckets_.data() + home, /*rw=*/0, /*locality=*/1);
  }

  /// Convenience: hash-and-prefetch in one call.
  void prefetch(VertexId v) const { prefetch_home(home_of(v)); }

  /// Membership test with a precomputed home index (== home_of(v)).
  bool contains_at(std::size_t home, VertexId v) const {
    if (buckets_.empty()) return false;
    std::uint32_t mask = hop_mask_[home];
    while (mask) {
      unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      if (buckets_[wrap(home + bit)] == v) return true;
      mask &= mask - 1;
    }
    return false;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buckets_.size(); }

  /// Iterates all elements (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] != kEmpty) fn(buckets_[i]);
    }
  }

  /// Elements as a sorted vector (test/debug convenience).
  std::vector<VertexId> to_sorted_vector() const;

 private:
  static constexpr VertexId kEmpty = kInvalidVertex;

  std::size_t index_of(VertexId v) const {
    // Fibonacci (multiplicative) hashing; table size is a power of two.
    std::uint64_t h = static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_);
  }

  std::size_t wrap(std::size_t i) const { return i & (buckets_.size() - 1); }

  void grow_and_rehash();
  bool try_insert(VertexId v);

  std::vector<VertexId> buckets_;      // slot contents (kEmpty = free)
  std::vector<std::uint32_t> hop_mask_;  // bit b: home+b holds one of ours
  std::size_t size_ = 0;
  unsigned shift_ = 64;  // 64 - log2(capacity)
};

}  // namespace lazymc
