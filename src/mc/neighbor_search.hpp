// Systematic search (paper Section IV-D, Algorithms 7 and 8).
//
// NeighborSearch proves, for one vertex v, that no clique larger than the
// incumbent passes through v's right-neighborhood — or finds one.  It is
// optimized for *proving absence*: three filter rounds remove candidates
// before any recursive search starts, and most neighborhoods die in the
// filters (Table III: a few per thousand survive).
//
//   filter 1  keep u with coreness(u) >= |C*|;
//   filter 2  keep u with |N(u) ∩ N| > |C*| - 2   (intersect-size-gt-bool);
//   filter 3  keep u with |N(u) ∩ N| > |C*| - 2, exact sizes accumulated
//             into an edge estimate m̂            (intersect-size-gt-val).
//
// The edge estimate drives algorithmic choice (Section IV-E): densities
// above `density_threshold` route to k-VC on the complement, the rest to
// the coloring B&B MC solver.
//
// Parallel runtime (systematic_search): the per-vertex subproblems are
// *not* run as one barriered parallel_for per coreness level.  Instead a
// single descending-coreness worklist — probe chunks first, then every
// level's vertices chunked — is dealt round-robin across a sharded
// WorkQueue and drained by all participants with steal-half balancing.
// Each chunk carries its level's coreness; `incumbent.size()` is re-read
// when the chunk is *claimed*, so a bound raised anywhere retires whole
// chunks without touching their vertices (stats.retired_chunks).  Every
// participant owns a SearchScratch arena, making steady-state probes
// allocation-free.
//
// Two-level drain (subproblem splitting): on zero-gap instances the tail
// of the search degenerates to a few enormous surviving neighborhoods,
// each previously solved by a single thread inside the recursive B&B
// while the rest of the pool idled.  When a surviving subproblem's root
// frame is large enough (options.split_min_cands, mode split_mode), its
// root branches are carved into SubproblemTasks — each owning a copied
// candidate bitset plus a shared handle on the extracted DenseSubgraph —
// and pushed onto the *same* WorkQueue that feeds probe chunks, so any
// participant can steal them.  Claimed tasks re-check the incumbent
// against their coloring upper bound first and are retired wholesale when
// stale (stats.retired_subtasks); live tasks resume the B&B from their
// explicit frame on the *executing* thread's scratch arena and may split
// again up to options.split_depth generations.  A TaskGroup tracks
// completion, since tasks appearing mid-drain make queue emptiness
// meaningless as a termination signal.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lazygraph/lazy_graph.hpp"
#include "mc/bb_solver.hpp"
#include "mc/greedy_color.hpp"
#include "mc/incumbent.hpp"
#include "mc/intersect_policy.hpp"
#include "support/control.hpp"
#include "vc/mc_via_vc.hpp"

namespace lazymc::mc {

/// Aggregated instrumentation across all NeighborSearch calls (Table III,
/// Fig. 3).  Counters are relaxed atomics: updated once per neighborhood.
struct SearchStats {
  // Funnel counts (Table III): neighborhoods surviving each stage.
  std::atomic<std::uint64_t> evaluated{0};       // NeighborSearch calls
  std::atomic<std::uint64_t> pass_filter1{0};    // after coreness filter
  std::atomic<std::uint64_t> pass_filter2{0};    // after 1st degree filter
  std::atomic<std::uint64_t> pass_filter3{0};    // after 2nd degree filter
  // Algorithmic choice (Fig. 3).
  std::atomic<std::uint64_t> solved_mc{0};
  std::atomic<std::uint64_t> solved_vc{0};
  // k-VC probes abandoned on node budget and re-solved as MC.
  std::atomic<std::uint64_t> vc_fallbacks{0};
  // Worklist chunks retired unvisited because the incumbent had grown
  // past their coreness by claim time (incumbent broadcast at work).
  std::atomic<std::uint64_t> retired_chunks{0};
  // Subproblem decomposition: B&B root frames carved onto the work queue,
  // tasks retired at claim time because the incumbent outgrew their
  // coloring bound, and the deepest split generation reached.
  std::atomic<std::uint64_t> split_tasks{0};
  std::atomic<std::uint64_t> retired_subtasks{0};
  std::atomic<std::uint64_t> max_split_depth{0};
  // Frames big enough for the raw count rule (split_min_cands) that the
  // work estimate (candidates x density, split_min_work mode) rejected.
  std::atomic<std::uint64_t> split_work_rejected{0};
  // Graceful degradation (failure model): each count is one recovered
  // allocation failure that would previously have aborted the solve.
  // SparseWordSet builds that failed — the filter round ran on scalar
  // kernels instead of word-parallel ones.
  std::atomic<std::uint64_t> degraded_wordsets{0};
  // Subproblem decompositions that failed to materialize — the B&B
  // solved the frame inline on the probing thread instead of splitting.
  std::atomic<std::uint64_t> degraded_splits{0};
  // Where the adaptive dispatcher ran each intersection (wired into every
  // IntersectPolicy used by the solve; see mc/intersect_policy.hpp).
  KernelCounters kernels;
  // Work split in seconds (Fig. 3) and node counts (Fig. 6).
  std::atomic<std::uint64_t> filter_ns{0};
  std::atomic<std::uint64_t> mc_ns{0};
  std::atomic<std::uint64_t> vc_ns{0};
  std::atomic<std::uint64_t> mc_nodes{0};
  std::atomic<std::uint64_t> vc_nodes{0};

  double filter_seconds() const {
    return static_cast<double>(filter_ns.load()) * 1e-9;
  }
  double mc_seconds() const {
    return static_cast<double>(mc_ns.load()) * 1e-9;
  }
  double vc_seconds() const {
    return static_cast<double>(vc_ns.load()) * 1e-9;
  }
  /// Total systematic-search work in seconds (Fig. 7 "work" ratio).
  double work_seconds() const {
    return filter_seconds() + mc_seconds() + vc_seconds();
  }
};

/// Per-thread scratch arena for the systematic search.  Holds every
/// intermediate container a NeighborSearch probe needs — candidate
/// vectors, the pooled dense subgraph, coloring buffers, branch-and-bound
/// frames, and the k-VC complement — so that once its capacities reach
/// the workload's high-water mark, steady-state probes perform zero heap
/// allocation.  Not thread-safe: one instance per worker.
struct SearchScratch {
  std::vector<VertexId> n_set;    // surviving candidates
  std::vector<VertexId> kept;     // filter output, swapped with n_set
  std::vector<VertexId> clique;   // publish staging (original ids)
  SparseWordSet a_words;          // word form of n_set for bitset kernels
  simd::AlignedWords and_words;   // induce_from_lazy's gathered AND rows
  DenseSubgraph sub;              // pooled induced subgraph
  DynamicBitset all;              // full candidate set for color_prune
  ColorScratch color;             // greedy-coloring buffers
  MCScratch mc;                   // solve_mc_dense frames
  vc::VcScratch vc;               // complement pool for the k-VC route
};

/// When the task engine may decompose a surviving B&B root onto the
/// shared work queue.
enum class SplitMode {
  /// Split when the pool has more than one participant and the frame
  /// clears split_min_cands (default).
  kAuto,
  /// Split whenever the frame clears split_min_cands, even single-threaded
  /// (tasks still flow through the queue — used by determinism tests).
  kOn,
  /// Never split; every subproblem solves inside its probe's recursion.
  kOff,
};

/// The immutable part of a decomposed subproblem, shared by every task
/// carved from it (and from their re-splits): the extracted dense
/// subgraph plus everything needed to publish an improving clique without
/// touching the spawning thread again.
struct SharedSubproblem {
  DenseSubgraph graph;                  // owned copy (scratch.sub is pooled)
  std::vector<VertexId> orig_of_local;  // local id -> original vertex id
  VertexId head_orig = 0;  // the probe vertex; member of every clique here
};

/// One stealable branch-and-bound frame: a prefix R already committed and
/// the candidate set P to expand under it.  Owns its bitset (copied at
/// split time) so execution is independent of the spawning thread's
/// arena; the subgraph is shared.
struct SubproblemTask {
  std::shared_ptr<const SharedSubproblem> shared;
  std::vector<VertexId> prefix;  // local ids, branch vertex last
  DynamicBitset candidates;      // P for this frame
  /// Coloring upper bound on |{head} ∪ R ∪ clique(P)| — the task cannot
  /// improve an incumbent at or above this; checked again at claim time.
  VertexId upper_bound = 0;
  /// Split generation (1 = carved from a probe's root, 2 = from a task).
  std::uint32_t depth = 1;
};

/// Where carved tasks go.  The systematic-search runtime wires one sink
/// per participant onto its shard of the shared WorkQueue; tests may
/// collect tasks instead.
class SubproblemSink {
 public:
  virtual ~SubproblemSink() = default;
  virtual void submit(SubproblemTask task) = 0;
};

struct NeighborSearchOptions {
  /// Density above which subproblems go to k-VC.  The paper quotes 10%
  /// for its headline results but observes vertex cover being selected
  /// "when the density of the subgraph is 50% or higher" (Fig. 3) and
  /// that 30-50%-density subgraphs often run faster as MC (Fig. 6); with
  /// this repo's basic k-VC solver 0.6 is the robust default.  Swept by
  /// bench_fig6.
  double density_threshold = 0.60;
  /// Rounds of induced-degree filtering.  The paper uses 2 ("two
  /// iterations of degree-based filtering are sufficient to exclude
  /// search for the majority of neighborhoods") but notes the filter
  /// could run to a fixpoint; rounds stop early when nothing is removed.
  /// Must be >= 1.  Swept by bench_ablation_filters.
  unsigned degree_filter_rounds = 2;
  /// Greedy-color surviving subgraphs before dispatching a solver and
  /// skip the solve when chi(G[N]) cannot beat the incumbent.  See
  /// LazyMCConfig::color_prune.
  bool color_prune = false;
  /// Adaptive algorithmic choice: when a subgraph routed to k-VC exceeds
  /// this branch-node budget, abandon the probe and re-solve with the MC
  /// branch-and-bound (the density heuristic mispredicted).  Scaled by
  /// the subgraph size; 0 disables the fallback.  The paper notes that
  /// "a precise prediction of what algorithm is most efficient is
  /// challenging" — this bounds the cost of a misprediction.
  std::uint64_t vc_node_budget_per_vertex = 2000;
  /// Route the MC-vs-VC choice on the paper's pre-extraction density
  /// estimate m̂ (accumulated by filter 3) instead of the extracted
  /// subgraph's exact density.  Off by default: the dense subgraph is
  /// materialized for either solver anyway, so the exact value is free
  /// and keeps the phi scale meaningful; this option exists to reproduce
  /// the paper's ordering (estimate first, extraction after).
  bool pre_extraction_density = false;
  /// Subproblem decomposition onto the shared work queue (see the header
  /// comment).  kOff keeps every B&B on its probing thread.
  SplitMode split_mode = SplitMode::kAuto;
  /// Minimum candidate-set size for a root branch to be worth a queue
  /// round-trip (frame copy + possible steal).  Frames below it recurse
  /// in the pooled solver as before.
  VertexId split_min_cands = 128;
  /// Split-work estimation (ROADMAP item): when > 0, frames are accepted
  /// on the estimate |candidates| x subproblem-density >= split_min_work
  /// instead of the raw count rule above — a sparse 200-candidate frame
  /// collapses in a few nodes and is not worth carving, while a dense
  /// 150-candidate frame is genuinely exponential.  The estimate is the
  /// expected in-frame degree mass, i.e. the branching factor the B&B
  /// will actually face.  0 keeps the count-only rule; frames that pass
  /// the count rule but fail the estimate bump stats.split_work_rejected.
  std::uint64_t split_min_work = 0;
  /// Maximum split generations: 1 = only probe roots split, 2 = tasks may
  /// split once more, ... 0 disables splitting entirely.
  unsigned split_depth = 2;
  IntersectPolicy intersect;
  const SolveControl* control = nullptr;
};

/// Algorithm 8: searches the right-neighborhood of relabelled vertex v and
/// offers any improving clique (original ids) to the incumbent.  All
/// intermediate state lives in `scratch` (one per thread).  When `sink`
/// is non-null and options allow, oversized B&B roots are decomposed into
/// SubproblemTasks submitted there instead of being solved inline.
void neighbor_search(LazyGraph& h, VertexId v, Incumbent& incumbent,
                     const NeighborSearchOptions& options, SearchStats& stats,
                     SearchScratch& scratch, SubproblemSink* sink = nullptr);

/// Convenience overload with a throwaway scratch (tests, one-off probes).
inline void neighbor_search(LazyGraph& h, VertexId v, Incumbent& incumbent,
                            const NeighborSearchOptions& options,
                            SearchStats& stats) {
  SearchScratch scratch;
  neighbor_search(h, v, incumbent, options, stats, scratch);
}

/// Executes one claimed SubproblemTask on the executing thread's scratch:
/// re-checks the incumbent against the task's coloring bound (a stale
/// task is retired without being solved — returns false), then resumes
/// the B&B from the explicit frame, publishing any improving clique.
/// `sink` (optional) receives re-split child tasks while
/// task.depth < options.split_depth.
bool run_subproblem_task(const SubproblemTask& task, Incumbent& incumbent,
                         const NeighborSearchOptions& options,
                         SearchStats& stats, SearchScratch& scratch,
                         SubproblemSink* sink = nullptr);

/// Algorithm 7 over a zero-barrier sharded worklist: one probe vertex per
/// degeneracy level (from |C*| upward) enqueued first, then all levels
/// from high to low coreness, drained in parallel with claim-time
/// incumbent re-checks (see the header comment).
void systematic_search(LazyGraph& h, Incumbent& incumbent,
                       const NeighborSearchOptions& options,
                       SearchStats& stats);

}  // namespace lazymc::mc
