// Greedy sequential coloring of a candidate set, used as a clique upper
// bound: a k-clique needs k colors, so |C| + colors(G[P]) <= |C*| prunes
// the branch (paper Section II-A; Tomita & Seki 2003; Babel & Tinhofer).
#pragma once

#include <vector>

#include "graph/subgraph.hpp"
#include "support/bitset.hpp"

namespace lazymc::mc {

/// Result of coloring the candidate subset `p` of a dense subgraph.
struct Coloring {
  /// Candidates ordered by ascending color.
  std::vector<VertexId> order;
  /// color[i] = color (1-based) of order[i]; ascending.
  std::vector<VertexId> color;
  /// Number of color classes used (upper bound on the clique in G[P]).
  VertexId num_colors = 0;
};

/// Reusable buffers for the coloring routines.  Thread through repeated
/// calls (one instance per thread) so steady-state colorings allocate
/// nothing once capacities have grown to the high-water mark.
struct ColorScratch {
  DynamicBitset uncolored;
  DynamicBitset candidates;
};

/// Greedy coloring of the vertices in `p` (a bitset over g's local ids).
/// O(|p| * colors * words).  Deterministic given the iteration order.
Coloring greedy_color(const DenseSubgraph& g, const DynamicBitset& p);

/// Scratch-arena variant: writes into `out` (cleared first), reusing its
/// vectors and the scratch bitsets.
void greedy_color_into(const DenseSubgraph& g, const DynamicBitset& p,
                       ColorScratch& scratch, Coloring& out);

/// Only the number of colors (cheaper when the order is not needed).
VertexId greedy_color_count(const DenseSubgraph& g, const DynamicBitset& p);

/// Scratch-arena variant of greedy_color_count.
VertexId greedy_color_count(const DenseSubgraph& g, const DynamicBitset& p,
                            ColorScratch& scratch);

}  // namespace lazymc::mc
