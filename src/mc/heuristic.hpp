// Heuristic (greedy, inexact) clique searches that prime the incumbent
// (paper Section IV-C, Algorithms 5 and 6).
//
// Degree-based search runs on the *original* graph before any
// preprocessing: it seeds from the top-K highest-degree vertices and
// greedily adds the candidate with the highest degree inside the shrinking
// candidate set, found with intersect-size-gt-val keyed to the running
// maximum.  A good incumbent here shrinks the k-core computation and the
// must subgraph.
//
// Coreness-based search runs on the lazy relabelled graph: one seed per
// degeneracy level, greedily taking the highest-numbered (= highest
// coreness) candidate, with intersect-gt keyed to |C*| - |C| so hopeless
// seeds abandon early.
#pragma once

#include "graph/graph.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/incumbent.hpp"
#include "mc/intersect_policy.hpp"
#include "support/control.hpp"

namespace lazymc::mc {

struct HeuristicOptions {
  /// Number of top-degree seeds for the degree-based search.
  VertexId top_k = 16;
  IntersectPolicy intersect;
  const SolveControl* control = nullptr;
};

/// Algorithm 5.  Offers every grown clique to `incumbent` (original ids).
void degree_based_heuristic(const Graph& g, Incumbent& incumbent,
                            const HeuristicOptions& options = {});

/// Algorithm 6.  Seeds one greedy growth per coreness level of `h`;
/// offers results to `incumbent` in original ids.
void coreness_based_heuristic(LazyGraph& h, Incumbent& incumbent,
                              const HeuristicOptions& options = {});

}  // namespace lazymc::mc
