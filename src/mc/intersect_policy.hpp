// Runtime toggle for the early-exit intersections (Fig. 5 ablation).
//
// "no early exits" runs every intersection to completion and compares
// afterwards; "no second exit" keeps the failure exit of
// intersect-size-gt-bool but drops its success exit.  The default enables
// everything (the paper's configuration).
#pragma once

#include <span>

#include "intersect/intersect.hpp"

namespace lazymc::mc {

struct IntersectPolicy {
  bool early_exits = true;
  bool second_exit = true;

  /// intersect-gt under the policy: result set when size > theta.
  template <MembershipSet SetB>
  int gt(std::span<const VertexId> a, const SetB& b, VertexId* out,
         std::int64_t theta) const {
    if (early_exits) return intersect_gt(a, b, out, theta);
    int n = static_cast<int>(intersect_hash(a, b, out));
    return n > theta ? n : kTooSmall;
  }

  /// intersect-size-gt-val under the policy.
  template <MembershipSet SetB>
  int size_gt_val(std::span<const VertexId> a, const SetB& b,
                  std::int64_t theta) const {
    if (early_exits) return intersect_size_gt_val(a, b, theta);
    int n = static_cast<int>(intersect_size(a, b));
    return n > theta ? n : kTooSmall;
  }

  /// intersect-size-gt-bool under the policy.
  template <MembershipSet SetB>
  bool size_gt_bool(std::span<const VertexId> a, const SetB& b,
                    std::int64_t theta) const {
    if (!early_exits) {
      return static_cast<std::int64_t>(intersect_size(a, b)) > theta;
    }
    return intersect_size_gt_bool(a, b, theta, second_exit);
  }
};

}  // namespace lazymc::mc
