// Adaptive intersection-kernel dispatch plus the Fig. 5 ablation toggles.
//
// Every |A ∩ B| > θ question in the search funnels through IntersectPolicy.
// The template methods keep the original behavior for an explicit
// membership structure B (tests, the degree heuristic's SortedLookup); the
// NeighborhoodView overloads are the *adaptive dispatcher*: they inspect
// which representations B actually has (bitset row / hopscotch set /
// sorted array) and the |A| vs |B| shape, then route to
//
//   bitset-word   — SparseWordSet x BitsetRow, popcount per occupied word
//                   with the miss budget checked at word granularity
//                   (requires the caller-provided word form of A);
//   bitset-probe  — scalar probes against a BitsetRow (bit test each);
//   hash-batched  — prefetched batch probes into the hopscotch set
//                   (|A| >= batch_min, so the lookahead pays off);
//   hash          — serial hopscotch probes (small A);
//   gallop        — binary-search probes of A into a much larger sorted B;
//   merge         — linear merge of two comparably sized sorted arrays.
//
// Each decision bumps a relaxed counter in `counters` (when wired) so
// reports can show where intersections actually ran.
//
// Ablation semantics are unchanged: "no early exits" runs the chosen
// representation's exact kernel and compares afterwards; "no second exit"
// keeps only the failure exit of intersect-size-gt-bool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>

#include "intersect/intersect.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "support/simd.hpp"

namespace lazymc::mc {

/// Where dispatched intersections ran (relaxed; one bump per call).
/// `word_tier[t]` splits the bitset_word count by the SIMD tier
/// (scalar/avx2/avx512) that executed the call, so forced-tier A/B runs
/// and the reports can show which kernel generation did the work.
struct KernelCounters {
  std::atomic<std::uint64_t> merge{0};
  std::atomic<std::uint64_t> gallop{0};
  std::atomic<std::uint64_t> hash{0};
  std::atomic<std::uint64_t> hash_batched{0};
  std::atomic<std::uint64_t> bitset_probe{0};
  std::atomic<std::uint64_t> bitset_word{0};
  /// Hybrid-row container kernels: word-cursor runs against the array
  /// container and span-AND runs against the run container (the bitset
  /// container counts under bitset_word — it runs the same tiered kernel).
  std::atomic<std::uint64_t> array_gallop{0};
  std::atomic<std::uint64_t> run_and{0};
  std::atomic<std::uint64_t> word_tier[simd::kNumTiers]{};
};

struct IntersectPolicy {
  bool early_exits = true;
  bool second_exit = true;
  /// Enables the prefetched batch-probe path for hash-backed B.
  bool batched_probes = true;
  /// Minimum |A| for batched probing (below this the lookahead is noise).
  std::size_t batch_min = 2 * kProbeLookahead;
  /// Sorted-B shape switch: probe A into B (binary search) when
  /// |B| >= probe_ratio * |A|, else merge linearly.
  std::size_t probe_ratio = 32;
  /// Dispatch counters; may be null (not counted).
  KernelCounters* counters = nullptr;

  // ---- explicit-representation methods (original behavior) ---------------

  /// intersect-gt under the policy: result set when size > theta.
  template <MembershipSet SetB>
  int gt(std::span<const VertexId> a, const SetB& b, VertexId* out,
         std::int64_t theta) const {
    if (early_exits) return intersect_gt(a, b, out, theta);
    int n = static_cast<int>(intersect_hash(a, b, out));
    return n > theta ? n : kTooSmall;
  }

  /// intersect-size-gt-val under the policy.
  template <MembershipSet SetB>
  int size_gt_val(std::span<const VertexId> a, const SetB& b,
                  std::int64_t theta) const {
    if (early_exits) return intersect_size_gt_val(a, b, theta);
    int n = static_cast<int>(intersect_size(a, b));
    return n > theta ? n : kTooSmall;
  }

  /// intersect-size-gt-bool under the policy.
  template <MembershipSet SetB>
  bool size_gt_bool(std::span<const VertexId> a, const SetB& b,
                    std::int64_t theta) const {
    if (!early_exits) {
      return static_cast<std::int64_t>(intersect_size(a, b)) > theta;
    }
    return intersect_size_gt_bool(a, b, theta, second_exit);
  }

  // ---- adaptive dispatch over a NeighborhoodView --------------------------
  // `a` must be sorted ascending (candidate sets are).  `a_words` is the
  // optional word-packed form of the same A; when present and B has a
  // bitset row, the word-parallel kernel runs.

  bool size_gt_bool(std::span<const VertexId> a, const NeighborhoodView& b,
                    std::int64_t theta,
                    const SparseWordSet* a_words = nullptr) const {
    if (b.has_hybrid()) {
      const HybridRow& row = b.hybrid();
      if (a_words && a_words->zone_begin() == row.zone_begin) {
        bump_container(row.kind);
        if (!early_exits) {
          return static_cast<std::int64_t>(intersect_size(*a_words, row)) >
                 theta;
        }
        return intersect_size_gt_bool(*a_words, row, theta, second_exit);
      }
      // No word form of A: the array container is itself a sorted array,
      // so merge or gallop directly; bitset/run fall back to bit probes.
      if (row.kind == RowContainer::kArray) {
        if (probe_beats_merge(a.size(), row.units)) {
          bump(&KernelCounters::array_gallop);
          return size_gt_bool(a, HybridArrayLookup(row), theta);
        }
        bump(&KernelCounters::merge);
        if (!early_exits) {
          std::int64_t n = 0;
          for (VertexId v : a) n += row.contains(v) ? 1 : 0;
          return n > theta;
        }
        return hybrid_array_size_gt_bool(a, row, theta, second_exit);
      }
      bump(&KernelCounters::bitset_probe);
      return size_gt_bool(a, row, theta);
    }
    if (b.has_bitset()) {
      const BitsetRow& row = b.bitset();
      if (a_words && a_words->zone_begin() == row.zone_begin) {
        bump_word();
        if (!early_exits) {
          return static_cast<std::int64_t>(intersect_size(*a_words, row)) >
                 theta;
        }
        return intersect_size_gt_bool(*a_words, row, theta, second_exit);
      }
      bump(&KernelCounters::bitset_probe);
      return size_gt_bool(a, row, theta);
    }
    if (b.is_hashed()) {
      const HopscotchSet& set = *b.hash_set();
      if (use_batch(a.size())) {
        bump(&KernelCounters::hash_batched);
        if (!early_exits) {
          return static_cast<std::int64_t>(intersect_size_prefetch(a, set)) >
                 theta;
        }
        return intersect_size_gt_bool_prefetch(a, set, theta, second_exit);
      }
      bump(&KernelCounters::hash);
      return size_gt_bool(a, set, theta);
    }
    const std::span<const VertexId> s = b.sorted();
    if (probe_beats_merge(a.size(), s.size())) {
      bump(&KernelCounters::gallop);
      return size_gt_bool(a, SortedLookup(s), theta);
    }
    bump(&KernelCounters::merge);
    if (!early_exits) {
      return static_cast<std::int64_t>(intersect_sorted_size(a, s)) > theta;
    }
    return intersect_sorted_size_gt_bool(a, s, theta, second_exit);
  }

  int size_gt_val(std::span<const VertexId> a, const NeighborhoodView& b,
                  std::int64_t theta,
                  const SparseWordSet* a_words = nullptr) const {
    if (b.has_hybrid()) {
      const HybridRow& row = b.hybrid();
      if (a_words && a_words->zone_begin() == row.zone_begin) {
        bump_container(row.kind);
        if (!early_exits) {
          int n = static_cast<int>(intersect_size(*a_words, row));
          return n > theta ? n : kTooSmall;
        }
        return intersect_size_gt_val(*a_words, row, theta);
      }
      if (row.kind == RowContainer::kArray) {
        if (probe_beats_merge(a.size(), row.units)) {
          bump(&KernelCounters::array_gallop);
          return size_gt_val(a, HybridArrayLookup(row), theta);
        }
        bump(&KernelCounters::merge);
        if (!early_exits) {
          std::int64_t n = 0;
          for (VertexId v : a) n += row.contains(v) ? 1 : 0;
          return n > theta ? static_cast<int>(n) : kTooSmall;
        }
        return hybrid_array_size_gt_val(a, row, theta);
      }
      bump(&KernelCounters::bitset_probe);
      return size_gt_val(a, row, theta);
    }
    if (b.has_bitset()) {
      const BitsetRow& row = b.bitset();
      if (a_words && a_words->zone_begin() == row.zone_begin) {
        bump_word();
        if (!early_exits) {
          int n = static_cast<int>(intersect_size(*a_words, row));
          return n > theta ? n : kTooSmall;
        }
        return intersect_size_gt_val(*a_words, row, theta);
      }
      bump(&KernelCounters::bitset_probe);
      return size_gt_val(a, row, theta);
    }
    if (b.is_hashed()) {
      const HopscotchSet& set = *b.hash_set();
      if (use_batch(a.size())) {
        bump(&KernelCounters::hash_batched);
        if (!early_exits) {
          int n = static_cast<int>(intersect_size_prefetch(a, set));
          return n > theta ? n : kTooSmall;
        }
        return intersect_size_gt_val_prefetch(a, set, theta);
      }
      bump(&KernelCounters::hash);
      return size_gt_val(a, set, theta);
    }
    const std::span<const VertexId> s = b.sorted();
    if (probe_beats_merge(a.size(), s.size())) {
      bump(&KernelCounters::gallop);
      return size_gt_val(a, SortedLookup(s), theta);
    }
    bump(&KernelCounters::merge);
    if (!early_exits) {
      int n = static_cast<int>(intersect_sorted_size(a, s));
      return n > theta ? n : kTooSmall;
    }
    return intersect_sorted_size_gt_val(a, s, theta);
  }

  int gt(std::span<const VertexId> a, const NeighborhoodView& b, VertexId* out,
         std::int64_t theta, const SparseWordSet* a_words = nullptr) const {
    if (b.has_hybrid()) {
      const HybridRow& row = b.hybrid();
      if (a_words && a_words->zone_begin() == row.zone_begin) {
        bump_container(row.kind);
        if (!early_exits) {
          int n = static_cast<int>(intersect_words(*a_words, row, out));
          return n > theta ? n : kTooSmall;
        }
        return intersect_gt(*a_words, row, out, theta);
      }
      if (row.kind == RowContainer::kArray) {
        if (probe_beats_merge(a.size(), row.units)) {
          bump(&KernelCounters::array_gallop);
          return gt(a, HybridArrayLookup(row), out, theta);
        }
        bump(&KernelCounters::merge);
        if (!early_exits) {
          int n = 0;
          for (VertexId v : a) {
            if (row.contains(v)) out[n++] = v;
          }
          return n > theta ? n : kTooSmall;
        }
        return hybrid_array_gt(a, row, out, theta);
      }
      bump(&KernelCounters::bitset_probe);
      return gt(a, row, out, theta);
    }
    if (b.has_bitset()) {
      const BitsetRow& row = b.bitset();
      if (a_words && a_words->zone_begin() == row.zone_begin) {
        bump_word();
        if (!early_exits) {
          int n = static_cast<int>(intersect_words(*a_words, row, out));
          return n > theta ? n : kTooSmall;
        }
        return intersect_gt(*a_words, row, out, theta);
      }
      bump(&KernelCounters::bitset_probe);
      return gt(a, row, out, theta);
    }
    if (b.is_hashed()) {
      const HopscotchSet& set = *b.hash_set();
      if (use_batch(a.size())) {
        bump(&KernelCounters::hash_batched);
        if (!early_exits) {
          int n = static_cast<int>(intersect_hash_prefetch(a, set, out));
          return n > theta ? n : kTooSmall;
        }
        return intersect_gt_prefetch(a, set, out, theta);
      }
      bump(&KernelCounters::hash);
      return gt(a, set, out, theta);
    }
    const std::span<const VertexId> s = b.sorted();
    if (probe_beats_merge(a.size(), s.size())) {
      bump(&KernelCounters::gallop);
      return gt(a, SortedLookup(s), out, theta);
    }
    bump(&KernelCounters::merge);
    if (!early_exits) {
      int n = static_cast<int>(intersect_sorted(a, s, out));
      return n > theta ? n : kTooSmall;
    }
    return intersect_sorted_gt(a, s, out, theta);
  }

 private:
  bool use_batch(std::size_t a_size) const {
    return batched_probes && a_size >= batch_min;
  }
  bool probe_beats_merge(std::size_t a_size, std::size_t b_size) const {
    return b_size >= probe_ratio * std::max<std::size_t>(1, a_size);
  }
  void bump(std::atomic<std::uint64_t> KernelCounters::* member) const {
    if (counters) (counters->*member).fetch_add(1, std::memory_order_relaxed);
  }
  /// bitset-word calls also record the SIMD tier that will run them.
  void bump_word() const {
    if (!counters) return;
    counters->bitset_word.fetch_add(1, std::memory_order_relaxed);
    counters->word_tier[static_cast<std::size_t>(simd::current_tier())]
        .fetch_add(1, std::memory_order_relaxed);
  }
  /// Word-form dispatch against a hybrid row, counted per container.
  void bump_container(RowContainer kind) const {
    switch (kind) {
      case RowContainer::kBitset:
        bump_word();  // same tiered kernel as a plain bitset row
        return;
      case RowContainer::kArray:
        bump(&KernelCounters::array_gallop);
        return;
      case RowContainer::kRun:
        bump(&KernelCounters::run_and);
        return;
    }
  }
};

}  // namespace lazymc::mc
