#include "mc/lazymc.hpp"

#include <algorithm>
#include <stdexcept>

#include "kcore/kcore.hpp"
#include "kcore/order.hpp"
#include "mc/heuristic.hpp"
#include "mc/incumbent.hpp"
#include "support/timer.hpp"

namespace lazymc::mc {

namespace {

/// Forces the SIMD tier for the duration of one solve, restoring the
/// previous dispatch state (forced or auto) on exit — so a forced
/// baseline run does not silently leak its tier into a later auto run.
/// The underlying knob is process-global (see LazyMCConfig::kernel_tier:
/// concurrent solves must agree on it), so this is a plain save/restore,
/// not a reentrant stack.
class ScopedKernelTier {
 public:
  explicit ScopedKernelTier(std::optional<simd::Tier> tier)
      : previous_(simd::forced_tier()), engaged_(tier.has_value()) {
    if (engaged_ && !simd::force_tier(*tier)) {
      throw std::runtime_error(
          std::string("kernel tier '") + simd::tier_name(*tier) +
          "' is not available (not compiled in, or unsupported by this CPU)");
    }
  }
  ~ScopedKernelTier() {
    if (!engaged_) return;
    if (previous_) {
      simd::force_tier(*previous_);
    } else {
      simd::reset_tier();
    }
  }

 private:
  std::optional<simd::Tier> previous_;
  bool engaged_;
};

}  // namespace

LazyMCResult lazy_mc(const Graph& g, const LazyMCConfig& config) {
  LazyMCResult result;
  // Forced kernel tier (--kernels); applied before the empty-graph
  // shortcut so a bad request fails loudly either way, and restored when
  // the solve returns.
  ScopedKernelTier tier_guard(config.kernel_tier);
  result.search.simd_tier = simd::tier_name(simd::current_tier());
  if (g.num_vertices() == 0) return result;

  // Per-request isolation: a caller-owned control (daemon request) wins
  // over a solve-local one.  Everything below takes the reference, so the
  // solve is oblivious to who owns its lifecycle.
  SolveControl own_control(config.time_limit_seconds);
  SolveControl& control = config.control ? *config.control : own_control;
  SearchStats stats;  // declared early: kernel counters span all phases
  IntersectPolicy policy{config.early_exit_intersections, config.second_exit};
  policy.counters = &stats.kernels;
  Incumbent incumbent;
#if LAZYMC_CHECKED_ENABLED
  // End-to-end invariant: every incumbent any thread publishes — from the
  // heuristics, the dense B&B, the VC route, or a split subproblem task —
  // must be an actual clique of the input graph.
  incumbent.set_verifier(
      [&g](std::span<const VertexId> clique) { return is_clique(g, clique); });
#endif
  // Anytime instrumentation: every improving install is stamped against
  // the solve clock (time_to_first_solution = first entry).  The phase
  // timer cannot serve here — lap() restarts it at every phase boundary.
  WallTimer solve_clock;
  incumbent.enable_history(&solve_clock);
  WallTimer timer;

  // ---- 1. degree-based heuristic search (Algorithm 1 line 3) -----------
  {
    HeuristicOptions h;
    h.top_k = config.heuristic_top_k;
    h.intersect = policy;
    h.control = &control;
    degree_based_heuristic(g, incumbent, h);
  }
  result.heuristic_degree_omega = incumbent.size();
  result.phases.degree_heuristic = timer.lap();

  // ---- 2-3. k-core bounded by |C*|, then (coreness, degree) order ------
  // A binary store ships the exact decomposition and order precomputed;
  // consuming them is the lb=0 variant of the same pipeline (exact
  // coreness filters correctly for any incumbent), so the whole phase
  // collapses to two pointer bindings.  Any mismatch — wrong order kind,
  // stale sizes — falls back to computing from scratch.
  const PrebuiltGraph* pre = config.prebuilt;
  const bool use_prebuilt =
      pre && pre->order && pre->coreness &&
      config.vertex_order == VertexOrderKind::kCorenessDegree &&
      pre->order->size() == g.num_vertices() &&
      pre->coreness->size() == g.num_vertices();
  kcore::CoreDecomposition core;
  kcore::VertexOrder order;
  const kcore::VertexOrder* order_ref = &order;
  const std::vector<VertexId>* coreness_ref = &core.coreness;
  if (use_prebuilt) {
    order_ref = pre->order;
    coreness_ref = pre->coreness;
    result.degeneracy = pre->degeneracy;
  } else if (config.vertex_order == VertexOrderKind::kPeeling) {
    // Sequential full decomposition: yields the Matula–Beck peeling
    // order directly (the order MC-BRB and friends get "for free").
    core = kcore::coreness(g);
    order = kcore::order_from_peel(g, core.peel_order);
    result.degeneracy = core.degeneracy;
  } else {
    core = kcore::coreness_lower_bounded(g, incumbent.size());
    order = kcore::order_by_coreness_degree_parallel(g, core.coreness);
    result.degeneracy = core.degeneracy;
  }
  result.phases.preprocessing = timer.lap();

  // ---- 4. lazy graph + optional must-subgraph prepopulation ------------
  LazyGraph lazy(g, *order_ref, *coreness_ref, &incumbent.size_atomic());
  lazy.set_preferred_rep(config.neighborhood_rep);
  // Bitset rows cover the zone of interest fixed by the incumbent the
  // degree heuristic found; forcing hash/sorted turns them off entirely.
  // Stored rows are adopted zero-copy when their zone covers the live
  // one; an incompatible store degrades to lazily built rows, never to a
  // wrong answer.
  bool adopted = false;
  if (use_prebuilt && pre->rows.valid() && config.bitset_budget_bytes > 0 &&
      config.neighborhood_rep != NeighborhoodRep::kHash &&
      config.neighborhood_rep != NeighborhoodRep::kSorted) {
    adopted = lazy.adopt_prebuilt_rows(
        pre->rows, config.neighborhood_rep == NeighborhoodRep::kHybrid);
  }
  if (!adopted && config.bitset_budget_bytes > 0) {
    if (config.neighborhood_rep == NeighborhoodRep::kHybrid) {
      lazy.enable_hybrid_rows(config.bitset_budget_bytes,
                              config.hybrid_array_max,
                              config.hybrid_run_min_saving);
    } else if (config.neighborhood_rep == NeighborhoodRep::kAuto ||
               config.neighborhood_rep == NeighborhoodRep::kBitset) {
      lazy.enable_bitset_rows(config.bitset_budget_bytes);
    }
  }
  lazy.prepopulate(config.prepopulate, /*must_threshold=*/incumbent.size());
  result.phases.must_subgraph = timer.lap();

  // ---- 5. coreness-based heuristic search ------------------------------
  {
    HeuristicOptions h;
    h.top_k = config.heuristic_top_k;
    h.intersect = policy;
    h.control = &control;
    coreness_based_heuristic(lazy, incumbent, h);
  }
  result.heuristic_coreness_omega = incumbent.size();
  result.phases.coreness_heuristic = timer.lap();

  // ---- 6. systematic search --------------------------------------------
  {
    NeighborSearchOptions n;
    n.density_threshold = config.density_threshold;
    n.degree_filter_rounds = config.degree_filter_rounds;
    n.color_prune = config.color_prune;
    n.vc_node_budget_per_vertex = config.vc_node_budget_per_vertex;
    n.pre_extraction_density = config.pre_extraction_density;
    n.split_mode = config.split_mode;
    n.split_min_cands = config.split_min_cands;
    n.split_depth = config.split_depth;
    n.split_min_work = config.split_min_work;
    n.intersect = policy;
    n.control = &control;
    systematic_search(lazy, incumbent, n, stats);
  }
  result.phases.systematic = timer.lap();

  result.clique = incumbent.snapshot();
  std::sort(result.clique.begin(), result.clique.end());
  result.omega = static_cast<VertexId>(result.clique.size());
  result.timed_out = control.cancelled();

  result.search.evaluated = stats.evaluated.load();
  result.search.pass_filter1 = stats.pass_filter1.load();
  result.search.pass_filter2 = stats.pass_filter2.load();
  result.search.pass_filter3 = stats.pass_filter3.load();
  result.search.solved_mc = stats.solved_mc.load();
  result.search.solved_vc = stats.solved_vc.load();
  result.search.vc_fallbacks = stats.vc_fallbacks.load();
  result.search.retired_chunks = stats.retired_chunks.load();
  result.search.split_tasks = stats.split_tasks.load();
  result.search.retired_subtasks = stats.retired_subtasks.load();
  result.search.max_split_depth = stats.max_split_depth.load();
  result.search.split_work_rejected = stats.split_work_rejected.load();
  result.search.degraded_wordsets = stats.degraded_wordsets.load();
  result.search.degraded_splits = stats.degraded_splits.load();
  result.search.kernel_merge = stats.kernels.merge.load();
  result.search.kernel_gallop = stats.kernels.gallop.load();
  result.search.kernel_hash = stats.kernels.hash.load();
  result.search.kernel_hash_batched = stats.kernels.hash_batched.load();
  result.search.kernel_bitset_probe = stats.kernels.bitset_probe.load();
  result.search.kernel_bitset_word = stats.kernels.bitset_word.load();
  result.search.kernel_array_gallop = stats.kernels.array_gallop.load();
  result.search.kernel_run_and = stats.kernels.run_and.load();
  result.search.kernel_word_scalar =
      stats.kernels.word_tier[static_cast<std::size_t>(simd::Tier::kScalar)]
          .load();
  result.search.kernel_word_avx2 =
      stats.kernels.word_tier[static_cast<std::size_t>(simd::Tier::kAvx2)]
          .load();
  result.search.kernel_word_avx512 =
      stats.kernels.word_tier[static_cast<std::size_t>(simd::Tier::kAvx512)]
          .load();
  result.search.filter_seconds = stats.filter_seconds();
  result.search.mc_seconds = stats.mc_seconds();
  result.search.vc_seconds = stats.vc_seconds();
  result.search.mc_nodes = stats.mc_nodes.load();
  result.search.vc_nodes = stats.vc_nodes.load();
  result.search.improvements = incumbent.history();
  result.search.time_to_first_solution =
      result.search.improvements.empty()
          ? 0.0
          : result.search.improvements.front().seconds;
  result.lazy_graph = lazy.stats();
  return result;
}

}  // namespace lazymc::mc
