#include "mc/neighbor_search.hpp"

#include <algorithm>
#include <bit>
#include <utility>
#include <variant>

#include "graph/subgraph.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"
#include "support/wordops.hpp"

namespace lazymc::mc {
namespace {

std::uint64_t to_ns(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Extracts the dense subgraph induced by `members` (relabelled ids,
/// sorted ascending) into the pooled `out`, using the lazy graph's
/// membership structures rather than the base CSR: this honours
/// construction-time filtering and builds neighborhoods only for the few
/// vertices that reach a detailed search.
///
/// Rows backed by a bitset are filled word-wise: the members' own word
/// form (scratch.a_words) is ANDed against the row by the dispatched
/// gather_and primitive (SIMD tier permitting) into scratch.and_words,
/// and each surviving bit is mapped back to its local index with a
/// monotone cursor (hits and members share the ascending relabelled
/// order).  Rows without a bitset fall back to per-pair membership
/// probes.
void induce_from_lazy(LazyGraph& h, const std::vector<VertexId>& members,
                      DenseSubgraph& out, SearchScratch& scratch,
                      SearchStats& stats) {
  const std::size_t n = members.size();
  out.reset_pooled(n);
  out.vertices.assign(members.begin(), members.end());
  EdgeId m = 0;
  bool words_ready = (h.bitset_enabled() || h.hybrid_enabled()) && n >= 2;
  if (words_ready) {
    try {
      scratch.a_words.build({members.data(), members.size()}, h.zone_begin());
      scratch.and_words.resize(scratch.a_words.num_entries());
    } catch (const std::bad_alloc&) {
      // Degrade this extraction to per-pair membership probes; the word
      // form is a pure accelerator, never the only copy of the data.
      words_ready = false;
      stats.degraded_wordsets.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const VertexId zone_begin = h.zone_begin();
  const wordops::Table& ops = wordops::active();
  for (std::size_t i = 0; i < n; ++i) {
    NeighborhoodView view = h.membership(members[i]);
    if (words_ready && (view.has_bitset() || view.has_hybrid())) {
      // Only offsets strictly above members[i] (locals j > i).
      const VertexId off_i = members[i] - zone_begin;
      const std::uint32_t first_word = off_i >> 6;
      const std::uint64_t first_mask = ~((2ULL << (off_i & 63)) - 1);
      const std::span<const std::uint32_t> idx = scratch.a_words.indices();
      const std::span<const std::uint64_t> bits = scratch.a_words.bits();
      const std::size_t start = static_cast<std::size_t>(
          std::lower_bound(idx.begin(), idx.end(), first_word) - idx.begin());
      const std::size_t cnt = idx.size() - start;
      std::uint64_t* hit_words = scratch.and_words.data();
      // The dense containers (plain bitset row, hybrid bitset kind) feed
      // the gather-AND primitive; array/run containers produce B's words
      // through their ascending cursors instead.
      const std::uint64_t* row_words =
          view.has_bitset() ? view.bitset().words
                            : (view.hybrid().kind == RowContainer::kBitset
                                   ? view.hybrid().data
                                   : nullptr);
      if (row_words != nullptr) {
        ops.gather_and(hit_words, bits.data() + start, idx.data() + start,
                       row_words, cnt);
      } else {
        hybrid_detail::HybridWordCursor cur(view.hybrid());
        for (std::size_t e = 0; e < cnt; ++e) {
          hit_words[e] = bits[start + e] & cur.word(idx[start + e]);
        }
      }
      if (cnt > 0 && idx[start] == first_word) hit_words[0] &= first_mask;
      std::size_t j = i + 1;
      for (std::size_t e = 0; e < cnt; ++e) {
        std::uint64_t hits = hit_words[e];
        const VertexId word_base =
            zone_begin + (static_cast<VertexId>(idx[start + e]) << 6);
        while (hits) {
          const unsigned bit =
              static_cast<unsigned>(std::countr_zero(hits));
          const VertexId u = word_base + bit;
          while (members[j] < u) ++j;  // monotone: hits ⊆ members, ascending
          out.adj[i].set(j);
          out.adj[j].set(i);
          ++m;
          hits &= hits - 1;
        }
      }
    } else {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (view.contains(members[j])) {
          out.adj[i].set(j);
          out.adj[j].set(i);
          ++m;
        }
      }
    }
  }
  out.num_edges = m;
}

/// One unit of systematic-search work: the vertices [begin, end) of a
/// single coreness level (so the whole chunk dies together when the
/// incumbent outgrows `coreness` by claim time).
struct LevelChunk {
  VertexId begin = 0;
  VertexId end = 0;
  VertexId coreness = 0;
};

/// BBSplitHook that carves accepted frames into SubproblemTasks for a
/// SubproblemSink.  Probe-root mode materializes the SharedSubproblem
/// (one subgraph copy + publish maps) lazily on the first accepted offer;
/// task mode re-splits against the already-shared subproblem.  Not
/// thread-safe — one instance per solve, on the solving thread's stack.
class SplitHook final : public BBSplitHook {
 public:
  /// Probe-root mode: `sub` is the pooled extraction for relabelled
  /// vertex `head` (must outlive the solve).
  SplitHook(SubproblemSink* sink, const NeighborSearchOptions& options,
            SearchStats& stats, const LazyGraph& h, VertexId head,
            const DenseSubgraph& sub)
      : sink_(sink), options_(options), stats_(stats), h_(&h), head_(head),
        sub_(&sub), density_(sub.density()) {}

  /// Task mode: re-splitting a claimed task of generation `parent_depth`.
  SplitHook(SubproblemSink* sink, const NeighborSearchOptions& options,
            SearchStats& stats,
            std::shared_ptr<const SharedSubproblem> shared,
            std::uint32_t parent_depth)
      : sink_(sink), options_(options), stats_(stats),
        density_(shared->graph.density()), shared_(std::move(shared)),
        parent_depth_(parent_depth) {}

  bool offer(std::span<const VertexId> prefix,
             const DynamicBitset& candidates, VertexId potential) override {
    // Sticky acceptance: branches arrive biggest-first (reverse color
    // order), so the first branch decides whether this root is worth
    // decomposing.  Once it is, *every* remaining branch becomes a task —
    // solving the small tail inline here would run it against the weak
    // pre-split bound, whereas as queued tasks the big frames complete
    // first and the claim-time incumbent check retires the tail for the
    // cost of one comparison.  The cap is a runaway guard only.
    if (degraded_) return false;
    if (!sticky_ && !frame_accepted(candidates.count())) return false;
    if (accepts_left_ == 0) return false;
    try {
      LAZYMC_FAULT_BAD_ALLOC("task.materialize");
      if (!shared_) materialize();
      SubproblemTask task;
      task.shared = shared_;
      task.prefix.assign(prefix.begin(), prefix.end());
      task.candidates = candidates;
      task.upper_bound = potential + 1;  // + the head vertex
      task.depth = parent_depth_ + 1;
      buffer_.push_back(std::move(task));
    } catch (const std::bad_alloc&) {
      // Declining the offer keeps the B&B correct — the solver recurses
      // into the frame inline; we just lose the steal.  Stop offering for
      // this solve so a solver that already split keeps its frames local.
      degraded_ = true;
      stats_.degraded_splits.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    sticky_ = true;
    --accepts_left_;
    stats_.split_tasks.fetch_add(1, std::memory_order_relaxed);
    atomic_max(stats_.max_split_depth, parent_depth_ + 1);
    return true;
  }

  /// Hands the buffered tasks to the sink, smallest frame first — the
  /// sink front-pushes, so the shard ends up claiming biggest-first,
  /// preserving the solver's reverse-color-order pruning discipline.
  /// Call once the solve that produced the frames has returned.
  void flush() {
    for (std::size_t i = buffer_.size(); i-- > 0;) {
      sink_->submit(std::move(buffer_[i]));
    }
    buffer_.clear();
  }

 private:
  /// Split-work estimation: with split_min_work set, gate on candidates x
  /// subproblem density (the branching mass the B&B faces) rather than
  /// the raw count; a frame big enough for the old count rule that the
  /// estimate rejects is counted, so sweeps can see the gate working.
  bool frame_accepted(std::size_t cands) {
    if (options_.split_min_work == 0) {
      return cands >= options_.split_min_cands;
    }
    const bool accept =
        static_cast<double>(cands) * density_ >=
        static_cast<double>(options_.split_min_work);
    if (!accept && cands >= options_.split_min_cands) {
      stats_.split_work_rejected.fetch_add(1, std::memory_order_relaxed);
    }
    return accept;
  }

  void materialize() {
    const std::size_t n = sub_->size();
    const auto& new_to_orig = h_->order().new_to_orig;
    auto sp = std::make_shared<SharedSubproblem>();
    sp->graph.vertices = sub_->vertices;
    // The pooled extraction may hold stale rows past n; copy only [0, n).
    sp->graph.adj.assign(sub_->adj.begin(),
                         sub_->adj.begin() + static_cast<std::ptrdiff_t>(n));
    sp->graph.num_edges = sub_->num_edges;
    sp->orig_of_local.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sp->orig_of_local[i] = new_to_orig[sub_->vertices[i]];
    }
    sp->head_orig = new_to_orig[head_];
    shared_ = std::move(sp);
  }

  SubproblemSink* sink_;
  const NeighborSearchOptions& options_;
  SearchStats& stats_;
  const LazyGraph* h_ = nullptr;
  VertexId head_ = 0;
  const DenseSubgraph* sub_ = nullptr;
  double density_ = 0;  // of the (shared) subproblem, for the work estimate
  std::shared_ptr<const SharedSubproblem> shared_;
  std::uint32_t parent_depth_ = 0;
  bool sticky_ = false;
  bool degraded_ = false;  // a materialization failed; solve inline
  std::size_t accepts_left_ = 4096;
  std::vector<SubproblemTask> buffer_;
};

}  // namespace

void neighbor_search(LazyGraph& h, VertexId v, Incumbent& incumbent,
                     const NeighborSearchOptions& options, SearchStats& stats,
                     SearchScratch& scratch, SubproblemSink* sink) {
  WallTimer timer;
  stats.evaluated.fetch_add(1, std::memory_order_relaxed);

  const auto& order = h.order();
  auto publish = [&](VertexId head, const std::vector<VertexId>& local,
                     const std::vector<VertexId>& local_to_relabelled) {
    // Improving cliques are rare; this staging buffer is the only path
    // that may allocate in steady state, and only while the incumbent is
    // still growing.
    std::vector<VertexId>& orig = scratch.clique;
    orig.clear();
    orig.push_back(order.new_to_orig[head]);
    for (VertexId u : local) {
      orig.push_back(order.new_to_orig[local_to_relabelled[u]]);
    }
    incumbent.offer(orig);
  };

  // ---- filter 1: coreness (Algorithm 8 line 2) -------------------------
  VertexId bound = incumbent.size();
  std::vector<VertexId>& n_set = scratch.n_set;
  n_set.clear();
  {
    auto right = h.right_neighborhood(v);
    n_set.reserve(right.size());
    for (VertexId u : right) {
      if (h.coreness(u) >= bound) n_set.push_back(u);
    }
  }
  if (n_set.size() < bound) {
    stats.filter_ns.fetch_add(to_ns(timer.elapsed()),
                              std::memory_order_relaxed);
    return;
  }
  stats.pass_filter1.fetch_add(1, std::memory_order_relaxed);

  // ---- filter 2: induced degree, boolean test (lines 4-7) --------------
  // The word form of n_set feeds the bitset kernels whenever a candidate's
  // membership view carries a bitset row (n_set ⊆ zone: every survivor of
  // filter 1 has coreness >= bound >= the bound when rows were enabled).
  // A failed word-form build degrades the round to scalar kernels (the
  // word set is an accelerator; membership views answer without it).
  bool zone_kernels = h.bitset_enabled() || h.hybrid_enabled();
  auto build_words = [&](std::span<const VertexId> span)
      -> const SparseWordSet* {
    if (!zone_kernels) return nullptr;
    try {
      scratch.a_words.build(span, h.zone_begin());
      return &scratch.a_words;
    } catch (const std::bad_alloc&) {
      zone_kernels = false;
      stats.degraded_wordsets.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  };
  std::vector<VertexId>& kept = scratch.kept;
  {
    kept.clear();
    kept.reserve(n_set.size());
    std::span<const VertexId> n_span(n_set);
    const SparseWordSet* a_words = build_words(n_span);
    std::int64_t theta = static_cast<std::int64_t>(bound) - 2;
    for (VertexId u : n_set) {
      NeighborhoodView u_nbrs = h.membership(u);
      if (options.intersect.size_gt_bool(n_span, u_nbrs, theta, a_words)) {
        kept.push_back(u);
      }
    }
    std::swap(n_set, kept);
  }
  if (n_set.size() < bound) {
    stats.filter_ns.fetch_add(to_ns(timer.elapsed()),
                              std::memory_order_relaxed);
    return;
  }
  stats.pass_filter2.fetch_add(1, std::memory_order_relaxed);

  // ---- filter 3: induced degree, exact sizes + edge estimate (8-13) ----
  // Repeated up to degree_filter_rounds-1 times (the boolean pass above
  // was round 1): removing a vertex lowers the others' induced degrees,
  // so later rounds can remove more.  Stops at a fixpoint.
  double m_hat = 0;
  const unsigned extra_rounds =
      options.degree_filter_rounds > 1 ? options.degree_filter_rounds - 1 : 1;
  for (unsigned round = 0; round < extra_rounds; ++round) {
    m_hat = 0;
    kept.clear();
    kept.reserve(n_set.size());
    std::span<const VertexId> n_span(n_set);
    const SparseWordSet* a_words = build_words(n_span);
    std::int64_t theta = static_cast<std::int64_t>(bound) - 2;
    for (VertexId u : n_set) {
      NeighborhoodView u_nbrs = h.membership(u);
      int d = options.intersect.size_gt_val(n_span, u_nbrs, theta, a_words);
      if (d != kTooSmall) {
        kept.push_back(u);
        m_hat += d;
      }
    }
    bool fixpoint = kept.size() == n_set.size();
    std::swap(n_set, kept);
    if (n_set.size() < bound) {
      stats.filter_ns.fetch_add(to_ns(timer.elapsed()),
                                std::memory_order_relaxed);
      return;
    }
    if (fixpoint) break;
  }
  stats.pass_filter3.fetch_add(1, std::memory_order_relaxed);

  // ---- algorithmic choice (lines 14-17) ---------------------------------
  DenseSubgraph& sub = scratch.sub;
  induce_from_lazy(h, n_set, sub, scratch, stats);
  // m̂/(n(n-1)) is the paper's pre-extraction estimate (m̂ sums directed
  // degrees, so it is ~2m̂_edges); the default uses the extracted
  // subgraph's exact density, which is available at no extra cost and
  // keeps the phi scale meaningful ([0,1]).
  double density = sub.density();
  if (options.pre_extraction_density && n_set.size() >= 2) {
    const double nn = static_cast<double>(n_set.size());
    density = m_hat / (nn * (nn - 1.0));
  }
  stats.filter_ns.fetch_add(to_ns(timer.lap()), std::memory_order_relaxed);

  // A clique K in G[N] with |K| > |C*| - 1 yields {v} ∪ K with size > |C*|.
  const VertexId sub_bound = bound > 0 ? bound - 1 : 0;

  if (options.color_prune && sub.size() > 0) {
    // chi(G[N]) bounds any clique inside G[N]; chi <= sub_bound means no
    // improving clique passes through v.
    WallTimer color_timer;
    DynamicBitset& all = scratch.all;
    all.reinit(sub.size());
    for (std::size_t i = 0; i < sub.size(); ++i) all.set(i);
    VertexId chi = greedy_color_count(sub, all, scratch.color);
    stats.filter_ns.fetch_add(to_ns(color_timer.elapsed()),
                              std::memory_order_relaxed);
    if (chi <= sub_bound) return;
  }

  bool solved = false;
  if (density > options.density_threshold) {
    std::uint64_t budget =
        options.vc_node_budget_per_vertex == 0
            ? 0
            : options.vc_node_budget_per_vertex * (sub.size() + 1);
    vc::McViaVcResult r = vc::max_clique_via_vc(
        sub, sub_bound, options.control, budget, &scratch.vc,
        &incumbent.size_atomic(), /*live_bound_offset=*/1);
    stats.vc_ns.fetch_add(to_ns(timer.lap()), std::memory_order_relaxed);
    stats.vc_nodes.fetch_add(r.nodes, std::memory_order_relaxed);
    if (r.budget_exhausted) {
      // Misprediction: fall through to the MC solver below.
      stats.vc_fallbacks.fetch_add(1, std::memory_order_relaxed);
    } else {
      solved = true;
      stats.solved_vc.fetch_add(1, std::memory_order_relaxed);
      if (!r.clique.empty()) publish(v, r.clique, sub.vertices);
    }
  }
  if (!solved) {
    BBOptions bb;
    bb.lower_bound = sub_bound;
    bb.control = options.control;
    // Concurrently discovered cliques tighten this solve too; the head
    // vertex contributes 1, so the local bound is the incumbent minus 1.
    bb.live_bound = &incumbent.size_atomic();
    bb.live_bound_offset = 1;
    SplitHook hook(sink, options, stats, h, v, sub);
    // Root frames can hold at most sub.size() candidates, so when even
    // that fails the active acceptance rule no offer could succeed and
    // the hook is not installed at all.
    const bool any_frame_may_split =
        options.split_min_work > 0
            ? static_cast<double>(sub.size()) * sub.density() >=
                  static_cast<double>(options.split_min_work)
            : sub.size() >= options.split_min_cands;
    const bool split_wanted = sink != nullptr &&
                              options.split_mode != SplitMode::kOff &&
                              options.split_depth > 0;
    if (split_wanted && any_frame_may_split) {
      bb.split = &hook;
    } else if (split_wanted && options.split_min_work > 0 &&
               sub.size() >= options.split_min_cands) {
      // The count rule would have engaged the hook; the estimate said the
      // whole subproblem is too sparse to be worth carving.
      stats.split_work_rejected.fetch_add(1, std::memory_order_relaxed);
    }
    BBResult r = solve_mc_dense(sub, bb, scratch.mc);
    hook.flush();
    stats.mc_ns.fetch_add(to_ns(timer.lap()), std::memory_order_relaxed);
    stats.mc_nodes.fetch_add(r.nodes, std::memory_order_relaxed);
    stats.solved_mc.fetch_add(1, std::memory_order_relaxed);
    if (!r.clique.empty()) publish(v, r.clique, sub.vertices);
  }
}

bool run_subproblem_task(const SubproblemTask& task, Incumbent& incumbent,
                         const NeighborSearchOptions& options,
                         SearchStats& stats, SearchScratch& scratch,
                         SubproblemSink* sink) {
  // Claim-time incumbent re-check: the coloring bound recorded at split
  // time caps anything this frame can produce, so a bound raised anywhere
  // since then retires the task without coloring a single node.
  if (task.upper_bound <= incumbent.size()) {
    stats.retired_subtasks.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  WallTimer timer;
  const VertexId inc = incumbent.size();
  BBOptions bb;
  bb.lower_bound = inc > 0 ? inc - 1 : 0;
  bb.live_bound = &incumbent.size_atomic();
  bb.live_bound_offset = 1;
  bb.control = options.control;
  SplitHook hook(sink, options, stats, task.shared, task.depth);
  if (sink != nullptr && options.split_mode != SplitMode::kOff &&
      task.depth < options.split_depth) {
    bb.split = &hook;
  }
  BBResult r = solve_mc_dense_rooted(task.shared->graph, task.prefix,
                                     task.candidates, bb, scratch.mc);
  hook.flush();
  stats.mc_ns.fetch_add(to_ns(timer.elapsed()), std::memory_order_relaxed);
  stats.mc_nodes.fetch_add(r.nodes, std::memory_order_relaxed);
  if (!r.clique.empty()) {
    std::vector<VertexId>& orig = scratch.clique;
    orig.clear();
    orig.push_back(task.shared->head_orig);
    for (VertexId u : r.clique) {
      orig.push_back(task.shared->orig_of_local[u]);
    }
    incumbent.offer(orig);
  }
  return true;
}

namespace {

/// A unit of the unified drain: either a probe chunk or a stealable B&B
/// frame, coexisting in the one sharded queue.
using WorkItem = std::variant<LevelChunk, SubproblemTask>;

/// Routes carved tasks onto the executing participant's shard of the
/// shared queue, counting them into the TaskGroup *before* they become
/// visible (see TaskGroup's contract).
class QueueSink final : public SubproblemSink {
 public:
  void init(WorkQueue<WorkItem>* queue, TaskGroup* group,
            std::size_t shard) {
    queue_ = queue;
    group_ = group;
    shard_ = shard;
  }
  void submit(SubproblemTask task) override {
    group_->add(1);
    // Front of the shard: tasks are depth-first work — claiming them
    // before older probe chunks reproduces the sequential search order
    // (the giant subproblem's result prunes the breadth that follows),
    // while thieves still steal the cheap chunks off the back.
    queue_->push_front(shard_, WorkItem(std::move(task)));
  }

 private:
  WorkQueue<WorkItem>* queue_ = nullptr;
  TaskGroup* group_ = nullptr;
  std::size_t shard_ = 0;
};

}  // namespace

void systematic_search(LazyGraph& h, Incumbent& incumbent,
                       const NeighborSearchOptions& options,
                       SearchStats& stats) {
  const VertexId n = h.num_vertices();
  if (n == 0) return;

  // Level boundaries: vertices are sorted by ascending coreness, so each
  // coreness level is a contiguous range of relabelled ids.
  VertexId degeneracy = 0;
  for (VertexId v = 0; v < n; ++v) degeneracy = std::max(degeneracy, h.coreness(v));
  std::vector<VertexId> level_start(static_cast<std::size_t>(degeneracy) + 2,
                                    kInvalidVertex);
  for (VertexId v = n; v-- > 0;) level_start[h.coreness(v)] = v;
  // Fill gaps: empty levels point at the next non-empty one.
  VertexId next_start = n;
  std::vector<VertexId> level_begin(degeneracy + 2, n);
  for (std::size_t k = degeneracy + 2; k-- > 0;) {
    if (k <= degeneracy && level_start[k] != kInvalidVertex) {
      next_start = level_start[k];
    }
    level_begin[k] = next_start;
  }
  auto level_range = [&](VertexId k) {
    VertexId begin = level_begin[k];
    VertexId end = k + 1 <= degeneracy + 1 ? level_begin[k + 1] : n;
    return std::pair<VertexId, VertexId>(begin, end);
  };

  // ---- build the global worklist, highest priority first ---------------
  // Probes first (one vertex per level, |C*| .. degeneracy — Algorithm
  // 7's phase A, here just the head of the worklist so every participant
  // starts on one), then whole levels from high to low coreness, each
  // split into chunks small enough to balance.  Level lo-vertices whose
  // level dies later are retired wholesale at claim time.
  const std::size_t participants = thread_pool().num_threads();
  const VertexId lo = incumbent.size();
  std::vector<LevelChunk> worklist;
  std::vector<char> is_probe(n, 0);
  for (VertexId k = lo; k <= degeneracy; ++k) {
    auto [begin, end] = level_range(k);
    if (begin < end && h.coreness(begin) == k) {
      worklist.push_back({begin, static_cast<VertexId>(begin + 1), k});
      is_probe[begin] = 1;
    }
  }
  for (VertexId k = degeneracy + 1; k-- > lo;) {
    auto [begin, end] = level_range(k);
    // The level's first vertex is already enqueued as its probe chunk.
    if (begin < end && is_probe[begin]) ++begin;
    if (begin >= end) continue;
    const std::size_t level_size = end - begin;
    std::size_t chunk = (level_size + 4 * participants - 1) /
                        (4 * participants);
    chunk = std::clamp<std::size_t>(chunk, 1, 64);
    for (VertexId b = begin; b < end; b = static_cast<VertexId>(b + chunk)) {
      VertexId e = static_cast<VertexId>(
          std::min<std::size_t>(end, static_cast<std::size_t>(b) + chunk));
      worklist.push_back({b, e, k});
    }
  }

  // Deal round-robin so each shard holds a descending-priority run and
  // the first pops everywhere are probes / high-coreness chunks.  Every
  // initial chunk is counted into the task group before it is pushed;
  // subproblem tasks spawned mid-drain join the same accounting.
  WorkQueue<WorkItem> queue(participants);
  TaskGroup group;
  group.add(worklist.size());
  for (std::size_t p = 0; p < participants; ++p) {
    std::vector<WorkItem> batch;
    batch.reserve(worklist.size() / participants + 1);
    for (std::size_t i = p; i < worklist.size(); i += participants) {
      batch.push_back(worklist[i]);
    }
    queue.push_batch(p, batch.begin(), batch.end());
  }

  // Subproblem splitting: kAuto only pays the task overhead when there is
  // someone to steal (kOn forces the queue path even single-threaded, so
  // determinism tests cover it).
  const bool split_enabled =
      options.split_depth > 0 &&
      (options.split_mode == SplitMode::kOn ||
       (options.split_mode == SplitMode::kAuto && participants > 1));
  std::vector<QueueSink> sinks(participants);
  for (std::size_t p = 0; p < participants; ++p) {
    sinks[p].init(&queue, &group, p);
  }

  // ---- drain: no barriers, incumbent re-checked at claim time ----------
  // Probe chunks and subproblem tasks interleave in one loop; the drain
  // ends when the TaskGroup says everything ever enqueued completed.
  std::vector<SearchScratch> scratch(participants);
  try {
    drain_queue(
      thread_pool(), queue, group,
      [&](std::size_t p, WorkItem& item) {
        LAZYMC_FAULT_THROW("worker.exec");
        SearchScratch& mine = scratch[p];
        SubproblemSink* sink = split_enabled ? &sinks[p] : nullptr;
        if (LevelChunk* c = std::get_if<LevelChunk>(&item)) {
          const VertexId bound = incumbent.size();
          if (c->coreness < bound) {
            stats.retired_chunks.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          for (VertexId v = c->begin; v < c->end; ++v) {
            if (options.control && options.control->cancelled()) break;
            if (h.coreness(v) >= incumbent.size()) {
              neighbor_search(h, v, incumbent, options, stats, mine, sink);
            }
          }
        } else {
          run_subproblem_task(std::get<SubproblemTask>(item), incumbent,
                              options, stats, mine, sink);
        }
      },
      [&] { return options.control && options.control->cancelled(); });
  } catch (...) {
    // A worker exception (injected or real) must not strand the rest of
    // the pool: cancelling the shared control makes every cooperative
    // check — and drain_queue's own stop predicate — wind down, the
    // TaskGroup abort path drains the queue, and only then does the
    // error resurface to the caller (the CLI reports it structured).
    // All per-solve state (scratch arenas, queue, sinks) unwinds here,
    // so the pool and a fresh solve are immediately usable again.
    if (options.control) options.control->cancel();
    throw;
  }
}

}  // namespace lazymc::mc
