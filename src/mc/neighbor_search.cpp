#include "mc/neighbor_search.hpp"

#include <algorithm>

#include "graph/subgraph.hpp"
#include "mc/greedy_color.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"
#include "vc/mc_via_vc.hpp"

namespace lazymc::mc {
namespace {

std::uint64_t to_ns(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

/// Extracts the dense subgraph induced by `members` (relabelled ids) using
/// the lazy graph's membership structures rather than the base CSR: this
/// honours construction-time filtering and builds hash sets only for the
/// few vertices that reach a detailed search.
DenseSubgraph induce_from_lazy(LazyGraph& h,
                               const std::vector<VertexId>& members) {
  DenseSubgraph s;
  s.vertices = members;
  const std::size_t n = members.size();
  s.adj.assign(n, DynamicBitset(n));
  EdgeId m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    NeighborhoodView view = h.membership(members[i]);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (view.contains(members[j])) {
        s.adj[i].set(j);
        s.adj[j].set(i);
        ++m;
      }
    }
  }
  s.num_edges = m;
  return s;
}

}  // namespace

void neighbor_search(LazyGraph& h, VertexId v, Incumbent& incumbent,
                     const NeighborSearchOptions& options,
                     SearchStats& stats) {
  WallTimer timer;
  stats.evaluated.fetch_add(1, std::memory_order_relaxed);

  const auto& order = h.order();
  auto publish = [&](const std::vector<VertexId>& relabelled_clique) {
    std::vector<VertexId> orig;
    orig.reserve(relabelled_clique.size());
    for (VertexId u : relabelled_clique) orig.push_back(order.new_to_orig[u]);
    incumbent.offer(orig);
  };

  // ---- filter 1: coreness (Algorithm 8 line 2) -------------------------
  VertexId bound = incumbent.size();
  std::vector<VertexId> n_set;
  {
    auto right = h.right_neighborhood(v);
    n_set.reserve(right.size());
    for (VertexId u : right) {
      if (h.coreness(u) >= bound) n_set.push_back(u);
    }
  }
  if (n_set.size() < bound) {
    stats.filter_ns.fetch_add(to_ns(timer.elapsed()),
                              std::memory_order_relaxed);
    return;
  }
  stats.pass_filter1.fetch_add(1, std::memory_order_relaxed);

  // ---- filter 2: induced degree, boolean test (lines 4-7) --------------
  {
    std::vector<VertexId> kept;
    kept.reserve(n_set.size());
    std::span<const VertexId> n_span(n_set);
    std::int64_t theta = static_cast<std::int64_t>(bound) - 2;
    for (VertexId u : n_set) {
      NeighborhoodView u_nbrs = h.membership(u);
      if (options.intersect.size_gt_bool(n_span, u_nbrs, theta)) {
        kept.push_back(u);
      }
    }
    n_set = std::move(kept);
  }
  if (n_set.size() < bound) {
    stats.filter_ns.fetch_add(to_ns(timer.elapsed()),
                              std::memory_order_relaxed);
    return;
  }
  stats.pass_filter2.fetch_add(1, std::memory_order_relaxed);

  // ---- filter 3: induced degree, exact sizes + edge estimate (8-13) ----
  // Repeated up to degree_filter_rounds-1 times (the boolean pass above
  // was round 1): removing a vertex lowers the others' induced degrees,
  // so later rounds can remove more.  Stops at a fixpoint.
  double m_hat = 0;
  const unsigned extra_rounds =
      options.degree_filter_rounds > 1 ? options.degree_filter_rounds - 1 : 1;
  for (unsigned round = 0; round < extra_rounds; ++round) {
    m_hat = 0;
    std::vector<VertexId> kept;
    kept.reserve(n_set.size());
    std::span<const VertexId> n_span(n_set);
    std::int64_t theta = static_cast<std::int64_t>(bound) - 2;
    for (VertexId u : n_set) {
      NeighborhoodView u_nbrs = h.membership(u);
      int d = options.intersect.size_gt_val(n_span, u_nbrs, theta);
      if (d != kTooSmall) {
        kept.push_back(u);
        m_hat += d;
      }
    }
    bool fixpoint = kept.size() == n_set.size();
    n_set = std::move(kept);
    if (n_set.size() < bound) {
      stats.filter_ns.fetch_add(to_ns(timer.elapsed()),
                                std::memory_order_relaxed);
      return;
    }
    if (fixpoint) break;
  }
  stats.pass_filter3.fetch_add(1, std::memory_order_relaxed);

  // ---- algorithmic choice (lines 14-17) ---------------------------------
  // m_hat/(n(n-1)) is the paper's pre-extraction estimate; since the dense
  // subgraph is materialized for either solver anyway, the exact density is
  // available at no extra cost and keeps the phi scale meaningful ([0,1]).
  (void)m_hat;
  DenseSubgraph sub = induce_from_lazy(h, n_set);
  const double density = sub.density();
  stats.filter_ns.fetch_add(to_ns(timer.lap()), std::memory_order_relaxed);

  // A clique K in G[N] with |K| > |C*| - 1 yields {v} ∪ K with size > |C*|.
  const VertexId sub_bound = bound > 0 ? bound - 1 : 0;

  if (options.color_prune && sub.size() > 0) {
    // chi(G[N]) bounds any clique inside G[N]; chi <= sub_bound means no
    // improving clique passes through v.
    WallTimer color_timer;
    DynamicBitset all(sub.size());
    for (std::size_t i = 0; i < sub.size(); ++i) all.set(i);
    VertexId chi = greedy_color_count(sub, all);
    stats.filter_ns.fetch_add(to_ns(color_timer.elapsed()),
                              std::memory_order_relaxed);
    if (chi <= sub_bound) return;
  }

  bool solved = false;
  if (density > options.density_threshold) {
    std::uint64_t budget =
        options.vc_node_budget_per_vertex == 0
            ? 0
            : options.vc_node_budget_per_vertex * (sub.size() + 1);
    vc::McViaVcResult r =
        vc::max_clique_via_vc(sub, sub_bound, options.control, budget);
    stats.vc_ns.fetch_add(to_ns(timer.lap()), std::memory_order_relaxed);
    stats.vc_nodes.fetch_add(r.nodes, std::memory_order_relaxed);
    if (r.budget_exhausted) {
      // Misprediction: fall through to the MC solver below.
      stats.vc_fallbacks.fetch_add(1, std::memory_order_relaxed);
    } else {
      solved = true;
      stats.solved_vc.fetch_add(1, std::memory_order_relaxed);
      if (!r.clique.empty()) {
        std::vector<VertexId> clique{v};
        for (VertexId local : r.clique) clique.push_back(sub.vertices[local]);
        publish(clique);
      }
    }
  }
  if (!solved) {
    BBOptions bb;
    bb.lower_bound = sub_bound;
    bb.control = options.control;
    BBResult r = solve_mc_dense(sub, bb);
    stats.mc_ns.fetch_add(to_ns(timer.lap()), std::memory_order_relaxed);
    stats.mc_nodes.fetch_add(r.nodes, std::memory_order_relaxed);
    stats.solved_mc.fetch_add(1, std::memory_order_relaxed);
    if (!r.clique.empty()) {
      std::vector<VertexId> clique{v};
      for (VertexId local : r.clique) clique.push_back(sub.vertices[local]);
      publish(clique);
    }
  }
}

void systematic_search(LazyGraph& h, Incumbent& incumbent,
                       const NeighborSearchOptions& options,
                       SearchStats& stats) {
  const VertexId n = h.num_vertices();
  if (n == 0) return;

  // Level boundaries: vertices are sorted by ascending coreness, so each
  // coreness level is a contiguous range of relabelled ids.
  VertexId degeneracy = 0;
  for (VertexId v = 0; v < n; ++v) degeneracy = std::max(degeneracy, h.coreness(v));
  std::vector<VertexId> level_start(static_cast<std::size_t>(degeneracy) + 2,
                                    kInvalidVertex);
  for (VertexId v = n; v-- > 0;) level_start[h.coreness(v)] = v;
  // Fill gaps: empty levels point at the next non-empty one.
  VertexId next_start = n;
  std::vector<VertexId> level_begin(degeneracy + 2, n);
  for (std::size_t k = degeneracy + 2; k-- > 0;) {
    if (k <= degeneracy && level_start[k] != kInvalidVertex) {
      next_start = level_start[k];
    }
    level_begin[k] = next_start;
  }
  auto level_range = [&](VertexId k) {
    VertexId begin = level_begin[k];
    VertexId end = k + 1 <= degeneracy + 1 ? level_begin[k + 1] : n;
    return std::pair<VertexId, VertexId>(begin, end);
  };

  std::vector<char> probed(n, 0);

  // ---- phase A: one probe per level, |C*| .. degeneracy+1 --------------
  {
    VertexId lo = incumbent.size();
    std::vector<VertexId> probes;
    for (VertexId k = lo; k <= degeneracy; ++k) {
      auto [begin, end] = level_range(k);
      if (begin < end && h.coreness(begin) == k) {
        probes.push_back(begin);
      }
    }
    parallel_for(0, probes.size(), [&](std::size_t i) {
      VertexId v = probes[i];
      probed[v] = 1;
      if (options.control && options.control->cancelled()) return;
      if (h.coreness(v) >= incumbent.size()) {
        neighbor_search(h, v, incumbent, options, stats);
      }
    }, 1);
  }

  // ---- phase B: all levels, high to low ---------------------------------
  for (VertexId k = degeneracy + 1; k-- > 0;) {
    if (k < incumbent.size()) break;  // levels below |C*| cannot help
    auto [begin, end] = level_range(k);
    if (begin >= end) continue;
    parallel_for(begin, end, [&](std::size_t i) {
      VertexId v = static_cast<VertexId>(i);
      if (probed[v]) return;
      if (options.control && options.control->cancelled()) return;
      if (h.coreness(v) >= incumbent.size()) {
        neighbor_search(h, v, incumbent, options, stats);
      }
    }, 1);
  }
}

}  // namespace lazymc::mc
