// LazyMC — the paper's maximum clique algorithm (Algorithm 1).
//
//   1. degree-based heuristic search on the raw graph;
//   2. coreness restricted to vertices with degree >= |C*| (KCore(G,|C*|));
//   3. (coreness, degree) vertex order via counting sorts;
//   4. lazy filtered hashed relabelled graph, optionally prepopulating the
//      must subgraph;
//   5. coreness-based heuristic search on the lazy graph;
//   6. systematic search with advance filtering and algorithmic choice.
//
// The result carries the full instrumentation needed to regenerate the
// paper's Figures 2-7 and Table III.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "lazygraph/lazy_graph.hpp"
#include "mc/neighbor_search.hpp"
#include "support/control.hpp"
#include "support/simd.hpp"

namespace lazymc::mc {

/// Vertex-order strategy (Section IV-F).
enum class VertexOrderKind {
  /// (coreness asc, degree asc) via parallel counting sorts — LazyMC's
  /// order; works with the parallel k-core computation.
  kCorenessDegree,
  /// Matula–Beck peeling order from the *sequential* k-core computation.
  /// Guarantees right-neighborhoods <= coreness but serializes
  /// preprocessing (the paper notes all peeling-order MC algorithms are
  /// sequential).
  kPeeling,
};

/// Preprocessed inputs carried by a binary graph store
/// (store/binary_graph.hpp).  When a LazyMCConfig points at one, lazy_mc
/// consumes the stored (coreness, degree) order and exact coreness
/// instead of recomputing the k-core decomposition, and — when the
/// stored zone is compatible with the live incumbent — adopts the
/// stored packed rows zero-copy (LazyGraph::adopt_prebuilt_rows) so no
/// row is ever rebuilt into the slab arena.  Everything here is
/// borrowed: the pointers (and the mapping behind `rows`) must outlive
/// the solve.
struct PrebuiltGraph {
  const kcore::VertexOrder* order = nullptr;
  /// Exact coreness by original vertex id (lower bound 0, so it is valid
  /// for any incumbent the heuristics produce).
  const std::vector<VertexId>* coreness = nullptr;
  VertexId degeneracy = 0;
  PrebuiltRows rows{};
};

struct LazyMCConfig {
  /// Seeds for the degree-based heuristic search.
  VertexId heuristic_top_k = 16;
  /// Vertex-order strategy.
  VertexOrderKind vertex_order = VertexOrderKind::kCorenessDegree;
  /// When true, greedily color each surviving subgraph before dispatching
  /// a solver: chi(G[N]) bounds any clique in it, so chi <= |C*| - 1
  /// proves the neighborhood irrelevant without a search.  Off by default
  /// (the paper applies coloring inside the MC solver only).
  bool color_prune = false;
  /// Density threshold φ for algorithmic choice; see
  /// NeighborSearchOptions::density_threshold (swept by bench_fig6).
  double density_threshold = 0.60;
  /// Rounds of induced-degree filtering before a detailed search (paper
  /// default: 2); see NeighborSearchOptions::degree_filter_rounds.
  unsigned degree_filter_rounds = 2;
  /// k-VC misprediction budget; see
  /// NeighborSearchOptions::vc_node_budget_per_vertex (0 disables).
  std::uint64_t vc_node_budget_per_vertex = 2000;
  /// Prepopulation policy for the lazy graph (Fig. 4 ablation).
  Prepopulate prepopulate = Prepopulate::kMustSubgraph;
  /// Neighborhood representation the lazy graph builds on first use:
  /// kAuto (degree rule, bitset rows when cheap), or force kHash /
  /// kSorted / kBitset.  kHash and kSorted also disable bitset rows
  /// entirely ("bitset off" in ablations).
  NeighborhoodRep neighborhood_rep = NeighborhoodRep::kAuto;
  /// Memory budget for bitset rows over the zone of interest, in bytes;
  /// 0 disables the bitset representation.
  std::size_t bitset_budget_bytes = std::size_t{64} << 20;
  /// Hybrid-row container thresholds (kHybrid only).  A row goes to the
  /// sorted-array container when its in-zone degree is <= hybrid_array_max
  /// and the array is strictly smaller than the packed words; the run
  /// container wins only when it is at least hybrid_run_min_saving x
  /// smaller than the best dense alternative.
  std::uint32_t hybrid_array_max = 4096;
  double hybrid_run_min_saving = 2.0;
  /// Early-exit intersection toggles (Fig. 5 ablation).
  bool early_exit_intersections = true;
  bool second_exit = true;
  /// Route the MC-vs-VC choice on filter 3's pre-extraction edge estimate
  /// instead of the extracted subgraph's exact density (paper ordering).
  bool pre_extraction_density = false;
  /// Subproblem decomposition of oversized B&B roots onto the shared work
  /// queue; see NeighborSearchOptions::{split_mode,split_min_cands,
  /// split_depth}.
  SplitMode split_mode = SplitMode::kAuto;
  VertexId split_min_cands = 128;
  unsigned split_depth = 2;
  /// Split-work estimation: when > 0, frames are accepted on the work
  /// estimate candidates x subproblem density (>= this value) instead of
  /// the raw candidate count; 0 keeps the count-only rule.  See
  /// NeighborSearchOptions::split_min_work.
  std::uint64_t split_min_work = 0;
  /// Forces the SIMD kernel tier (scalar/avx2/avx512) for every word
  /// kernel during this solve; nullopt = auto (best tier the build and
  /// CPU support, or whatever simd::force_tier the caller set).  Forcing
  /// an unavailable tier makes lazy_mc throw.  The force is applied
  /// process-wide for the duration of the solve (necessarily so: all of
  /// the solve's pool workers must dispatch on the same tier) and the
  /// previous state is restored on return.  Corollary: concurrent
  /// lazy_mc calls must agree on kernel_tier (or leave it unset) —
  /// overlapping solves forcing different tiers corrupt each other's
  /// dispatch and the save/restore ordering.
  std::optional<simd::Tier> kernel_tier;
  /// Wall-clock limit in seconds (Table II uses 1800 in the paper).
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  /// Caller-owned request control.  When set, the solve observes *this*
  /// control for cancellation/deadline instead of constructing its own
  /// (time_limit_seconds is then ignored — the control carries the
  /// budget), and the caller keeps a handle to cancel the in-flight
  /// solve (watchdog, client abort, drain) and to classify how it ended
  /// (SolveControl::stop_cause()).  This is the per-request isolation
  /// seam the daemon multiplexes on: one control, one incumbent, one
  /// stats block per request, nothing shared but the pool.  Must outlive
  /// the lazy_mc call.
  SolveControl* control = nullptr;
  /// Preprocessing shipped by a binary graph store; nullptr = compute
  /// everything from scratch (the normal path).  Only honored when
  /// vertex_order == kCorenessDegree (the order the store serializes)
  /// and the sizes match the input graph; otherwise silently ignored —
  /// a solve never fails because a store was stale, it just recomputes.
  const PrebuiltGraph* prebuilt = nullptr;
};

/// Per-phase wall-clock seconds (Fig. 2 / Fig. 7 stacks).
struct PhaseTimes {
  double degree_heuristic = 0;
  double preprocessing = 0;   // k-core + ordering
  double must_subgraph = 0;   // prepopulation of the lazy graph
  double coreness_heuristic = 0;
  double systematic = 0;

  double total() const {
    return degree_heuristic + preprocessing + must_subgraph +
           coreness_heuristic + systematic;
  }
};

/// Plain-value copy of SearchStats (which is atomic and non-copyable).
struct SearchStatsSnapshot {
  std::uint64_t evaluated = 0;
  std::uint64_t pass_filter1 = 0;
  std::uint64_t pass_filter2 = 0;
  std::uint64_t pass_filter3 = 0;
  std::uint64_t solved_mc = 0;
  std::uint64_t solved_vc = 0;
  std::uint64_t vc_fallbacks = 0;
  std::uint64_t retired_chunks = 0;
  // Subproblem decomposition (two-level drain).
  std::uint64_t split_tasks = 0;
  std::uint64_t retired_subtasks = 0;
  std::uint64_t max_split_depth = 0;
  std::uint64_t split_work_rejected = 0;
  // Graceful degradation: recovered allocation failures (failure model).
  std::uint64_t degraded_wordsets = 0;
  std::uint64_t degraded_splits = 0;
  // Adaptive-dispatch kernel counts (KernelCounters snapshot).
  std::uint64_t kernel_merge = 0;
  std::uint64_t kernel_gallop = 0;
  std::uint64_t kernel_hash = 0;
  std::uint64_t kernel_hash_batched = 0;
  std::uint64_t kernel_bitset_probe = 0;
  std::uint64_t kernel_bitset_word = 0;
  // Hybrid-row container kernels (array word-cursor / run span-AND; the
  // hybrid bitset container counts under kernel_bitset_word).
  std::uint64_t kernel_array_gallop = 0;
  std::uint64_t kernel_run_and = 0;
  // bitset-word calls split by executing SIMD tier, plus the tier the
  // dispatcher had selected when the solve ran ("scalar"/"avx2"/"avx512").
  std::uint64_t kernel_word_scalar = 0;
  std::uint64_t kernel_word_avx2 = 0;
  std::uint64_t kernel_word_avx512 = 0;
  std::string simd_tier;
  double filter_seconds = 0;
  double mc_seconds = 0;
  double vc_seconds = 0;
  std::uint64_t mc_nodes = 0;
  std::uint64_t vc_nodes = 0;
  // Anytime behaviour: when each improving incumbent was installed,
  // measured from solver start.  time_to_first_solution is the first
  // entry's timestamp (0 when no solution was found).
  double time_to_first_solution = 0;
  std::vector<IncumbentImprovement> improvements;

  double work_seconds() const {
    return filter_seconds + mc_seconds + vc_seconds;
  }
};

struct LazyMCResult {
  /// A maximum clique in original vertex ids (empty for the empty graph).
  std::vector<VertexId> clique;
  /// omega(G) == clique.size() unless timed_out.
  VertexId omega = 0;
  /// Incumbent size after the degree-based heuristic (Table I's ωd).
  VertexId heuristic_degree_omega = 0;
  /// Incumbent size after the coreness-based heuristic (Table I's ωh).
  VertexId heuristic_coreness_omega = 0;
  /// Graph degeneracy (of the lower-bounded core decomposition).
  VertexId degeneracy = 0;
  bool timed_out = false;

  PhaseTimes phases;
  SearchStatsSnapshot search;
  LazyGraph::Stats lazy_graph;
};

/// Runs LazyMC on g.  Thread count comes from the global pool
/// (lazymc::set_num_threads).
LazyMCResult lazy_mc(const Graph& g, const LazyMCConfig& config = {});

}  // namespace lazymc::mc
