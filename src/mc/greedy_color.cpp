#include "mc/greedy_color.hpp"

namespace lazymc::mc {

void greedy_color_into(const DenseSubgraph& g, const DynamicBitset& p,
                       ColorScratch& scratch, Coloring& out) {
  out.order.clear();
  out.color.clear();
  DynamicBitset& uncolored = scratch.uncolored;
  DynamicBitset& candidates = scratch.candidates;
  uncolored = p;
  VertexId color = 0;
  std::size_t total = p.count();
  out.order.reserve(total);
  out.color.reserve(total);
  while (uncolored.any()) {
    ++color;
    // Build one independent set greedily: take the lowest uncolored vertex,
    // remove its neighbors from the class candidates, repeat.
    candidates = uncolored;
    for (std::size_t v = candidates.find_first(); v < candidates.size();
         v = candidates.find_next(v)) {
      out.order.push_back(static_cast<VertexId>(v));
      out.color.push_back(color);
      uncolored.reset(v);
      candidates.and_not_with(g.adj[v]);
    }
  }
  out.num_colors = color;
}

Coloring greedy_color(const DenseSubgraph& g, const DynamicBitset& p) {
  ColorScratch scratch;
  Coloring out;
  greedy_color_into(g, p, scratch, out);
  return out;
}

VertexId greedy_color_count(const DenseSubgraph& g, const DynamicBitset& p,
                            ColorScratch& scratch) {
  DynamicBitset& uncolored = scratch.uncolored;
  DynamicBitset& candidates = scratch.candidates;
  uncolored = p;
  VertexId color = 0;
  while (uncolored.any()) {
    ++color;
    candidates = uncolored;
    for (std::size_t v = candidates.find_first(); v < candidates.size();
         v = candidates.find_next(v)) {
      uncolored.reset(v);
      candidates.and_not_with(g.adj[v]);
    }
  }
  return color;
}

VertexId greedy_color_count(const DenseSubgraph& g, const DynamicBitset& p) {
  ColorScratch scratch;
  return greedy_color_count(g, p, scratch);
}

}  // namespace lazymc::mc
