#include "mc/greedy_color.hpp"

namespace lazymc::mc {

Coloring greedy_color(const DenseSubgraph& g, const DynamicBitset& p) {
  Coloring out;
  DynamicBitset uncolored = p;
  DynamicBitset candidates(p.size());
  VertexId color = 0;
  std::size_t total = p.count();
  out.order.reserve(total);
  out.color.reserve(total);
  while (uncolored.any()) {
    ++color;
    // Build one independent set greedily: take the lowest uncolored vertex,
    // remove its neighbors from the class candidates, repeat.
    candidates = uncolored;
    for (std::size_t v = candidates.find_first(); v < candidates.size();
         v = candidates.find_next(v)) {
      out.order.push_back(static_cast<VertexId>(v));
      out.color.push_back(color);
      uncolored.reset(v);
      candidates.and_not_with(g.adj[v]);
    }
  }
  out.num_colors = color;
  return out;
}

VertexId greedy_color_count(const DenseSubgraph& g, const DynamicBitset& p) {
  DynamicBitset uncolored = p;
  DynamicBitset candidates(p.size());
  VertexId color = 0;
  while (uncolored.any()) {
    ++color;
    candidates = uncolored;
    for (std::size_t v = candidates.find_first(); v < candidates.size();
         v = candidates.find_next(v)) {
      uncolored.reset(v);
      candidates.and_not_with(g.adj[v]);
    }
  }
  return color;
}

}  // namespace lazymc::mc
