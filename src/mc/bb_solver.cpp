#include "mc/bb_solver.hpp"

#include <algorithm>

#include "mc/greedy_color.hpp"

namespace lazymc::mc {
namespace {

class Searcher {
 public:
  Searcher(const DenseSubgraph& g, const BBOptions& opt)
      : g_(g), opt_(opt), best_size_(opt.lower_bound) {}

  BBResult run() {
    const std::size_t n = g_.size();
    DynamicBitset p(n);
    for (std::size_t v = 0; v < n; ++v) p.set(v);
    current_.clear();
    expand(p);
    BBResult out;
    out.clique = std::move(best_clique_);
    out.nodes = nodes_;
    out.timed_out = timed_out_;
    return out;
  }

 private:
  VertexId bound() const {
    VertexId b = best_size_;
    if (opt_.live_bound) {
      b = std::max(b, opt_.live_bound->load(std::memory_order_relaxed));
    }
    return b;
  }

  void expand(const DynamicBitset& p) {
    ++nodes_;
    if (opt_.control && opt_.control->should_stop(stop_counter_)) {
      timed_out_ = true;
      return;
    }
    if (!p.any()) {
      if (current_.size() > best_size_) {
        best_size_ = static_cast<VertexId>(current_.size());
        best_clique_ = current_;
      }
      return;
    }
    Coloring coloring = greedy_color(g_, p);
    DynamicBitset rest = p;
    // Expand in reverse color order: highest-colored vertices first.
    for (std::size_t idx = coloring.order.size(); idx-- > 0;) {
      if (timed_out_) return;
      VertexId v = coloring.order[idx];
      // Prune: every remaining candidate has color <= coloring.color[idx],
      // so no clique through them can beat the bound.
      if (current_.size() + coloring.color[idx] <= bound()) return;
      current_.push_back(v);
      DynamicBitset next(p.size());
      next.assign_and(rest, g_.adj[v]);
      expand(next);
      current_.pop_back();
      rest.reset(v);
    }
  }

  const DenseSubgraph& g_;
  const BBOptions& opt_;
  VertexId best_size_;
  std::vector<VertexId> best_clique_;
  std::vector<VertexId> current_;
  std::uint64_t nodes_ = 0;
  std::uint64_t stop_counter_ = 0;
  bool timed_out_ = false;
};

}  // namespace

BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options) {
  Searcher searcher(g, options);
  return searcher.run();
}

}  // namespace lazymc::mc
