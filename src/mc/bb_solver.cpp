#include "mc/bb_solver.hpp"

#include <algorithm>

namespace lazymc::mc {
namespace {

class Searcher {
 public:
  Searcher(const DenseSubgraph& g, const BBOptions& opt, MCScratch& scratch)
      : g_(g), opt_(opt), scratch_(scratch), best_size_(opt.lower_bound) {}

  BBResult run() {
    const std::size_t n = g_.size();
    prepare(n);
    DynamicBitset& p = scratch_.root;
    p.reinit(n);
    for (std::size_t v = 0; v < n; ++v) p.set(v);
    expand(p, 0);
    return finish();
  }

  BBResult run_rooted(std::span<const VertexId> prefix,
                      const DynamicBitset& candidates) {
    prepare(g_.size());
    scratch_.current.assign(prefix.begin(), prefix.end());
    scratch_.root = candidates;
    expand(scratch_.root, 0);
    return finish();
  }

 private:
  void prepare(std::size_t n) {
    // Depth never exceeds n + 1, so pre-sizing keeps frame references
    // stable across the recursion (and allocation-free once the pool's
    // high-water mark covers n).
    if (scratch_.frames.size() < n + 1) scratch_.frames.resize(n + 1);
    scratch_.best.clear();
    scratch_.current.clear();
  }

  BBResult finish() {
    BBResult out;
    if (!scratch_.best.empty()) {
      out.clique.assign(scratch_.best.begin(), scratch_.best.end());
    }
    out.nodes = nodes_;
    out.timed_out = timed_out_;
    return out;
  }

  VertexId bound() const {
    VertexId b = best_size_;
    if (opt_.live_bound) {
      VertexId live = opt_.live_bound->load(std::memory_order_relaxed);
      live = live > opt_.live_bound_offset ? live - opt_.live_bound_offset
                                           : 0;
      b = std::max(b, live);
    }
    return b;
  }

  void expand(const DynamicBitset& p, std::size_t depth) {
    ++nodes_;
    if (opt_.control && opt_.control->should_stop(stop_counter_)) {
      timed_out_ = true;
      return;
    }
    std::vector<VertexId>& current = scratch_.current;
    if (!p.any()) {
      if (current.size() > best_size_) {
        best_size_ = static_cast<VertexId>(current.size());
        scratch_.best.assign(current.begin(), current.end());
      }
      return;
    }
    MCScratch::Frame& f = scratch_.frames[depth];
    greedy_color_into(g_, p, scratch_.color, f.coloring);
    f.rest = p;
    // Expand in reverse color order: highest-colored vertices first.
    for (std::size_t idx = f.coloring.order.size(); idx-- > 0;) {
      if (timed_out_) return;
      VertexId v = f.coloring.order[idx];
      // Prune: every remaining candidate has color <= coloring.color[idx],
      // so no clique through them can beat the bound.
      const VertexId potential = static_cast<VertexId>(
          current.size() + f.coloring.color[idx]);
      if (potential <= bound()) return;
      current.push_back(v);
      f.next.assign_and(f.rest, g_.adj[v]);
      // Root branches may be handed off as stealable tasks instead of
      // recursing; an accepted frame is executed (or retired) elsewhere.
      if (!(depth == 0 && opt_.split &&
            opt_.split->offer(current, f.next, potential))) {
        expand(f.next, depth + 1);
      }
      current.pop_back();
      f.rest.reset(v);
    }
  }

  const DenseSubgraph& g_;
  const BBOptions& opt_;
  MCScratch& scratch_;
  VertexId best_size_;
  std::uint64_t nodes_ = 0;
  std::uint64_t stop_counter_ = 0;
  bool timed_out_ = false;
};

}  // namespace

BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options,
                        MCScratch& scratch) {
  Searcher searcher(g, options, scratch);
  return searcher.run();
}

BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options) {
  MCScratch scratch;
  return solve_mc_dense(g, options, scratch);
}

BBResult solve_mc_dense_rooted(const DenseSubgraph& g,
                               std::span<const VertexId> prefix,
                               const DynamicBitset& candidates,
                               const BBOptions& options, MCScratch& scratch) {
  Searcher searcher(g, options, scratch);
  return searcher.run_rooted(prefix, candidates);
}

}  // namespace lazymc::mc
