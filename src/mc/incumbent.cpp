// Incumbent is header-only; this TU exists to give the target a home for
// the symbol when debuggers ask and keeps the build layout uniform.
#include "mc/incumbent.hpp"
