// The incumbent clique C* — the largest clique observed so far.
//
// Shared by all threads; reads of the size are a single relaxed atomic
// load (safe because the incumbent only grows — a stale value merely
// prunes less), while updates take a spinlock to swap in the new vertex
// set atomically with the size.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/spinlock.hpp"

namespace lazymc {

class Incumbent {
 public:
  Incumbent() = default;

  /// Current size |C*| (relaxed; monotone non-decreasing).
  VertexId size() const { return size_.load(std::memory_order_relaxed); }

  /// The atomic holding |C*|, for components that re-read it on hot paths
  /// (e.g. LazyGraph's construction-time filtering).
  const std::atomic<VertexId>& size_atomic() const { return size_; }

  /// Installs `clique` as the new incumbent if it is strictly larger than
  /// the current one.  Returns true on improvement.  Thread-safe.
  bool offer(std::span<const VertexId> clique) {
    VertexId sz = static_cast<VertexId>(clique.size());
    if (sz <= size()) return false;  // fast reject without the lock
    SpinLockGuard guard(lock_);
    if (sz <= size_.load(std::memory_order_relaxed)) return false;
    clique_.assign(clique.begin(), clique.end());
    size_.store(sz, std::memory_order_release);
    return true;
  }

  /// Copy of the incumbent vertex set.
  std::vector<VertexId> snapshot() const {
    SpinLockGuard guard(lock_);
    return clique_;
  }

 private:
  std::atomic<VertexId> size_{0};
  mutable SpinLock lock_;
  std::vector<VertexId> clique_;
};

}  // namespace lazymc
