// The incumbent clique C* — the largest clique observed so far.
//
// Shared by all threads; reads of the size are a single relaxed atomic
// load (safe because the incumbent only grows — a stale value merely
// prunes less), while updates take a spinlock to swap in the new vertex
// set atomically with the size.
//
// Checked-mode invariants (-DLAZYMC_CHECKED=ON): the size is asserted to
// be strictly monotone across installs, and when a verifier is set (the
// solver installs an is-a-clique check against the input graph) every
// accepted offer is verified to be an actual clique before it is
// published.
#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/check.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"
#include "support/timer.hpp"

namespace lazymc {

/// One improving install: the new |C*| and when it happened, measured on
/// the clock registered with enable_history() (anytime-behaviour
/// instrumentation: the first entry is the time-to-first-solution).
struct IncumbentImprovement {
  VertexId size = 0;
  double seconds = 0;
};

class Incumbent {
 public:
  Incumbent() = default;

  /// Starts recording improvement timestamps against `timer` (must
  /// outlive the incumbent's use).  Call before concurrent use begins.
  void enable_history(const WallTimer* timer) { timer_ = timer; }

  /// Current size |C*| (relaxed; monotone non-decreasing).
  VertexId size() const { return size_.load(std::memory_order_relaxed); }

  /// The atomic holding |C*|, for components that re-read it on hot paths
  /// (e.g. LazyGraph's construction-time filtering).
  const std::atomic<VertexId>& size_atomic() const { return size_; }

  /// Installs `clique` as the new incumbent if it is strictly larger than
  /// the current one.  Returns true on improvement.  Thread-safe.
  bool offer(std::span<const VertexId> clique) {
    VertexId sz = static_cast<VertexId>(clique.size());
    [[maybe_unused]] const VertexId seen = size();
    if (sz <= seen) return false;  // fast reject without the lock
    SpinLockGuard guard(lock_);
    const VertexId current = size_.load(std::memory_order_relaxed);
    // Monotonicity: the size observed before taking the lock can only
    // have grown by the time the lock is held.
    LAZYMC_ASSERT(current >= seen,
                  "incumbent size decreased between the fast-path read "
                  "and the locked read");
    if (sz <= current) return false;
    LAZYMC_ASSERT_EXPENSIVE(!verifier_ || verifier_(clique),
                            "published incumbent is not a clique of the "
                            "input graph");
    clique_.assign(clique.begin(), clique.end());
    if (timer_ != nullptr) history_.push_back({sz, timer_->elapsed()});
    size_.store(sz, std::memory_order_release);
    return true;
  }

  /// Improvement timeline (empty unless enable_history() was called).
  /// Sizes are strictly increasing; timestamps non-decreasing.
  std::vector<IncumbentImprovement> history() const {
    SpinLockGuard guard(lock_);
    return history_;
  }

  /// Copy of the incumbent vertex set.
  std::vector<VertexId> snapshot() const {
    SpinLockGuard guard(lock_);
    // Coherence: the published vector always matches the advertised size.
    LAZYMC_ASSERT(clique_.size() == size_.load(std::memory_order_relaxed),
                  "incumbent vertex set does not match its advertised size");
    return clique_;
  }

#if LAZYMC_CHECKED_ENABLED
  /// Checked builds only: called under the lock for every improving
  /// offer; returning false trips the is-a-clique assertion.  Set before
  /// concurrent use begins.
  void set_verifier(std::function<bool(std::span<const VertexId>)> verifier) {
    verifier_ = std::move(verifier);
  }
#endif

 private:
  std::atomic<VertexId> size_{0};
  const WallTimer* timer_ = nullptr;
  mutable SpinLock lock_;
  std::vector<VertexId> clique_ LAZYMC_GUARDED_BY(lock_);
  std::vector<IncumbentImprovement> history_ LAZYMC_GUARDED_BY(lock_);
#if LAZYMC_CHECKED_ENABLED
  std::function<bool(std::span<const VertexId>)> verifier_;
#endif
};

}  // namespace lazymc
