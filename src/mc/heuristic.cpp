#include "mc/heuristic.hpp"

#include <algorithm>

#include "support/parallel.hpp"

namespace lazymc::mc {

void degree_based_heuristic(const Graph& g, Incumbent& incumbent,
                            const HeuristicOptions& options) {
  const VertexId n = g.num_vertices();
  if (n == 0) return;

  // Top-K vertices by degree via partial sort of ids.
  VertexId k = std::min<VertexId>(options.top_k, n);
  std::vector<VertexId> seeds(n);
  for (VertexId v = 0; v < n; ++v) seeds[v] = v;
  std::partial_sort(seeds.begin(), seeds.begin() + k, seeds.end(),
                    [&](VertexId a, VertexId b) {
                      return g.degree(a) > g.degree(b);
                    });
  seeds.resize(k);

  parallel_for(0, seeds.size(), [&](std::size_t i) {
    std::uint64_t stop_counter = 0;
    if (options.control && options.control->should_stop(stop_counter)) return;
    VertexId v = seeds[i];
    // N = neighbors with enough degree to matter given |C*|.
    VertexId bound = incumbent.size();
    std::vector<VertexId> candidates;
    candidates.reserve(g.degree(v));
    for (VertexId u : g.neighbors(v)) {
      if (g.degree(u) >= bound) candidates.push_back(u);
    }
    std::vector<VertexId> clique{v};
    std::vector<VertexId> next(candidates.size());

    while (!candidates.empty()) {
      // Greedy step: candidate with the largest degree inside the
      // candidate set, found with early-exit intersections keyed to the
      // running maximum (Algorithm 5 lines 7-8).
      std::int64_t best_deg = -1;
      VertexId best = kInvalidVertex;
      std::span<const VertexId> cand_span(candidates);
      for (VertexId w : candidates) {
        SortedLookup w_nbrs(g.neighbors(w));
        int d = options.intersect.size_gt_val(cand_span, w_nbrs, best_deg);
        if (d != kTooSmall && d > best_deg) {
          best_deg = d;
          best = w;
        }
      }
      if (best == kInvalidVertex) {
        // All remaining candidates are mutually non-adjacent; take one.
        best = candidates.front();
      }
      clique.push_back(best);
      // candidates = candidates ∩ N(best), exactly.
      SortedLookup best_nbrs(g.neighbors(best));
      std::size_t kept = intersect_hash(cand_span, best_nbrs, next.data());
      candidates.assign(next.begin(), next.begin() + kept);
    }
    incumbent.offer(clique);
  }, 1);
}

void coreness_based_heuristic(LazyGraph& h, Incumbent& incumbent,
                              const HeuristicOptions& options) {
  const VertexId n = h.num_vertices();
  if (n == 0) return;

  // Vertices are sorted by ascending coreness, so the first vertex of each
  // coreness level is found by scanning level boundaries once.
  std::vector<VertexId> level_first;  // seed vertex per distinct level
  {
    VertexId prev = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      VertexId c = h.coreness(v);
      if (c != prev) {
        level_first.push_back(v);
        prev = c;
      }
    }
  }
  // Process high coreness levels first (they host the large cliques).
  std::reverse(level_first.begin(), level_first.end());

  const auto& order = h.order();
  parallel_for(0, level_first.size(), [&](std::size_t i) {
    std::uint64_t stop_counter = 0;
    if (options.control && options.control->should_stop(stop_counter)) return;
    VertexId v = level_first[i];
    auto right = h.right_neighborhood(v);
    std::vector<VertexId> candidates(right.begin(), right.end());
    std::vector<VertexId> clique{v};
    std::vector<VertexId> next(candidates.size());

    while (!candidates.empty()) {
      // Highest-numbered candidate has the highest coreness (Algorithm 6
      // line 7); candidate lists are sorted ascending.
      VertexId u = candidates.back();
      clique.push_back(u);
      candidates.pop_back();
      if (candidates.empty()) break;
      // N ← N ∩ N(u) via intersect-gt, θ = |C*| - |C| (Algorithm 6
      // line 8): if the result cannot keep C competitive, abandon.
      std::int64_t theta =
          static_cast<std::int64_t>(incumbent.size()) -
          static_cast<std::int64_t>(clique.size());
      NeighborhoodView u_nbrs = h.membership(u);
      int kept = options.intersect.gt(std::span<const VertexId>(candidates),
                                      u_nbrs, next.data(), theta);
      if (kept == kTooSmall) {
        candidates.clear();
        break;
      }
      candidates.assign(next.begin(), next.begin() + kept);
    }
    // Convert relabelled ids to original before publishing.
    std::vector<VertexId> orig;
    orig.reserve(clique.size());
    for (VertexId u : clique) orig.push_back(order.new_to_orig[u]);
    incumbent.offer(orig);
  }, 1);
}

}  // namespace lazymc::mc
