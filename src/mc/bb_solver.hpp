// Branch-and-bound maximum clique search on a dense induced subgraph.
//
// Derived from Bron–Kerbosch with Tomita's pivoting/coloring discipline
// (paper Section IV-E): candidates are greedily colored at each node and
// expanded in reverse color order, pruning when |R| + color <= best.
// The solver reads an optional external incumbent size so concurrently
// discovered cliques shrink this search too.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/subgraph.hpp"
#include "mc/greedy_color.hpp"
#include "support/control.hpp"

namespace lazymc::mc {

/// Reusable search-state for solve_mc_dense: one frame per recursion
/// depth (coloring + candidate bitsets) plus the coloring buffers and the
/// clique-under-construction vectors.  Keep one instance per thread and
/// pass it to every call; once its capacities reach the high-water mark,
/// repeated solves perform no heap allocation (except to return an
/// improving clique, which is rare by construction).
struct MCScratch {
  struct Frame {
    Coloring coloring;
    DynamicBitset rest;
    DynamicBitset next;
  };
  std::vector<Frame> frames;
  ColorScratch color;
  DynamicBitset root;
  std::vector<VertexId> best;
  std::vector<VertexId> current;
};

struct BBResult {
  /// Largest clique found with size > lower_bound, in *local* subgraph
  /// ids; empty when none exceeds the bound.
  std::vector<VertexId> clique;
  /// Search-tree nodes expanded (work metric for Figs. 6/7).
  std::uint64_t nodes = 0;
  bool timed_out = false;
};

struct BBOptions {
  /// Only cliques strictly larger than this are of interest.
  VertexId lower_bound = 0;
  /// Optional live incumbent size; when set, it is re-read during the
  /// search and tightens the bound (monotone, relaxed reads).
  const std::atomic<VertexId>* live_bound = nullptr;
  /// Cooperative timeout; may be null.
  const SolveControl* control = nullptr;
};

/// Exact maximum clique of `g` subject to the options above.
BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options);

/// Scratch-arena variant: identical result, but all intermediate state
/// lives in (and is recycled through) `scratch`.
BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options,
                        MCScratch& scratch);

}  // namespace lazymc::mc
