// Branch-and-bound maximum clique search on a dense induced subgraph.
//
// Derived from Bron–Kerbosch with Tomita's pivoting/coloring discipline
// (paper Section IV-E): candidates are greedily colored at each node and
// expanded in reverse color order, pruning when |R| + color <= best.
// The solver reads an optional external incumbent size so concurrently
// discovered cliques shrink this search too.
//
// Task decomposition: the recursion is no longer forced to stay on one
// thread.  A caller may install a BBSplitHook; the solver then *offers*
// every root branch — the frame (R = current prefix, P = candidate set)
// that reverse-color-order expansion would recurse into — to the hook
// before descending.  A hook that accepts the frame owns it (typically
// copying it into a SubproblemTask on a shared WorkQueue, see
// mc/neighbor_search.hpp); the solver skips the recursion and moves to
// the next branch.  Rejected frames fall back to the pooled recursion
// unchanged, so a null hook reproduces the classic solver exactly.
// `solve_mc_dense_rooted` is the matching re-entry point: it resumes the
// search from an explicit frame, which is how claimed tasks execute on
// whichever thread stole them.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/subgraph.hpp"
#include "mc/greedy_color.hpp"
#include "support/control.hpp"

namespace lazymc::mc {

/// Reusable search-state for solve_mc_dense: one frame per recursion
/// depth (coloring + candidate bitsets) plus the coloring buffers and the
/// clique-under-construction vectors.  Keep one instance per thread and
/// pass it to every call; once its capacities reach the high-water mark,
/// repeated solves perform no heap allocation (except to return an
/// improving clique, which is rare by construction).
struct MCScratch {
  struct Frame {
    Coloring coloring;
    DynamicBitset rest;
    DynamicBitset next;
  };
  std::vector<Frame> frames;
  ColorScratch color;
  DynamicBitset root;
  std::vector<VertexId> best;
  std::vector<VertexId> current;
};

struct BBResult {
  /// Largest clique found with size > lower_bound, in *local* subgraph
  /// ids; empty when none exceeds the bound.  In rooted calls the clique
  /// includes the prefix.  When a split hook accepted frames, cliques
  /// inside those frames are the hook's responsibility and do not appear
  /// here.
  std::vector<VertexId> clique;
  /// Search-tree nodes expanded (work metric for Figs. 6/7).
  std::uint64_t nodes = 0;
  bool timed_out = false;
};

/// Receives root-level frames the solver is willing to hand off instead of
/// recursing into them.  Implementations decide per frame (e.g. only
/// frames with enough candidates to be worth a queue round-trip).
class BBSplitHook {
 public:
  virtual ~BBSplitHook() = default;
  /// Offered before each root-branch recursion.  `prefix` is R (the branch
  /// vertex last), `candidates` is P, and `potential` is the coloring
  /// upper bound on any clique in this frame's subtree (|R| + color, local
  /// ids — i.e. the same quantity the solver prunes against).  Return
  /// true to take ownership (the solver skips the subtree); false to let
  /// the solver recurse inline.  Both spans/bitsets are only valid during
  /// the call — take copies.
  virtual bool offer(std::span<const VertexId> prefix,
                     const DynamicBitset& candidates, VertexId potential) = 0;
};

struct BBOptions {
  /// Only cliques strictly larger than this are of interest.
  VertexId lower_bound = 0;
  /// Optional live incumbent size; when set, it is re-read during the
  /// search and tightens the bound (monotone, relaxed reads).
  const std::atomic<VertexId>* live_bound = nullptr;
  /// Subtracted (saturating) from live_bound reads before use.  The
  /// systematic search solves neighborhoods *excluding* the probe vertex,
  /// so a global incumbent of size k bounds local cliques at k - 1.
  VertexId live_bound_offset = 0;
  /// Cooperative timeout; may be null.
  const SolveControl* control = nullptr;
  /// When non-null, root-level branch frames are offered here before the
  /// solver recurses into them (see the header comment).
  BBSplitHook* split = nullptr;
};

/// Exact maximum clique of `g` subject to the options above.
BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options);

/// Scratch-arena variant: identical result, but all intermediate state
/// lives in (and is recycled through) `scratch`.
BBResult solve_mc_dense(const DenseSubgraph& g, const BBOptions& options,
                        MCScratch& scratch);

/// Re-entry point for an explicit frame: expands `candidates` with
/// `prefix` already committed to R.  Returned cliques include the prefix.
/// Used by the task engine to execute claimed SubproblemTasks; with
/// options.split set the frame may split again (nested task generations).
BBResult solve_mc_dense_rooted(const DenseSubgraph& g,
                               std::span<const VertexId> prefix,
                               const DynamicBitset& candidates,
                               const BBOptions& options, MCScratch& scratch);

}  // namespace lazymc::mc
