#include "vc/kvc.hpp"

#include <algorithm>

namespace lazymc::vc {
namespace {

class Searcher {
 public:
  Searcher(const DenseSubgraph& g, const KvcOptions& opt, KvcScratch& scratch)
      : g_(g), opt_(opt), scratch_(scratch) {}

  KvcResult run(std::int64_t k) {
    const std::size_t n = g_.size();
    // Every branch removes at least one vertex, so depth <= n + 1;
    // pre-sizing keeps the per-depth branch bitsets stable and reused.
    if (scratch_.frames.size() < n + 2) scratch_.frames.resize(n + 2);
    DynamicBitset& alive = scratch_.root;
    alive.reinit(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (g_.adj[v].any()) alive.set(v);  // degree-0 never matters
    }
    // Root degrees: the only full recount of the whole solve; every
    // branch copies and decrements from here.
    std::vector<VertexId>& deg = scratch_.root_deg;
    deg.assign(n, 0);
    for (std::size_t v = alive.find_first(); v < alive.size();
         v = alive.find_next(v)) {
      deg[v] = static_cast<VertexId>(g_.adj[v].count_and(alive));
    }
    KvcResult out;
    std::vector<VertexId>& cover = scratch_.cover;
    cover.clear();
    out.feasible = search(alive, deg, k, cover, 0);
    if (timed_out_ || budget_exhausted_) out.feasible = false;
    if (out.feasible) out.cover.assign(cover.begin(), cover.end());
    out.nodes = nodes_;
    out.timed_out = timed_out_;
    out.budget_exhausted = budget_exhausted_;
    return out;
  }

 private:
  /// Removes v from alive and decrements its alive neighbors' degrees.
  /// The row & alive AND runs through the dispatched word kernels into a
  /// pooled bitset; only the per-neighbor decrement stays bit-serial.
  void remove_vertex(DynamicBitset& alive, std::vector<VertexId>& deg,
                     std::size_t v) const {
    alive.reset(v);
    DynamicBitset& both = scratch_.alive_row;
    both.assign_and(g_.adj[v], alive);
    both.for_each([&](std::size_t u) { --deg[u]; });
    deg[v] = 0;
  }

  /// Size of a greedily built maximal matching among alive vertices.
  /// Any vertex cover contains at least one endpoint per matching edge,
  /// so matching size > k proves infeasibility.  O(n * words).
  std::size_t maximal_matching_size(const DynamicBitset& alive) const {
    DynamicBitset& free = scratch_.matching_free;
    free = alive;
    std::size_t matched = 0;
    for (std::size_t v = free.find_first(); v < free.size();
         v = free.find_next(v)) {
      // v is still free here (find_next skips vertices we reset).
      std::size_t partner = free.size();
      for (std::size_t u = g_.adj[v].find_first(); u < g_.adj[v].size();
           u = g_.adj[v].find_next(u)) {
        if (u > v && free.test(u)) {
          partner = u;
          break;
        }
      }
      if (partner != free.size()) {
        free.reset(v);
        free.reset(partner);
        ++matched;
      }
    }
    return matched;
  }

  /// Minimum VC of a path/cycle component starting the walk at `start`;
  /// appends chosen vertices to `cover` and clears the component from
  /// `alive`.  Assumes all alive degrees <= 2.
  void solve_degree2_component(DynamicBitset& alive, std::size_t start,
                               std::vector<VertexId>& cover) {
    // Find an endpoint if this is a path (a vertex of degree <= 1).
    std::size_t cur = start;
    std::size_t prev = alive.size();
    for (;;) {
      std::size_t next = alive.size();
      for (std::size_t u = g_.adj[cur].find_first(); u < g_.adj[cur].size();
           u = g_.adj[cur].find_next(u)) {
        if (alive.test(u) && u != prev) {
          next = u;
          break;
        }
      }
      if (next == alive.size()) break;  // cur is an endpoint
      prev = cur;
      cur = next;
      if (cur == start) break;  // walked a full cycle
    }
    bool is_cycle = (cur == start && prev != alive.size());

    // Walk from the endpoint (or break the cycle at `start` by taking it).
    std::size_t walk = cur;
    if (is_cycle) {
      cover.push_back(static_cast<VertexId>(start));
      alive.reset(start);
      // The remainder is a path; find one of the two loose ends.
      walk = alive.size();
      for (std::size_t u = g_.adj[start].find_first();
           u < g_.adj[start].size(); u = g_.adj[start].find_next(u)) {
        if (alive.test(u)) {
          walk = u;
          break;
        }
      }
      if (walk == alive.size()) return;  // start was a 2-cycle? (impossible)
    }
    // Greedy path cover: walk the path; when the edge (a, b) is uncovered,
    // put b (the far endpoint) in the cover.  Optimal for paths.
    std::size_t a = walk;
    std::size_t before = alive.size();
    bool a_covered = false;
    while (true) {
      std::size_t b = alive.size();
      for (std::size_t u = g_.adj[a].find_first(); u < g_.adj[a].size();
           u = g_.adj[a].find_next(u)) {
        if (alive.test(u) && u != before) {
          b = u;
          break;
        }
      }
      alive.reset(a);
      if (b == alive.size()) break;  // end of path
      if (!a_covered) {
        cover.push_back(static_cast<VertexId>(b));
        a_covered = true;  // b covers edge (a,b); b itself is covered
      } else {
        a_covered = false;
      }
      before = a;
      a = b;
      // a_covered now says whether vertex a is in the cover.
    }
  }

  /// `alive` and its paired degree array `deg` belong to this call and are
  /// mutated freely (kernelisation); the caller keeps its own copies for
  /// building its second branch.
  bool search(DynamicBitset& alive, std::vector<VertexId>& deg, std::int64_t k,
              std::vector<VertexId>& cover, std::size_t depth) {
    ++nodes_;
    if (opt_.control && opt_.control->should_stop(stop_counter_)) {
      timed_out_ = true;
      return false;
    }
    if (opt_.max_nodes != 0 && nodes_ > opt_.max_nodes) {
      budget_exhausted_ = true;
      return false;
    }
    const std::size_t checkpoint = cover.size();

    // ---- kernelisation loop -------------------------------------------
    for (;;) {
      if (k < 0) {
        cover.resize(checkpoint);
        return false;
      }
      std::size_t max_deg = 0, max_v = alive.size();
      std::size_t edges2 = 0;  // 2x edge count among alive
      bool changed = false;

      for (std::size_t v = alive.find_first(); v < alive.size();
           v = alive.find_next(v)) {
        // Incrementally maintained — no count_and per vertex per round.
        std::size_t d = deg[v];
        if (d == 0) {
          alive.reset(v);
          continue;
        }
        edges2 += d;
        if (d > static_cast<std::size_t>(k)) {
          // Buss rule: v must be in every k-cover.
          cover.push_back(static_cast<VertexId>(v));
          remove_vertex(alive, deg, v);
          --k;
          changed = true;
          break;
        }
        if (d == 1) {
          // Take the sole neighbor.
          std::size_t u = alive.size();
          for (std::size_t w = g_.adj[v].find_first(); w < g_.adj[v].size();
               w = g_.adj[v].find_next(w)) {
            if (alive.test(w)) {
              u = w;
              break;
            }
          }
          cover.push_back(static_cast<VertexId>(u));
          remove_vertex(alive, deg, u);
          remove_vertex(alive, deg, v);
          --k;
          changed = true;
          break;
        }
        if (d == 2) {
          // Triangle rule (merge-free degree-2 case): if the two
          // neighbors are adjacent, both are in some minimum cover.
          std::size_t u1 = alive.size(), u2 = alive.size();
          for (std::size_t w = g_.adj[v].find_first(); w < g_.adj[v].size();
               w = g_.adj[v].find_next(w)) {
            if (!alive.test(w)) continue;
            if (u1 == alive.size()) {
              u1 = w;
            } else {
              u2 = w;
              break;
            }
          }
          if (u2 != alive.size() && g_.adj[u1].test(u2)) {
            cover.push_back(static_cast<VertexId>(u1));
            cover.push_back(static_cast<VertexId>(u2));
            remove_vertex(alive, deg, u1);
            remove_vertex(alive, deg, u2);
            remove_vertex(alive, deg, v);
            k -= 2;
            changed = true;
            break;
          }
        }
        if (d > max_deg) {
          max_deg = d;
          max_v = v;
        }
      }
      if (changed) continue;

      if (edges2 == 0) return true;  // everything covered
      if (k <= 0) {
        cover.resize(checkpoint);
        return false;
      }
      // Counting bound: each cover vertex covers at most max_deg edges.
      if (edges2 / 2 > static_cast<std::size_t>(k) * max_deg) {
        cover.resize(checkpoint);
        return false;
      }
      // Matching bound: a maximal matching needs one cover vertex per
      // edge.  Decisive for the "prove no better clique exists" probes of
      // MC-via-VC, where k is large but the complement still has a big
      // matching.
      if (maximal_matching_size(alive) > static_cast<std::size_t>(k)) {
        cover.resize(checkpoint);
        return false;
      }

      if (max_deg <= 2) {
        // Paths and cycles: polynomial.
        std::size_t needed_before = cover.size();
        DynamicBitset& scratch = scratch_.deg2;
        scratch = alive;
        while (scratch.any()) {
          std::size_t v = scratch.find_first();
          solve_degree2_component(scratch, v, cover);
        }
        std::int64_t used =
            static_cast<std::int64_t>(cover.size() - needed_before);
        if (used <= k) return true;
        cover.resize(checkpoint);
        return false;
      }

      // ---- branch on the max-degree vertex ----------------------------
      // Both branches borrow this depth's pooled bitset + degree array:
      // branch 1's recursion may mutate them, so branch 2 re-copies from
      // `alive`/`deg` (which callees never touch) before reusing them.
      DynamicBitset& next = scratch_.frames[depth].branch;
      std::vector<VertexId>& next_deg = scratch_.frames[depth].deg;
      // Branch 1: max_v in the cover.
      {
        next = alive;
        next_deg = deg;
        remove_vertex(next, next_deg, max_v);
        cover.push_back(static_cast<VertexId>(max_v));
        if (search(next, next_deg, k - 1, cover, depth + 1)) return true;
        cover.pop_back();
        if (timed_out_ || budget_exhausted_) {
          cover.resize(checkpoint);
          return false;
        }
      }
      // Branch 2: N(max_v) in the cover.
      {
        next = alive;
        next_deg = deg;
        std::size_t taken = 0;
        std::size_t before = cover.size();
        for (std::size_t u = g_.adj[max_v].find_first();
             u < g_.adj[max_v].size(); u = g_.adj[max_v].find_next(u)) {
          if (!alive.test(u)) continue;
          cover.push_back(static_cast<VertexId>(u));
          remove_vertex(next, next_deg, u);
          ++taken;
        }
        next.reset(max_v);  // degree already 0: all neighbors removed
        next_deg[max_v] = 0;
        if (search(next, next_deg, k - static_cast<std::int64_t>(taken), cover,
                   depth + 1)) {
          return true;
        }
        cover.resize(before);
      }
      cover.resize(checkpoint);
      return false;
    }
  }

  const DenseSubgraph& g_;
  const KvcOptions& opt_;
  KvcScratch& scratch_;
  std::uint64_t nodes_ = 0;
  std::uint64_t stop_counter_ = 0;
  bool timed_out_ = false;
  bool budget_exhausted_ = false;
};

}  // namespace

KvcResult solve_kvc(const DenseSubgraph& g, std::int64_t k,
                    const KvcOptions& options, KvcScratch& scratch) {
  if (k < 0) return KvcResult{};
  Searcher searcher(g, options, scratch);
  return searcher.run(k);
}

KvcResult solve_kvc(const DenseSubgraph& g, std::int64_t k,
                    const KvcOptions& options) {
  KvcScratch scratch;
  return solve_kvc(g, k, options, scratch);
}

std::size_t minimum_vertex_cover(const DenseSubgraph& g,
                                 const KvcOptions& options) {
  // Feasibility is monotone in k; binary search between 0 and n.
  std::size_t lo = 0, hi = g.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    KvcResult r = solve_kvc(g, static_cast<std::int64_t>(mid), options);
    if (r.feasible) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace lazymc::vc
